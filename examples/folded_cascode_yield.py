"""Paper example 1: yield-optimize the folded-cascode amplifier (C035).

Run:
    python examples/folded_cascode_yield.py            # short demo run
    REPRO_FULL=1 python examples/folded_cascode_yield.py  # paper-length run

This is the workload behind Tables 1-2 and Fig. 6.  The script runs MOHECO
once through :func:`repro.api.optimize` with a progress callback streaming
the generation loop, then reports the sized design, the nominal performance
against every spec, the per-spec pass rates under process variations, and
the simulation budget breakdown.  The equivalent CLI invocation::

    python -m repro run --problem folded_cascode --method moheco --seed 42 \
        --set max_generations=120 --progress --out result.json
"""

import os

import numpy as np

from repro import ProgressCallback, make_folded_cascode_problem, optimize, \
    reference_yield


def main() -> None:
    full = os.environ.get("REPRO_FULL", "0") == "1"
    problem = make_folded_cascode_problem()
    print(f"problem: {problem.name}")
    print(f"design variables ({problem.design_dimension}): {problem.space.names}")
    print(f"process variables: {problem.process_dimension} "
          "(20 inter-die + 15 transistors x 4 mismatch)")

    result = optimize(
        problem,
        method="moheco",
        seed=42,
        max_generations=200 if full else 120,
        callbacks=[ProgressCallback(every=10)],
    )

    print(f"\nreported yield: {result.best_yield:.2%} "
          f"after {result.generations} generations ({result.reason})")
    print(f"simulations: {result.n_simulations} "
          f"(paper MOHECO average: ~26 000)")
    print(f"  breakdown: {result.ledger.by_category()}")
    print(f"  screened by AS: {result.ledger.screened_out}")

    print("\nsized design:")
    for name, value in problem.space.as_dict(result.best_x).items():
        unit = "m" if name.startswith(("w", "l")) else ("A" if name.startswith("i") else "V")
        print(f"  {name:10s} {value:.4g} {unit}")

    print("\nnominal performance vs specs:")
    nominal = problem.nominal_performance(result.best_x)
    for spec, value in zip(problem.specs, nominal):
        print(f"  {spec!s:28s} nominal = {value:.5g} {spec.unit}")

    n_mc = 20_000 if full else 4_000
    samples = problem.variation.sample(n_mc, np.random.default_rng(7))
    performance = problem.evaluator.evaluate(result.best_x, samples)
    print(f"\nper-spec pass rates over {n_mc} Monte-Carlo samples:")
    for j, spec in enumerate(problem.specs):
        rate = float(np.mean(spec.passes(performance[:, j])))
        print(f"  {spec!s:28s} {rate:8.2%}")

    reference = reference_yield(problem, result.best_x,
                                n=50_000 if full else 10_000,
                                rng=np.random.default_rng(11))
    print(f"\nreference MC yield: {reference.value:.2%} "
          f"(deviation {abs(result.best_yield - reference.value):.2%})")


if __name__ == "__main__":
    main()
