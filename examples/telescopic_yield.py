"""Paper example 2: the two-stage telescopic amplifier in N90 (90 nm).

Run:
    python examples/telescopic_yield.py

The paper uses this circuit to stress MOHECO under "extremely severe
performance constraints": at 1.2 V supply, the 1.8 V differential swing,
180 um^2 area and 0.05 mV offset specs are mutually antagonistic.  The
script compares MOHECO against the fixed-budget AS+LHS baseline on one seed
— both are just method-registry names handed to the same
:func:`repro.api.optimize` driver — and shows where the simulation budget
went.
"""

import numpy as np

from repro import make_telescopic_problem, optimize, reference_yield


def main() -> None:
    problem = make_telescopic_problem()
    print(f"problem: {problem.name}")
    print(f"design variables ({problem.design_dimension}): {problem.space.names}")
    print(f"process variables: {problem.process_dimension} "
          "(47 inter-die + 19 transistors x 4 mismatch)")
    print("specs:")
    print(problem.specs.describe())

    print("\n-- MOHECO ------------------------------------------------------")
    moheco = optimize(problem, method="moheco", seed=3, max_generations=120)
    print(f"reported yield {moheco.best_yield:.2%} in {moheco.n_simulations} "
          f"simulations ({moheco.generations} generations, {moheco.reason})")

    print("\n-- AS+LHS, 500 sims per feasible candidate ----------------------")
    fixed = optimize(problem, method="fixed_budget", seed=3, n_fixed=500,
                     max_generations=120)
    print(f"reported yield {fixed.best_yield:.2%} in {fixed.n_simulations} "
          f"simulations ({fixed.generations} generations, {fixed.reason})")

    ratio = fixed.n_simulations / max(moheco.n_simulations, 1)
    print(f"\nMOHECO used {moheco.n_simulations / max(fixed.n_simulations, 1):.1%} "
          f"of the fixed-budget method's simulations ({ratio:.1f}x cheaper; "
          "paper reports ~14% on this circuit)")

    reference = reference_yield(problem, moheco.best_x, n=10_000,
                                rng=np.random.default_rng(5))
    print(f"MOHECO reference-MC yield: {reference.value:.2%} "
          f"(deviation {abs(moheco.best_yield - reference.value):.2%})")

    nominal = problem.nominal_performance(moheco.best_x)
    print("\nMOHECO design, nominal performance vs specs:")
    for spec, value in zip(problem.specs, nominal):
        print(f"  {spec!s:30s} nominal = {value:.5g} {spec.unit}")


if __name__ == "__main__":
    main()
