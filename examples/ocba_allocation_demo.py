"""Ordinal optimization demo: why OCBA beats equal budget allocation.

Run:
    python examples/ocba_allocation_demo.py

Recreates the paper's Fig. 3 story on a controllable synthetic population:
designs with known yields are estimated under (a) equal allocation and
(b) the OCBA closed form, and the probability of correctly selecting the
best design is measured empirically over many repetitions.
"""

import numpy as np

from repro.ocba import approximate_pcs, equal_allocation, ocba_allocation


def empirical_pcs(means, allocation, repetitions, rng):
    """Fraction of repetitions where the best design is ranked first."""
    best = int(np.argmax(means))
    hits = 0
    for _ in range(repetitions):
        estimates = [
            rng.binomial(n, p) / n if n > 0 else 0.0
            for p, n in zip(means, allocation)
        ]
        if int(np.argmax(estimates)) == best:
            hits += 1
    return hits / repetitions


def main() -> None:
    rng = np.random.default_rng(0)
    # A population like the paper's Fig. 3: a few good designs, many mediocre.
    means = np.array([0.93, 0.90, 0.85, 0.72, 0.65, 0.55, 0.45, 0.35, 0.25, 0.15])
    stds = np.sqrt(means * (1.0 - means))
    total = 350  # = sim_ave(35) x 10 candidates, the paper's budget rule

    equal = equal_allocation(len(means), total)
    ocba = ocba_allocation(means, stds, total, minimum=5)

    print("design yields:", means)
    print(f"{'design':>8s} {'yield':>7s} {'equal':>7s} {'OCBA':>7s}")
    for i, (p, ne, no) in enumerate(zip(means, equal, ocba)):
        print(f"{i:>8d} {p:>7.2f} {ne:>7d} {no:>7d}")

    high = means > 0.70
    print(f"\ncandidates with yield > 70%: {np.mean(high):.0%} of population, "
          f"{np.sum(ocba[high]) / total:.0%} of OCBA samples "
          "(paper Fig. 3: 36% of population got 55% of samples)")

    repetitions = 4000
    pcs_equal = empirical_pcs(means, equal, repetitions, rng)
    pcs_ocba = empirical_pcs(means, ocba, repetitions, rng)
    print(f"\nempirical P(correct selection), {repetitions} repetitions:")
    print(f"  equal allocation: {pcs_equal:.3f}  "
          f"(APCS bound {approximate_pcs(means, stds, equal):.3f})")
    print(f"  OCBA allocation:  {pcs_ocba:.3f}  "
          f"(APCS bound {approximate_pcs(means, stds, ocba):.3f})")
    print("\nOCBA concentrates samples where ranking is hard — the paper's "
          "'order is easier than value' tenet in action.")


if __name__ == "__main__":
    main()
