"""Quickstart: yield-optimize a small synthetic problem with MOHECO.

Run:
    python examples/quickstart.py

The synthetic "sphere" problem has a closed-form yield, so you can see the
whole MOHECO loop working — feasibility gating, OCBA stage-1 estimation,
stage-2 promotion, memetic refinement — in a couple of seconds, and compare
the result against ground truth.

Everything goes through the unified API: a declarative
:class:`~repro.api.RunSpec` (JSON-round-trippable, so runs are scriptable
and archivable) handed to :func:`~repro.api.optimize`.  The same run from
the shell::

    python -m repro run --problem sphere --seed 2010 \
        --problem-param dimension=4 --problem-param sigma=0.2 \
        --set pop_size=20 --set max_generations=40 --out result.json

The Monte-Carlo refinement rounds execute on a pluggable backend
(``--engine serial|process|legacy``); backends are seed-equivalent, so
picking one only changes the wall-clock — the demo proves it by re-running
the same spec on the legacy per-candidate loop and comparing results.

Replicated evaluation — the paper's "runs with independent random
numbers" — is one :class:`~repro.sweep.SweepSpec` handed to
:func:`~repro.sweep.run_sweep`; the demo runs a tiny sweep twice (serial,
then sharded across two processes) and shows the records are
bit-identical.  Shell form::

    python -m repro sweep --problem sphere --method moheco \
        --method fixed_budget --runs 3 --workers 2 --out store.jsonl
"""

import warnings

import numpy as np

from repro import (
    MethodSpec,
    ProblemSpec,
    RunSpec,
    SweepSpec,
    optimize,
    reference_yield,
    run_moheco,
    run_sweep,
)
from repro.problems import make_problem

def main() -> None:
    spec = RunSpec(
        problem="sphere",
        method="moheco",
        seed=2010,
        problem_params={"dimension": 4, "sigma": 0.2},
        overrides={"pop_size": 20, "max_generations": 40},
    )
    print("run spec (JSON):")
    print(spec.to_json())
    assert RunSpec.from_json(spec.to_json()) == spec  # lossless round trip

    result = optimize(spec)

    print(f"\nbest design: {np.round(result.best_x, 4)}")
    print(f"reported yield: {result.best_yield:.2%} "
          f"({result.best_estimate.n} samples)")
    print(f"stopping reason: {result.reason} after {result.generations} generations")
    print(f"simulations charged: {result.n_simulations}")
    print(f"  by category: {result.ledger.by_category()}")
    print(f"  avoided by acceptance sampling: {result.ledger.screened_out}")

    problem = make_problem(spec.problem, **spec.problem_params)
    truth = problem.evaluator.analytic_yield(result.best_x, problem.specs)
    reference = reference_yield(problem, result.best_x, n=20_000,
                                rng=np.random.default_rng(0))
    print(f"\nanalytic yield at the returned design: {truth:.2%}")
    print(f"50k-style reference MC yield:          {reference.value:.2%}")
    print(f"reported-vs-reference deviation:       "
          f"{abs(result.best_yield - reference.value):.2%}")

    # Execution engines are seed-equivalent: the fused serial backend (the
    # default above) and the legacy per-candidate loop produce the same
    # run, sample for sample — engines change how fast, never what.
    legacy_engine = optimize(spec.with_engine("legacy"))
    assert legacy_engine.best_yield == result.best_yield
    assert legacy_engine.n_simulations == result.n_simulations
    print(f"\nfused serial engine: {result.elapsed_seconds:.2f}s "
          f"({result.sims_per_second:,.0f} sims/s); legacy loop: "
          f"{legacy_engine.elapsed_seconds:.2f}s "
          f"({legacy_engine.sims_per_second:,.0f} sims/s) — same result")

    # The pre-1.1 wrappers still work (as deprecation shims over optimize)
    # and reproduce the exact same run for the same seed.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        legacy = run_moheco(problem, rng=2010, pop_size=20, max_generations=40)
    assert legacy.best_yield == result.best_yield
    assert legacy.n_simulations == result.n_simulations
    print("\nlegacy run_moheco shim reproduces the run exactly "
          f"({legacy.n_simulations} simulations)")

    # Replicated evaluation is a declarative sweep: the same grid executed
    # serially and sharded across two worker processes yields bit-identical
    # records — whole runs are the sharding unit, and each run's streams
    # derive from (base_seed, run_index) alone.
    sweep_spec = SweepSpec(
        methods=(
            MethodSpec("moheco", label="MOHECO",
                       overrides={"pop_size": 10, "n_max": 100}),
            MethodSpec("fixed_budget", label="AS+LHS 100",
                       overrides={"pop_size": 10, "n_fixed": 100}),
        ),
        problems=(ProblemSpec("sphere", problem_params={"sigma": 0.2}),),
        runs=3,
        base_seed=2010,
        reference_n=2_000,
        max_generations=10,
    )
    serial_sweep = run_sweep(sweep_spec, workers=1)
    sharded_sweep = run_sweep(sweep_spec, workers=2)
    assert serial_sweep.tables() == sharded_sweep.tables()
    print(f"\nsweep of {sweep_spec.total_runs} runs: serial "
          f"{serial_sweep.elapsed_seconds:.2f}s vs 2-worker "
          f"{sharded_sweep.elapsed_seconds:.2f}s — identical tables:\n")
    print(sharded_sweep.tables())


if __name__ == "__main__":
    main()
