"""Quickstart: yield-optimize a small synthetic problem with MOHECO.

Run:
    python examples/quickstart.py

The synthetic "sphere" problem has a closed-form yield, so you can see the
whole MOHECO loop working — feasibility gating, OCBA stage-1 estimation,
stage-2 promotion, memetic refinement — in a couple of seconds, and compare
the result against ground truth.
"""

import numpy as np

from repro import make_sphere_problem, reference_yield, run_moheco


def main() -> None:
    problem = make_sphere_problem(dimension=4, sigma=0.2)
    print(f"problem: {problem.name}, {problem.design_dimension} design vars, "
          f"{problem.process_dimension} process vars")
    print("specs:")
    print(problem.specs.describe())

    result = run_moheco(problem, rng=2010, pop_size=20, max_generations=40)

    print(f"\nbest design: {np.round(result.best_x, 4)}")
    print(f"reported yield: {result.best_yield:.2%} "
          f"({result.best_estimate.n} samples)")
    print(f"stopping reason: {result.reason} after {result.generations} generations")
    print(f"simulations charged: {result.n_simulations}")
    print(f"  by category: {result.ledger.by_category()}")
    print(f"  avoided by acceptance sampling: {result.ledger.screened_out}")

    truth = problem.evaluator.analytic_yield(result.best_x, problem.specs)
    reference = reference_yield(problem, result.best_x, n=20_000,
                                rng=np.random.default_rng(0))
    print(f"\nanalytic yield at the returned design: {truth:.2%}")
    print(f"50k-style reference MC yield:          {reference.value:.2%}")
    print(f"reported-vs-reference deviation:       "
          f"{abs(result.best_yield - reference.value):.2%}")


if __name__ == "__main__":
    main()
