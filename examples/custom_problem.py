"""Extending the library: register your own yield-optimization problem.

Run:
    python examples/custom_problem.py

Any object with ``design_space()``, ``metric_names()``, ``evaluate(x,
samples)`` and a ``variation`` model can be wrapped in a
:class:`~repro.problems.base.YieldProblem` — circuits, behavioural models,
or (as here) an RC filter specified analytically.  Registering the factory
with :func:`repro.api.register_problem` makes it a first-class citizen: it
becomes addressable by name from :func:`~repro.api.optimize`, from
:class:`~repro.api.RunSpec` JSON files and from the CLI
(``python -m repro run --problem rc_lowpass ...``).

The example sizes an RC low-pass so its corner frequency hits a band under
+-10 % component variations.
"""

import numpy as np

from repro import Spec, SpecSet, YieldProblem, optimize, register_problem
from repro.circuit.topologies.base import DesignSpace
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.variation import IntraDieSpec, ProcessVariationModel


class RCFilterEvaluator:
    """Corner frequency of an RC low-pass with R/C manufacturing spread.

    Design variables: nominal R [ohm] and C [F].  Process variables: the
    relative R and C errors (inter-die, ~3 % and ~5 % sigma).
    """

    def __init__(self) -> None:
        group = ParameterGroup(
            [
                StatisticalParameter.normal("dR", 0.0, 0.03, "resistor error"),
                StatisticalParameter.normal("dC", 0.0, 0.05, "capacitor error"),
            ]
        )
        self.variation = ProcessVariationModel(group, [], IntraDieSpec(()))

    def design_space(self) -> DesignSpace:
        return DesignSpace(["r", "c"], [1e3, 10e-12], [1e6, 10e-9])

    def metric_names(self) -> list[str]:
        return ["corner_hz", "area_score"]

    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        r, c = float(x[0]), float(x[1])
        samples = np.atleast_2d(samples)
        r_eff = r * (1.0 + samples[:, 0])
        c_eff = c * (1.0 + samples[:, 1])
        corner = 1.0 / (2.0 * np.pi * r_eff * c_eff)
        # A crude "cost": large R and C both cost area.
        area_score = (r / 1e6 + c / 1e-9) * np.ones(samples.shape[0])
        return np.column_stack([corner, area_score])


@register_problem("rc_lowpass")
def make_rc_lowpass_problem(corner_min_hz: float = 9e3) -> YieldProblem:
    """Factory registered under ``"rc_lowpass"``."""
    specs = SpecSet(
        [
            Spec("corner_hz", ">=", float(corner_min_hz), unit="Hz"),
            Spec("area_score", "<=", 1.0),
        ]
    )
    return YieldProblem(RCFilterEvaluator(), specs, name="rc_lowpass")


def main() -> None:
    # The registered name is now a valid RunSpec/CLI target.
    result = optimize("rc_lowpass", method="moheco", seed=1,
                      pop_size=16, max_generations=40)
    r, c = result.best_x
    print(f"sized: R = {r / 1e3:.1f} kohm, C = {c * 1e12:.1f} pF")
    print(f"nominal corner: {1.0 / (2 * np.pi * r * c) / 1e3:.2f} kHz "
          "(target: >= 9 kHz under variations)")
    print(f"reported yield: {result.best_yield:.2%} "
          f"in {result.n_simulations} simulations ({result.reason})")

    # Factory parameters flow through by name as well.
    relaxed = optimize("rc_lowpass", method="moheco", seed=1,
                       problem_params={"corner_min_hz": 5e3},
                       pop_size=16, max_generations=20)
    print(f"relaxed 5 kHz spec: yield {relaxed.best_yield:.2%} "
          f"in {relaxed.n_simulations} simulations")


if __name__ == "__main__":
    main()
