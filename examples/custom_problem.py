"""Extending the library: define your own yield-optimization problem.

Run:
    python examples/custom_problem.py

Any object with ``design_space()``, ``metric_names()``, ``evaluate(x,
samples)`` and a ``variation`` model can be wrapped in a
:class:`~repro.problems.base.YieldProblem` — circuits, behavioural models,
or (as here) an RC filter specified analytically.  The example sizes an RC
low-pass so its corner frequency hits a band under +-10 % component
variations.
"""

import numpy as np

from repro import Spec, SpecSet, YieldProblem, run_moheco
from repro.circuit.topologies.base import DesignSpace
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.variation import IntraDieSpec, ProcessVariationModel


class RCFilterEvaluator:
    """Corner frequency of an RC low-pass with R/C manufacturing spread.

    Design variables: nominal R [ohm] and C [F].  Process variables: the
    relative R and C errors (inter-die, ~3 % and ~5 % sigma).
    """

    def __init__(self) -> None:
        group = ParameterGroup(
            [
                StatisticalParameter.normal("dR", 0.0, 0.03, "resistor error"),
                StatisticalParameter.normal("dC", 0.0, 0.05, "capacitor error"),
            ]
        )
        self.variation = ProcessVariationModel(group, [], IntraDieSpec(()))

    def design_space(self) -> DesignSpace:
        return DesignSpace(["r", "c"], [1e3, 10e-12], [1e6, 10e-9])

    def metric_names(self) -> list[str]:
        return ["corner_hz", "area_score"]

    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        r, c = float(x[0]), float(x[1])
        samples = np.atleast_2d(samples)
        r_eff = r * (1.0 + samples[:, 0])
        c_eff = c * (1.0 + samples[:, 1])
        corner = 1.0 / (2.0 * np.pi * r_eff * c_eff)
        # A crude "cost": large R and C both cost area.
        area_score = (r / 1e6 + c / 1e-9) * np.ones(samples.shape[0])
        return np.column_stack([corner, area_score])


def main() -> None:
    specs = SpecSet(
        [
            Spec("corner_hz", ">=", 9e3, unit="Hz"),
            Spec("area_score", "<=", 1.0),
        ]
    )
    problem = YieldProblem(RCFilterEvaluator(), specs, name="rc_lowpass")
    print(f"problem: {problem.name}, specs:\n{problem.specs.describe()}")

    result = run_moheco(problem, rng=1, pop_size=16, max_generations=40)
    r, c = result.best_x
    print(f"\nsized: R = {r / 1e3:.1f} kohm, C = {c * 1e12:.1f} pF")
    print(f"nominal corner: {1.0 / (2 * np.pi * r * c) / 1e3:.2f} kHz "
          "(target: >= 9 kHz under variations)")
    print(f"reported yield: {result.best_yield:.2%} "
          f"in {result.n_simulations} simulations ({result.reason})")


if __name__ == "__main__":
    main()
