"""Multi-fidelity ladder: bracket arithmetic, fusion, determinism.

The load-bearing contracts:

* The ladder schedule is pure arithmetic — ``fidelity_trace`` (part of
  the result *identity*, unlike the observational fields) is
  bit-identical across execution backends, worker counts and cache
  states.
* Precision-weighted fusion drives promotion ranking only; the reported
  yield stays the plain pooled estimate.
* Bad budgets and impossible schedules fail at spec-validation time as
  structured :class:`~repro.api.errors.SpecError`, not inside the run.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.api import (
    RunSpec,
    SpecError,
    optimize,
    validate_run_spec,
    validate_sweep_spec,
)
from repro.api.registries import METHODS
from repro.core.moheco import MOHECOResult
from repro.engine.remote import RemoteEngine
from repro.mf import (
    FidelityLadder,
    MF_PARAM_KEYS,
    MultiFidelityMOHECO,
    RungSegment,
    fuse_segments,
    run_multi_fidelity,
)
from repro.ocba.allocation import clamp_gains, rung_allocation
from repro.service.worker import serve_worker
from repro.sweep.spec import SweepSpec

# Small enough for sub-second runs, large enough for a 2-rung ladder.
CONFIG = dict(
    problem="quadratic", seed=3, max_generations=3, pop_size=8, n0=20, n_max=120
)


@pytest.fixture
def worker_pool():
    """Start ephemeral-port worker daemons on demand; close them after."""
    servers = []

    def start(n=1, **kwargs):
        batch = []
        for _ in range(n):
            server = serve_worker(port=0, **kwargs)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            servers.append(server)
            batch.append(server)
        return batch

    yield start
    for server in servers:
        server.close()


class TestLadderArithmetic:
    def test_paper_scale_bracket(self):
        # The headline configuration: R = reference 500, pilot 15, eta 3.
        ladder = FidelityLadder(R=500, r_min=15, eta=3)
        assert ladder.s_max == 3
        assert ladder.rung_fidelities(3) == [19, 56, 167, 500]
        # Every bracket ends exactly at full fidelity.
        for s in range(ladder.s_max + 1):
            assert ladder.rung_fidelities(s)[-1] == 500

    def test_exact_powers(self):
        ladder = FidelityLadder(R=64, r_min=4, eta=2)
        assert ladder.s_max == 4
        assert ladder.rung_fidelities(4) == [4, 8, 16, 32, 64]

    def test_fidelities_are_monotone_and_bounded_below(self):
        ladder = FidelityLadder(R=500, r_min=15, eta=3)
        for s in range(ladder.s_max + 1):
            fidelities = ladder.rung_fidelities(s)
            assert fidelities == sorted(fidelities)
            # The deepest bracket's opening rung respects the pilot floor.
            assert fidelities[0] >= ladder.r_min or s < ladder.s_max

    def test_survivors_and_member_schedule(self):
        ladder = FidelityLadder(R=500, r_min=15, eta=3)
        assert ladder.survivors(50) == 16
        assert ladder.survivors(2) == 1  # never drops to zero members
        assert ladder.member_schedule(50, 3) == [50, 16, 5, 1]

    def test_bracket_cycling(self):
        ladder = FidelityLadder(R=500, r_min=15, eta=3, brackets=2)
        assert [ladder.bracket_for(g) for g in range(5)] == [3, 2, 3, 2, 3]
        single = FidelityLadder(R=500, r_min=15, eta=3)
        assert [single.bracket_for(g) for g in range(3)] == [3, 3, 3]

    def test_brackets_clamped_to_existing(self):
        ladder = FidelityLadder(R=120, r_min=20, eta=3, brackets=99)
        assert ladder.s_max == 1
        assert ladder.brackets == 2  # only s_max + 1 brackets exist

    def test_degenerate_single_rung(self):
        # r_min close to R: no cheap rung fits, the ladder collapses to
        # one full-fidelity rung (plain MOHECO behaviour).
        ladder = FidelityLadder(R=100, r_min=60, eta=3)
        assert ladder.s_max == 0
        assert ladder.rung_fidelities(0) == [100]

    def test_validation(self):
        with pytest.raises(ValueError, match="must at least cover the pilot"):
            FidelityLadder(R=100, r_min=101)
        with pytest.raises(ValueError, match="eta must be >= 2"):
            FidelityLadder(R=100, r_min=10, eta=1)
        with pytest.raises(ValueError, match="must be an integer"):
            FidelityLadder(R=100, r_min=10, eta=True)
        with pytest.raises(ValueError, match="generation must be >= 0"):
            FidelityLadder(R=100, r_min=10).bracket_for(-1)
        with pytest.raises(ValueError, match="bracket must be in"):
            FidelityLadder(R=100, r_min=10).rung_fidelities(99)

    def test_from_params(self):
        ladder = FidelityLadder.from_params(500, 15, None)
        assert (ladder.R, ladder.r_min, ladder.eta) == (500, 15, 3)
        ladder = FidelityLadder.from_params(500, 15, {"eta": 2, "r_min": 30})
        assert (ladder.eta, ladder.r_min) == (2, 30)
        with pytest.raises(ValueError, match="unknown mf_params key"):
            FidelityLadder.from_params(500, 15, {"bogus": 1})

    def test_to_dict(self):
        payload = FidelityLadder(R=500, r_min=15, eta=3, brackets=2).to_dict()
        assert payload == {"R": 500, "r_min": 15, "eta": 3, "brackets": 2, "s_max": 3}
        assert set(MF_PARAM_KEYS) < set(payload)


class TestFusion:
    def test_single_segment_is_its_own_estimate(self):
        assert fuse_segments([RungSegment(n=40, passes=30)]) == pytest.approx(0.75)

    def test_empty_history_matches_unsampled_convention(self):
        assert fuse_segments([]) == 0.0

    def test_high_fidelity_segment_dominates(self):
        noisy = RungSegment(n=10, passes=2)  # 0.20 at tiny n
        solid = RungSegment(n=500, passes=450)  # 0.90 at full fidelity
        fused = fuse_segments([noisy, solid])
        assert abs(fused - solid.value) < abs(fused - noisy.value)

    def test_fused_value_is_a_convex_combination(self):
        segments = [
            RungSegment(n=19, passes=12),
            RungSegment(n=37, passes=30),
            RungSegment(n=111, passes=100),
        ]
        values = [segment.value for segment in segments]
        fused = fuse_segments(segments)
        assert min(values) <= fused <= max(values)

    def test_degenerate_segments_stay_finite(self):
        # 0 % and 100 % would have infinite precision without the floor.
        fused = fuse_segments(
            [RungSegment(n=20, passes=0), RungSegment(n=20, passes=20)]
        )
        assert 0.0 < fused < 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="n >= 1"):
            RungSegment(n=0, passes=0)
        with pytest.raises(ValueError, match="passes must be in"):
            RungSegment(n=5, passes=6)
        assert RungSegment(n=5, passes=3).to_dict() == {"n": 5, "passes": 3}


class TestRungAllocation:
    def test_clamp_gains_sums_exactly(self):
        gains = clamp_gains(np.array([7.0, 2.0, 1.0]), 25)
        assert gains.sum() == 25
        assert (gains >= 0).all()

    def test_rung_allocation_spends_exactly_the_remaining_budget(self):
        means = np.array([0.9, 0.7, 0.5])
        stds = np.array([0.1, 0.2, 0.3])
        counts = np.array([20, 20, 20])
        gains = rung_allocation(means, stds, counts, total=180)
        assert gains.sum() == 180 - 60
        assert (gains >= 0).all()

    def test_rung_allocation_overspent_rung_is_a_no_op(self):
        gains = rung_allocation(
            np.array([0.9, 0.8]), np.array([0.1, 0.1]), np.array([200, 200]), 100
        )
        assert (gains == 0).all()

    def test_rung_allocation_favours_uncertain_contenders(self):
        # The observed best and its close, noisy rival get the samples;
        # a clearly-worse design gets little.
        means = np.array([0.90, 0.88, 0.30])
        stds = np.array([0.10, 0.30, 0.10])
        counts = np.array([20, 20, 20])
        gains = rung_allocation(means, stds, counts, total=360)
        assert gains.sum() == 300
        assert gains[1] > gains[2]

    def test_rung_allocation_never_claws_back(self):
        # A member already past the rung average keeps its samples; the
        # remaining delta lands on the others and still sums exactly.
        means = np.array([0.9, 0.5])
        stds = np.array([0.1, 0.1])
        counts = np.array([500, 10])
        gains = rung_allocation(means, stds, counts, total=600)
        assert gains.sum() == 90
        assert (gains >= 0).all()


def _run_mf(**kwargs):
    params = {**CONFIG, **kwargs}
    return optimize(params.pop("problem"), method="moheco_mf", **params)


class TestMultiFidelityRun:
    def test_trace_shape_and_final_rung(self):
        result = _run_mf()
        assert result.fidelity_trace, "ladder must record every generation"
        for entry in result.fidelity_trace:
            assert set(entry) == {"generation", "bracket", "rungs", "fused", "ranking"}
            if not entry["rungs"]:
                continue  # a generation with no feasible candidates
            # The final rung always reaches full fidelity for bracket s_max.
            assert entry["rungs"][-1]["fidelity"] == CONFIG["n_max"]
            for rung in entry["rungs"]:
                assert set(rung["promoted"]) <= set(rung["members"])
                assert len(rung["gains"]) == len(rung["members"])

    def test_trace_is_part_of_result_identity(self):
        result = _run_mf()
        assert result.to_dict()["fidelity_trace"] == result.fidelity_trace
        assert "fidelity_trace" in result.identity_dict()
        round_tripped = MOHECOResult.from_dict(result.to_dict())
        assert round_tripped.fidelity_trace == result.fidelity_trace

    def test_trace_is_json_clean(self):
        result = _run_mf()
        assert json.loads(json.dumps(result.fidelity_trace)) == result.fidelity_trace

    def test_plain_moheco_has_no_trace(self):
        result = optimize(
            CONFIG["problem"],
            method="moheco",
            **{k: v for k, v in CONFIG.items() if k != "problem"},
        )
        assert result.fidelity_trace is None
        assert result.identity_dict()["fidelity_trace"] is None

    def test_promotion_follows_fused_ranking(self):
        result = _run_mf()
        for entry in result.fidelity_trace:
            for rung in entry["rungs"][:-1]:
                fused = dict(zip(rung["members"], rung["fused"]))
                ranked = sorted(rung["members"], key=lambda i: (-fused[i], i))
                assert rung["promoted"] == sorted(ranked[: len(rung["promoted"])])

    def test_mf_params_change_the_schedule(self):
        base = _run_mf()
        eta2 = _run_mf(mf_params={"eta": 2})
        assert base.fidelity_trace != eta2.fidelity_trace
        first = eta2.fidelity_trace[0]["rungs"]
        assert [rung["fidelity"] for rung in first] == [30, 60, 120]

    def test_direct_class_matches_registry_entry(self):
        from repro.core.config import MOHECOConfig
        from repro.problems import make_problem

        config = MOHECOConfig.moheco(n_max=CONFIG["n_max"]).with_overrides(
            max_generations=CONFIG["max_generations"],
            pop_size=CONFIG["pop_size"],
            n0=CONFIG["n0"],
        )
        direct = run_multi_fidelity(
            make_problem("quadratic"), config, rng=CONFIG["seed"]
        )
        registry = _run_mf()
        assert direct.identity_dict() == registry.identity_dict()
        assert METHODS.get("moheco_mf") is not None
        assert MultiFidelityMOHECO.__mro__[1].__name__ == "MOHECO"


class TestLadderDeterminism:
    """The acceptance bar: bit-identical trace across every backend."""

    def test_engines_agree(self):
        results = {
            name: _run_mf(engine=name) for name in ("legacy", "serial", "process")
        }
        baseline = results["serial"]
        for name, result in results.items():
            assert result.identity_dict() == baseline.identity_dict(), name
            assert result.fidelity_trace == baseline.fidelity_trace, name

    def test_remote_engine_agrees(self, worker_pool):
        baseline = _run_mf(engine="serial")
        (worker,) = worker_pool(1)
        for chunk_rows in (16, 64):
            result = _run_mf(
                engine="remote",
                engine_params={"workers": worker.url, "chunk_rows": chunk_rows},
            )
            assert result.identity_dict() == baseline.identity_dict()
            assert result.fidelity_trace == baseline.fidelity_trace

    def test_cold_and_warm_cache_agree(self):
        baseline = _run_mf()
        from repro.engine.cache import make_cache

        shared = make_cache("lru")
        cold = _run_mf(cache=shared)
        warm = _run_mf(cache=shared)
        shared.close()
        assert cold.identity_dict() == baseline.identity_dict()
        assert warm.identity_dict() == baseline.identity_dict()
        assert warm.fidelity_trace == baseline.fidelity_trace
        # The warm run replayed rows; same ladder decisions regardless.
        assert warm.cache_stats["hit_rows"] > 0

    def test_sample_keyed_cache_default_from_driver(self):
        # The moheco_mf runner asks the driver for sample-level keying so
        # rung-to-rung re-coverage replays row by row.
        result = _run_mf(cache="lru")
        assert result.identity_dict() == _run_mf().identity_dict()
        assert result.cache_stats is not None


class TestSpecValidation:
    def test_tiny_budget_fails_as_spec_error(self):
        spec = RunSpec(
            problem="quadratic",
            method="moheco",
            overrides={"sim_ave": 5, "n0": 15},
        )
        with pytest.raises(SpecError) as excinfo:
            validate_run_spec(spec)
        assert excinfo.value.field == "overrides"
        assert "must at least cover the pilot" in excinfo.value.reason

    def test_impossible_ladder_fails_as_spec_error(self):
        spec = RunSpec(
            problem="quadratic",
            method="moheco_mf",
            overrides={"mf_params": {"r_min": 9999}},
        )
        with pytest.raises(SpecError) as excinfo:
            validate_run_spec(spec)
        assert excinfo.value.field == "overrides"

    def test_unknown_mf_key_fails_as_spec_error(self):
        spec = RunSpec(
            problem="quadratic",
            method="moheco_mf",
            overrides={"mf_params": {"bogus": 1}},
        )
        with pytest.raises(SpecError, match="unknown mf_params key"):
            validate_run_spec(spec)

    def test_non_dict_mf_params_fails_as_spec_error(self):
        spec = RunSpec(
            problem="quadratic",
            method="moheco_mf",
            overrides={"mf_params": [3]},
        )
        with pytest.raises(SpecError, match="must be a dict"):
            validate_run_spec(spec)

    def test_valid_specs_pass(self):
        validate_run_spec(
            RunSpec(
                problem="quadratic",
                method="moheco_mf",
                overrides={"mf_params": {"eta": 2, "brackets": 2}},
            )
        )
        validate_run_spec(RunSpec(problem="quadratic", method="moheco"))

    def test_sweep_spec_reports_the_offending_method(self):
        spec = SweepSpec.from_dict(
            {
                "methods": [
                    {"method": "moheco"},
                    {"method": "moheco_mf", "overrides": {"mf_params": {"eta": 0}}},
                ],
                "problems": [{"problem": "quadratic"}],
                "runs": 1,
            }
        )
        with pytest.raises(SpecError) as excinfo:
            validate_sweep_spec(spec)
        assert excinfo.value.field == "methods[1].overrides"

    def test_run_rejects_bad_overrides_too(self):
        # The same errors surface imperatively, without the spec layer.
        with pytest.raises(ValueError, match="must at least cover the pilot"):
            _run_mf(sim_ave=5, n0=15)
        with pytest.raises(ValueError, match="mf_params must be a dict"):
            _run_mf(mf_params=7)


class TestWorkerSideCache:
    def test_replayed_round_hits_worker_cache(self, worker_pool):
        (worker,) = worker_pool(1)
        params = {"workers": worker.url, "chunk_rows": 16}
        first = _run_mf(engine="remote", engine_params=params)
        second = _run_mf(engine="remote", engine_params=params)
        assert second.identity_dict() == first.identity_dict()
        assert first.engine_decision["worker_cache_rows"] == 0
        # The replay is row-for-row the same work: everything hits.
        decision = second.engine_decision
        assert decision["worker_cache_rows"] == decision["rows"]
        per_worker = decision["per_worker"][worker.url]
        assert per_worker["cache_hit_rows"] == decision["worker_cache_rows"]

    def test_health_reports_cache_stats(self, worker_pool):
        (worker,) = worker_pool(1)
        _run_mf(engine="remote", engine_params={"workers": worker.url})
        with urllib.request.urlopen(f"{worker.url}/v1/health", timeout=10) as r:
            health = json.loads(r.read())
        assert health["cache_hit_rows"] == 0
        assert health["cache"]["misses"] > 0
        _run_mf(engine="remote", engine_params={"workers": worker.url})
        with urllib.request.urlopen(f"{worker.url}/v1/health", timeout=10) as r:
            health = json.loads(r.read())
        assert health["cache_hit_rows"] > 0
        assert health["cache"]["hit_rows"] == health["cache_hit_rows"]

    def test_cacheless_worker_still_serves(self, worker_pool):
        (worker,) = worker_pool(1, cache=False)
        baseline = _run_mf(engine="serial")
        for _ in range(2):
            result = _run_mf(
                engine="remote", engine_params={"workers": worker.url}
            )
            assert result.identity_dict() == baseline.identity_dict()
            assert result.engine_decision["worker_cache_rows"] == 0
        with urllib.request.urlopen(f"{worker.url}/v1/health", timeout=10) as r:
            health = json.loads(r.read())
        assert health["cache"] is None and health["cache_hit_rows"] == 0

    def test_engine_tolerates_workers_without_hit_counts(self, monkeypatch):
        # Daemons predating the worker-side cache omit cache_hit_rows from
        # the evaluate body; the engine must read that as zero hits.
        from repro.engine.wire import encode_array
        from repro.problems import make_problem
        from repro.yieldsim.estimator import PendingRefinement

        engine = RemoteEngine(workers="127.0.0.1:1")
        problem = make_problem("quadratic")
        samples = np.zeros((3, problem.process_dimension))
        block = PendingRefinement(
            type("Shell", (), {"x": np.zeros(problem.design_dimension)})(),
            samples,
            "stage1",
        )
        from repro.engine.wire import ChunkRequest, encode_problem

        token = encode_problem(problem)["token"]
        chunk = ChunkRequest.from_pending(token, [block])
        rows = np.arange(3.0).reshape(3, 1)
        monkeypatch.setattr(engine, "_ensure_installed", lambda *a, **k: None)
        monkeypatch.setattr(
            engine,
            "_post_json",
            lambda *a, **k: {"ok": True, "rows": encode_array(rows)},
        )
        returned, hit_rows = engine._evaluate_on("http://x", chunk, {})
        assert hit_rows == 0
        assert np.array_equal(returned, rows)
