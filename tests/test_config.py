"""MOHECO configuration: defaults, validation, method variants."""

import pytest

from repro.core import MOHECOConfig


class TestDefaults:
    def test_paper_values(self):
        config = MOHECOConfig()
        assert config.pop_size == 50
        assert config.de_f == 0.8
        assert config.de_cr == 0.8
        assert config.n0 == 15
        assert config.sim_ave == 35
        assert config.stage2_threshold == 0.97
        assert config.ls_patience == 5
        assert config.stop_patience == 20
        assert config.sampler == "lhs"
        assert config.use_acceptance_sampling


class TestValidation:
    def test_pop_size(self):
        with pytest.raises(ValueError):
            MOHECOConfig(pop_size=3)

    def test_n0_vs_sim_ave(self):
        with pytest.raises(ValueError):
            MOHECOConfig(n0=50, sim_ave=35)
        with pytest.raises(ValueError):
            MOHECOConfig(n0=0)

    def test_n_max_vs_sim_ave(self):
        with pytest.raises(ValueError):
            MOHECOConfig(sim_ave=600, n_max=500, n0=15)

    def test_threshold_range(self):
        with pytest.raises(ValueError):
            MOHECOConfig(stage2_threshold=0.0)
        with pytest.raises(ValueError):
            MOHECOConfig(stage2_threshold=1.5)


class TestVariants:
    def test_moheco(self):
        config = MOHECOConfig.moheco(n_max=700)
        assert config.use_ocba and config.use_memetic
        assert config.n_max == 700

    def test_oo_only(self):
        config = MOHECOConfig.oo_only()
        assert config.use_ocba and not config.use_memetic

    def test_fixed_budget(self):
        config = MOHECOConfig.fixed_budget(n_fixed=300)
        assert not config.use_ocba and not config.use_memetic
        assert config.n_max == 300

    def test_with_overrides_copies(self):
        base = MOHECOConfig()
        tweaked = base.with_overrides(pop_size=10)
        assert tweaked.pop_size == 10
        assert base.pop_size == 50
