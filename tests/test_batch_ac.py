"""Batched AC path: stacked solves vs per-sample/per-frequency loops.

The vectorized circuit core (PR 6) replaced the per-frequency Python loop
in :class:`~repro.circuit.ac.ACAnalysis` and added the per-sample stacked
:class:`~repro.circuit.ac.BatchACAnalysis`.  These tests pin the batched
paths to slow explicit loops on real amplifier netlists — same topology,
same operating points, solved one `(dim, dim)` system at a time — and
require tolerance-tight agreement.
"""

import numpy as np
import pytest

from repro.circuit.ac import (
    ACAnalysis,
    BatchACAnalysis,
    TransferFunction,
    default_frequency_grid,
)
from repro.circuit.mna import MNAAssembler, solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.tech import C035Technology
from repro.circuit.topologies import NetlistTwoStageOTA
from repro.circuit.topologies.base import DesignSpace
from repro.units import ratio_to_db


@pytest.fixture(scope="module")
def tech():
    return C035Technology()


def _loop_response(g, c, b, frequencies, out_idx):
    """The pre-vectorization reference: one LU per frequency point."""
    response = np.empty(len(frequencies), dtype=complex)
    for k, f in enumerate(frequencies):
        matrix = g + 2j * np.pi * f * c
        response[k] = np.linalg.solve(matrix, b.astype(complex))[out_idx]
    return response


def _build_common_source(tech, vg):
    c = Circuit("cs_amp")
    c.add_voltage_source("VDD", "vdd", "0", 3.3)
    c.add_voltage_source("VG", "g", "0", vg, ac=1.0)
    c.add_resistor("RL", "vdd", "out", 20e3)
    c.add_mosfet("M1", "out", "g", "0", "0", tech.nmos, 40e-6, 1e-6)
    c.add_capacitor("CL", "out", "0", 1e-12)
    return c


def _build_cascode_amp(tech, vg):
    c = Circuit("cascode_amp")
    c.add_voltage_source("VDD", "vdd", "0", 3.3)
    c.add_voltage_source("VG", "g", "0", vg, ac=1.0)
    c.add_voltage_source("VCAS", "gc", "0", 1.1)
    c.add_resistor("RL", "vdd", "out", 60e3)
    c.add_mosfet("M2", "out", "gc", "mid", "0", tech.nmos, 40e-6, 0.7e-6)
    c.add_mosfet("M1", "mid", "g", "0", "0", tech.nmos, 40e-6, 0.7e-6)
    c.add_capacitor("CL", "out", "0", 0.5e-12)
    return c


AMPLIFIERS = {
    "common_source": (_build_common_source, (0.60, 0.62, 0.64, 0.66)),
    "cascode": (_build_cascode_amp, (0.60, 0.63, 0.66)),
}


class TestStackedTransferEquivalence:
    """`ACAnalysis.transfer` (stacked grid solve) vs the frequency loop."""

    @pytest.mark.parametrize("name", sorted(AMPLIFIERS))
    def test_single_system_matches_frequency_loop(self, tech, name):
        build, biases = AMPLIFIERS[name]
        circuit = build(tech, biases[0])
        dc = solve_dc(circuit)
        analysis = ACAnalysis(circuit, dc)
        grid = np.logspace(2, 10, 97)
        tf = analysis.transfer("out", frequencies=grid)

        assembler = MNAAssembler(circuit)
        g, c, b = assembler.ac_system(dc.op)
        reference = _loop_response(g, c, b, grid, assembler.nodemap["out"])
        np.testing.assert_allclose(tf.response, reference, rtol=1e-11, atol=0.0)


class TestBatchACAnalysisEquivalence:
    """`BatchACAnalysis` (per-sample tensor solve) vs per-sample loops."""

    @pytest.mark.parametrize("name", sorted(AMPLIFIERS))
    def test_batch_matches_per_sample_analyses(self, tech, name):
        build, biases = AMPLIFIERS[name]
        # One operating point per bias: same topology, different stamps —
        # exactly the Monte-Carlo shape (samples share the node map).
        circuits = [build(tech, vg) for vg in biases]
        solutions = [solve_dc(c) for c in circuits]
        grid = np.logspace(2, 10, 73)

        batch = BatchACAnalysis.from_circuit(
            circuits[0], [dc.op for dc in solutions]
        )
        assert batch.n_samples == len(biases)
        tf_batch = batch.transfer_batch("out", frequencies=grid)
        assert tf_batch.response.shape == (len(biases), len(grid))

        for s, (circuit, dc) in enumerate(zip(circuits, solutions)):
            tf_one = ACAnalysis(circuit, dc).transfer("out", frequencies=grid)
            np.testing.assert_allclose(
                tf_batch.response[s], tf_one.response, rtol=1e-11, atol=0.0
            )
            # Derived metrics must agree through the vectorized reductions.
            assert tf_batch.dc_gain()[s] == pytest.approx(
                tf_one.dc_gain(), rel=1e-9
            )
            fu_batch = tf_batch.unity_gain_frequency()[s]
            fu_one = tf_one.unity_gain_frequency()
            if np.isnan(fu_one):
                assert np.isnan(fu_batch)
            else:
                assert fu_batch == pytest.approx(fu_one, rel=1e-9)

    def test_solve_at_matches_loop(self, tech):
        build, biases = AMPLIFIERS["common_source"]
        circuits = [build(tech, vg) for vg in biases]
        solutions = [solve_dc(c) for c in circuits]
        batch = BatchACAnalysis.from_circuit(
            circuits[0], [dc.op for dc in solutions]
        )
        stacked = batch.solve_at(1e6)
        for s, (circuit, dc) in enumerate(zip(circuits, solutions)):
            one = ACAnalysis(circuit, dc).solve_at(1e6)
            np.testing.assert_allclose(stacked[s], one, rtol=1e-11, atol=0.0)


class TestNetlistOTABatchedEvaluation:
    """The netlist-backed topology vs a scalar per-sample rebuild."""

    X = np.array([80e-6, 200e-6, 0.35, 0.15, 2.0e-12])

    def _reference_rows(self, topo, x, samples):
        """Scalar path: rebuild each sample's netlist, solve it alone."""
        values = topo.small_signal_values(x, samples)
        rows = []
        for s in range(len(samples)):
            c = Circuit("ref")
            c.add_voltage_source("Vin", "in", "0", 0.0, ac=1.0)
            c.add_vccs("G1", "x1", "0", "in", "0", values["gm1"][s])
            c.add_resistor("R1", "x1", "0", 1.0 / values["go1"][s])
            c.add_capacitor("C1", "x1", "0", 0.15e-12)
            c.add_capacitor("CC", "x1", "out", float(x[4]))
            c.add_vccs("G2", "out", "0", "x1", "0", values["gm2"][s])
            c.add_resistor("R2", "out", "0", 1.0 / values["go2"][s])
            c.add_capacitor("CL", "out", "0", 3.0e-12)
            dc = solve_dc(c)
            tf = ACAnalysis(c, dc).transfer(
                "out", frequencies=topo.frequency_grid
            )
            rows.append(
                [
                    ratio_to_db(max(tf.dc_gain(), 1e-12)),
                    np.nan_to_num(tf.unity_gain_frequency(), nan=0.0),
                    np.nan_to_num(tf.phase_margin(), nan=0.0),
                    values["power"][s],
                ]
            )
        return np.asarray(rows)

    def test_evaluate_matches_scalar_rebuild(self):
        topo = NetlistTwoStageOTA(C035Technology())
        samples = topo.variation.sample(12, np.random.default_rng(42))
        batched = topo.evaluate(self.X, samples)
        reference = self._reference_rows(topo, self.X, samples)
        assert np.all(np.isfinite(batched))
        np.testing.assert_allclose(batched, reference, rtol=1e-8, atol=1e-12)

    def test_rows_independent_of_block_partition(self):
        # The engine contract: any partition of the sample rows must
        # reproduce the full-batch rows bit-for-bit.
        topo = NetlistTwoStageOTA(C035Technology())
        samples = topo.variation.sample(33, np.random.default_rng(9))
        full = topo.evaluate(self.X, samples)
        parts = np.vstack(
            [
                topo.evaluate(self.X, samples[:10]),
                topo.evaluate(self.X, samples[10:11]),
                topo.evaluate(self.X, samples[11:]),
            ]
        )
        np.testing.assert_array_equal(full, parts)


class TestDefaultFrequencyGrid:
    def test_cached_and_read_only(self):
        grid = default_frequency_grid()
        assert grid is default_frequency_grid()  # no per-call allocation
        assert not grid.flags.writeable
        with pytest.raises(ValueError):
            grid[0] = 2.0

    def test_transfer_defaults_to_shared_grid(self, tech):
        circuit = _build_common_source(tech, 0.62)
        tf = ACAnalysis(circuit, solve_dc(circuit)).transfer("out")
        assert tf.frequencies is default_frequency_grid()


class TestPhaseAtGuard:
    def test_rejects_nonpositive_grid_start(self):
        freqs = np.array([0.0, 1.0, 10.0])
        tf = TransferFunction(freqs, np.ones(3, dtype=complex))
        with pytest.raises(ValueError, match="positive"):
            tf.phase_at(1.0)

    def test_rejects_nonpositive_query(self):
        freqs = np.logspace(0, 3, 10)
        tf = TransferFunction(freqs, np.ones(10, dtype=complex))
        with pytest.raises(ValueError, match="positive"):
            tf.phase_at(0.0)
        with pytest.raises(ValueError, match="positive"):
            tf.phase_at(-5.0)


class TestDesignSpaceContains:
    def test_accepts_row_matrices_like_clip(self):
        space = DesignSpace(["a", "b"], [0.0, 0.0], [1.0, 2.0])
        x = np.array([[0.5, 1.0], [1.5, 1.0], [1.0, 2.0], [0.0, -0.1]])
        inside = space.contains(x)
        np.testing.assert_array_equal(inside, [True, False, True, False])
        # Vector input keeps returning a plain bool.
        assert space.contains(np.array([0.5, 0.5])) is True
        assert space.contains(np.array([2.0, 0.5])) is False

    def test_rejects_wrong_width(self):
        space = DesignSpace(["a", "b"], [0.0, 0.0], [1.0, 1.0])
        with pytest.raises(ValueError, match="expected shape"):
            space.contains(np.zeros((3, 3)))
