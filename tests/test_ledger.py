"""Simulation-budget accounting."""

import pytest

from repro.ledger import REFERENCE_CATEGORY, SimulationLedger


class TestCharging:
    def test_total_accumulates(self):
        ledger = SimulationLedger()
        ledger.charge(100, "stage1")
        ledger.charge(50, "stage1")
        ledger.charge(500, "stage2")
        assert ledger.total == 650
        assert ledger.count("stage1") == 150

    def test_zero_charge_is_noop(self):
        ledger = SimulationLedger()
        ledger.charge(0, "stage1")
        assert ledger.total == 0
        assert ledger.by_category() == {}

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            SimulationLedger().charge(-1)

    def test_reference_category_excluded_from_total(self):
        ledger = SimulationLedger()
        ledger.charge(100, "stage1")
        ledger.charge(50_000, REFERENCE_CATEGORY)
        assert ledger.total == 100
        assert ledger.grand_total == 50_100


class TestScreening:
    def test_screened_not_counted_as_simulations(self):
        ledger = SimulationLedger()
        ledger.record_screened(30)
        assert ledger.total == 0
        assert ledger.screened_out == 30

    def test_negative_screened_rejected(self):
        with pytest.raises(ValueError):
            SimulationLedger().record_screened(-5)


class TestSnapshots:
    def test_delta_between_snapshots(self):
        ledger = SimulationLedger()
        ledger.charge(10)
        before = ledger.snapshot()
        ledger.charge(25)
        after = ledger.snapshot()
        assert after.delta(before) == 25

    def test_snapshot_is_immutable_copy(self):
        ledger = SimulationLedger()
        ledger.charge(10, "a")
        snap = ledger.snapshot()
        ledger.charge(10, "a")
        assert snap.by_category["a"] == 10

    def test_reset(self):
        ledger = SimulationLedger()
        ledger.charge(10)
        ledger.record_screened(5)
        ledger.reset()
        assert ledger.total == 0
        assert ledger.screened_out == 0
