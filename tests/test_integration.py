"""End-to-end integration tests across module boundaries.

These exercise the circuit problems (not just synthetics) with small
budgets, plus the experiment studies, so every layer of the stack is
covered: technology -> topology -> problem -> sampling/AS -> OCBA ->
DE/NM -> MOHECO -> experiment harness.
"""

import numpy as np
import pytest

from repro.baselines import run_moheco, run_oo_only
from repro.core import MOHECO, MOHECOConfig
from repro.ledger import SimulationLedger
from repro.problems import (
    make_folded_cascode_problem,
    make_sphere_problem,
    make_telescopic_problem,
)
from repro.yieldsim import reference_yield


@pytest.fixture(scope="module")
def fc_problem():
    return make_folded_cascode_problem()


@pytest.fixture(scope="module")
def ts_problem():
    return make_telescopic_problem()


@pytest.mark.slow
class TestCircuitProblemSmoke:
    """Short MOHECO runs on the real circuit problems."""

    def test_folded_cascode_progress(self, fc_problem):
        ledger = SimulationLedger()
        result = run_moheco(
            fc_problem, rng=5, ledger=ledger,
            pop_size=20, max_generations=25, stop_patience=25,
        )
        # Within 25 generations the engine must at least be reducing
        # violation; feasibility is usually found but not guaranteed here.
        history = result.history
        assert history[-1].best_violation <= history[0].best_violation
        assert result.n_simulations == ledger.total
        assert result.n_simulations > 0

    def test_telescopic_progress(self, ts_problem):
        result = run_moheco(
            ts_problem, rng=7, pop_size=20, max_generations=25,
            stop_patience=25,
        )
        history = result.history
        assert history[-1].best_violation <= history[0].best_violation

    def test_estimates_charged_by_category(self, fc_problem):
        ledger = SimulationLedger()
        run_moheco(fc_problem, rng=9, ledger=ledger,
                   pop_size=16, max_generations=15)
        categories = ledger.by_category()
        assert categories.get("feasibility", 0) >= 16  # initial population


class TestReportedYieldAccuracy:
    """The Table-1 protocol on the synthetic problem: reported yield of the
    returned design must track a large reference MC within MC error."""

    def test_deviation_small(self):
        problem = make_sphere_problem(sigma=0.2)
        result = run_moheco(problem, rng=11, pop_size=10, max_generations=25)
        reference = reference_yield(
            problem, result.best_x, n=20_000, rng=np.random.default_rng(0)
        )
        assert abs(result.best_yield - reference.value) < 0.05


class TestMethodEquivalences:
    def test_oo_only_is_moheco_without_memetic(self):
        problem = make_sphere_problem(sigma=0.2)
        a = run_oo_only(problem, rng=13, pop_size=8, max_generations=10)
        config = MOHECOConfig.oo_only().with_overrides(
            pop_size=8, max_generations=10
        )
        b = MOHECO(problem, config, rng=13).run()
        np.testing.assert_array_equal(a.best_x, b.best_x)
        assert a.n_simulations == b.n_simulations

    def test_acceptance_sampling_reduces_cost_not_accuracy(self):
        problem = make_sphere_problem(sigma=0.2)
        with_as = run_moheco(problem, rng=15, pop_size=8, max_generations=12,
                             use_acceptance_sampling=True)
        without = run_moheco(problem, rng=15, pop_size=8, max_generations=12,
                             use_acceptance_sampling=False)
        assert with_as.ledger.screened_out > 0
        assert without.ledger.screened_out == 0
        # Both runs land on high-yield designs.
        for result in (with_as, without):
            truth = problem.evaluator.analytic_yield(result.best_x, problem.specs)
            assert truth > 0.85


class TestSamplerChoice:
    @pytest.mark.parametrize("sampler", ["pmc", "lhs", "sobol"])
    def test_all_samplers_work_in_the_loop(self, sampler):
        problem = make_sphere_problem(sigma=0.25)
        result = run_moheco(problem, rng=17, pop_size=8, max_generations=8,
                            sampler=sampler)
        assert result.best_yield >= 0.0
