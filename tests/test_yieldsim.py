"""Yield estimation: estimates, incremental refinement, reference MC."""

import numpy as np
import pytest

from repro.ledger import SimulationLedger
from repro.problems import make_sphere_problem
from repro.rng import make_rng
from repro.sampling import LatinHypercubeSampler
from repro.sampling.acceptance import LinearMarginScreener
from repro.yieldsim import CandidateYieldState, YieldEstimate, reference_yield


@pytest.fixture
def problem():
    return make_sphere_problem(sigma=0.25)


def _state(problem, x, ledger=None, screener=False, seed=0):
    sampler = LatinHypercubeSampler(problem.variation)
    scr = LinearMarginScreener(problem.specs) if screener else None
    return CandidateYieldState(
        problem, x, sampler, make_rng(seed), ledger, "stage1", scr
    )


class TestYieldEstimate:
    def test_value(self):
        assert YieldEstimate(passes=30, n=100).value == pytest.approx(0.30)
        assert YieldEstimate(passes=0, n=0).value == 0.0

    def test_variance_floored(self):
        assert YieldEstimate(passes=100, n=100).variance >= 1e-4
        assert YieldEstimate(passes=50, n=100).variance == pytest.approx(0.25)

    def test_standard_error_shrinks_with_n(self):
        small = YieldEstimate(passes=5, n=10)
        large = YieldEstimate(passes=500, n=1000)
        assert large.standard_error < small.standard_error

    def test_wilson_interval_contains_estimate(self):
        est = YieldEstimate(passes=80, n=100)
        lo, hi = est.wilson_interval()
        assert lo < est.value < hi
        assert 0.0 <= lo and hi <= 1.0

    def test_wilson_interval_degenerate(self):
        assert YieldEstimate(passes=0, n=0).wilson_interval() == (0.0, 1.0)


class TestCandidateYieldState:
    def test_refine_accumulates(self, problem):
        state = _state(problem, np.full(4, 0.6))
        state.refine(50)
        assert state.n == 50
        state.refine(25)
        assert state.n == 75
        assert state.n_simulated == 75

    def test_refine_to_idempotent(self, problem):
        state = _state(problem, np.full(4, 0.6))
        state.refine_to(100)
        state.refine_to(50)  # already above target
        assert state.n == 100

    def test_negative_refine_rejected(self, problem):
        with pytest.raises(ValueError):
            _state(problem, np.full(4, 0.6)).refine(-1)

    def test_zero_refine_noop(self, problem):
        state = _state(problem, np.full(4, 0.6))
        est = state.refine(0)
        assert est.n == 0

    def test_estimate_converges_to_truth(self, problem):
        x = np.full(4, 0.55)
        truth = problem.evaluator.analytic_yield(x, problem.specs)
        state = _state(problem, x, seed=3)
        state.refine(4000)
        assert state.value == pytest.approx(truth, abs=0.03)

    def test_ledger_charged_per_simulation(self, problem):
        ledger = SimulationLedger()
        state = _state(problem, np.full(4, 0.6), ledger=ledger)
        state.refine(120)
        assert ledger.total == 120
        assert ledger.count("stage1") == 120

    def test_category_override(self, problem):
        ledger = SimulationLedger()
        state = _state(problem, np.full(4, 0.6), ledger=ledger)
        state.refine(10, category="stage2")
        assert ledger.count("stage2") == 10

    def test_screener_reduces_charged_simulations(self, problem):
        ledger = SimulationLedger()
        state = _state(problem, np.full(4, 0.6), ledger=ledger, screener=True, seed=5)
        state.refine(100)   # trains the screener
        state.refine(400)
        assert state.n == 500
        assert state.n_simulated < 500
        assert ledger.screened_out == 500 - state.n_simulated
        assert ledger.total == state.n_simulated

    def test_screener_estimate_still_accurate(self, problem):
        x = np.full(4, 0.55)
        truth = problem.evaluator.analytic_yield(x, problem.specs)
        state = _state(problem, x, screener=True, seed=6)
        state.refine(3000)
        assert state.value == pytest.approx(truth, abs=0.04)


class TestReferenceYield:
    def test_batched_reference_counts_all_samples(self, problem):
        ledger = SimulationLedger()
        est = reference_yield(
            problem, np.full(4, 0.6), n=2500, rng=make_rng(0),
            ledger=ledger, batch_size=1000,
        )
        assert est.n == 2500
        # Reference sims are excluded from the budget total.
        assert ledger.total == 0
        assert ledger.grand_total == 2500

    def test_matches_analytic(self, problem):
        x = np.full(4, 0.55)
        truth = problem.evaluator.analytic_yield(x, problem.specs)
        est = reference_yield(problem, x, n=30_000, rng=make_rng(1))
        assert est.value == pytest.approx(truth, abs=0.01)
