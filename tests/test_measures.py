"""Analytic amplifier measurement helpers."""

import numpy as np
import pytest

from repro.circuit.measures import (
    phase_margin_deg,
    pole_from_rc,
    unity_gain_frequency,
)


class TestUnityGain:
    def test_product(self):
        assert unity_gain_frequency(1000.0, 1e4) == pytest.approx(1e7)

    def test_nonpositive_gain_gives_zero(self):
        assert unity_gain_frequency(-5.0, 1e4) == 0.0

    def test_vectorised(self):
        out = unity_gain_frequency(np.array([10.0, 100.0]), 1e3)
        np.testing.assert_allclose(out, [1e4, 1e5])


class TestPhaseMargin:
    def test_single_pole_is_90(self):
        assert phase_margin_deg(1e6) == pytest.approx(90.0)

    def test_second_pole_at_fu_costs_45(self):
        assert phase_margin_deg(1e6, nondominant_poles_hz=(1e6,)) == pytest.approx(45.0)

    def test_far_pole_costs_little(self):
        pm = phase_margin_deg(1e6, nondominant_poles_hz=(100e6,))
        assert pm == pytest.approx(90.0 - np.degrees(np.arctan(0.01)), abs=1e-6)

    def test_rhp_zero_degrades_lhp_zero_helps(self):
        base = phase_margin_deg(1e6, nondominant_poles_hz=(3e6,))
        with_rhp = phase_margin_deg(1e6, nondominant_poles_hz=(3e6,),
                                    rhp_zeros_hz=(5e6,))
        with_lhp = phase_margin_deg(1e6, nondominant_poles_hz=(3e6,),
                                    lhp_zeros_hz=(5e6,))
        assert with_rhp < base < with_lhp

    def test_nonpositive_pole_counts_full_90(self):
        assert phase_margin_deg(1e6, nondominant_poles_hz=(0.0,)) == pytest.approx(0.0)

    def test_vectorised_over_samples(self):
        fu = np.array([1e6, 2e6])
        p2 = np.array([4e6, 4e6])
        pm = phase_margin_deg(fu, nondominant_poles_hz=(p2,))
        assert pm.shape == (2,)
        assert pm[0] > pm[1]  # lower fu, more margin


class TestPoleFromRC:
    def test_value(self):
        assert pole_from_rc(1e3, 1e-9) == pytest.approx(1.0 / (2 * np.pi * 1e-6))

    def test_degenerate_is_inf(self):
        assert pole_from_rc(0.0, 1e-9) == np.inf
        assert np.isinf(pole_from_rc(np.array([0.0]), np.array([1e-9]))[0])
