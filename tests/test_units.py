"""Unit-conversion helpers."""

import numpy as np
import pytest

from repro.units import MEGA, PICO, db_to_ratio, deg, rad, ratio_to_db


class TestDbConversions:
    def test_known_values(self):
        assert ratio_to_db(10.0) == pytest.approx(20.0)
        assert ratio_to_db(100.0) == pytest.approx(40.0)
        assert ratio_to_db(1.0) == pytest.approx(0.0)

    def test_roundtrip(self):
        for value in (0.1, 1.0, 3162.0, 1e6):
            assert db_to_ratio(ratio_to_db(value)) == pytest.approx(value, rel=1e-12)

    def test_nonpositive_ratio_maps_to_minus_inf(self):
        assert ratio_to_db(0.0) == -np.inf
        assert ratio_to_db(-5.0) == -np.inf

    def test_array_input_preserves_shape(self):
        values = np.array([1.0, 10.0, 100.0])
        out = ratio_to_db(values)
        assert out.shape == values.shape
        assert out[1] == pytest.approx(20.0)

    def test_scalar_input_returns_python_float(self):
        assert isinstance(ratio_to_db(10.0), float)
        assert isinstance(db_to_ratio(20.0), float)


class TestAngles:
    def test_deg_rad_roundtrip(self):
        assert deg(rad(60.0)) == pytest.approx(60.0)
        assert rad(180.0) == pytest.approx(np.pi)

    def test_array(self):
        out = deg(np.array([0.0, np.pi / 2]))
        np.testing.assert_allclose(out, [0.0, 90.0])


class TestPrefixes:
    def test_values(self):
        assert MEGA == 1e6
        assert PICO == 1e-12
