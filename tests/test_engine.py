"""The execution-engine layer: fused rounds, backends, cross-backend equivalence.

The load-bearing guarantee: every backend — the legacy per-candidate loop,
the fused serial dispatch, the sharded process pool — produces *bit-identical*
seeded results, because sample generation stays in per-candidate RNG streams
and only the execution of the simulations moves.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunSpec, optimize
from repro.engine import (
    ENGINES,
    EvaluationEngine,
    LegacyEngine,
    ProcessPoolEngine,
    SerialEngine,
    make_engine,
)
from repro.engine.process import _chunk_blocks
from repro.core.callbacks import Callback
from repro.ledger import SimulationLedger
from repro.ocba import ocba_sequential
from repro.problems import make_quadratic_problem, make_sphere_problem
from repro.sampling import LinearMarginScreener, make_sampler
from repro.yieldsim import CandidateYieldState

TINY = {"pop_size": 8, "max_generations": 4}


def _states(problem, n=6, seed=0, sampler="lhs", screener=False, ledger=None):
    """Candidate states with per-candidate derived RNG streams."""
    sampler = make_sampler(sampler, problem.variation)
    ledger = ledger if ledger is not None else SimulationLedger()
    rng = np.random.default_rng(seed)
    xs = problem.space.sample(n, rng)
    states = []
    for i, x in enumerate(xs):
        screen = (
            LinearMarginScreener(problem.specs, min_train=20) if screener else None
        )
        states.append(
            CandidateYieldState(
                problem,
                x,
                sampler,
                np.random.default_rng(seed * 1000 + i),
                ledger,
                "stage1",
                screener=screen,
            )
        )
    return states, ledger


def _state_fingerprint(states, ledger):
    return (
        [(s.n, s.n_simulated, s._passes) for s in states],
        ledger.to_dict(),
    )


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert {"legacy", "serial", "process"} <= set(ENGINES.names())

    def test_make_engine_default_is_serial(self):
        assert isinstance(make_engine(None), SerialEngine)

    def test_make_engine_by_name_with_params(self):
        engine = make_engine("process", workers=3)
        assert isinstance(engine, ProcessPoolEngine)
        assert engine.workers == 3
        engine.close()

    def test_make_engine_passes_instances_through(self):
        engine = LegacyEngine()
        assert make_engine(engine) is engine

    def test_make_engine_rejects_params_for_instances(self):
        with pytest.raises(TypeError, match="resolved by name"):
            make_engine(SerialEngine(), workers=2)

    def test_unknown_engine_lists_registered(self):
        with pytest.raises(ValueError, match="legacy.*process.*serial"):
            make_engine("distributed")

    def test_engines_are_context_managers(self):
        with ProcessPoolEngine(workers=1) as engine:
            assert engine.workers == 1

    def test_process_pool_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            ProcessPoolEngine(workers=0)


class TestFusedRounds:
    """A fused round must equal the sum of per-candidate refinements."""

    @pytest.mark.parametrize("screener", [False, True])
    def test_serial_round_equals_per_candidate_refines(self, screener):
        problem = make_quadratic_problem()
        gains = [5, 0, 17, 3, 50, 1]
        reference, ref_ledger = _states(problem, screener=screener)
        for state, gain in zip(reference, gains):
            state.refine(gain)
        fused, fused_ledger = _states(problem, screener=screener)
        SerialEngine().refine_round(problem, fused, gains)
        assert _state_fingerprint(fused, fused_ledger) == _state_fingerprint(
            reference, ref_ledger
        )
        assert [s.value for s in fused] == [s.value for s in reference]

    @given(
        gains=st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=8),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_fused_equals_sum_of_refinements(self, gains, seed):
        problem = make_sphere_problem()
        reference, ref_ledger = _states(problem, n=len(gains), seed=seed)
        for state, gain in zip(reference, gains):
            state.refine(gain)
        fused, fused_ledger = _states(problem, n=len(gains), seed=seed)
        SerialEngine().refine_round(problem, fused, gains)
        assert _state_fingerprint(fused, fused_ledger) == _state_fingerprint(
            reference, ref_ledger
        )

    def test_round_category_override(self):
        problem = make_sphere_problem()
        states, ledger = _states(problem, n=3)
        SerialEngine().refine_round(problem, states, [4, 4, 4], category="stage2")
        assert ledger.count("stage2") == 12
        assert ledger.count("stage1") == 0

    def test_empty_round_is_a_no_op(self):
        problem = make_sphere_problem()
        states, ledger = _states(problem, n=3)
        for engine in (LegacyEngine(), SerialEngine()):
            engine.refine_round(problem, states, [0, 0, 0])
        assert ledger.total == 0
        assert all(state.n == 0 for state in states)


class TestProcessPool:
    def test_chunking_respects_block_boundaries_and_order(self):
        class Block:
            def __init__(self, n):
                self.n_samples = n

        blocks = [Block(n) for n in (5, 1, 9, 3, 2, 7)]
        chunks = _chunk_blocks(blocks, 3)
        assert 1 <= len(chunks) <= 3
        flattened = [block for chunk in chunks for block in chunk]
        assert flattened == blocks  # order preserved, nothing lost

    def test_pool_round_matches_serial_round(self):
        problem = make_quadratic_problem()
        gains = [12, 25, 7, 40, 3, 18]
        serial, serial_ledger = _states(problem)
        SerialEngine().refine_round(problem, serial, gains)
        with ProcessPoolEngine(workers=2) as engine:
            pooled, pooled_ledger = _states(problem)
            engine.refine_round(problem, pooled, gains)
        assert _state_fingerprint(pooled, pooled_ledger) == _state_fingerprint(
            serial, serial_ledger
        )

    def test_workers_one_never_spawns_a_pool(self):
        problem = make_sphere_problem()
        engine = ProcessPoolEngine(workers=1)
        states, _ = _states(problem, n=3)
        engine.refine_round(problem, states, [10, 10, 10])
        assert engine._pool is None

    def test_tiny_rounds_stay_in_process(self):
        problem = make_sphere_problem()
        engine = ProcessPoolEngine(workers=2, min_dispatch_rows=1000)
        states, _ = _states(problem, n=3)
        engine.refine_round(problem, states, [10, 10, 10])
        assert engine._pool is None
        engine.close()


def _run(engine_name, engine_params=None, problem="sphere", method="moheco", seed=7):
    spec = RunSpec(
        problem=problem,
        method=method,
        seed=seed,
        overrides=dict(TINY),
        engine=engine_name,
        engine_params=engine_params or {},
    )
    result = optimize(spec)
    payload = result.to_dict()
    # Wall-clock is the one legitimately backend-dependent field.
    payload.pop("elapsed_seconds")
    return json.dumps(payload, sort_keys=True)


class TestCrossBackendEquivalence:
    """Same RunSpec + seed => bit-identical results on every backend."""

    @pytest.mark.parametrize("problem", ["sphere", "quadratic"])
    @pytest.mark.parametrize("method", ["moheco", "oo_only", "fixed_budget"])
    def test_serial_matches_legacy(self, problem, method):
        assert _run("serial", problem=problem, method=method) == _run(
            "legacy", problem=problem, method=method
        )

    def test_process_pool_matches_legacy(self):
        legacy = _run("legacy")
        assert _run("process", {"workers": 2}) == legacy

    def test_worker_count_does_not_change_results(self):
        assert _run("process", {"workers": 2}) == _run("process", {"workers": 3})

    def test_engine_argument_overrides_spec(self):
        spec = RunSpec(
            problem="sphere", seed=7, overrides=dict(TINY), engine="legacy"
        )
        via_argument = optimize(spec, engine="serial")
        via_spec = optimize(spec)
        a, b = via_argument.to_dict(), via_spec.to_dict()
        a.pop("elapsed_seconds"), b.pop("elapsed_seconds")
        assert a == b


class TestRunSpecEngine:
    def test_engine_round_trips_through_json(self):
        spec = RunSpec(
            problem="sphere", seed=1, engine="process", engine_params={"workers": 4}
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_old_spec_payloads_still_parse(self):
        spec = RunSpec.from_dict({"problem": "sphere", "seed": 3})
        assert spec.engine is None
        assert spec.engine_params == {}

    def test_engine_params_require_engine(self):
        with pytest.raises(ValueError, match="engine_params"):
            RunSpec(problem="sphere", engine_params={"workers": 2})

    def test_with_engine_derivation(self):
        spec = RunSpec(problem="sphere").with_engine("process", workers=2)
        assert spec.engine == "process"
        assert spec.engine_params == {"workers": 2}

    def test_engine_params_rejected_with_engine_instance(self):
        with pytest.raises(TypeError, match="resolved by name"):
            optimize(
                "sphere",
                seed=1,
                engine=SerialEngine(),
                engine_params={"workers": 2},
                **TINY,
            )

    def test_engine_params_without_engine_name_explain_the_fix(self):
        with pytest.raises(TypeError, match="require an engine name"):
            optimize("sphere", seed=1, engine_params={"workers": 2}, **TINY)

    def test_cli_engine_override_drops_stale_engine_params(self, tmp_path):
        """`--engine serial` on a spec carrying process params must not
        forward workers= to SerialEngine."""
        from repro.api.cli import main

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            RunSpec(
                problem="sphere",
                seed=7,
                overrides=dict(TINY),
                engine="process",
                engine_params={"workers": 2},
            ).to_json()
        )
        code = main(
            ["run", "--spec", str(spec_path), "--engine", "serial", "--quiet"]
        )
        assert code == 0


class TestResultTiming:
    def test_elapsed_and_throughput_recorded(self):
        result = optimize("sphere", seed=2, **TINY)
        assert result.elapsed_seconds > 0.0
        assert result.sims_per_second > 0.0
        data = result.to_dict()
        assert data["elapsed_seconds"] == result.elapsed_seconds

    def test_elapsed_survives_serialization(self):
        from repro.core.moheco import MOHECOResult

        result = optimize("sphere", seed=2, **TINY)
        rebuilt = MOHECOResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.elapsed_seconds == result.elapsed_seconds


class TestBudgetClamp:
    """Satellite: OCBA must never spend past its total budget."""

    def test_total_never_exceeds_budget(self):
        problem = make_sphere_problem()
        for budget in (97, 150, 333, 700):
            states, _ = _states(problem, n=5, seed=budget)
            report = ocba_sequential(states, total_budget=budget, n0=15, delta=50)
            assert report.total_samples <= budget
            assert report.total_samples >= min(budget, 5 * 15)
            assert report.budget == budget

    def test_budget_spent_exactly_when_pilot_fits(self):
        problem = make_sphere_problem()
        states, _ = _states(problem, n=4, seed=1)
        report = ocba_sequential(states, total_budget=500, n0=15, delta=50)
        assert report.total_samples == 500

    def test_pilot_overrun_is_tolerated(self):
        # total_budget below S * n0: the pilot is owed regardless; the loop
        # must not assert (and must not run any allocation rounds).
        problem = make_sphere_problem()
        states, _ = _states(problem, n=5, seed=2)
        report = ocba_sequential(states, total_budget=30, n0=15, delta=50)
        assert report.total_samples == 75
        assert report.rounds == 0

    def test_clamped_round_identical_across_backends(self):
        problem = make_sphere_problem()
        fingerprints = []
        for engine in (LegacyEngine(), SerialEngine()):
            states, ledger = _states(problem, n=5, seed=9)
            ocba_sequential(states, total_budget=333, n0=15, delta=50, engine=engine)
            fingerprints.append(_state_fingerprint(states, ledger))
        assert fingerprints[0] == fingerprints[1]


class TestPromotionCallbacks:
    """Satellite: the fixed-budget branch must announce its promotions."""

    class Recorder(Callback):
        def __init__(self):
            self.promoted = []

        def on_stage2_promotion(self, engine, individual):
            self.promoted.append(individual)

    def test_fixed_budget_promotions_fire_callbacks(self):
        recorder = self.Recorder()
        result = optimize(
            "sphere",
            method="fixed_budget",
            seed=4,
            callbacks=[recorder],
            pop_size=8,
            max_generations=2,
        )
        assert recorder.promoted, "fixed-budget promotions must be observable"
        # Every feasible candidate the baseline estimated was promoted at
        # the full n_fixed accuracy.
        assert all(ind.stage == 2 for ind in recorder.promoted)
        assert result.best_estimate.n >= 500

    def test_moheco_promotions_still_fire(self):
        recorder = self.Recorder()
        optimize("sphere", seed=3, callbacks=[recorder], **TINY)
        assert recorder.promoted


class TestEngineOwnership:
    def test_moheco_closes_engines_it_resolved_by_name(self):
        from repro.core.config import MOHECOConfig
        from repro.core.moheco import MOHECO

        problem = make_sphere_problem()
        optimizer = MOHECO(
            problem,
            MOHECOConfig.moheco(**TINY),
            rng=1,
            engine="process",
        )
        optimizer.engine._ensure_pool(problem)  # force the pool alive
        assert optimizer.engine._pool is not None
        optimizer.run()
        assert optimizer.engine._pool is None, "owned pools must not leak"

    def test_moheco_leaves_caller_engines_open(self):
        from repro.core.config import MOHECOConfig
        from repro.core.moheco import MOHECO

        problem = make_sphere_problem()
        with ProcessPoolEngine(workers=2) as engine:
            engine._ensure_pool(problem)
            MOHECO(problem, MOHECOConfig.moheco(**TINY), rng=1, engine=engine).run()
            assert engine._pool is not None, "caller-owned pools stay alive"


class TestCustomEngines:
    def test_third_party_engine_plugs_in(self):
        calls = []

        class CountingEngine(EvaluationEngine):
            name = "counting"

            def refine_round(self, problem, states, gains, category=None):
                calls.append(int(np.sum(gains)))
                LegacyEngine().refine_round(problem, states, gains, category)

        result = optimize("sphere", seed=5, engine=CountingEngine(), **TINY)
        assert calls, "the engine must have executed rounds"
        assert result.best_yield > 0.0

    def test_duck_typed_problem_runs_on_serial_engine(self):
        """Problems without evaluate_pairs/evaluate_batch still fuse."""
        inner = make_sphere_problem()

        class MinimalProblem:
            specs = inner.specs
            space = inner.space
            variation = inner.variation
            design_dimension = inner.design_dimension
            name = "minimal"

            def simulate(self, x, samples, ledger=None, category="mc"):
                return inner.simulate(x, samples, ledger, category)

            def nominal_feasibility(self, x, ledger=None):
                return inner.nominal_feasibility(x, ledger)

        fused = optimize(MinimalProblem(), seed=6, engine="serial", **TINY)
        loop = optimize(MinimalProblem(), seed=6, engine="legacy", **TINY)
        assert fused.best_yield == loop.best_yield
        assert fused.n_simulations == loop.n_simulations
