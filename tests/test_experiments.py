"""Experiment harness: runner, statistics, table rendering."""

import numpy as np
import pytest

from repro.baselines import run_fixed_budget, run_moheco
from repro.experiments import (
    ExperimentSettings,
    replicate_method,
    summary_row,
)
from repro.experiments.tables import (
    format_deviation_table,
    format_generic,
    format_simulation_table,
)
from repro.problems import make_sphere_problem


@pytest.fixture(scope="module")
def tiny_settings():
    return ExperimentSettings(runs=2, reference_n=2000, max_generations=10, full=False)


@pytest.fixture(scope="module")
def sphere_summary(tiny_settings):
    problem = make_sphere_problem(sigma=0.2)
    return replicate_method(
        problem,
        "MOHECO",
        lambda p, **kw: run_moheco(p, pop_size=8, **kw),
        tiny_settings,
        base_seed=1,
    )


class TestSettings:
    def test_defaults_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_RUNS", raising=False)
        settings = ExperimentSettings.from_env()
        assert settings.runs == 3
        assert not settings.full

    def test_full_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        settings = ExperimentSettings.from_env()
        assert settings.runs == 10
        assert settings.reference_n == 50_000

    def test_individual_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.setenv("REPRO_RUNS", "4")
        monkeypatch.setenv("REPRO_REF_N", "12345")
        settings = ExperimentSettings.from_env()
        assert settings.runs == 4
        assert settings.reference_n == 12345


class TestReplication:
    def test_record_contents(self, sphere_summary, tiny_settings):
        assert len(sphere_summary.records) == tiny_settings.runs
        for record in sphere_summary.records:
            assert 0.0 <= record.reported_yield <= 1.0
            assert 0.0 <= record.reference_yield <= 1.0
            assert record.deviation == pytest.approx(
                abs(record.reported_yield - record.reference_yield)
            )
            assert record.n_simulations > 0
            assert record.wall_seconds > 0

    def test_runs_are_independent(self, sphere_summary):
        sims = [r.n_simulations for r in sphere_summary.records]
        assert len(set(sims)) > 1 or len(sims) == 1

    def test_deviation_reasonably_small(self, sphere_summary):
        # 500-sample estimates vs 2000-sample references: a few percent.
        assert np.all(sphere_summary.deviations() < 0.2)


class TestStats:
    def test_summary_row(self):
        row = summary_row(np.array([3.0, 1.0, 2.0]))
        assert row.best == 1.0 and row.worst == 3.0
        assert row.average == pytest.approx(2.0)
        assert row.variance == pytest.approx(1.0)

    def test_single_value(self):
        row = summary_row(np.array([5.0]))
        assert row.variance == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summary_row(np.array([]))

    def test_formatted_percent(self):
        row = summary_row(np.array([0.01, 0.02]))
        best, worst, avg, var = row.formatted(as_percent=True)
        assert best == "1.00%" and worst == "2.00%"


class TestTables:
    def test_generic_alignment(self):
        table = format_generic("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "333" in table

    def test_deviation_and_simulation_tables(self, sphere_summary):
        dev = format_deviation_table("Table 1", [sphere_summary])
        sim = format_simulation_table("Table 2", [sphere_summary])
        assert "MOHECO" in dev and "%" in dev
        assert "MOHECO" in sim and "%" not in sim.splitlines()[3]


class TestMethodContrast:
    def test_fixed_budget_summary_costs_more(self, tiny_settings):
        problem = make_sphere_problem(sigma=0.2)
        moheco = replicate_method(
            problem, "MOHECO",
            lambda p, **kw: run_moheco(p, pop_size=8, **kw),
            tiny_settings, base_seed=2,
        )
        fixed = replicate_method(
            problem, "fixed500",
            lambda p, **kw: run_fixed_budget(p, n_fixed=500, pop_size=8, **kw),
            tiny_settings, base_seed=2,
        )
        assert np.mean(fixed.simulations()) > np.mean(moheco.simulations())
