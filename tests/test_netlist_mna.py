"""Netlist construction and MNA DC solution on known circuits."""

import numpy as np
import pytest

from repro.circuit.mna import ConvergenceError, solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.tech import C035Technology


@pytest.fixture(scope="module")
def tech():
    return C035Technology()


class TestNetlist:
    def test_duplicate_element_names_rejected(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            c.add_resistor("R1", "b", "0", 1e3)

    def test_node_bookkeeping(self):
        c = Circuit()
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        assert c.node_names() == ["a", "b", "0"]
        assert c.non_ground_nodes() == ["a", "b"]

    def test_invalid_component_values(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.add_resistor("R", "a", "0", -1.0)
        with pytest.raises(ValueError):
            c.add_capacitor("C", "a", "0", -1e-12)

    def test_getitem_and_len(self):
        c = Circuit()
        c.add_resistor("R1", "a", "0", 1e3)
        assert c["R1"].resistance == 1e3
        assert len(c) == 1
        with pytest.raises(KeyError):
            c["nope"]

    def test_total_gate_area(self, tech):
        c = Circuit()
        c.add_mosfet("M1", "d", "g", "0", "0", tech.nmos, 10e-6, 1e-6)
        c.add_mosfet("M2", "d", "g", "0", "0", tech.nmos, 20e-6, 1e-6)
        assert c.total_gate_area() == pytest.approx(30e-12)

    def test_describe(self, tech):
        c = Circuit("amp")
        c.add_resistor("R1", "a", "0", 1e3)
        assert "amp" in c.describe() and "R1" in c.describe()


class TestLinearDC:
    def test_voltage_divider(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 10.0)
        c.add_resistor("R1", "in", "mid", 1e3)
        c.add_resistor("R2", "mid", "0", 3e3)
        sol = solve_dc(c)
        assert sol.voltage("mid") == pytest.approx(7.5, rel=1e-6)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add_current_source("I1", "0", "a", 1e-3)
        c.add_resistor("R1", "a", "0", 2e3)
        sol = solve_dc(c)
        assert sol.voltage("a") == pytest.approx(2.0, rel=1e-6)

    def test_source_branch_current(self):
        c = Circuit()
        source = c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "0", 1e3)
        sol = solve_dc(c)
        # Current flows out of the + terminal through R1: branch current is
        # negative by the MNA convention (into the + node).
        assert sol.branch_current(source) == pytest.approx(-1e-3, rel=1e-6)

    def test_vccs(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 0.5)
        # SPICE G convention: current flows from out_p through the source to
        # out_n, so the current is drawn out of "out" -> inverting.
        c.add_vccs("G1", "out", "0", "in", "0", gm=2e-3)
        c.add_resistor("RL", "out", "0", 1e3)
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(-1.0, rel=1e-6)

    def test_capacitor_open_at_dc(self):
        c = Circuit()
        c.add_voltage_source("V1", "in", "0", 5.0)
        c.add_resistor("R1", "in", "out", 1e3)
        c.add_capacitor("C1", "out", "0", 1e-12)
        sol = solve_dc(c)
        assert sol.voltage("out") == pytest.approx(5.0, rel=1e-4)


class TestMosfetDC:
    def test_diode_connected_device(self, tech):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_current_source("IB", "vdd", "d", 100e-6)  # pushes 100uA into d
        c.add_mosfet("M1", "d", "d", "0", "0", tech.nmos, 50e-6, 1e-6)
        sol = solve_dc(c)
        vgs = sol.voltage("d")
        # The diode voltage must be above threshold, below the supply.
        assert tech.nmos.vth0 < vgs < 1.5
        ids = tech.nmos.ids(50e-6, 1e-6, vgs, vgs)
        assert float(ids) == pytest.approx(100e-6, rel=0.02)

    def test_common_source_amplifier_bias(self, tech):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_voltage_source("VG", "g", "0", 0.9)
        c.add_resistor("RD", "vdd", "d", 20e3)
        c.add_mosfet("M1", "d", "g", "0", "0", tech.nmos, 20e-6, 1e-6)
        sol = solve_dc(c)
        vd = sol.voltage("d")
        assert 0.1 < vd < 3.2
        op = sol.op["M1"]
        assert op.gm > 0
        assert op.saturated == (op.vds >= op.vdsat - 1e-9)

    def test_current_mirror_copies_current(self, tech):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_current_source("IREF", "vdd", "d1", 50e-6)
        c.add_mosfet("M1", "d1", "d1", "0", "0", tech.nmos, 40e-6, 2e-6)
        c.add_mosfet("M2", "d2", "d1", "0", "0", tech.nmos, 40e-6, 2e-6)
        c.add_resistor("RL", "vdd", "d2", 10e3)
        sol = solve_dc(c)
        i_out = (3.3 - sol.voltage("d2")) / 10e3
        assert i_out == pytest.approx(50e-6, rel=0.05)

    def test_saturation_report(self, tech):
        c = Circuit()
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_voltage_source("VG", "g", "0", 1.2)
        c.add_resistor("RD", "vdd", "d", 1e3)
        c.add_mosfet("M1", "d", "g", "0", "0", tech.nmos, 20e-6, 1e-6)
        sol = solve_dc(c)
        report = sol.saturation_report()
        assert "M1" in report and isinstance(report["M1"], bool)


class TestRobustness:
    def test_singular_circuit_raises(self):
        # Two ideal voltage sources fighting on the same node.
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_voltage_source("V2", "a", "0", 2.0)
        with pytest.raises((ConvergenceError, np.linalg.LinAlgError)):
            solve_dc(c)

    def test_floating_node_handled_by_gmin(self):
        c = Circuit()
        c.add_voltage_source("V1", "a", "0", 1.0)
        c.add_capacitor("C1", "a", "b", 1e-12)
        c.add_capacitor("C2", "b", "0", 1e-12)
        sol = solve_dc(c)  # gmin keeps the matrix solvable
        assert np.isfinite(sol.voltage("b"))
