"""Optimization service: spec errors, job manager, HTTP round-trips, CLI."""

import json
import threading

import pytest

from repro.api import optimize
from repro.api.cli import main
from repro.api.errors import SpecError, validate_run_spec, validate_sweep_spec
from repro.api.spec import RunSpec
from repro.core.callbacks import Callback, wants_run_progress
from repro.core.moheco import MOHECOResult
from repro.service import (
    TERMINAL_STATES,
    JobManager,
    ServiceClient,
    ServiceError,
    serve,
)
from repro.sweep import SweepSpec, run_sweep

TINY_RUN = {
    "problem": "sphere",
    "method": "moheco",
    "seed": 11,
    "overrides": {"max_generations": 4, "pop_size": 10},
}

# Slow enough (~1 s/generation) that cancellation lands mid-run.
SLOW_RUN = {
    "problem": "folded_cascode",
    "seed": 5,
    "overrides": {"max_generations": 400, "pop_size": 80},
}

TINY_SWEEP = {
    "methods": [
        {"method": "moheco", "overrides": {"pop_size": 8, "n_max": 100}},
        {"method": "fixed_budget", "overrides": {"pop_size": 8, "n_fixed": 100}},
    ],
    "problems": ["sphere"],
    "runs": 2,
    "base_seed": 7,
    "max_generations": 4,
}


class TestSpecError:
    def test_unknown_run_key_is_structured(self):
        with pytest.raises(SpecError) as excinfo:
            RunSpec.from_dict({"problem": "sphere", "pop_size": 8})
        error = excinfo.value
        assert error.spec == "RunSpec"
        assert error.field == "pop_size"
        assert "unknown RunSpec keys" in error.reason
        body = error.to_dict()
        assert body["error"] == "invalid_spec"
        assert body["field"] == "pop_size"

    def test_wrong_type_names_the_field(self):
        with pytest.raises(SpecError) as excinfo:
            RunSpec.from_dict({"problem": "sphere", "seed": "seven"})
        assert excinfo.value.field == "seed"
        with pytest.raises(SpecError) as excinfo:
            RunSpec.from_dict({"problem": "sphere", "overrides": [1, 2]})
        assert excinfo.value.field == "overrides"

    def test_bool_seed_rejected(self):
        with pytest.raises(SpecError) as excinfo:
            RunSpec.from_dict({"problem": "sphere", "seed": True})
        assert excinfo.value.field == "seed"

    def test_non_dict_payload(self):
        with pytest.raises(SpecError):
            RunSpec.from_dict(["problem", "sphere"])
        with pytest.raises(SpecError):
            SweepSpec.from_dict("methods: [moheco]")

    def test_unregistered_names_resolve_at_validation(self):
        spec = RunSpec.from_dict(dict(TINY_RUN, problem="not_a_problem"))
        with pytest.raises(SpecError) as excinfo:
            validate_run_spec(spec)
        assert excinfo.value.field == "problem"
        assert "not_a_problem" in excinfo.value.reason

    def test_sweep_method_index_in_field(self):
        spec = SweepSpec.from_dict(
            dict(TINY_SWEEP, methods=["moheco", "not_a_method"])
        )
        with pytest.raises(SpecError) as excinfo:
            validate_sweep_spec(spec)
        assert excinfo.value.field == "methods[1].method"

    def test_sweep_unknown_key(self):
        with pytest.raises(SpecError) as excinfo:
            SweepSpec.from_dict(dict(TINY_SWEEP, seeds=[1, 2]))
        assert "unknown SweepSpec keys" in excinfo.value.reason

    def test_method_entry_requires_method_key(self):
        with pytest.raises(SpecError) as excinfo:
            SweepSpec.from_dict(dict(TINY_SWEEP, methods=[{"label": "x"}]))
        assert excinfo.value.field == "methods"
        assert "missing its 'method'" in excinfo.value.reason


class TestSweepProgressBridge:
    """Satellite: per-generation progress streams out of sweep workers."""

    class _Collector(Callback):
        def __init__(self):
            self.records = []
            self.runs_seen = set()

        def on_sweep_run_progress(self, sweep, run, record):
            self.records.append(record)
            self.runs_seen.add(run.key)

    def _spec(self):
        return SweepSpec.from_dict(TINY_SWEEP)

    def test_wants_run_progress_detection(self):
        assert not wants_run_progress(Callback())
        assert wants_run_progress(self._Collector())

    @pytest.mark.parametrize("workers", [1, 2])
    def test_generation_records_stream(self, workers, tmp_path):
        collector = self._Collector()
        result = run_sweep(
            self._spec(),
            workers=workers,
            callbacks=[collector],
            store=str(tmp_path / "s.jsonl"),
        )
        assert len(result.records) == 4
        assert collector.records, "no generation progress crossed the pool"
        assert collector.runs_seen == {r.key for r in self._spec().expand()}
        sample = collector.records[0]
        assert "generation" in sample and "simulations_total" in sample

    def test_cancel_before_start_executes_nothing(self, tmp_path):
        cancel = threading.Event()
        cancel.set()
        result = run_sweep(
            self._spec(), workers=1, cancel=cancel, store=str(tmp_path / "s.jsonl")
        )
        assert result.cancelled
        assert result.executed == 0
        assert result.records == []

    def test_cancelled_pool_sweep_persists_no_partial_runs(self, tmp_path):
        """Anything reaching the store must be a complete, resumable record."""
        store = tmp_path / "s.jsonl"
        cancel = threading.Event()

        class Tripwire(Callback):
            def on_sweep_run_end(self, sweep, run, record, done, total):
                cancel.set()

        result = run_sweep(
            self._spec(), workers=2, cancel=cancel, callbacks=[Tripwire()],
            store=str(store),
        )
        assert result.cancelled
        persisted = [
            json.loads(line)
            for line in store.read_text().splitlines()
            if line.strip()
        ][1:]  # skip the header
        assert len(persisted) == len(result.records)
        for row in persisted:
            assert row["record"]["reason"] != "callback_stop"


class TestJobManager:
    def test_run_job_round_trip_and_identity(self, tmp_path):
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            job = manager.submit_run(TINY_RUN)
            events = list(manager.follow_events(job.id))
            assert job.state == "succeeded"
            kinds = {event["kind"] for event in events}
            assert {"state", "generation"} <= kinds
            service_result = MOHECOResult.from_dict(job.result["result"])
        direct = optimize(RunSpec.from_dict(TINY_RUN))
        assert service_result.identity_dict() == direct.identity_dict()

    def test_shared_cache_injected_and_warm(self, tmp_path):
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            first = manager.submit_run(TINY_RUN)
            second = manager.submit_run(TINY_RUN)
            for job in (first, second):
                list(manager.follow_events(job.id))
                assert job.state == "succeeded"
            # The job's identity spec stays as submitted...
            assert first.spec["cache"] is None
            # ...but execution used the shared spill: the second job warm-starts.
            stats = second.result["result"]["cache_stats"]
            assert stats["hits"] > 0
            assert (
                first.result["result"]["best_yield"]
                == second.result["result"]["best_yield"]
            )

    def test_cancel_while_queued_never_runs(self, tmp_path):
        # One worker pinned on a slow job -> the second job sits queued.
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            blocker = manager.submit_run(SLOW_RUN)
            queued = manager.submit_run(TINY_RUN)
            manager.cancel(queued.id)
            assert queued.state == "cancelled"
            assert queued.started is None
            manager.cancel(blocker.id)

    def test_sweep_job_emits_run_events(self, tmp_path):
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            job = manager.submit_sweep(TINY_SWEEP)
            events = list(manager.follow_events(job.id))
            assert job.state == "succeeded"
            kinds = [event["kind"] for event in events]
            assert kinds.count("sweep_run") == 4
            assert "sweep_start" in kinds and "generation" in kinds
            assert len(job.result["records"]) == 4

    def test_invalid_spec_rejected_at_submission(self, tmp_path):
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            with pytest.raises(SpecError):
                manager.submit_run({"problem": "no_such_problem"})
            with pytest.raises(SpecError):
                manager.submit_sweep(dict(TINY_SWEEP, seeds=[1]))
            assert manager.list_jobs() == []

    def test_failed_job_carries_error(self, tmp_path):
        # Bad factory params pass name validation but blow up when the
        # queued job resolves the problem at execution time.
        bad = dict(TINY_RUN, problem_params={"no_such_param": 1})
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            job = manager.submit_run(bad)
            list(manager.follow_events(job.id))
            assert job.state == "failed"
            assert job.error["type"] == "TypeError"

    def test_bad_overrides_rejected_at_submission(self, tmp_path):
        # Since the validate_overrides hook, a stage-1 budget that cannot
        # cover the pilot fails at the door instead of inside the queue.
        bad = dict(TINY_RUN, overrides={"n0": 100})  # sim_ave < n0
        with JobManager(workers=1, data_dir=str(tmp_path)) as manager:
            with pytest.raises(SpecError, match="cover the pilot"):
                manager.submit_run(bad)
            assert manager.list_jobs() == []


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("service-data")
    server = serve("127.0.0.1", 0, workers=2, data_dir=str(data_dir))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url, timeout=60)
    yield client
    server.close()
    thread.join(timeout=5)


class TestServiceHTTP:
    def test_health(self, service):
        assert service.health()["ok"] is True

    def test_run_round_trip_bit_identical_to_direct(self, service):
        job = service.submit_run(TINY_RUN)
        assert job["state"] in ("queued", "running", "succeeded")
        final = service.wait(job["id"], timeout=120)
        assert final["state"] == "succeeded"
        payload = service.result(job["id"])
        service_result = MOHECOResult.from_dict(payload["result"]["result"])
        direct = optimize(RunSpec.from_dict(TINY_RUN))
        assert service_result.identity_dict() == direct.identity_dict()

    def test_events_stream_and_offsets(self, service):
        job = service.submit_run(TINY_RUN)
        events = list(service.events(job["id"]))
        kinds = [event["kind"] for event in events]
        assert "generation" in kinds
        assert kinds[-1] == "state" and events[-1]["state"] in TERMINAL_STATES
        # Replay from an offset without following.
        replay = list(service.events(job["id"], start=len(events) - 1, follow=False))
        assert replay == events[-1:]

    def test_concurrent_tenants_share_the_warm_cache(self, service):
        spec = dict(TINY_RUN, seed=303)
        first = service.submit_run(spec)
        service.wait(first["id"], timeout=120)
        second = service.submit_run(spec)
        service.wait(second["id"], timeout=120)
        stats = service.result(second["id"])["result"]["result"]["cache_stats"]
        assert stats["hits"] > 0

    def test_sweep_round_trip(self, service):
        job = service.submit_sweep(TINY_SWEEP)
        events = list(service.events(job["id"]))
        assert sum(1 for e in events if e["kind"] == "sweep_run") == 4
        payload = service.result(job["id"])
        assert payload["state"] == "succeeded"
        assert len(payload["result"]["records"]) == 4

    def test_cancel_mid_run(self, service):
        job = service.submit_run(SLOW_RUN)
        # Wait for real progress so the cancel lands mid-optimization.
        for event in service.events(job["id"]):
            if event["kind"] == "generation":
                break
        cancelled = service.cancel(job["id"])
        assert cancelled["state"] in ("running", "cancelled")
        final = service.wait(job["id"], timeout=120)
        assert final["state"] == "cancelled"
        payload = service.result(job["id"])
        assert payload["result"]["result"]["reason"] == "callback_stop"

    def test_result_conflict_until_terminal(self, service):
        job = service.submit_run(SLOW_RUN)
        with pytest.raises(ServiceError) as excinfo:
            service.result(job["id"])
        assert excinfo.value.status == 409
        assert excinfo.value.payload["error"] == "not_finished"
        service.cancel(job["id"])
        service.wait(job["id"], timeout=120)

    def test_malformed_specs_answer_400(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.submit_run({"problem": "sphere", "pop_size": 8})
        assert excinfo.value.status == 400
        body = excinfo.value.payload
        assert body["error"] == "invalid_spec"
        assert body["field"] == "pop_size"
        with pytest.raises(ServiceError) as excinfo:
            service.submit_sweep(dict(TINY_SWEEP, methods=["no_such_method"]))
        assert excinfo.value.status == 400
        assert excinfo.value.payload["field"] == "methods[0].method"

    def test_unknown_job_404(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.status("definitely-not-a-job")
        assert excinfo.value.status == 404

    def test_jobs_listing(self, service):
        listed = service.jobs()
        assert listed, "earlier tests should have left jobs behind"
        assert all("id" in job and "state" in job for job in listed)


class TestWorkerRegistry:
    """``/v1/workers``: health-checked registration and fleet injection."""

    def test_register_unreachable_answers_502(self, service):
        with pytest.raises(ServiceError) as excinfo:
            service.register_worker("http://127.0.0.1:1")
        assert excinfo.value.status == 502
        assert excinfo.value.payload["error"] == "worker_unreachable"

    def test_register_list_and_remote_job_injection(self, service):
        from repro.service.worker import serve_worker

        worker = serve_worker(port=0)
        threading.Thread(target=worker.serve_forever, daemon=True).start()
        try:
            fleet = service.register_worker(worker.url)
            assert worker.url in fleet
            assert service.register_worker(worker.url) == fleet  # idempotent
            assert {"url": worker.url, "healthy": True} in service.workers()

            # engine=remote with no explicit workers: the service injects
            # its fleet at execution time; the stored spec stays clean.
            # A fresh seed keeps the service's shared warm cache out of the
            # way (a fully-replayed round dispatches nothing).
            spec = dict(TINY_RUN, engine="remote", seed=1234)
            job = service.submit_run(spec)
            final = service.wait(job["id"], timeout=120)
            assert final["state"] == "succeeded"
            run = service.result(job["id"])["result"]
            assert "workers" not in (run["spec"].get("engine_params") or {})
            decision = run["result"]["engine_decision"]
            assert decision["engine"] == "remote"
            # The bulk dispatches remotely; tiny rounds under
            # min_dispatch_rows may legitimately stay local.
            assert decision["rows"] > decision["local_rows"]

            direct = optimize(RunSpec.from_dict(dict(TINY_RUN, seed=1234)))
            assert (
                MOHECOResult.from_dict(run["result"]).identity_dict()
                == direct.identity_dict()
            )
        finally:
            worker.close()

    def test_result_conflict_carries_retry_after(self, service):
        job = service.submit_run(SLOW_RUN)
        try:
            with pytest.raises(ServiceError) as excinfo:
                service.result(job["id"])
            assert excinfo.value.status == 409
            assert excinfo.value.retry_after == 1.0
        finally:
            service.cancel(job["id"])
            service.wait(job["id"], timeout=120)


class TestEventStreamRobustness:
    """``events(follow=True)`` reconnects from its cursor, never busy-polls."""

    def _client(self):
        return ServiceClient("http://service.invalid:1", timeout=1)

    def test_dropped_stream_resumes_exactly_once(self):
        client = self._client()
        calls = []

        def fake_stream(job_id, start, follow, timeout=None):
            calls.append(start)
            if len(calls) == 1:
                yield {"seq": 0, "kind": "state", "state": "running"}
                yield {"seq": 1, "kind": "generation"}
                raise ConnectionResetError("proxy idle-kill")
            yield {"seq": 2, "kind": "generation"}
            yield {"seq": 3, "kind": "state", "state": "succeeded"}

        client._stream_once = fake_stream
        client.status = lambda job_id: {"state": "succeeded"}
        events = list(client.events("job-1"))
        assert [event["seq"] for event in events] == [0, 1, 2, 3]
        # The reconnect asked for events from seq 2 — nothing replayed,
        # nothing skipped.
        assert calls == [0, 2]

    def test_retryable_error_honors_retry_after(self, monkeypatch):
        client = self._client()
        naps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: naps.append(s)
        )
        calls = []

        def fake_stream(job_id, start, follow, timeout=None):
            calls.append(start)
            if len(calls) == 1:
                raise ServiceError(
                    503, {"error": "busy"}, "url", retry_after=0.05
                )
            yield {"seq": 0, "kind": "state", "state": "succeeded"}

        client._stream_once = fake_stream
        client.status = lambda job_id: {"state": "succeeded"}
        assert len(list(client.events("job-1"))) == 1
        assert naps == [0.05]
        assert calls == [0, 0]

    def test_fatal_error_propagates(self):
        client = self._client()

        def fake_stream(job_id, start, follow, timeout=None):
            raise ServiceError(404, {"error": "unknown_job"}, "url")
            yield  # pragma: no cover - makes this a generator

        client._stream_once = fake_stream
        with pytest.raises(ServiceError) as excinfo:
            list(client.events("job-1"))
        assert excinfo.value.status == 404

    def test_follow_false_drains_once_without_status_poll(self):
        client = self._client()
        calls = []

        def fake_stream(job_id, start, follow, timeout=None):
            calls.append((start, follow))
            yield {"seq": 5, "kind": "generation"}

        client._stream_once = fake_stream
        client.status = lambda job_id: pytest.fail(
            "follow=False must not poll status"
        )
        events = list(client.events("job-1", follow=False))
        assert calls == [(0, False)]
        assert [event["seq"] for event in events] == [5]


class TestCLIJson:
    def test_run_json_output(self, capsys, tmp_path):
        spec_path = tmp_path / "run.json"
        spec_path.write_text(json.dumps(TINY_RUN))
        assert main(["run", "--spec", str(spec_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["problem"] == "sphere"
        service_result = MOHECOResult.from_dict(payload["result"])
        direct = optimize(RunSpec.from_dict(TINY_RUN))
        assert service_result.identity_dict() == direct.identity_dict()

    def test_sweep_json_output(self, capsys, tmp_path):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps(TINY_SWEEP))
        code = main(
            ["sweep", "--spec", str(spec_path), "--json", "--progress"]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # progress went to stderr
        assert payload["executed"] == 4
        assert len(payload["records"]) == 4
        assert "sweep" in captured.err or captured.err  # progress on stderr
