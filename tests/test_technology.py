"""Synthetic technologies: variable counts, variation effects, Pelgrom law."""

import numpy as np
import pytest

from repro.circuit.tech import C035Technology, N90Technology


@pytest.fixture(scope="module")
def c035():
    return C035Technology()


@pytest.fixture(scope="module")
def n90():
    return N90Technology()


class TestInventory:
    def test_c035_has_the_papers_20_names(self, c035):
        expected = {
            "TOXRn", "VTH0Rn", "DELUON", "DELL", "DELW", "DELRDIFFN",
            "VTH0Rp", "DELUOP", "DELRDIFFP", "CJSWRn", "CJSWRp", "CJRn",
            "CJRp", "NPEAKn", "NPEAKp", "TOXRp", "LDn", "WDn", "LDp", "WDp",
        }
        assert set(c035.inter.names) == expected
        assert len(c035.inter) == 20

    def test_n90_has_47_inter_variables(self, n90):
        assert len(n90.inter) == 47

    def test_supplies(self, c035, n90):
        assert c035.vdd == pytest.approx(3.3)
        assert n90.vdd == pytest.approx(1.2)

    def test_cards_polarity(self, c035):
        assert c035.nmos.polarity == "n"
        assert c035.pmos.polarity == "p"
        with pytest.raises(ValueError):
            c035.card("z")

    def test_variation_model_dimensions(self, c035, n90):
        assert c035.variation_model([f"M{i}" for i in range(15)]).dimension == 80
        assert n90.variation_model([f"M{i}" for i in range(19)]).dimension == 123


@pytest.mark.parametrize("tech_fixture", ["c035", "n90"])
class TestRealize:
    def test_nominal_matches_card(self, tech_fixture, request):
        tech = request.getfixturevalue(tech_fixture)
        dev = tech.realize_nominal("n", 20e-6, 1e-6)
        assert dev.vth.item() == pytest.approx(tech.nmos.vth0, abs=0.02)
        assert dev.leff.item() == pytest.approx(1e-6 - 2 * tech.nmos.ld, rel=0.01)
        assert dev.weff.item() == pytest.approx(20e-6 - 2 * tech.nmos.wd, rel=0.01)

    def test_vectorised_over_samples(self, tech_fixture, request):
        tech = request.getfixturevalue(tech_fixture)
        model = tech.variation_model(["M1"])
        samples = model.sample(64, np.random.default_rng(0))
        dev = tech.realize(
            "n", 20e-6, 1e-6,
            model.inter_values(samples),
            model.mismatch_scores(samples, "M1"),
        )
        assert dev.vth.shape == (64,)
        assert np.std(dev.vth) > 0  # variations actually move vth

    def test_every_inter_variable_has_an_effect(self, tech_fixture, request):
        """Perturbing any single inter-die variable must change some
        effective device quantity (no inert statistical variables)."""
        tech = request.getfixturevalue(tech_fixture)
        quantities = ("vth", "kp", "lam", "theta", "weff", "leff",
                      "cj_scale", "cg_scale", "gamma")
        base = {}
        for pol in ("n", "p"):
            nominal = {n: np.array([tech.inter[n].distribution.mean])
                       for n in tech.inter.names}
            dev = tech.realize(pol, 20e-6, 0.5e-6, nominal, np.zeros((1, 4)))
            base[pol] = {q: np.asarray(getattr(dev, q)).reshape(-1)[0] for q in quantities}

        inert = []
        for name in tech.inter.names:
            moved = False
            for pol in ("n", "p"):
                perturbed = {n: np.array([tech.inter[n].distribution.mean])
                             for n in tech.inter.names}
                sigma = max(tech.inter[name].distribution.std, 1e-12)
                perturbed[name] = perturbed[name] + 3.0 * sigma
                dev = tech.realize(pol, 20e-6, 0.5e-6, perturbed, np.zeros((1, 4)))
                for q in quantities:
                    if not np.isclose(np.asarray(getattr(dev, q)).reshape(-1)[0], base[pol][q],
                                      rtol=1e-12, atol=0.0):
                        moved = True
            # RSHPOLY acts through poly resistors, not through devices.
            if not moved and name != "RSHPOLY":
                inert.append(name)
        assert inert == []

    def test_mismatch_scores_shift_vth(self, tech_fixture, request):
        tech = request.getfixturevalue(tech_fixture)
        nominal = {n: np.array([tech.inter[n].distribution.mean])
                   for n in tech.inter.names}
        plus = tech.realize("n", 20e-6, 1e-6, nominal,
                            np.array([[0.0, 3.0, 0.0, 0.0]]))
        ref = tech.realize("n", 20e-6, 1e-6, nominal, np.zeros((1, 4)))
        expected = 3.0 * tech.pelgrom["n"].sigma_vth(20e-6, 1e-6)
        assert (plus.vth - ref.vth).item() == pytest.approx(expected, rel=1e-6)


class TestPelgrom:
    def test_area_law(self, c035):
        pel = c035.pelgrom["n"]
        s_small = pel.sigma_vth(10e-6, 1e-6)
        s_large = pel.sigma_vth(40e-6, 1e-6)
        assert s_small == pytest.approx(2.0 * s_large, rel=1e-9)

    def test_n90_better_avt_than_c035(self, c035, n90):
        # Thinner oxide gives better matching per unit area.
        assert n90.pelgrom["n"].avt < c035.pelgrom["n"].avt

    def test_all_coefficients_positive(self, c035, n90):
        for tech in (c035, n90):
            for pol in ("n", "p"):
                pel = tech.pelgrom[pol]
                assert pel.avt > 0 and pel.atox > 0 and pel.ald > 0 and pel.awd > 0


class TestGeometry:
    def test_clip_geometry(self, c035):
        w, l = c035.clip_geometry(0.0, 0.0)
        assert w == c035.wmin and l == c035.lmin

    def test_poly_sheet_scale_n90(self, n90):
        inter = {"RSHPOLY": np.array([1.1])}
        assert n90.poly_sheet_scale(inter)[0] == pytest.approx(1.1)
