"""Samplers: PMC, LHS, Sobol — structure and variance properties."""

import numpy as np
import pytest

from repro.problems import make_sphere_problem
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.variation import ProcessVariationModel
from repro.sampling import (
    LatinHypercubeSampler,
    PrimitiveMonteCarloSampler,
    SobolSampler,
    make_sampler,
)
from repro.sampling.lhs import latin_hypercube_uniforms


@pytest.fixture(scope="module")
def variation():
    inter = ParameterGroup(
        [StatisticalParameter.normal(f"p{i}", 0.0, 1.0) for i in range(6)]
    )
    return ProcessVariationModel(inter, ["M1"])


ALL_KINDS = ["pmc", "lhs", "sobol"]


class TestFactory:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_make_sampler(self, kind, variation):
        sampler = make_sampler(kind, variation)
        assert sampler.name == kind

    def test_unknown_kind(self, variation):
        with pytest.raises(ValueError):
            make_sampler("halton", variation)


@pytest.mark.parametrize("kind", ALL_KINDS)
class TestCommonContract:
    def test_shape(self, kind, variation):
        sampler = make_sampler(kind, variation)
        out = sampler.draw(17, np.random.default_rng(0))
        assert out.shape == (17, variation.dimension)

    def test_zero_draw(self, kind, variation):
        sampler = make_sampler(kind, variation)
        assert sampler.draw(0, np.random.default_rng(0)).shape[0] == 0

    def test_negative_rejected(self, kind, variation):
        sampler = make_sampler(kind, variation)
        with pytest.raises(ValueError):
            sampler.draw(-1, np.random.default_rng(0))

    def test_reproducible(self, kind, variation):
        sampler = make_sampler(kind, variation)
        a = sampler.draw(8, np.random.default_rng(5))
        b = sampler.draw(8, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_batches_differ(self, kind, variation):
        sampler = make_sampler(kind, variation)
        rng = np.random.default_rng(5)
        a = sampler.draw(8, rng)
        b = sampler.draw(8, rng)
        assert not np.array_equal(a, b)

    def test_marginal_moments(self, kind, variation):
        sampler = make_sampler(kind, variation)
        out = sampler.draw(4000, np.random.default_rng(1))
        assert np.abs(np.mean(out)) < 0.05
        assert np.std(out) == pytest.approx(1.0, rel=0.05)


class TestLHSStructure:
    def test_uniforms_are_stratified(self):
        n, d = 40, 3
        u = latin_hypercube_uniforms(n, d, np.random.default_rng(0))
        for j in range(d):
            strata = np.floor(u[:, j] * n).astype(int)
            # Exactly one point per stratum in every dimension.
            assert sorted(strata) == list(range(n))

    def test_zero_points(self):
        assert latin_hypercube_uniforms(0, 4, np.random.default_rng(0)).shape == (0, 4)

    def test_lhs_reduces_mean_estimator_variance(self, variation):
        """Stein's result, empirically: LHS mean estimates of a monotone
        function have lower variance than PMC at equal n."""
        rng = np.random.default_rng(7)
        lhs = LatinHypercubeSampler(variation)
        pmc = PrimitiveMonteCarloSampler(variation)

        def mean_of_sum(sampler):
            return [
                float(np.mean(np.sum(sampler.draw(50, rng), axis=1)))
                for _ in range(200)
            ]

        var_lhs = np.var(mean_of_sum(lhs))
        var_pmc = np.var(mean_of_sum(pmc))
        assert var_lhs < 0.5 * var_pmc

    def test_lhs_yield_estimates_unbiased(self):
        problem = make_sphere_problem(sigma=0.3)
        x = np.full(4, 0.55)
        truth = problem.evaluator.analytic_yield(x, problem.specs)
        sampler = LatinHypercubeSampler(problem.variation)
        rng = np.random.default_rng(11)
        estimates = [
            float(np.mean(problem.indicator(x, sampler.draw(200, rng))))
            for _ in range(50)
        ]
        assert np.mean(estimates) == pytest.approx(truth, abs=0.02)


class TestSobolStructure:
    def test_low_discrepancy_beats_pmc_on_mean(self, variation):
        rng = np.random.default_rng(3)
        sobol = SobolSampler(variation)
        pmc = PrimitiveMonteCarloSampler(variation)
        err_sobol = [
            abs(float(np.mean(sobol.draw(128, rng)))) for _ in range(40)
        ]
        err_pmc = [abs(float(np.mean(pmc.draw(128, rng)))) for _ in range(40)]
        assert np.mean(err_sobol) < np.mean(err_pmc)
