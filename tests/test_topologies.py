"""Amplifier topology models: structure, physics sanity, variation response."""

import numpy as np
import pytest

from repro.circuit.tech import C035Technology, N90Technology
from repro.circuit.topologies import (
    FoldedCascodeAmplifier,
    TwoStageTelescopicAmplifier,
)


@pytest.fixture(scope="module")
def fc():
    return FoldedCascodeAmplifier(C035Technology())


@pytest.fixture(scope="module")
def ts():
    return TwoStageTelescopicAmplifier(N90Technology())


@pytest.fixture(scope="module")
def fc_design(fc):
    """A reasonable manual folded-cascode sizing."""
    return np.array([
        200e-6, 0.5e-6,   # input pair
        100e-6, 1.0e-6,   # tail
        80e-6, 1.0e-6,    # p sources
        100e-6, 0.5e-6,   # p cascodes
        60e-6, 0.5e-6,    # n cascodes
        40e-6, 1.0e-6,    # n sinks
        180e-6, 35e-6,    # itail, icas
        0.10, 0.10,
    ])


@pytest.fixture(scope="module")
def ts_design(ts):
    """A reasonable manual telescopic two-stage sizing."""
    return np.array([
        20e-6, 0.3e-6,
        10e-6, 0.2e-6,
        16e-6, 0.2e-6,
        20e-6, 0.3e-6,
        16e-6, 0.4e-6,
        60e-6, 0.15e-6,
        30e-6, 0.2e-6,
        150e-6, 700e-6,
        0.35e-12, 300.0,
        0.08, 0.08,
    ])


class TestStructure:
    def test_folded_cascode_has_15_devices(self, fc):
        assert len(fc.device_names()) == 15
        assert fc.variation.dimension == 80  # 20 inter + 15*4

    def test_telescopic_has_19_devices(self, ts):
        assert len(ts.device_names()) == 19
        assert ts.variation.dimension == 123  # 47 inter + 19*4

    def test_design_space_consistent(self, fc, ts):
        for amp in (fc, ts):
            space = amp.design_space()
            assert space.dimension == len(space.names)
            assert np.all(space.upper > space.lower)

    def test_metric_names_match_output_width(self, fc, fc_design):
        nominal = fc.evaluate_nominal(fc_design)
        assert nominal.shape == (len(fc.metric_names()),)


class TestFoldedCascodePhysics:
    def test_nominal_metrics_in_physical_ranges(self, fc, fc_design):
        m = dict(zip(fc.metric_names(), fc.evaluate_nominal(fc_design)))
        assert 60 < m["a0_db"] < 130
        assert 1e6 < m["gbw_hz"] < 1e9
        assert 0 < m["pm_deg"] <= 90
        assert 0 < m["os_v"] < 2 * 3.3
        assert 0 < m["power_w"] < 20e-3

    def test_more_tail_current_more_gbw_and_power(self, fc, fc_design):
        base = dict(zip(fc.metric_names(), fc.evaluate_nominal(fc_design)))
        boosted = fc_design.copy()
        boosted[12] *= 1.5  # itail
        more = dict(zip(fc.metric_names(), fc.evaluate_nominal(boosted)))
        assert more["gbw_hz"] > base["gbw_hz"]
        assert more["power_w"] > base["power_w"]

    def test_longer_input_l_increases_gain(self, fc, fc_design):
        base = fc.evaluate_nominal(fc_design)[0]
        longer = fc_design.copy()
        longer[1] *= 2.0  # l1: lambda ~ 1/leff, ro1 up -> gain up
        assert fc.evaluate_nominal(longer)[0] > base

    def test_bias_margin_sets_nominal_satmargin(self, fc, fc_design):
        """At the nominal point the binding margin should be close to the
        designed vmargin (the replica bias tracks exactly)."""
        m = dict(zip(fc.metric_names(), fc.evaluate_nominal(fc_design)))
        assert m["satmargin_v"] == pytest.approx(0.10, abs=0.05)

    def test_deterministic(self, fc, fc_design):
        s = fc.variation.sample(7, np.random.default_rng(0))
        np.testing.assert_array_equal(fc.evaluate(fc_design, s),
                                      fc.evaluate(fc_design, s))

    def test_no_nans_on_random_designs(self, fc):
        rng = np.random.default_rng(5)
        xs = fc.design_space().sample(20, rng)
        s = fc.variation.sample(16, rng)
        for x in xs:
            out = fc.evaluate(x, s)
            assert np.all(np.isfinite(out)), f"non-finite metrics at {x}"

    def test_mismatch_spreads_performance(self, fc, fc_design):
        rng = np.random.default_rng(1)
        s = fc.variation.sample(400, rng)
        out = fc.evaluate(fc_design, s)
        # Gain and power must both show process-induced spread.
        assert np.std(out[:, 0]) > 0.01
        assert np.std(out[:, 4]) > 1e-7


class TestTelescopicPhysics:
    def test_nominal_metrics_in_physical_ranges(self, ts, ts_design):
        m = dict(zip(ts.metric_names(), ts.evaluate_nominal(ts_design)))
        assert 60 < m["a0_db"] < 160
        assert 1e7 < m["gbw_hz"] < 5e9
        assert 0 < m["pm_deg"] <= 120
        assert 0 < m["os_v"] < 2 * 1.2
        assert 0 < m["power_w"] < 50e-3
        assert m["area_m2"] > 0
        assert m["offset_v"] >= 0

    def test_offset_zero_at_nominal(self, ts, ts_design):
        """Perfect matching (nominal point) -> no offset."""
        m = dict(zip(ts.metric_names(), ts.evaluate_nominal(ts_design)))
        assert m["offset_v"] == pytest.approx(0.0, abs=1e-12)

    def test_offset_shrinks_with_input_area(self, ts, ts_design):
        rng = np.random.default_rng(2)
        s = ts.variation.sample(300, rng)
        small = ts.evaluate(ts_design, s)
        bigger = ts_design.copy()
        bigger[0] *= 3.0  # w1
        bigger[1] *= 3.0  # l1
        large = ts.evaluate(bigger, s)
        j = ts.metric_names().index("offset_v")
        assert np.mean(large[:, j]) < np.mean(small[:, j])

    def test_bigger_cc_lowers_gbw_and_raises_area(self, ts, ts_design):
        base = dict(zip(ts.metric_names(), ts.evaluate_nominal(ts_design)))
        big = ts_design.copy()
        big[16] *= 2.0  # cc
        more = dict(zip(ts.metric_names(), ts.evaluate_nominal(big)))
        assert more["gbw_hz"] < base["gbw_hz"]
        assert more["area_m2"] > base["area_m2"]

    def test_rz_tracks_poly_sheet_resistance(self, ts, ts_design):
        """PM must respond to the RSHPOLY inter-die variable."""
        model = ts.variation
        idx = model.inter.index_of("RSHPOLY")
        lo = model.nominal().copy()
        hi = model.nominal().copy()
        lo[idx], hi[idx] = 0.7, 1.3
        pm_j = ts.metric_names().index("pm_deg")
        pm_lo = ts.evaluate(ts_design, lo[None, :])[0, pm_j]
        pm_hi = ts.evaluate(ts_design, hi[None, :])[0, pm_j]
        assert pm_lo != pm_hi

    def test_no_nans_on_random_designs(self, ts):
        rng = np.random.default_rng(6)
        xs = ts.design_space().sample(20, rng)
        s = ts.variation.sample(16, rng)
        for x in xs:
            out = ts.evaluate(x, s)
            assert np.all(np.isfinite(out)), f"non-finite metrics at {x}"
