"""AC analysis: transfer functions, unity-gain measures, pole extraction."""

import numpy as np
import pytest

from repro.circuit.ac import ACAnalysis, TransferFunction
from repro.circuit.mna import solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.tech import C035Technology


def _rc_lowpass(r=1e3, c=1e-9):
    circuit = Circuit()
    circuit.add_voltage_source("Vin", "in", "0", 0.0, ac=1.0)
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", c)
    return circuit


class TestRCLowPass:
    def test_dc_gain_and_corner(self):
        r, c = 1e3, 1e-9
        circuit = _rc_lowpass(r, c)
        analysis = ACAnalysis(circuit, solve_dc(circuit))
        f3db = 1.0 / (2 * np.pi * r * c)
        tf = analysis.transfer("out", frequencies=np.logspace(2, 9, 200))
        assert tf.dc_gain() == pytest.approx(1.0, rel=1e-3)
        # At the corner frequency the magnitude is 1/sqrt(2).
        idx = np.argmin(np.abs(tf.frequencies - f3db))
        assert tf.magnitude[idx] == pytest.approx(1 / np.sqrt(2), rel=0.05)

    def test_pole_extraction_matches_rc(self):
        r, c = 2e3, 0.5e-9
        circuit = _rc_lowpass(r, c)
        analysis = ACAnalysis(circuit, solve_dc(circuit))
        poles = analysis.poles()
        f_pole = np.abs(poles[0])
        assert f_pole == pytest.approx(1.0 / (2 * np.pi * r * c), rel=1e-3)

    def test_phase_at_corner(self):
        r, c = 1e3, 1e-9
        circuit = _rc_lowpass(r, c)
        analysis = ACAnalysis(circuit, solve_dc(circuit))
        tf = analysis.transfer("out", frequencies=np.logspace(2, 9, 400))
        f3db = 1.0 / (2 * np.pi * r * c)
        assert tf.phase_at(f3db) == pytest.approx(-45.0, abs=2.0)


class TestAmplifierTF:
    """Single-pole VCCS amplifier: A0 = gm*R, unity-gain f = gm/(2 pi C)."""

    def _make(self, gm=1e-3, r=100e3, c=1e-12):
        circuit = Circuit()
        circuit.add_voltage_source("Vin", "in", "0", 0.0, ac=1.0)
        circuit.add_vccs("G1", "0", "out", "in", "0", gm=gm)
        circuit.add_resistor("RL", "out", "0", r)
        circuit.add_capacitor("CL", "out", "0", c)
        return ACAnalysis(circuit, solve_dc(circuit))

    def test_dc_gain(self):
        analysis = self._make()
        tf = analysis.transfer("out", frequencies=np.logspace(0, 11, 400))
        assert tf.dc_gain() == pytest.approx(100.0, rel=1e-3)

    def test_unity_gain_frequency(self):
        gm, c = 1e-3, 1e-12
        analysis = self._make(gm=gm, c=c)
        tf = analysis.transfer("out", frequencies=np.logspace(3, 11, 600))
        assert tf.unity_gain_frequency() == pytest.approx(
            gm / (2 * np.pi * c), rel=0.02
        )

    def test_phase_margin_single_pole_is_90(self):
        analysis = self._make()
        tf = analysis.transfer("out", frequencies=np.logspace(3, 11, 600))
        assert tf.phase_margin() == pytest.approx(90.0, abs=3.0)


class TestTransferFunctionEdges:
    def test_no_unity_crossing_returns_nan(self):
        tf = TransferFunction(
            frequencies=np.logspace(0, 3, 10),
            response=np.full(10, 0.5 + 0j),
        )
        assert np.isnan(tf.unity_gain_frequency())
        assert np.isnan(tf.phase_margin())

    def test_magnitude_db(self):
        tf = TransferFunction(
            frequencies=np.array([1.0, 10.0]),
            response=np.array([10.0 + 0j, 1.0 + 0j]),
        )
        np.testing.assert_allclose(tf.magnitude_db, [20.0, 0.0], atol=1e-9)


class TestMosfetAC:
    def test_common_source_gain_matches_small_signal_formula(self):
        tech = C035Technology()
        rd = 30e3
        circuit = Circuit()
        circuit.add_voltage_source("VDD", "vdd", "0", 3.3)
        circuit.add_voltage_source("VG", "g", "0", 0.9, ac=1.0)
        circuit.add_resistor("RD", "vdd", "d", rd)
        circuit.add_mosfet("M1", "d", "g", "0", "0", tech.nmos, 5e-6, 1e-6)
        dc = solve_dc(circuit)
        op = dc.op["M1"]
        assert op.saturated
        analysis = ACAnalysis(circuit, dc)
        tf = analysis.transfer("d", frequencies=np.logspace(0, 5, 30))
        expected = op.gm / (1.0 / rd + op.gds)
        assert tf.dc_gain() == pytest.approx(expected, rel=0.02)
