"""Specification semantics: margins, pass/fail, violations."""

import numpy as np
import pytest

from repro.specs import Spec, SpecSet


@pytest.fixture
def specs():
    return SpecSet(
        [
            Spec("gain", ">=", 70.0, unit="dB"),
            Spec("power", "<=", 1.0e-3, unit="W"),
        ]
    )


class TestSpec:
    def test_lower_bound_margin_sign(self):
        spec = Spec("gain", ">=", 70.0)
        assert spec.margin(75.0) > 0
        assert spec.margin(65.0) < 0
        assert spec.margin(70.0) == pytest.approx(0.0)

    def test_upper_bound_margin_sign(self):
        spec = Spec("power", "<=", 1e-3)
        assert spec.margin(0.5e-3) > 0
        assert spec.margin(2e-3) < 0

    def test_margin_normalised_by_scale(self):
        spec = Spec("gain", ">=", 70.0, scale=10.0)
        assert spec.margin(80.0) == pytest.approx(1.0)

    def test_default_scale_is_abs_bound(self):
        assert Spec("power", "<=", 1e-3).effective_scale == 1e-3
        assert Spec("sat", ">=", 0.0).effective_scale == 1.0

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Spec("x", "==", 1.0)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Spec("x", ">=", 1.0, scale=0.0)

    def test_passes_scalar_and_array(self):
        spec = Spec("gain", ">=", 70.0)
        assert spec.passes(71.0) is True
        out = spec.passes(np.array([69.0, 71.0]))
        np.testing.assert_array_equal(out, [False, True])

    def test_str(self):
        assert str(Spec("gain", ">=", 70.0, unit="dB")) == "gain >= 70 dB"


class TestSpecSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SpecSet([Spec("a", ">=", 0.0), Spec("a", "<=", 1.0)])

    def test_metric_names_order(self, specs):
        assert specs.metric_names == ["gain", "power"]
        assert specs.index_of("power") == 1
        with pytest.raises(KeyError):
            specs.index_of("missing")

    def test_getitem(self, specs):
        assert specs["gain"].bound == 70.0
        with pytest.raises(KeyError):
            specs["missing"]

    def test_passes_requires_all_specs(self, specs):
        performance = np.array(
            [
                [75.0, 0.5e-3],  # both pass
                [65.0, 0.5e-3],  # gain fails
                [75.0, 2.0e-3],  # power fails
            ]
        )
        np.testing.assert_array_equal(specs.passes(performance), [True, False, False])

    def test_violation_zero_iff_feasible(self, specs):
        performance = np.array([[75.0, 0.5e-3], [65.0, 2.0e-3]])
        violation = specs.violation(performance)
        assert violation[0] == 0.0
        assert violation[1] > 0.0

    def test_violation_additive_over_specs(self, specs):
        one_bad = specs.violation(np.array([[65.0, 0.5e-3]]))[0]
        two_bad = specs.violation(np.array([[65.0, 2.0e-3]]))[0]
        assert two_bad > one_bad

    def test_nan_performance_fails_hard(self, specs):
        performance = np.array([[np.nan, 0.5e-3]])
        assert not specs.passes(performance)[0]
        assert specs.violation(performance)[0] > 100.0

    def test_wrong_column_count_rejected(self, specs):
        with pytest.raises(ValueError):
            specs.passes(np.zeros((3, 5)))

    def test_one_dimensional_input_promoted(self, specs):
        assert specs.passes(np.array([75.0, 0.5e-3])).shape == (1,)

    def test_worst_margin(self, specs):
        performance = np.array([[75.0, 0.9e-3]])
        worst = specs.worst_margin(performance)[0]
        # gain margin 5/70 ~ 0.071 is more critical than power's 0.1.
        assert worst == pytest.approx(5.0 / 70.0, rel=1e-9)

    def test_describe_lists_all(self, specs):
        text = specs.describe()
        assert "gain" in text and "power" in text
