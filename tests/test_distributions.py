"""Marginal distributions: moments, ppf consistency, reproducibility."""

import numpy as np
import pytest

from repro.process.distributions import (
    LognormalDistribution,
    NormalDistribution,
    TruncatedNormalDistribution,
    UniformDistribution,
)

ALL_DISTRIBUTIONS = [
    NormalDistribution(1.0, 0.1),
    LognormalDistribution(0.0, 0.2),
    UniformDistribution(-1.0, 3.0),
    TruncatedNormalDistribution(0.0, 1.0, -2.0, 2.0),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: type(d).__name__)
class TestCommonContract:
    def test_sample_moments_match(self, dist):
        rng = np.random.default_rng(0)
        x = dist.sample(60_000, rng)
        assert np.mean(x) == pytest.approx(dist.mean, abs=4 * dist.std / np.sqrt(60_000) + 1e-9)
        assert np.std(x) == pytest.approx(dist.std, rel=0.05)

    def test_ppf_median_quartiles_monotone(self, dist):
        u = np.array([0.25, 0.5, 0.75])
        q = dist.ppf(u)
        assert q[0] < q[1] < q[2]

    def test_ppf_matches_empirical_quantiles(self, dist):
        rng = np.random.default_rng(1)
        x = np.sort(dist.sample(60_000, rng))
        for p in (0.1, 0.5, 0.9):
            empirical = x[int(p * len(x))]
            assert dist.ppf(np.array([p]))[0] == pytest.approx(
                empirical, abs=0.03 * max(dist.std, 1e-6) + 0.01 * abs(empirical) + 1e-9
            )

    def test_sampling_reproducible(self, dist):
        a = dist.sample(10, np.random.default_rng(3))
        b = dist.sample(10, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_normal_negative_sigma(self):
        with pytest.raises(ValueError):
            NormalDistribution(0.0, -1.0)

    def test_uniform_inverted_bounds(self):
        with pytest.raises(ValueError):
            UniformDistribution(2.0, 1.0)

    def test_truncnorm_invalid(self):
        with pytest.raises(ValueError):
            TruncatedNormalDistribution(0.0, 0.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            TruncatedNormalDistribution(0.0, 1.0, 1.0, -1.0)


class TestSpecificBehaviour:
    def test_lognormal_strictly_positive(self):
        dist = LognormalDistribution(0.0, 0.5)
        x = dist.sample(10_000, np.random.default_rng(2))
        assert np.all(x > 0)

    def test_truncation_respected(self):
        dist = TruncatedNormalDistribution(0.0, 1.0, -0.5, 0.5)
        x = dist.sample(10_000, np.random.default_rng(2))
        assert np.all(x >= -0.5) and np.all(x <= 0.5)

    def test_ppf_clips_extreme_u(self):
        dist = NormalDistribution(0.0, 1.0)
        assert np.isfinite(dist.ppf(np.array([0.0, 1.0]))).all()
