"""Statistical parameter groups: ordering, sampling, inverse-CDF mapping."""

import numpy as np
import pytest

from repro.process.distributions import NormalDistribution, UniformDistribution
from repro.process.parameters import ParameterGroup, StatisticalParameter


@pytest.fixture
def group():
    return ParameterGroup(
        [
            StatisticalParameter("a", NormalDistribution(1.0, 0.1)),
            StatisticalParameter("b", UniformDistribution(0.0, 2.0)),
            StatisticalParameter.normal("c", 0.0, 1.0),
        ]
    )


class TestConstruction:
    def test_duplicate_names_rejected(self, group):
        with pytest.raises(ValueError):
            group.add(StatisticalParameter.normal("a"))

    def test_names_preserve_order(self, group):
        assert group.names == ["a", "b", "c"]
        assert group.index_of("b") == 1
        assert "b" in group and "z" not in group

    def test_getitem(self, group):
        assert group["a"].distribution.mean == pytest.approx(1.0)

    def test_extend(self):
        g = ParameterGroup()
        g.extend([StatisticalParameter.normal("x"), StatisticalParameter.normal("y")])
        assert len(g) == 2


class TestMoments:
    def test_means_and_stds_column_order(self, group):
        np.testing.assert_allclose(group.means(), [1.0, 1.0, 0.0])
        np.testing.assert_allclose(
            group.stds(), [0.1, 2.0 / np.sqrt(12.0), 1.0], rtol=1e-12
        )


class TestSampling:
    def test_shape_and_reproducibility(self, group):
        a = group.sample(100, np.random.default_rng(0))
        b = group.sample(100, np.random.default_rng(0))
        assert a.shape == (100, 3)
        np.testing.assert_array_equal(a, b)

    def test_negative_count_rejected(self, group):
        with pytest.raises(ValueError):
            group.sample(-1, np.random.default_rng(0))

    def test_column_extraction(self, group):
        samples = group.sample(50, np.random.default_rng(1))
        np.testing.assert_array_equal(group.column(samples, "b"), samples[:, 1])

    def test_from_uniform_respects_marginals(self, group):
        u = np.full((1, 3), 0.5)
        mid = group.from_uniform(u)[0]
        assert mid[0] == pytest.approx(1.0)   # normal median = mean
        assert mid[1] == pytest.approx(1.0)   # uniform median = midpoint

    def test_from_uniform_shape_validation(self, group):
        with pytest.raises(ValueError):
            group.from_uniform(np.zeros((5, 2)))

    def test_describe_mentions_every_parameter(self, group):
        text = group.describe()
        for name in group.names:
            assert name in text
