"""The warm-start evaluation cache: keying, LRU budget, spill, identity.

The load-bearing guarantees:

* **Bit-identity** — with the default ledger-faithful accounting, a cached
  run (cold or warm, any backend, any worker count) produces exactly the
  result of a cache-off run; only wall-clock and the observability
  counters move.
* **Ledger faithfulness** — replayed rows are still charged to their
  category and additionally recorded under the ledger's ``cached`` column,
  so the paper-accounting totals never change unless the run explicitly
  opts into ``count_hits=False``.
"""

import json
import warnings

import numpy as np
import pytest

from repro.api import RunSpec, optimize
from repro.engine import (
    CACHES,
    LegacyEngine,
    LRUEvaluationCache,
    NullCache,
    ProcessPoolEngine,
    SerialEngine,
    make_cache,
    make_engine,
)
from repro.engine.cache import KEY_MODES, block_key
from repro.ledger import SimulationLedger
from repro.problems import make_quadratic_problem, make_sphere_problem
from repro.sampling import make_sampler
from repro.sweep import MethodSpec, ProblemSpec, SweepSpec, run_sweep
from repro.sweep.records import RunRecord
from repro.yieldsim import CandidateYieldState

TINY = {"pop_size": 8, "max_generations": 4}
#: A configuration whose run triggers the Nelder-Mead local search — the
#: refinement-heavy regime the cache targets.
LS_HEAVY = {
    "pop_size": 10,
    "max_generations": 12,
    "ls_patience": 1,
    "ls_max_triggers": 4,
    "n_max": 150,
    "sim_ave": 20,
    "n0": 10,
    "stop_patience": 30,
}


def _states(problem, n=6, seed=0, ledger=None):
    """Candidate states with per-candidate derived RNG streams."""
    sampler = make_sampler("lhs", problem.variation)
    ledger = ledger if ledger is not None else SimulationLedger()
    rng = np.random.default_rng(seed)
    xs = problem.space.sample(n, rng)
    states = [
        CandidateYieldState(
            problem,
            x,
            sampler,
            np.random.default_rng(seed * 1000 + i),
            ledger,
            "stage1",
        )
        for i, x in enumerate(xs)
    ]
    return states, ledger


def _fingerprint(states, ledger):
    """Result identity of a round: estimates + charges, minus observability.

    The ledger's ``cached`` column says how much was *replayed*, which
    legitimately differs between warm and cold executions of the same
    round — it is excluded here exactly like ``identity_dict`` excludes it.
    """
    charges = ledger.to_dict()
    charges.pop("cached")
    return (
        [(s.n, s.n_simulated, s._passes) for s in states],
        charges,
    )


class TestRegistryAndFactory:
    def test_builtin_caches_registered(self):
        assert {"lru", "null"} <= set(CACHES.names())

    def test_make_cache_none_means_no_cache(self):
        assert make_cache(None) is None

    def test_make_cache_none_rejects_params(self):
        with pytest.raises(TypeError, match="cache name"):
            make_cache(None, max_bytes=1)

    def test_make_cache_by_name_with_params(self):
        cache = make_cache("lru", max_bytes=1234)
        assert isinstance(cache, LRUEvaluationCache)
        assert cache.max_bytes == 1234

    def test_make_cache_passes_instances_through(self):
        cache = NullCache()
        assert make_cache(cache) is cache

    def test_make_cache_rejects_params_for_instances(self):
        with pytest.raises(TypeError, match="resolved by name"):
            make_cache(LRUEvaluationCache(), max_bytes=1)

    def test_unknown_cache_lists_registered(self):
        with pytest.raises(ValueError, match="lru.*null"):
            make_cache("memcached")

    def test_negative_byte_budget_rejected(self):
        with pytest.raises(ValueError, match="max_bytes"):
            LRUEvaluationCache(max_bytes=-1)


class TestKeying:
    def test_same_content_same_key(self):
        problem = make_sphere_problem()
        x = np.array([0.1, 0.2, 0.3, 0.4])
        samples = np.arange(8.0).reshape(8, 1)
        assert block_key("ns", problem, x, samples) == block_key(
            "ns", problem, x.copy(), samples.copy()
        )

    def test_any_component_changes_the_key(self):
        problem = make_sphere_problem()
        other = make_quadratic_problem()
        x = np.array([0.1, 0.2, 0.3, 0.4])
        samples = np.arange(8.0).reshape(8, 1)
        base = block_key("ns", problem, x, samples)
        assert block_key("other", problem, x, samples) != base
        assert block_key("ns", other, x, samples) != base
        assert block_key("ns", problem, x + 1e-12, samples) != base
        assert block_key("ns", problem, x, samples + 1e-12) != base

    def test_shape_is_part_of_the_key(self):
        problem = make_sphere_problem()
        x = np.array([0.5, 0.5, 0.5, 0.5])
        flat = np.zeros(4).reshape(4, 1)
        assert block_key("", problem, x, flat) != block_key(
            "", problem, x, flat.reshape(2, 2)
        )


class TestLRUMechanics:
    def test_round_trip_and_stats(self):
        cache = LRUEvaluationCache()
        rows = np.arange(6.0).reshape(3, 2)
        assert cache.lookup("k", 3) is None
        cache.store("k", rows)
        hit = cache.lookup("k", 3)
        np.testing.assert_array_equal(hit, rows)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rows == 3
        assert cache.stats.miss_rows == 3
        assert cache.stats.entries == 1
        assert cache.stats.bytes == rows.nbytes

    def test_eviction_under_tiny_byte_budget(self):
        rows = np.zeros((4, 2))  # 64 bytes each
        cache = LRUEvaluationCache(max_bytes=3 * rows.nbytes)
        for i in range(5):
            cache.store(f"k{i}", rows)
        assert cache.stats.evictions == 2
        assert cache.stats.entries == 3
        assert cache.stats.bytes <= cache.max_bytes
        # Oldest entries went first.
        assert cache.lookup("k0", 4) is None
        assert cache.lookup("k1", 4) is None
        assert cache.lookup("k4", 4) is not None

    def test_lookup_refreshes_recency(self):
        rows = np.zeros((2, 2))
        cache = LRUEvaluationCache(max_bytes=2 * rows.nbytes)
        cache.store("a", rows)
        cache.store("b", rows)
        assert cache.lookup("a", 2) is not None  # a becomes most-recent
        cache.store("c", rows)  # evicts b, not a
        assert cache.lookup("a", 2) is not None
        assert cache.lookup("b", 2) is None

    def test_duplicate_put_keeps_one_copy(self):
        cache = LRUEvaluationCache()
        rows = np.zeros((2, 2))
        cache.store("k", rows)
        cache.store("k", rows)
        assert cache.stats.entries == 1
        assert cache.stats.bytes == rows.nbytes

    def test_null_cache_never_remembers(self):
        cache = NullCache()
        cache.store("k", np.zeros((2, 2)))
        assert cache.lookup("k", 2) is None
        assert cache.stats.misses == 1


class TestSpillFile:
    def test_round_trip(self, tmp_path):
        spill = tmp_path / "cache.jsonl"
        writer = LRUEvaluationCache(spill_path=spill)
        rows = np.arange(10.0).reshape(5, 2)
        writer.store("k1", rows)
        writer.store("k2", rows + 1)
        writer.close()

        reader = LRUEvaluationCache(spill_path=spill)
        assert reader.stats.spill_loaded == 2
        assert reader.stats.entries == 2
        np.testing.assert_array_equal(reader.lookup("k1", 5), rows)
        np.testing.assert_array_equal(reader.lookup("k2", 5), rows + 1)

    def test_byte_budget_applies_to_loaded_entries(self, tmp_path):
        spill = tmp_path / "cache.jsonl"
        rows = np.zeros((4, 2))
        writer = LRUEvaluationCache(spill_path=spill)
        for i in range(5):
            writer.store(f"k{i}", rows)
        writer.close()

        reader = LRUEvaluationCache(max_bytes=2 * rows.nbytes, spill_path=spill)
        assert reader.stats.entries == 2
        assert reader.stats.bytes <= reader.max_bytes

    def test_torn_line_is_dropped_with_warning(self, tmp_path):
        spill = tmp_path / "cache.jsonl"
        writer = LRUEvaluationCache(spill_path=spill)
        rows = np.arange(4.0).reshape(2, 2)
        writer.store("good", rows)
        writer.close()
        with open(spill, "a", encoding="utf-8") as handle:
            handle.write('{"key": "torn", "shape": [2')  # killed mid-write

        with pytest.warns(RuntimeWarning, match="spill line"):
            reader = LRUEvaluationCache(spill_path=spill)
        assert reader.stats.spill_loaded == 1
        np.testing.assert_array_equal(reader.lookup("good", 2), rows)

    def test_append_after_torn_tail_starts_clean(self, tmp_path):
        spill = tmp_path / "cache.jsonl"
        with open(spill, "w", encoding="utf-8") as handle:
            handle.write('{"key": "torn"')  # no newline, unparseable
        with pytest.warns(RuntimeWarning):
            cache = LRUEvaluationCache(spill_path=spill)
        rows = np.arange(4.0).reshape(2, 2)
        cache.store("fresh", rows)
        cache.close()

        with pytest.warns(RuntimeWarning):
            reader = LRUEvaluationCache(spill_path=spill)
        np.testing.assert_array_equal(reader.lookup("fresh", 2), rows)

    def test_close_is_idempotent(self, tmp_path):
        cache = LRUEvaluationCache(spill_path=tmp_path / "cache.jsonl")
        cache.store("k", np.zeros((1, 1)))
        cache.close()
        cache.close()


class TestEngineEquivalence:
    """Every backend, cached or not, produces bit-identical estimates."""

    GAINS = [5, 0, 17, 3, 50, 1]

    def _run(self, problem, engine, cache):
        engine.cache = cache
        states, ledger = _states(problem)
        try:
            engine.refine_round(problem, states, self.GAINS)
        finally:
            engine.close()
        return _fingerprint(states, ledger)

    @pytest.mark.parametrize("problem_factory", [make_sphere_problem])
    def test_cold_cache_matches_uncached_across_backends(self, problem_factory):
        problem = problem_factory()
        reference = self._run(problem, SerialEngine(), None)
        for engine in (
            SerialEngine(),
            LegacyEngine(),
            ProcessPoolEngine(workers=2, min_dispatch_rows=1),
        ):
            assert self._run(problem, engine, LRUEvaluationCache()) == reference

    def test_warm_cache_matches_uncached_across_backends(self):
        problem = make_sphere_problem()
        reference = self._run(problem, SerialEngine(), None)
        cache = LRUEvaluationCache()
        self._run(problem, SerialEngine(), cache)  # populate
        for engine in (
            SerialEngine(),
            LegacyEngine(),
            ProcessPoolEngine(workers=2, min_dispatch_rows=1),
        ):
            before = cache.stats.to_dict()
            assert self._run(problem, engine, cache) == reference
            delta = cache.stats.delta(before)
            assert delta["misses"] == 0
            assert delta["hits"] == sum(1 for g in self.GAINS if g > 0)

    def test_hit_partition_identical_for_all_backends(self):
        problem = make_sphere_problem()
        stats = []
        for engine in (SerialEngine(), LegacyEngine(), ProcessPoolEngine(workers=2)):
            cache = LRUEvaluationCache()
            self._run(problem, engine, cache)
            stats.append(cache.stats.to_dict())
        assert stats[0] == stats[1] == stats[2]

    def test_auto_engine_carries_cache_through_commit(self):
        problem = make_sphere_problem()
        cache = LRUEvaluationCache()
        engine = make_engine("auto", pilot_rows=10)
        engine.cache = cache
        states, _ = _states(problem)
        try:
            engine.refine_round(problem, states, self.GAINS)
            assert engine.chosen is not None
            assert engine._delegate.cache is cache
        finally:
            engine.close()
        assert cache.stats.misses > 0


class TestLedgerFaithfulness:
    def test_cached_column_tracks_replayed_rows(self):
        problem = make_sphere_problem()
        cache = LRUEvaluationCache()
        engine = SerialEngine()
        engine.cache = cache

        cold, cold_ledger = _states(problem)
        engine.refine_round(problem, cold, [10] * len(cold))
        assert cold_ledger.cached == 0

        warm, warm_ledger = _states(problem)
        engine.refine_round(problem, warm, [10] * len(warm))
        assert warm_ledger.total == cold_ledger.total
        assert warm_ledger.cached == warm_ledger.total

    def test_count_hits_false_makes_hits_free(self):
        problem = make_sphere_problem()
        cache = LRUEvaluationCache(count_hits=False)
        engine = SerialEngine()
        engine.cache = cache

        cold, cold_ledger = _states(problem)
        engine.refine_round(problem, cold, [10] * len(cold))
        assert cold_ledger.total > 0  # misses always charge

        warm, warm_ledger = _states(problem)
        engine.refine_round(problem, warm, [10] * len(warm))
        assert warm_ledger.total == 0
        assert warm_ledger.cached == cold_ledger.total

    def test_ledger_serialization_round_trips_cached(self):
        ledger = SimulationLedger()
        ledger.charge(10, category="stage1")
        ledger.record_cached(7)
        clone = SimulationLedger.from_dict(ledger.to_dict())
        assert clone.cached == 7
        assert clone.total == 10
        assert ledger.snapshot().cached == 7


class TestSampleKeyMode:
    """``key="sample"`` replays individual rows out of partially-new blocks.

    Block keying only hits when an *identical* block comes back; sample
    keying hashes each row, so growing a candidate's sample set (the same
    RNG stream, drawn further) replays the prefix and simulates only the
    new rows.
    """

    def _round(self, problem, cache, gains, seed=0):
        engine = SerialEngine()
        engine.cache = cache
        states, ledger = _states(problem, seed=seed)
        engine.refine_round(problem, states, gains)
        return _fingerprint(states, ledger), ledger

    def test_key_mode_validated(self):
        assert KEY_MODES == ("block", "sample")
        with pytest.raises(ValueError, match="key"):
            make_cache("lru", key="bogus")
        assert make_cache("lru", key="sample").key_mode == "sample"

    def test_row_key_distinct_from_one_row_block_key(self):
        # A 1-row block and its row have identical bytes; the shape repr
        # baked into the digest keeps their cache entries apart.
        problem = make_sphere_problem()
        cache = LRUEvaluationCache(key="sample")
        x = np.zeros(problem.space.dimension)
        row = np.arange(4.0)
        assert cache.key(problem, x, row) != cache.key(problem, x, row[None, :])

    @staticmethod
    def _pending(problem, n_rows, seed=0):
        from repro.yieldsim.estimator import PendingRefinement

        class _Shell:
            def __init__(self, x):
                self.x = x

        rng = np.random.default_rng(seed)
        x = problem.space.clip(np.zeros(problem.space.dimension))
        samples = rng.normal(size=(n_rows, problem.variation.dimension))
        return PendingRefinement(_Shell(x), samples, "stage1")

    def _evaluate(self, problem, cache, block):
        from repro.engine.base import evaluate_pending
        from repro.engine.cache import CachedRound

        round_ = CachedRound(cache, problem, [block])
        miss = evaluate_pending(problem, round_.misses) if round_.misses else None
        return round_.assemble(miss), round_.hit_rows

    def test_partial_block_hits_replay_known_rows(self):
        problem = make_sphere_problem()
        nine = self._pending(problem, 9)  # rows 0..8
        four = self._pending(problem, 4)  # rows 0..3 (same stream prefix)
        reference = np.array(
            self._evaluate(problem, LRUEvaluationCache(key="sample"), nine)[0]
        )

        # Warm a sample-keyed cache with the 4-row block, then present the
        # 9-row superset: the prefix replays, only rows 4..8 simulate.
        sample_cache = LRUEvaluationCache(key="sample")
        self._evaluate(problem, sample_cache, four)
        before = sample_cache.stats.to_dict()
        performance, hit_rows = self._evaluate(problem, sample_cache, nine)
        delta = sample_cache.stats.delta(before)
        np.testing.assert_array_equal(performance, reference)
        assert hit_rows == [4]
        assert delta["hit_rows"] == 4
        assert delta["miss_rows"] == 5

        # Block keying cannot serve any of this: the 9-row block is a new
        # shape, so the whole block misses.
        block_cache = LRUEvaluationCache(key="block")
        self._evaluate(problem, block_cache, four)
        before = block_cache.stats.to_dict()
        performance, hit_rows = self._evaluate(problem, block_cache, nine)
        delta = block_cache.stats.delta(before)
        np.testing.assert_array_equal(performance, reference)
        assert hit_rows == [0]
        assert delta["hit_rows"] == 0
        assert delta["miss_rows"] == 9

    def test_interleaved_rows_splice_in_order(self):
        # Hits and misses alternating inside one block: warm with the even
        # rows, present all rows, and the splice must preserve row order.
        problem = make_sphere_problem()
        full = self._pending(problem, 8)
        evens = type(full)(full.state, full.samples[::2], full.category)
        cache = LRUEvaluationCache(key="sample")
        even_rows, _ = self._evaluate(problem, cache, evens)
        before = cache.stats.to_dict()
        performance, hit_rows = self._evaluate(problem, cache, full)
        delta = cache.stats.delta(before)
        assert hit_rows == [4]
        assert delta["hit_rows"] == 4 and delta["miss_rows"] == 4
        np.testing.assert_array_equal(performance[::2], even_rows)
        np.testing.assert_array_equal(
            performance,
            self._evaluate(problem, LRUEvaluationCache(key="sample"), full)[0],
        )

    def test_full_replay_still_works(self):
        problem = make_sphere_problem()
        cache = LRUEvaluationCache(key="sample")
        cold, _ = self._round(problem, cache, [6] * 6)
        before = cache.stats.to_dict()
        warm, _ = self._round(problem, cache, [6] * 6)
        delta = cache.stats.delta(before)
        assert warm == cold
        assert delta["miss_rows"] == 0 and delta["hit_rows"] == 6 * 6

    @pytest.mark.parametrize("count_hits, expect_total", [(True, 9), (False, 5)])
    def test_partial_replay_ledger_accounting(self, count_hits, expect_total):
        # scatter_round's generalized accounting: a block with 4 of its 9
        # rows replayed records cached=4 and charges 9 (ledger-faithful
        # default) or only the 5 simulated rows (count_hits=False).
        from repro.engine.base import scatter_round
        from repro.yieldsim.estimator import PendingRefinement

        problem = make_sphere_problem()
        ledger = SimulationLedger()

        class _State:
            def __init__(self):
                self.x = np.zeros(problem.space.dimension)
                self.ledger = ledger

            def absorb(self, *args, **kwargs):
                pass

        samples = np.random.default_rng(0).normal(
            size=(9, problem.variation.dimension)
        )
        block = PendingRefinement(_State(), samples, "stage1")
        performance = np.zeros((9, len(problem.specs)))
        cache = LRUEvaluationCache(key="sample", count_hits=count_hits)
        scatter_round(problem, [block], performance, [4], cache)
        assert ledger.cached == 4
        assert ledger.total == expect_total

    def test_optimize_bit_identity_with_sample_cache(self):
        baseline = optimize(problem="sphere", seed=5, **TINY).identity_dict()
        cache = make_cache("lru", key="sample")
        cold = optimize(problem="sphere", seed=5, cache=cache, **TINY)
        warm = optimize(problem="sphere", seed=5, cache=cache, **TINY)
        assert cold.identity_dict() == baseline
        assert warm.identity_dict() == baseline
        assert warm.cache_stats["hit_rows"] > 0

    def test_run_spec_surface(self):
        spec = RunSpec(
            problem="sphere",
            seed=5,
            cache="lru",
            cache_params={"key": "sample"},
            overrides=TINY,
        )
        result = optimize(spec)
        assert result.cache_stats["misses"] > 0


class TestOptimizeBitIdentity:
    def test_cold_cache_is_bit_identical_to_uncached(self):
        base = RunSpec(problem="sphere", method="moheco", seed=7, overrides=TINY)
        plain = optimize(base)
        cached = optimize(base.with_cache("lru"))
        assert cached.identity_dict() == plain.identity_dict()
        assert cached.n_simulations == plain.n_simulations
        assert cached.ledger.total == plain.ledger.total
        assert cached.cache_stats is not None
        assert cached.cache_stats["hits"] == 0
        assert plain.cache_stats is None

    def test_warm_run_is_bit_identical_and_charges_the_same(self, tmp_path):
        spec = RunSpec(
            problem="quadratic",
            method="moheco",
            seed=11,
            overrides=LS_HEAVY,
        ).with_cache("lru", spill_path=str(tmp_path / "spill.jsonl"))
        cold = optimize(spec)
        warm = optimize(spec)
        assert warm.identity_dict() == cold.identity_dict()
        assert warm.n_simulations == cold.n_simulations
        assert warm.cache_stats["hits"] > 0
        assert warm.cache_stats["misses"] == 0
        assert warm.ledger.cached == warm.cache_stats["hit_rows"]
        # The run is genuinely local-search-heavy: NM fired at least once.
        assert any(g.local_search_fired for g in cold.history)

    def test_shared_instance_reports_per_run_deltas(self):
        cache = LRUEvaluationCache()
        kwargs = dict(method="moheco", seed=7, cache=cache, **TINY)
        cold = optimize("sphere", **kwargs)
        warm = optimize("sphere", **kwargs)
        assert cold.cache_stats["hits"] == 0
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hit_rows"] == cold.cache_stats["miss_rows"]
        assert warm.identity_dict() == cold.identity_dict()

    def test_count_hits_false_changes_reported_totals(self):
        cache = LRUEvaluationCache(count_hits=False)
        kwargs = dict(method="moheco", seed=7, cache=cache, **TINY)
        cold = optimize("sphere", **kwargs)
        warm = optimize("sphere", **kwargs)
        assert cold.n_simulations > 0
        assert warm.n_simulations < cold.n_simulations

    def test_namespace_separates_problem_params(self, tmp_path):
        spill = str(tmp_path / "spill.jsonl")
        first = optimize(
            "sphere",
            method="moheco",
            seed=7,
            cache="lru",
            cache_params={"spill_path": spill},
            **TINY,
        )
        # Same registry name, different factory params: nothing may replay.
        other = optimize(
            "sphere",
            method="moheco",
            seed=7,
            problem_params={"sigma": 0.3},
            cache="lru",
            cache_params={"spill_path": spill},
            **TINY,
        )
        assert first.cache_stats["hits"] == 0
        assert other.cache_stats["hits"] == 0

    def test_pswcd_accepts_and_ignores_cache(self):
        result = optimize(
            "sphere",
            method="pswcd",
            seed=3,
            cache="lru",
            n_train=30,
            pop_size=8,
            max_generations=3,
        )
        assert result.cache_stats is None

    def test_result_serialization_round_trips_cache_stats(self):
        spec = RunSpec(problem="sphere", method="moheco", seed=7, overrides=TINY)
        result = optimize(spec.with_cache("lru"))
        clone = type(result).from_dict(result.to_dict())
        assert clone.cache_stats == result.cache_stats
        assert "cache_stats" not in result.identity_dict()


class TestRunSpecSurface:
    def test_round_trip(self):
        spec = RunSpec(
            problem="sphere",
            seed=1,
            cache="lru",
            cache_params={"max_bytes": 1024, "spill_path": "c.jsonl"},
        )
        clone = RunSpec.from_dict(json.loads(spec.to_json()))
        assert clone == spec
        assert clone.cache_params == {"max_bytes": 1024, "spill_path": "c.jsonl"}

    def test_with_cache(self):
        spec = RunSpec(problem="sphere").with_cache("lru", max_bytes=64)
        assert spec.cache == "lru"
        assert spec.cache_params == {"max_bytes": 64}
        assert spec.with_cache(None).cache is None

    def test_cache_params_require_cache(self):
        with pytest.raises(ValueError, match="cache_params"):
            RunSpec(problem="sphere", cache_params={"max_bytes": 1})

    def test_cache_must_be_a_name(self):
        with pytest.raises(ValueError, match="registry name"):
            RunSpec(problem="sphere", cache=LRUEvaluationCache())

    def test_optimize_rejects_params_without_cache(self):
        with pytest.raises(TypeError, match="cache name"):
            optimize("sphere", seed=1, cache_params={"max_bytes": 1}, **TINY)


class TestSweepSurface:
    def _spec(self, **kwargs):
        return SweepSpec(
            methods=(MethodSpec("moheco", overrides=TINY),),
            problems=(ProblemSpec("sphere"),),
            runs=2,
            base_seed=42,
            reference_n=500,
            **kwargs,
        )

    def test_cache_forwarded_to_expanded_runs(self):
        spec = self._spec(cache="lru", cache_params={"max_bytes": 2048})
        for run in spec.expand():
            assert run.spec.cache == "lru"
            assert run.spec.cache_params == {"max_bytes": 2048}

    def test_cache_excluded_from_sweep_hash(self):
        assert self._spec().sweep_hash() == self._spec(cache="lru").sweep_hash()

    @pytest.mark.parametrize("value", [False, 0])
    def test_count_hits_false_refused(self, value):
        # 0 is what `--cache-param count_hits=0` parses to; any falsy value
        # disables charging and must be refused, not just the literal False.
        with pytest.raises(ValueError, match="ledger-faithful"):
            self._spec(cache="lru", cache_params={"count_hits": value})

    def test_cache_params_require_cache(self):
        with pytest.raises(ValueError, match="cache_params"):
            self._spec(cache_params={"max_bytes": 1})

    def test_round_trip(self):
        spec = self._spec(cache="lru", cache_params={"spill_path": "c.jsonl"})
        assert SweepSpec.from_dict(spec.to_dict()) == spec

    def test_cached_sweep_records_match_plain_sweep(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no RuntimeWarnings tolerated
            plain = run_sweep(self._spec(), workers=1)
            cached = run_sweep(
                self._spec(
                    cache="lru",
                    cache_params={"spill_path": str(tmp_path / "spill.jsonl")},
                ),
                workers=1,
            )
        for a, b in zip(plain.records, cached.records):
            assert a.identity_dict() == b.identity_dict()
            assert b.cache_stats is not None

    def test_record_round_trips_cache_stats(self):
        record = RunRecord(
            method="m",
            run_index=0,
            reported_yield=1.0,
            reference_yield=1.0,
            n_simulations=10,
            generations=1,
            reason="done",
            wall_seconds=0.5,
            result={"cache_stats": {"hits": 3}},
        )
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.cache_stats == {"hits": 3}
        assert "cache_stats" not in record.identity_dict()["result"]
        assert RunRecord.from_dict(clone.identity_dict() | {"wall_seconds": 0.0})
        assert record.identity_dict() == clone.identity_dict()


class TestCLI:
    def _run_args(self, spill):
        args = [
            "run",
            "--problem",
            "sphere",
            "--method",
            "moheco",
            "--seed",
            "7",
            "--cache",
            "lru",
            "--cache-param",
            f"spill_path={spill}",
        ]
        for key, value in TINY.items():
            args += ["--set", f"{key}={value}"]
        return args

    def test_run_twice_reports_hits(self, tmp_path, capsys):
        from repro.api.cli import main

        spill = tmp_path / "spill.jsonl"
        assert main(self._run_args(spill)) == 0
        cold = capsys.readouterr().out
        assert "cache[lru]: hits=0" in cold
        assert main(self._run_args(spill)) == 0
        warm = capsys.readouterr().out
        assert "misses=0" in warm
        hits = int(warm.split("hits=")[1].split()[0])
        assert hits > 0

    def test_cache_param_requires_cache(self, tmp_path):
        from repro.api.cli import main

        with pytest.raises(SystemExit, match="--cache-param"):
            main(["run", "--problem", "sphere", "--cache-param", "max_bytes=1"])

    def test_list_caches(self, capsys):
        from repro.api.cli import main

        assert main(["list", "caches"]) == 0
        out = capsys.readouterr().out
        assert "caches:" in out
        assert "lru" in out
