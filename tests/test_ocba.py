"""OCBA: closed-form allocation, sequential loop, selection quality."""

import numpy as np
import pytest

from repro.ledger import SimulationLedger
from repro.ocba import (
    approximate_pcs,
    equal_allocation,
    ocba_allocation,
    ocba_sequential,
)
from repro.problems import make_sphere_problem
from repro.sampling import LatinHypercubeSampler
from repro.yieldsim import CandidateYieldState


class TestClosedForm:
    def test_sums_to_total(self):
        means = np.array([0.9, 0.7, 0.5, 0.3])
        stds = np.array([0.3, 0.45, 0.5, 0.45])
        for total in (100, 777, 5000):
            alloc = ocba_allocation(means, stds, total)
            assert alloc.sum() == total
            assert np.all(alloc >= 0)

    def test_close_competitors_get_more_than_clear_losers(self):
        means = np.array([0.90, 0.88, 0.40])
        stds = np.array([0.30, 0.32, 0.49])
        alloc = ocba_allocation(means, stds, 1000)
        # The runner-up is hard to separate from the best; the clear loser
        # is cheap to rank.
        assert alloc[1] > alloc[2]

    def test_best_design_gets_substantial_share(self):
        means = np.array([0.95, 0.70, 0.65, 0.60])
        stds = np.array([0.2, 0.46, 0.48, 0.49])
        alloc = ocba_allocation(means, stds, 1000)
        assert alloc[0] > 1000 // (2 * len(means))

    def test_equation_ratios_respected(self):
        """For i, j != b the allocation follows (sigma_i/d_i)^2 ratios."""
        means = np.array([0.9, 0.6, 0.3])
        stds = np.array([0.3, 0.4, 0.4])
        alloc = ocba_allocation(means, stds, 100_000)
        d1, d2 = 0.3, 0.6
        expected_ratio = (stds[1] / d1) ** 2 / ((stds[2] / d2) ** 2)
        assert alloc[1] / alloc[2] == pytest.approx(expected_ratio, rel=0.02)

    def test_single_design_takes_all(self):
        alloc = ocba_allocation(np.array([0.5]), np.array([0.5]), 321)
        assert alloc.tolist() == [321]

    def test_ties_do_not_crash(self):
        alloc = ocba_allocation(np.array([0.5, 0.5, 0.5]), np.array([0.5, 0.5, 0.5]), 300)
        assert alloc.sum() == 300

    def test_zero_stds_do_not_crash(self):
        alloc = ocba_allocation(np.array([1.0, 0.0]), np.array([0.0, 0.0]), 100)
        assert alloc.sum() == 100

    def test_minimum_respected(self):
        means = np.array([0.9, 0.5, 0.1])
        stds = np.array([0.3, 0.5, 0.3])
        alloc = ocba_allocation(means, stds, 300, minimum=20)
        assert np.all(alloc >= 19)  # integer rounding may nibble one

    def test_validation(self):
        with pytest.raises(ValueError):
            ocba_allocation(np.array([]), np.array([]), 10)
        with pytest.raises(ValueError):
            ocba_allocation(np.array([0.5]), np.array([0.5, 0.1]), 10)
        with pytest.raises(ValueError):
            ocba_allocation(np.array([0.5, 0.4]), np.array([0.1, 0.1]), 10, minimum=50)


class TestSequential:
    def _states(self, yields, seed=0):
        from scipy.stats import norm

        sigma = 0.25
        problem = make_sphere_problem(sigma=sigma)
        sampler = LatinHypercubeSampler(problem.variation)
        ledger = SimulationLedger()
        states = []
        # Invert the sphere's analytic yield to place each design exactly at
        # its target: margin = 1 - 16 delta^2 = sigma * z_target (d = 4).
        for i, target in enumerate(yields):
            margin = sigma * norm.ppf(target)
            delta = np.sqrt(max(1.0 - margin, 0.0) / 16.0)
            x = np.full(4, 0.6 + delta)
            assert problem.evaluator.analytic_yield(x, problem.specs) == (
                pytest.approx(target, abs=0.02)
            )
            states.append(
                CandidateYieldState(
                    problem, x, sampler,
                    np.random.default_rng(seed * 100 + i), ledger, "stage1",
                )
            )
        return states, ledger

    def test_budget_exhausted_exactly_or_above_pilot(self):
        states, _ = self._states([0.9, 0.7, 0.5, 0.2])
        report = ocba_sequential(states, total_budget=600, n0=15, delta=50)
        assert report.total_samples >= 600
        assert report.total_samples <= 600 + 50  # one increment overshoot max

    def test_everyone_gets_pilot(self):
        states, _ = self._states([0.9, 0.2, 0.2, 0.2, 0.2])
        report = ocba_sequential(states, total_budget=300, n0=15, delta=30)
        assert np.all(report.counts >= 15)

    def test_good_candidates_get_more_samples(self):
        states, _ = self._states([0.95, 0.9, 0.3, 0.25, 0.2], seed=3)
        report = ocba_sequential(states, total_budget=1500, n0=15, delta=50)
        top_two = np.sort(report.counts[np.argsort(report.estimates)[-2:]])
        bottom = report.counts[np.argsort(report.estimates)[0]]
        assert np.sum(top_two) > 2.5 * bottom

    def test_empty_population(self):
        report = ocba_sequential([], total_budget=100)
        assert report.total_samples == 0
        assert report.rounds == 0

    def test_negative_budget_rejected(self):
        states, _ = self._states([0.5])
        with pytest.raises(ValueError):
            ocba_sequential(states, total_budget=-1)

    def test_report_consistency(self):
        states, _ = self._states([0.8, 0.5, 0.3])
        report = ocba_sequential(states, total_budget=400, n0=15, delta=40)
        np.testing.assert_array_equal(
            report.counts, [s.n for s in states]
        )
        np.testing.assert_allclose(
            report.estimates, [s.value for s in states]
        )


class TestSelectionQuality:
    def test_ocba_apcs_beats_equal_allocation(self):
        means = np.array([0.92, 0.88, 0.70, 0.55, 0.40, 0.30])
        stds = np.sqrt(means * (1 - means))
        total = 600
        pcs_ocba = approximate_pcs(means, stds, ocba_allocation(means, stds, total))
        pcs_equal = approximate_pcs(means, stds, equal_allocation(len(means), total))
        assert pcs_ocba > pcs_equal

    def test_equal_allocation_sums(self):
        alloc = equal_allocation(7, 100)
        assert alloc.sum() == 100
        assert alloc.max() - alloc.min() <= 1
        with pytest.raises(ValueError):
            equal_allocation(0, 100)

    def test_apcs_monotone_in_budget(self):
        means = np.array([0.9, 0.8, 0.6])
        stds = np.sqrt(means * (1 - means))
        small = approximate_pcs(means, stds, equal_allocation(3, 60))
        large = approximate_pcs(means, stds, equal_allocation(3, 6000))
        assert large > small

    def test_apcs_validation(self):
        with pytest.raises(ValueError):
            approximate_pcs(np.array([0.5]), np.array([0.5, 0.2]), np.array([10]))
