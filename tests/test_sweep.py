"""Sweep orchestration: specs, store, executor, auto engine, CLI."""

import json
import warnings

import numpy as np
import pytest

from repro.api import make_engine, optimize
from repro.api.cli import main
from repro.engine import ENGINES, AutoEngine
from repro.experiments import ExperimentSettings, replicate_method
from repro.problems import make_sphere_problem
from repro.rng import independent_streams, run_streams
from repro.sweep import (
    MethodSpec,
    ProblemSpec,
    ResultStore,
    StoreMismatchError,
    SweepSpec,
    run_sweep,
)
from repro.core.callbacks import Callback, SweepProgressCallback
from repro.core.moheco import MOHECOResult


def tiny_spec(**kwargs) -> SweepSpec:
    """A 2-method x 3-run sphere grid that finishes in a few seconds."""
    defaults = dict(
        methods=(
            MethodSpec("moheco", label="MOHECO", overrides={"pop_size": 8, "n_max": 100}),
            MethodSpec(
                "fixed_budget", label="fixed100", overrides={"pop_size": 8, "n_fixed": 100}
            ),
        ),
        problems=(ProblemSpec("sphere", problem_params={"sigma": 0.2}),),
        runs=3,
        base_seed=42,
        reference_n=1000,
        max_generations=6,
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)




@pytest.fixture(scope="module")
def serial_result():
    return run_sweep(tiny_spec(), workers=1)


class TestRunStreams:
    def test_matches_independent_streams(self):
        streams = list(independent_streams(99, 6))
        for i in range(3):
            optimizer, reference = run_streams(99, i)
            assert (
                optimizer.integers(0, 1000, 5).tolist()
                == streams[2 * i].integers(0, 1000, 5).tolist()
            )
            assert (
                reference.integers(0, 1000, 5).tolist()
                == streams[2 * i + 1].integers(0, 1000, 5).tolist()
            )

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            run_streams(1, -1)


class TestSweepSpec:
    def test_json_round_trip(self):
        spec = tiny_spec(engine="serial", tag="t")
        assert SweepSpec.from_json(spec.to_json()) == spec

    def test_bare_names_coerce(self):
        spec = SweepSpec.from_dict(
            {"methods": ["moheco"], "problems": ["sphere"], "runs": 2}
        )
        assert spec.methods[0].label == "moheco"
        assert spec.problems[0].problem_params == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            SweepSpec(methods=(), problems=(ProblemSpec("sphere"),))
        with pytest.raises(ValueError):
            SweepSpec(methods=(MethodSpec("moheco"),), problems=())
        with pytest.raises(ValueError):
            tiny_spec(runs=0)
        with pytest.raises(ValueError):
            tiny_spec(engine_params={"workers": 2})  # no engine name
        with pytest.raises(ValueError):
            tiny_spec(
                methods=(MethodSpec("moheco"), MethodSpec("moheco"))
            )  # duplicate labels
        with pytest.raises(ValueError):
            SweepSpec.from_dict({"methods": ["moheco"], "problems": ["sphere"], "bogus": 1})
        # '|' is the store-key separator: cross-axis label combinations
        # like ('a', 'b|c') vs ('a|b', 'c') would collide into one key.
        with pytest.raises(ValueError, match=r"\|"):
            MethodSpec("moheco", label="a|b")
        with pytest.raises(ValueError, match=r"\|"):
            ProblemSpec("sphere", label="a|b")

    def test_hash_covers_results_not_execution(self):
        spec = tiny_spec()
        assert spec.sweep_hash() == tiny_spec(workers=4).sweep_hash()
        assert spec.sweep_hash() == tiny_spec(engine="process").sweep_hash()
        assert spec.sweep_hash() == tiny_spec(tag="other").sweep_hash()
        assert spec.sweep_hash() != tiny_spec(runs=4).sweep_hash()
        assert spec.sweep_hash() != tiny_spec(base_seed=43).sweep_hash()
        assert spec.sweep_hash() != tiny_spec(reference_n=999).sweep_hash()

    def test_expand_grid(self):
        spec = tiny_spec(
            problems=(
                ProblemSpec("sphere", label="a"),
                ProblemSpec("quadratic", label="b"),
            )
        )
        runs = spec.expand()
        assert len(runs) == spec.total_runs == 2 * 2 * 3
        assert [r.ordinal for r in runs] == list(range(len(runs)))
        assert len({r.key for r in runs}) == len(runs)
        # problem-major, then method, then run index
        assert runs[0].problem_label == "a" and runs[0].method_label == "MOHECO"
        assert runs[3].method_label == "fixed100"
        # sweep-level max_generations merged into the per-run overrides...
        assert runs[0].spec.overrides["max_generations"] == 6
        assert runs[0].spec.seed == spec.base_seed

    def test_method_override_beats_sweep_max_generations(self):
        spec = tiny_spec(
            methods=(
                MethodSpec("moheco", overrides={"max_generations": 99}),
            )
        )
        assert spec.expand()[0].spec.overrides["max_generations"] == 99


class TestResultStore:
    def test_requires_resume_for_existing(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "store.jsonl"
        ResultStore.open(path, spec).close()
        with pytest.raises(FileExistsError):
            ResultStore.open(path, spec)
        ResultStore.open(path, spec, resume=True).close()

    def test_mismatched_spec_rejected(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore.open(path, tiny_spec()).close()
        with pytest.raises(StoreMismatchError):
            ResultStore.open(path, tiny_spec(runs=5), resume=True)

    def test_non_store_file_rejected(self, tmp_path):
        path = tmp_path / "random.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(StoreMismatchError):
            ResultStore.open(path, tiny_spec(), resume=True)

    def test_torn_line_dropped_and_compacted(self, tmp_path):
        spec = tiny_spec(runs=1, methods=(MethodSpec("moheco", overrides={"pop_size": 8, "n_max": 100}),))
        path = tmp_path / "store.jsonl"
        run_sweep(spec, store=path)
        lines = path.read_text().splitlines()
        # Simulate a kill mid-write: the last record's line is torn and
        # unterminated.
        path.write_text("\n".join(lines[:-1]) + '\n{"kind": "run", "key')
        with pytest.warns(RuntimeWarning, match="torn"):
            resumed = run_sweep(spec, store=path, resume=True)
        assert resumed.executed == 1  # the torn run re-executed
        # The re-executed record landed on its own line (not concatenated
        # onto the fragment) and survives the next resume cleanly.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            replayed = run_sweep(spec, store=path, resume=True)
        assert replayed.executed == 0 and replayed.reused == spec.total_runs
        assert replayed.tables() == resumed.tables()


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_records_and_tables(self, serial_result, workers):
        sharded = run_sweep(tiny_spec(), workers=workers)
        assert sharded.tables() == serial_result.tables()
        for a, b in zip(serial_result.records, sharded.records):
            assert a.identity_dict() == b.identity_dict()
        for a, b in zip(serial_result.summaries(), sharded.summaries()):
            assert a.method == b.method
            np.testing.assert_array_equal(a.deviations(), b.deviations())
            np.testing.assert_array_equal(a.simulations(), b.simulations())

    def test_spec_workers_is_execution_only(self, serial_result):
        via_spec = run_sweep(tiny_spec(workers=2))
        assert via_spec.workers == 2
        assert via_spec.tables() == serial_result.tables()


class TestResume:
    def test_resume_completes_only_missing_runs(self, tmp_path, serial_result):
        spec = tiny_spec()
        path = tmp_path / "store.jsonl"
        full = run_sweep(spec, workers=1, store=path)
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + spec.total_runs
        # Simulate a kill after 2 completed runs.
        path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_sweep(spec, workers=2, store=path, resume=True)
        assert resumed.reused == 2
        assert resumed.executed == spec.total_runs - 2
        assert resumed.tables() == full.tables() == serial_result.tables()
        # The completed store replays entirely.
        replayed = run_sweep(spec, store=path, resume=True)
        assert replayed.executed == 0
        assert replayed.reused == spec.total_runs
        assert replayed.tables() == full.tables()

    def test_caller_supplied_store_must_match_spec(self, tmp_path):
        spec = tiny_spec(runs=1)
        path = tmp_path / "store.jsonl"
        run_sweep(spec, store=path)
        loaded = ResultStore.load(path)
        # Wrong spec: the records would replay under false pretenses.
        with pytest.raises(StoreMismatchError):
            run_sweep(tiny_spec(runs=2), store=loaded, resume=True)
        # Replaying a ready-made store's records is opt-in, like for paths.
        with pytest.raises(ValueError, match="resume=True"):
            run_sweep(spec, store=loaded)
        # Right spec but read-only store with pending runs: fail up front.
        half = ResultStore.load(path)
        half.completed.popitem()
        with pytest.raises(RuntimeError, match="not open for appends"):
            run_sweep(spec, store=half, resume=True)
        # Fully-complete read-only store replays fine (nothing to append).
        replayed = run_sweep(spec, store=ResultStore.load(path), resume=True)
        assert replayed.executed == 0 and replayed.reused == spec.total_runs

    def test_load_is_read_only(self, tmp_path):
        spec = tiny_spec(runs=1, methods=(MethodSpec("moheco", overrides={"pop_size": 8, "n_max": 100}),))
        path = tmp_path / "store.jsonl"
        run_sweep(spec, store=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "run", "key')  # another process mid-append
        before = path.read_text()
        with pytest.warns(RuntimeWarning, match="torn"):
            store = ResultStore.load(path)
        assert not store.writable
        assert path.read_text() == before  # inspection never rewrites

    def test_header_records_spec_and_hash(self, tmp_path):
        spec = tiny_spec(runs=1)
        path = tmp_path / "store.jsonl"
        run_sweep(spec, store=path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "sweep-header"
        assert header["sweep_hash"] == spec.sweep_hash()
        assert SweepSpec.from_dict(header["spec"]).sweep_hash() == spec.sweep_hash()


class TestFailureHandling:
    def test_worker_failure_persists_finished_runs(self, tmp_path):
        # A bad override blows up inside the worker (registry names are
        # validated upfront, so the failure must be config-level); the
        # healthy runs that complete must still land in the store so
        # resume only re-executes what never ran.
        spec = tiny_spec(
            methods=(
                MethodSpec("moheco", label="ok", overrides={"pop_size": 8, "n_max": 100}),
                MethodSpec("moheco", label="boom", overrides={"bogus_override": 1}),
            ),
            runs=2,
        )
        path = tmp_path / "store.jsonl"
        with pytest.raises(Exception, match="bogus_override"):
            run_sweep(spec, workers=2, store=path)
        survivors = ResultStore.load(path)
        assert 0 < len(survivors) <= 2
        assert all(r.method == "ok" for r in survivors.completed.values())

    def test_nested_pool_engine_warns(self):
        spec = tiny_spec(runs=1, engine="process")
        with pytest.warns(RuntimeWarning, match="nests worker pools"):
            run_sweep(spec, workers=2)

    def test_unknown_names_fail_before_creating_the_store(self, tmp_path):
        # A typo'd registry name must not leave a header-only store behind
        # that blocks the corrected rerun.
        path = tmp_path / "store.jsonl"
        bad = tiny_spec(problems=(ProblemSpec("no-such-problem"),))
        with pytest.raises(ValueError, match="no-such-problem"):
            run_sweep(bad, store=path)
        assert not path.exists()
        good = run_sweep(tiny_spec(runs=1), store=path)  # no FileExistsError
        assert good.executed == 2


class TestRunRecordPayload:
    def test_result_is_plain_dict(self, serial_result):
        for record in serial_result.records:
            assert isinstance(record.result, dict)
            rebuilt = MOHECOResult.from_dict(record.result)
            assert rebuilt.n_simulations == record.n_simulations
            assert rebuilt.best_yield == record.reported_yield

    def test_round_trip(self, serial_result):
        from repro.sweep import RunRecord

        record = serial_result.records[0]
        assert RunRecord.from_dict(record.to_dict()) == record


class TestCallbacks:
    def test_sweep_hooks_fire(self):
        events = []

        class Recorder(Callback):
            def on_sweep_start(self, sweep, total, pending):
                events.append(("start", total, pending))

            def on_sweep_run_end(self, sweep, run, record, done, total):
                events.append(("run", run.key, done, total))

            def on_sweep_end(self, sweep, result):
                events.append(("end", result.executed))

        spec = tiny_spec(runs=1)
        run_sweep(spec, callbacks=[Recorder()])
        assert events[0] == ("start", 2, 2)
        assert events[-1] == ("end", 2)
        assert [e[2] for e in events[1:-1]] == [1, 2]

    def test_progress_callback_prints(self):
        lines = []
        spec = tiny_spec(runs=1, methods=(MethodSpec("moheco", overrides={"pop_size": 8, "n_max": 100}),))
        run_sweep(spec, callbacks=[SweepProgressCallback(print_fn=lines.append)])
        assert any("sweep:" in line for line in lines)
        assert any("sweep done" in line for line in lines)


class TestLegacyMethodsDictRejected:
    def test_example_specs_reject_dict_of_closures(self):
        from repro.experiments.example1 import sweep_spec_example1
        from repro.experiments.example2 import sweep_spec_example2

        settings = ExperimentSettings(
            runs=1, reference_n=500, max_generations=5, full=False
        )
        legacy = {"MOHECO": lambda p, **kw: None}
        with pytest.raises(TypeError, match="MethodSpec"):
            sweep_spec_example1(settings, methods=legacy)
        with pytest.raises(TypeError, match="MethodSpec"):
            sweep_spec_example2(settings, methods=legacy)


class TestReplicateMethodShim:
    def test_matches_equivalent_sweep(self, serial_result):
        problem = make_sphere_problem(sigma=0.2)
        settings = ExperimentSettings(
            runs=3, reference_n=1000, max_generations=6, full=False
        )
        with pytest.warns(DeprecationWarning, match="replicate_method"):
            summary = replicate_method(
                problem,
                "MOHECO",
                lambda p, **kw: optimize(p, method="moheco", pop_size=8, n_max=100, **kw),
                settings,
                base_seed=42,
            )
        sweep_summary = serial_result.summary("MOHECO")
        np.testing.assert_array_equal(
            summary.deviations(), sweep_summary.deviations()
        )
        np.testing.assert_array_equal(
            summary.simulations(), sweep_summary.simulations()
        )
        assert all(isinstance(r.result, dict) for r in summary.records)


class TestAutoEngine:
    def test_registered(self):
        assert "auto" in ENGINES.names()
        assert isinstance(make_engine("auto"), AutoEngine)

    def test_picks_serial_on_cheap_synthetic(self):
        engine = make_engine("auto", workers=2)
        result = optimize(
            "sphere", seed=7, engine=engine, pop_size=8, n_max=100, max_generations=6
        )
        baseline = optimize(
            "sphere", seed=7, pop_size=8, n_max=100, max_generations=6
        )
        assert engine.chosen == "serial"
        assert engine.pilot_cost_seconds is not None
        assert result.best_yield == baseline.best_yield
        assert result.n_simulations == baseline.n_simulations
        engine.close()

    def test_forced_process_choice_is_seed_equivalent(self):
        engine = make_engine(
            "auto", workers=2, cost_threshold_seconds=0.0, pilot_rows=1
        )
        result = optimize(
            "sphere", seed=7, engine=engine, pop_size=8, n_max=100, max_generations=6
        )
        baseline = optimize(
            "sphere", seed=7, pop_size=8, n_max=100, max_generations=6
        )
        assert engine.chosen == "process"
        assert result.best_yield == baseline.best_yield
        assert result.n_simulations == baseline.n_simulations
        engine.close()

    def test_single_cpu_stays_serial(self):
        engine = AutoEngine(workers=1, cost_threshold_seconds=0.0, pilot_rows=1)
        optimize("sphere", seed=7, engine=engine, pop_size=8, n_max=100,
                 max_generations=4)
        assert engine.chosen == "serial"
        engine.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoEngine(workers=0)
        with pytest.raises(ValueError):
            AutoEngine(pilot_rows=0)


class TestSweepCLI:
    ARGS = [
        "sweep",
        "--problem", "sphere",
        "--method", "moheco",
        "--method", "fixed_budget",
        "--runs", "2",
        "--base-seed", "42",
        "--reference-n", "1000",
        "--max-generations", "6",
        "--set", "pop_size=8",
        "--workers", "2",
    ]

    def test_end_to_end_with_store(self, tmp_path, capsys):
        store = tmp_path / "store.jsonl"
        assert main([*self.ARGS, "--out", str(store), "--progress"]) == 0
        out = capsys.readouterr().out
        assert "Deviation of the yield results" in out
        assert "Total number of simulations" in out
        assert "4 run(s) executed" in out
        lines = store.read_text().splitlines()
        assert len(lines) == 1 + 4
        # resume executes nothing new
        assert main([*self.ARGS, "--out", str(store), "--resume"]) == 0
        assert "0 run(s) executed, 4 resumed" in capsys.readouterr().out

    def test_spec_file_input(self, tmp_path, capsys):
        spec = tiny_spec(runs=1)
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(spec.to_json())
        assert main(["sweep", "--spec", str(spec_path), "--no-tables"]) == 0
        assert "2 run(s) executed" in capsys.readouterr().out

    def test_grid_flags_override_spec_file(self, tmp_path, capsys):
        spec = tiny_spec(runs=1)
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(spec.to_json())
        assert (
            main(
                ["sweep", "--spec", str(spec_path), "--method", "moheco",
                 "--set", "pop_size=8", "--set", "n_max=100"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1 run(s) executed" in out  # one method instead of the file's two
        assert "fixed100" not in out

    def test_requires_grid(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--problem", "sphere"])  # no --method

    @pytest.mark.parametrize(
        "bad_flags",
        [
            ["--runs", "0"],
            ["--method", "moheco"],  # duplicates the base --method moheco
        ],
    )
    def test_spec_validation_errors_are_clean(self, bad_flags):
        # Grid mistakes surface as the CLI's `error: ...` form, not a
        # traceback (SystemExit with a message, like `run`).
        with pytest.raises(SystemExit, match="error:"):
            main([*self.ARGS, *bad_flags, "--no-tables", "--quiet"])

    def test_existing_store_without_resume_fails_cleanly(self, tmp_path):
        store = tmp_path / "store.jsonl"
        assert main([*self.ARGS, "--out", str(store), "--no-tables", "--quiet"]) == 0
        with pytest.raises(SystemExit, match="error:"):
            main([*self.ARGS, "--out", str(store)])

    def test_list_engines_shows_auto(self, capsys):
        assert main(["list", "engines"]) == 0
        assert "auto" in capsys.readouterr().out
