"""Inter-die / intra-die process variation model."""

import numpy as np
import pytest

from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.variation import IntraDieSpec, ProcessVariationModel


@pytest.fixture
def model():
    inter = ParameterGroup(
        [
            StatisticalParameter.normal("TOXR", 1.0, 0.02),
            StatisticalParameter.normal("VTHR", 1.0, 0.03),
        ]
    )
    return ProcessVariationModel(inter, ["M1", "M2", "M3"])


class TestLayout:
    def test_dimension_bookkeeping(self, model):
        assert model.n_inter == 2
        assert model.n_intra == 3 * 4
        assert model.dimension == 14

    def test_paper_variable_counts(self):
        # Example 1: 20 inter + 15 devices x 4 = 80; example 2: 47 + 19*4 = 123.
        inter20 = ParameterGroup(
            [StatisticalParameter.normal(f"p{i}") for i in range(20)]
        )
        m1 = ProcessVariationModel(inter20, [f"M{i}" for i in range(15)])
        assert m1.dimension == 80
        inter47 = ParameterGroup(
            [StatisticalParameter.normal(f"p{i}") for i in range(47)]
        )
        m2 = ProcessVariationModel(inter47, [f"M{i}" for i in range(19)])
        assert m2.dimension == 123

    def test_names_layout(self, model):
        names = model.names
        assert names[:2] == ["TOXR", "VTHR"]
        assert names[2] == "M1.dTOX"
        assert names[5] == "M1.dWD"
        assert names[6] == "M2.dTOX"

    def test_duplicate_devices_rejected(self, model):
        with pytest.raises(ValueError):
            ProcessVariationModel(model.inter, ["M1", "M1"])

    def test_empty_device_list_allowed(self, model):
        m = ProcessVariationModel(model.inter, [])
        assert m.dimension == 2


class TestSampling:
    def test_sample_shape(self, model):
        s = model.sample(10, np.random.default_rng(0))
        assert s.shape == (10, model.dimension)

    def test_mismatch_scores_are_standard_normal(self, model):
        s = model.sample(50_000, np.random.default_rng(1))
        scores = model.mismatch_scores(s, "M2")
        assert scores.shape == (50_000, 4)
        assert np.abs(np.mean(scores)) < 0.02
        assert np.std(scores) == pytest.approx(1.0, rel=0.02)

    def test_nominal_point(self, model):
        nominal = model.nominal()
        assert nominal[0] == pytest.approx(1.0)
        np.testing.assert_array_equal(nominal[2:], np.zeros(12))

    def test_inter_values_mapping(self, model):
        s = model.sample(5, np.random.default_rng(2))
        inter = model.inter_values(s)
        np.testing.assert_array_equal(inter["TOXR"], s[:, 0])
        np.testing.assert_array_equal(model.inter_matrix(s), s[:, :2])

    def test_mismatch_column(self, model):
        s = model.sample(5, np.random.default_rng(3))
        col = model.mismatch_column(s, "M3", "dVTH0")
        start = model.n_inter + 2 * 4  # M3 block
        np.testing.assert_array_equal(col, s[:, start + 1])

    def test_from_uniform_consistency(self, model):
        u = np.full((1, model.dimension), 0.5)
        mid = model.from_uniform(u)[0]
        # medians: inter means, mismatch zeros
        assert mid[0] == pytest.approx(1.0)
        assert mid[5] == pytest.approx(0.0, abs=1e-12)

    def test_describe(self, model):
        assert "14 variables" in model.describe()


class TestIntraDieSpec:
    def test_default_variables(self):
        spec = IntraDieSpec()
        assert spec.variables == ("dTOX", "dVTH0", "dLD", "dWD")
        assert spec.per_device == 4

    def test_custom_empty(self):
        spec = IntraDieSpec(())
        assert spec.per_device == 0
