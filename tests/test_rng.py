"""Random-number plumbing."""

import numpy as np
import pytest

from repro.rng import ensure_rng, independent_streams, make_rng, spawn, spawn_many


class TestMakeRng:
    def test_seeded_reproducible(self):
        a = make_rng(123).uniform(size=5)
        b = make_rng(123).uniform(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).uniform(size=5)
        b = make_rng(2).uniform(size=5)
        assert not np.array_equal(a, b)


class TestEnsureRng:
    def test_passthrough(self):
        rng = make_rng(0)
        assert ensure_rng(rng) is rng

    def test_from_int(self):
        a = ensure_rng(7).uniform(size=3)
        b = ensure_rng(7).uniform(size=3)
        np.testing.assert_array_equal(a, b)

    def test_from_none(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent(self):
        parent = make_rng(9)
        c1, c2 = spawn(parent), spawn(parent)
        assert not np.array_equal(c1.uniform(size=8), c2.uniform(size=8))

    def test_spawn_advances_parent(self):
        p1, p2 = make_rng(9), make_rng(9)
        spawn(p1)
        # p1 advanced, p2 did not: subsequent draws differ.
        assert not np.array_equal(p1.uniform(size=4), p2.uniform(size=4))

    def test_spawn_many_count_and_negative(self):
        parent = make_rng(1)
        assert len(spawn_many(parent, 3)) == 3
        with pytest.raises(ValueError):
            spawn_many(parent, -1)


class TestIndependentStreams:
    def test_reproducible_per_index(self):
        a = [g.uniform() for g in independent_streams(5, 4)]
        b = [g.uniform() for g in independent_streams(5, 4)]
        np.testing.assert_array_equal(a, b)

    def test_streams_differ(self):
        values = [g.uniform() for g in independent_streams(5, 10)]
        assert len(set(values)) == 10
