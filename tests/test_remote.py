"""Streaming remote engine: wire format, worker daemon, bit-identity.

The load-bearing contract: a :class:`~repro.engine.remote.RemoteEngine`
run is bit-identical (``MOHECOResult.identity_dict()``) to
:class:`~repro.engine.serial.SerialEngine` for any worker count, chunk
size, cache state (cold, warm, block- or sample-keyed), dispatch mode,
and any injected worker failure — a mid-round death re-dispatches the
dead worker's chunks and changes nothing but the dispatch stats.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api import optimize
from repro.engine import ENGINES, RemoteEngine, make_engine
from repro.engine.base import evaluate_pending
from repro.engine.cache import make_cache
from repro.engine.remote import _chunk_pending, normalize_worker_url
from repro.engine.wire import (
    ChunkRequest,
    decode_array,
    decode_problem,
    encode_array,
    encode_problem,
)
from repro.problems import make_problem
from repro.service.worker import serve_worker
from repro.yieldsim.estimator import PendingRefinement


class _Shell:
    def __init__(self, x):
        self.x = np.asarray(x, dtype=float)


def _block(x, samples, category="stage1"):
    return PendingRefinement(_Shell(x), np.asarray(samples, dtype=float), category)


@pytest.fixture
def worker_pool():
    """Start ephemeral-port worker daemons on demand; close them after."""
    servers = []

    def start(n=1, **kwargs):
        batch = []
        for _ in range(n):
            server = serve_worker(port=0, **kwargs)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            servers.append(server)
            batch.append(server)
        return batch

    yield start
    for server in servers:
        server.close()


class TestWireFormat:
    @pytest.mark.parametrize("shape", [(1,), (4,), (3, 5), (1, 1), (7, 2)])
    def test_array_round_trip_is_bit_exact(self, shape):
        rng = np.random.default_rng(hash(shape) % 2**31)
        array = rng.normal(size=shape)
        # Pathological values must survive too: the wire carries raw IEEE
        # bytes, not decimal renderings.
        flat = array.reshape(-1)
        flat[0] = 1e-308
        if flat.size > 1:
            flat[1] = -0.0
        decoded = decode_array(encode_array(array))
        assert decoded.dtype == np.float64
        assert decoded.shape == array.shape
        assert decoded.tobytes() == np.ascontiguousarray(array).tobytes()

    def test_decoded_array_is_writable(self):
        decoded = decode_array(encode_array(np.zeros((2, 2))))
        decoded[0, 0] = 1.0  # frombuffer views are read-only; copies aren't

    def test_array_size_mismatch_rejected(self):
        payload = encode_array(np.zeros((2, 3)))
        payload["shape"] = [2, 4]
        with pytest.raises(ValueError, match="shape"):
            decode_array(payload)

    def test_problem_round_trip_and_token(self):
        problem = make_problem("quadratic")
        payload = encode_problem(problem)
        token, rebuilt = decode_problem(payload)
        assert token == payload["token"]
        x = problem.space.clip(np.zeros(problem.space.dimension))
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(4, problem.variation.dimension))
        np.testing.assert_array_equal(
            evaluate_pending(problem, [_block(x, samples)]),
            evaluate_pending(rebuilt, [_block(x, samples)]),
        )

    def test_problem_token_mismatch_rejected(self):
        payload = encode_problem(make_problem("quadratic"))
        payload["token"] = "0" * 32
        with pytest.raises(ValueError, match="token mismatch"):
            decode_problem(payload)

    @pytest.mark.parametrize("seed", range(5))
    def test_chunk_round_trip_reproduces_pending(self, seed):
        # Property-style: random block structures survive the wire intact.
        rng = np.random.default_rng(seed)
        n_blocks = int(rng.integers(1, 6))
        blocks = [
            _block(
                rng.normal(size=3),
                rng.normal(size=(int(rng.integers(1, 9)), 4)),
            )
            for _ in range(n_blocks)
        ]
        chunk = ChunkRequest.from_pending("tok", blocks)
        assert chunk.n_rows == sum(b.n_samples for b in blocks)
        wired = ChunkRequest.from_dict(json.loads(json.dumps(chunk.to_dict())))
        assert wired.problem_token == "tok"
        rebuilt = wired.to_pending()
        assert len(rebuilt) == n_blocks
        for original, copy in zip(blocks, rebuilt):
            assert copy.samples.tobytes() == original.samples.tobytes()
            assert copy.state.x.tobytes() == original.state.x.tobytes()

    def test_chunk_evaluation_matches_local(self):
        problem = make_problem("quadratic")
        rng = np.random.default_rng(2)
        blocks = [
            _block(
                problem.space.clip(rng.normal(size=problem.space.dimension)),
                rng.normal(size=(5, problem.variation.dimension)),
            )
            for _ in range(3)
        ]
        chunk = ChunkRequest.from_dict(
            ChunkRequest.from_pending("tok", blocks).to_dict()
        )
        np.testing.assert_array_equal(
            evaluate_pending(problem, chunk.to_pending()),
            evaluate_pending(problem, blocks),
        )

    @pytest.mark.parametrize(
        "extent",
        [(9, 0, 2), (0, 3, 2), (0, 0, 99), (-1, 0, 1)],
        ids=["design-row", "inverted", "overrun", "negative-row"],
    )
    def test_bad_extents_rejected(self, extent):
        chunk = ChunkRequest.from_pending("tok", [_block([1.0], np.zeros((2, 2)))])
        data = chunk.to_dict()
        data["blocks"] = [list(extent)]
        with pytest.raises(ValueError):
            ChunkRequest.from_dict(data)


class TestChunking:
    def test_respects_block_boundaries_and_row_target(self):
        blocks = [_block([1.0], np.zeros((rows, 2))) for rows in (5, 5, 5, 20, 3)]
        chunks = _chunk_pending(blocks, 10)
        assert [sum(b.n_samples for b in chunk) for chunk in chunks] == [10, 25, 3]
        assert [b for chunk in chunks for b in chunk] == blocks

    def test_single_chunk_when_target_exceeds_round(self):
        blocks = [_block([1.0], np.zeros((2, 2)))] * 3
        assert len(_chunk_pending(blocks, 1000)) == 1

    def test_url_normalization(self):
        assert normalize_worker_url("host:9101") == "http://host:9101"
        assert normalize_worker_url("https://a/") == "https://a"
        with pytest.raises(ValueError):
            normalize_worker_url("  ")


class TestWorkerDaemon:
    def _post(self, url, payload):
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())

    def test_health_and_problem_lifecycle(self, worker_pool):
        (server,) = worker_pool(1)
        with urllib.request.urlopen(f"{server.url}/v1/health", timeout=10) as r:
            health = json.loads(r.read())
        assert health["ok"] and health["role"] == "worker"
        assert health["problems"] == [] and health["chunks_served"] == 0

        problem = make_problem("quadratic")
        payload = encode_problem(problem)
        status, body = self._post(f"{server.url}/v1/problems", payload)
        assert status == 200 and body["token"] == payload["token"]
        # Idempotent re-install.
        assert self._post(f"{server.url}/v1/problems", payload)[0] == 200

        rng = np.random.default_rng(4)
        blocks = [
            _block(
                problem.space.clip(rng.normal(size=problem.space.dimension)),
                rng.normal(size=(6, problem.variation.dimension)),
            )
        ]
        chunk = ChunkRequest.from_pending(payload["token"], blocks)
        status, body = self._post(f"{server.url}/v1/evaluate", chunk.to_dict())
        assert status == 200
        np.testing.assert_array_equal(
            decode_array(body["rows"]), evaluate_pending(problem, blocks)
        )
        assert server.chunks_served == 1 and server.rows_served == 6

    def test_unknown_token_answers_409(self, worker_pool):
        (server,) = worker_pool(1)
        chunk = ChunkRequest.from_pending("nope", [_block([1.0], np.zeros((1, 2)))])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{server.url}/v1/evaluate", chunk.to_dict())
        assert excinfo.value.code == 409
        assert json.loads(excinfo.value.read())["error"] == "problem_not_loaded"

    def test_fail_after_injects_503(self, worker_pool):
        (server,) = worker_pool(1, fail_after=0)
        chunk = ChunkRequest.from_pending("any", [_block([1.0], np.zeros((1, 2)))])
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._post(f"{server.url}/v1/evaluate", chunk.to_dict())
        assert excinfo.value.code == 503

    def test_unknown_route_404(self, worker_pool):
        (server,) = worker_pool(1)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{server.url}/v1/nope", timeout=10)
        assert excinfo.value.code == 404


class TestEngineParams:
    def test_registered(self):
        assert "remote" in ENGINES.names()
        engine = make_engine("remote", workers="h:1,h:2,h:1")
        assert isinstance(engine, RemoteEngine)
        assert engine.worker_urls == ["http://h:1", "http://h:2"]

    def test_workers_required(self):
        with pytest.raises(ValueError, match="worker"):
            RemoteEngine(workers="")
        with pytest.raises(TypeError):
            RemoteEngine()

    @pytest.mark.parametrize(
        "kwargs",
        [{"chunk_rows": 0}, {"max_in_flight": 0}, {"dispatch": "psychic"}],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RemoteEngine(workers="h:1", **kwargs)


CONFIG = dict(
    problem="quadratic",
    seed=3,
    max_generations=3,
    pop_size=8,
    n0=20,
    n_max=120,
)


@pytest.fixture(scope="module")
def serial_identity():
    return optimize(engine="serial", **CONFIG).identity_dict()


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_streaming_matches_serial(self, serial_identity, worker_pool, n_workers):
        urls = ",".join(w.url for w in worker_pool(n_workers))
        result = optimize(
            engine="remote",
            engine_params={"workers": urls, "chunk_rows": 16},
            **CONFIG,
        )
        assert result.identity_dict() == serial_identity
        decision = result.engine_decision
        assert decision["engine"] == "remote"
        assert decision["rows"] > 0 and decision["local_rows"] == 0

    @pytest.mark.parametrize("chunk_rows", [1, 7, 1000])
    def test_any_chunk_size_matches_serial(
        self, serial_identity, worker_pool, chunk_rows
    ):
        urls = ",".join(w.url for w in worker_pool(2))
        result = optimize(
            engine="remote",
            engine_params={"workers": urls, "chunk_rows": chunk_rows},
            **CONFIG,
        )
        assert result.identity_dict() == serial_identity

    def test_barrier_dispatch_matches_serial(self, serial_identity, worker_pool):
        urls = ",".join(w.url for w in worker_pool(2))
        result = optimize(
            engine="remote",
            engine_params={"workers": urls, "dispatch": "barrier", "chunk_rows": 16},
            **CONFIG,
        )
        assert result.identity_dict() == serial_identity
        assert result.engine_decision["dispatch"] == "barrier"

    @pytest.mark.parametrize("key_mode", ["block", "sample"])
    def test_cold_and_warm_cache_match_serial(
        self, serial_identity, worker_pool, key_mode
    ):
        urls = ",".join(w.url for w in worker_pool(2))
        cache = make_cache("lru", key=key_mode)
        cold = optimize(
            engine="remote", engine_params={"workers": urls}, cache=cache, **CONFIG
        )
        assert cold.identity_dict() == serial_identity
        warm = optimize(
            engine="remote", engine_params={"workers": urls}, cache=cache, **CONFIG
        )
        assert warm.identity_dict() == serial_identity
        assert warm.cache_stats["hits"] > 0

    def test_mid_round_worker_kill_redispatches_bit_identically(
        self, serial_identity, worker_pool
    ):
        # Deterministic mid-round death: the sole worker serves exactly one
        # chunk, then 503s.  With one in-flight slot the sequence is fixed:
        # chunk 1 lands remotely, chunk 2 kills the worker, everything
        # queued behind it re-dispatches (here: to the local fallback).
        (bad,) = worker_pool(1, fail_after=1)
        result = optimize(
            engine="remote",
            engine_params={
                "workers": bad.url,
                "chunk_rows": 4,
                "max_in_flight": 1,
            },
            **CONFIG,
        )
        assert result.identity_dict() == serial_identity
        decision = result.engine_decision
        assert bad.chunks_served == 1
        assert decision["worker_failures"] >= 1
        assert decision["re_dispatched"] >= 1
        assert decision["local_rows"] > 0

    def test_mixed_fleet_with_failing_worker_stays_bit_identical(
        self, serial_identity, worker_pool
    ):
        # Which worker takes which chunk is a scheduling race by design;
        # the result must not depend on it even when one fleet member
        # rejects every chunk it manages to grab.
        (good,) = worker_pool(1)
        (bad,) = worker_pool(1, fail_after=0)
        result = optimize(
            engine="remote",
            engine_params={
                "workers": f"{good.url},{bad.url}",
                "chunk_rows": 4,
            },
            **CONFIG,
        )
        assert result.identity_dict() == serial_identity
        assert bad.chunks_served == 0  # it never completed one

    def test_all_workers_dead_falls_back_locally(self, serial_identity):
        result = optimize(
            engine="remote",
            engine_params={
                "workers": "127.0.0.1:1",  # nothing listens on port 1
                "health_timeout_seconds": 0.2,
            },
            **CONFIG,
        )
        assert result.identity_dict() == serial_identity
        assert result.engine_decision["local_rows"] > 0

    def test_local_fallback_disabled_raises(self):
        engine = RemoteEngine(
            workers="127.0.0.1:1",
            local_fallback=False,
            health_timeout_seconds=0.2,
        )
        with pytest.raises(RuntimeError, match="no live workers"):
            optimize(engine=engine, **CONFIG)

    def test_decision_outside_result_identity(self, worker_pool):
        urls = ",".join(w.url for w in worker_pool(1))
        result = optimize(
            engine="remote", engine_params={"workers": urls}, **CONFIG
        )
        assert "engine_decision" in result.to_dict()
        assert "engine_decision" not in result.identity_dict()


@pytest.mark.slow
class TestCircuitPricedBitIdentity:
    """The deployment regime: circuit-priced rows over real HTTP."""

    CONFIG = dict(
        problem="netlist_ota",
        seed=3,
        max_generations=3,
        pop_size=8,
        n0=20,
        n_max=120,
    )

    def test_streaming_two_workers_matches_serial(self, worker_pool):
        serial = optimize(engine="serial", **self.CONFIG).identity_dict()
        urls = ",".join(w.url for w in worker_pool(2))
        result = optimize(
            engine="remote",
            engine_params={"workers": urls, "chunk_rows": 32},
            **self.CONFIG,
        )
        assert result.identity_dict() == serial
