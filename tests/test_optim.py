"""Optimizers: Deb rules, DE operators, Nelder-Mead, memetic trigger."""

import numpy as np
import pytest

from repro.circuit.topologies.base import DesignSpace
from repro.optim import (
    DifferentialEvolution,
    FitnessView,
    MemeticTrigger,
    deb_better,
    nelder_mead_maximize,
)


def _fv(feasible, violation, objective):
    return FitnessView(feasible=feasible, violation=violation, objective=objective)


class TestDebRules:
    def test_feasible_beats_infeasible(self):
        assert deb_better(_fv(True, 0.0, 0.1), _fv(False, 0.01, 0.99))
        assert not deb_better(_fv(False, 0.01, 0.99), _fv(True, 0.0, 0.1))

    def test_feasible_compare_objective(self):
        assert deb_better(_fv(True, 0.0, 0.9), _fv(True, 0.0, 0.8))
        assert not deb_better(_fv(True, 0.0, 0.8), _fv(True, 0.0, 0.9))
        assert not deb_better(_fv(True, 0.0, 0.8), _fv(True, 0.0, 0.8))  # tie

    def test_infeasible_compare_violation(self):
        assert deb_better(_fv(False, 0.1, 0.0), _fv(False, 0.5, 0.0))
        assert not deb_better(_fv(False, 0.5, 0.0), _fv(False, 0.1, 0.0))

    def test_tolerance_guards_noise(self):
        assert not deb_better(_fv(True, 0.0, 0.901), _fv(True, 0.0, 0.9),
                              tolerance=0.01)
        assert deb_better(_fv(True, 0.0, 0.92), _fv(True, 0.0, 0.9),
                          tolerance=0.01)


@pytest.fixture
def space():
    return DesignSpace(["a", "b", "c"], np.zeros(3), np.ones(3))


class TestDesignSpace:
    def test_clip(self, space):
        np.testing.assert_array_equal(
            space.clip(np.array([-1.0, 0.5, 2.0])), [0.0, 0.5, 1.0]
        )

    def test_contains(self, space):
        assert space.contains(np.array([0.1, 0.5, 1.0]))
        assert not space.contains(np.array([0.1, 0.5, 1.1]))

    def test_sample_inside(self, space):
        xs = space.sample(100, np.random.default_rng(0))
        assert np.all(xs >= 0.0) and np.all(xs <= 1.0)

    def test_as_dict(self, space):
        d = space.as_dict(np.array([0.1, 0.2, 0.3]))
        assert d == {"a": 0.1, "b": 0.2, "c": 0.3}
        with pytest.raises(ValueError):
            space.as_dict(np.zeros(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            DesignSpace(["a"], [0.0], [0.0])
        with pytest.raises(ValueError):
            DesignSpace(["a", "b"], [0.0], [1.0])


class TestDEOperators:
    def test_init_population_shape_and_bounds(self, space):
        de = DifferentialEvolution(space)
        pop = de.init_population(12, np.random.default_rng(0))
        assert pop.shape == (12, 3)
        assert np.all((pop >= 0.0) & (pop <= 1.0))

    def test_minimum_population(self, space):
        de = DifferentialEvolution(space)
        with pytest.raises(ValueError):
            de.init_population(3, np.random.default_rng(0))

    def test_parameter_validation(self, space):
        with pytest.raises(ValueError):
            DifferentialEvolution(space, f=0.0)
        with pytest.raises(ValueError):
            DifferentialEvolution(space, cr=1.5)
        with pytest.raises(ValueError):
            DifferentialEvolution(space, variant="best/2")

    def test_propose_within_bounds(self, space):
        de = DifferentialEvolution(space)
        rng = np.random.default_rng(1)
        pop = de.init_population(10, rng)
        for _ in range(20):
            trials = de.propose(pop, 0, rng)
            assert trials.shape == pop.shape
            assert np.all((trials >= 0.0) & (trials <= 1.0))

    def test_crossover_keeps_at_least_one_donor_gene(self, space):
        de = DifferentialEvolution(space, cr=0.0)
        rng = np.random.default_rng(2)
        pop = de.init_population(8, rng)
        donors = pop[::-1].copy()
        trials = de.crossover(pop, donors, rng)
        differs = np.sum(trials != pop, axis=1)
        assert np.all(differs >= 1)

    def test_best_variant_uses_best_as_base(self, space):
        de = DifferentialEvolution(space, f=1e-9, cr=1.0, variant="best/1")
        rng = np.random.default_rng(3)
        pop = de.init_population(8, rng)
        donors = de.mutate(pop, best_index=2, rng=rng)
        # With F ~ 0 every donor collapses onto the best member.
        np.testing.assert_allclose(donors, np.tile(pop[2], (8, 1)), atol=1e-6)


class TestDEOptimize:
    def test_maximizes_concave_function(self, space):
        de = DifferentialEvolution(space)
        target = np.array([0.3, 0.7, 0.5])

        def objective(x):
            return -float(np.sum((x - target) ** 2))

        result = de.optimize(objective, pop_size=20, max_generations=60,
                             rng=np.random.default_rng(4))
        np.testing.assert_allclose(result.x, target, atol=0.05)
        assert result.evaluations > 20

    def test_patience_stops_early(self, space):
        de = DifferentialEvolution(space)
        result = de.optimize(lambda x: 1.0, pop_size=10, max_generations=100,
                             rng=np.random.default_rng(5), patience=5)
        assert result.generations <= 10


class TestNelderMead:
    def test_maximizes_quadratic(self, space):
        target = np.array([0.4, 0.6, 0.5])

        def objective(x):
            return -float(np.sum((x - target) ** 2))

        result = nelder_mead_maximize(
            objective, np.array([0.5, 0.5, 0.5]), space,
            max_iterations=60, initial_step=0.1,
            max_evaluations=400,
        )
        np.testing.assert_allclose(result.x, target, atol=0.05)

    def test_respects_bounds(self, space):
        # Optimum outside the box: NM must stop at the boundary.
        def objective(x):
            return float(np.sum(x))

        result = nelder_mead_maximize(
            objective, np.full(3, 0.9), space, max_iterations=40,
            max_evaluations=300,
        )
        assert np.all(result.x <= 1.0)
        assert result.objective <= 3.0 + 1e-9

    def test_evaluation_cap_honoured(self, space):
        calls = []

        def objective(x):
            calls.append(1)
            return 0.0

        nelder_mead_maximize(
            objective, np.full(3, 0.5), space, max_iterations=100,
            max_evaluations=10,
        )
        assert len(calls) <= 11  # cap + possibly the last partial probe

    def test_improves_from_start(self, space):
        def objective(x):
            return -float(np.sum((x - 0.5) ** 2))

        start = np.full(3, 0.8)
        result = nelder_mead_maximize(objective, start, space,
                                      max_iterations=25, max_evaluations=200)
        assert result.objective > objective(start)


class TestMemeticTrigger:
    def test_fires_after_patience_stalls(self):
        trigger = MemeticTrigger(patience=3)
        assert not trigger.observe(0.5)   # first observation sets baseline
        assert not trigger.observe(0.5)   # stall 1
        assert not trigger.observe(0.5)   # stall 2
        assert trigger.observe(0.5)       # stall 3 -> fire

    def test_improvement_resets(self):
        trigger = MemeticTrigger(patience=2)
        trigger.observe(0.5)
        trigger.observe(0.5)
        assert not trigger.observe(0.6)   # improvement resets the counter
        trigger.observe(0.6)
        assert trigger.observe(0.6)

    def test_tolerance_ignores_noise(self):
        trigger = MemeticTrigger(patience=2, tolerance=0.05)
        trigger.observe(0.5)
        trigger.observe(0.52)  # within tolerance: still a stall
        assert trigger.observe(0.53)

    def test_refires_after_reset(self):
        trigger = MemeticTrigger(patience=2)
        trigger.observe(0.5)
        trigger.observe(0.5)
        assert trigger.observe(0.5)
        trigger.observe(0.5)
        assert trigger.observe(0.5)  # counter restarted after the trigger

    def test_external_improvement_note(self):
        trigger = MemeticTrigger(patience=2)
        trigger.observe(0.5)
        trigger.note_external_improvement(0.9)
        trigger.observe(0.8)  # below the LS result: a stall
        assert trigger.observe(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemeticTrigger(patience=0)
