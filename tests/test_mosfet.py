"""MOSFET model: large-signal card and EKV bias-point helpers."""

import numpy as np
import pytest

from repro.circuit.mosfet import THERMAL_VOLTAGE, MosfetModelCard
from repro.circuit.tech import C035Technology


def _s(value):
    """Scalar from a length-1 (or 0-d) array."""
    return float(np.asarray(value).reshape(-1)[0])


@pytest.fixture(scope="module")
def nmos_card():
    return C035Technology().nmos


@pytest.fixture(scope="module")
def device(nmos_card):
    """A 50/1 um NMOS at nominal parameters (single-sample arrays)."""
    tech = C035Technology()
    return tech.realize_nominal("n", 50e-6, 1e-6)


class TestModelCard:
    def test_validation(self):
        with pytest.raises(ValueError):
            MosfetModelCard(polarity="x", vth0=0.5, u0=0.05, tox=8e-9)
        with pytest.raises(ValueError):
            MosfetModelCard(polarity="n", vth0=0.5, u0=0.05, tox=0.0)
        with pytest.raises(ValueError):
            MosfetModelCard(polarity="n", vth0=0.5, u0=-1.0, tox=8e-9)

    def test_cox_kp(self, nmos_card):
        assert nmos_card.cox == pytest.approx(3.45e-11 / nmos_card.tox)
        assert nmos_card.kp == pytest.approx(nmos_card.u0 * nmos_card.cox)

    def test_with_overrides(self, nmos_card):
        fast = nmos_card.with_overrides(vth0=0.4)
        assert fast.vth0 == 0.4
        assert nmos_card.vth0 != 0.4  # original untouched


class TestLargeSignalModel:
    def test_cutoff_current_negligible(self, nmos_card):
        ids = nmos_card.ids(10e-6, 1e-6, vgs=0.0, vds=1.0)
        assert ids < 1e-9

    def test_saturation_current_increases_with_vgs(self, nmos_card):
        i1 = nmos_card.ids(10e-6, 1e-6, vgs=0.8, vds=2.0)
        i2 = nmos_card.ids(10e-6, 1e-6, vgs=1.0, vds=2.0)
        assert i2 > i1 > 0

    def test_triode_vs_saturation_continuity(self, nmos_card):
        vgs = 1.0
        vov = vgs - nmos_card.vth0
        below = nmos_card.ids(10e-6, 1e-6, vgs=vgs, vds=vov - 1e-6)
        above = nmos_card.ids(10e-6, 1e-6, vgs=vgs, vds=vov + 1e-6)
        assert below == pytest.approx(above, rel=1e-3)

    def test_derivatives_match_finite_differences(self, nmos_card):
        w, l = 20e-6, 1e-6
        vgs, vds, vbs = 1.1, 1.5, -0.3
        ids, gm, gds, gmbs = nmos_card.ids_and_derivatives(w, l, vgs, vds, vbs)
        h = 1e-6
        gm_fd = (nmos_card.ids(w, l, vgs + h, vds, vbs)
                 - nmos_card.ids(w, l, vgs - h, vds, vbs)) / (2 * h)
        gds_fd = (nmos_card.ids(w, l, vgs, vds + h, vbs)
                  - nmos_card.ids(w, l, vgs, vds - h, vbs)) / (2 * h)
        assert gm == pytest.approx(gm_fd, rel=1e-3)
        assert gds == pytest.approx(gds_fd, rel=1e-3)

    def test_body_effect_raises_threshold(self, nmos_card):
        # More reverse body bias -> less current at the same vgs.
        i0 = nmos_card.ids(10e-6, 1e-6, vgs=0.9, vds=2.0, vbs=0.0)
        i1 = nmos_card.ids(10e-6, 1e-6, vgs=0.9, vds=2.0, vbs=-1.0)
        assert i1 < i0


class TestDeviceArraysEKV:
    def test_current_vov_roundtrip_strong_inversion(self, device):
        for ids in (1e-6, 10e-6, 100e-6, 1e-3):
            vov = device.vov_for_current(ids)
            back = device.current_for_vov(vov)
            assert back == pytest.approx(ids, rel=1e-6)

    def test_weak_inversion_vov_negative(self, device):
        # Tiny current on a wide device -> below-threshold operation.
        vov = device.vov_for_current(1e-9)
        assert vov < 0

    def test_gm_matches_finite_difference_of_current(self, device):
        for ids in (1e-6, 50e-6, 500e-6):
            vov = device.vov_for_current(ids)
            h = 1e-5
            gm_fd = (device.current_for_vov(vov + h)
                     - device.current_for_vov(vov - h)) / (2 * h)
            assert _s(device.gm(ids)) == pytest.approx(_s(gm_fd), rel=2e-2)

    def test_gm_respects_weak_inversion_ceiling(self, device):
        ids = 1e-6  # deep weak inversion on a 50 um device
        ceiling = ids / (device.nfactor * THERMAL_VOLTAGE)
        assert _s(device.gm(ids)) <= ceiling * 1.01

    def test_gm_over_id_decreases_with_current(self, device):
        currents = np.array([1e-6, 1e-5, 1e-4, 1e-3])
        gm_over_id = np.array([_s(device.gm(i)) / i for i in currents])
        assert np.all(np.diff(gm_over_id) < 0)

    def test_vdsat_floors_in_weak_inversion(self, device):
        vdsat = _s(device.vdsat(1e-9))
        assert vdsat == pytest.approx(3.5 * THERMAL_VOLTAGE, rel=0.05)

    def test_vdsat_tracks_overdrive_in_strong_inversion(self, device):
        ids = 2e-3
        vov = _s(device.vov_for_current(ids))
        assert _s(device.vdsat(ids)) == pytest.approx(vov, rel=0.1)

    def test_output_resistance(self, device):
        ids = 1e-4
        assert _s(device.ro(ids)) == pytest.approx(
            1.0 / (_s(device.lam) * ids), rel=1e-9
        )

    def test_body_effect_vth_at(self, device):
        assert _s(device.vth_at(0.0)) == pytest.approx(_s(device.vth))
        assert _s(device.vth_at(1.0)) > _s(device.vth)

    def test_gmbs_fraction_of_gm(self, device):
        ids = 1e-4
        ratio = _s(device.gmbs(ids, 0.5)) / _s(device.gm(ids))
        assert 0.05 < ratio < 0.5

    def test_capacitances_positive_and_scale_with_width(self):
        tech = C035Technology()
        small = tech.realize_nominal("n", 10e-6, 1e-6)
        large = tech.realize_nominal("n", 100e-6, 1e-6)
        for attr in ("cgs", "cgd", "cdb"):
            assert _s(getattr(large, attr)()) > _s(getattr(small, attr)()) > 0

    def test_area(self):
        tech = C035Technology()
        dev = tech.realize_nominal("n", 10e-6, 2e-6)
        assert dev.area() == pytest.approx(20e-12)
