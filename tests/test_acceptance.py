"""Acceptance-sampling screener: training, certainty bands, accuracy."""

import numpy as np
import pytest

from repro.problems import make_quadratic_problem, make_sphere_problem
from repro.sampling.acceptance import LinearMarginScreener


@pytest.fixture
def problem():
    return make_sphere_problem(sigma=0.3)


def _train_screener(problem, x, n_train=200, safety=3.0, seed=0):
    screener = LinearMarginScreener(problem.specs, safety=safety, min_train=30)
    rng = np.random.default_rng(seed)
    samples = problem.variation.sample(n_train, rng)
    performance = problem.simulate(x, samples)
    screener.update(samples, problem.specs.margins(performance))
    return screener


class TestTraining:
    def test_inactive_until_min_train(self, problem):
        screener = LinearMarginScreener(problem.specs, min_train=30)
        assert not screener.active
        rng = np.random.default_rng(0)
        samples = problem.variation.sample(10, rng)
        margins = problem.specs.margins(
            problem.simulate(np.full(4, 0.6), samples)
        )
        screener.update(samples, margins)
        assert not screener.active  # 10 < 30

    def test_becomes_active(self, problem):
        screener = _train_screener(problem, np.full(4, 0.6))
        assert screener.active
        assert screener.n_train == 200

    def test_invalid_safety(self, problem):
        with pytest.raises(ValueError):
            LinearMarginScreener(problem.specs, safety=0.0)


class TestClassification:
    def test_inactive_screener_simulates_everything(self, problem):
        screener = LinearMarginScreener(problem.specs)
        rng = np.random.default_rng(1)
        samples = problem.variation.sample(25, rng)
        result = screener.classify(samples)
        assert result.n_screened == 0
        assert np.all(result.simulate_mask)

    def test_screens_a_useful_fraction(self, problem):
        """On the linear synthetic problem most samples are far from the
        border, so the trained screener should skip a large share."""
        x = np.full(4, 0.6)
        screener = _train_screener(problem, x)
        rng = np.random.default_rng(2)
        fresh = problem.variation.sample(500, rng)
        result = screener.classify(fresh)
        assert result.n_screened > 100

    def test_screened_labels_are_accurate(self, problem):
        """Certain-pass/fail labels must agree with the true indicator
        essentially always (safety = 3 sigma)."""
        x = np.full(4, 0.55)
        screener = _train_screener(problem, x, n_train=300)
        rng = np.random.default_rng(3)
        fresh = problem.variation.sample(2000, rng)
        result = screener.classify(fresh)
        truth = problem.indicator(x, fresh)
        labelled = result.labels >= 0
        if np.any(labelled):
            agreement = np.mean(
                (result.labels[labelled] == 1) == truth[labelled]
            )
            assert agreement > 0.995

    def test_two_spec_problem(self):
        problem = make_quadratic_problem()
        x = np.full(5, 0.62)
        screener = _train_screener(problem, x, n_train=300)
        rng = np.random.default_rng(4)
        fresh = problem.variation.sample(1000, rng)
        result = screener.classify(fresh)
        truth = problem.indicator(x, fresh)
        labelled = result.labels >= 0
        if np.any(labelled):
            agreement = np.mean((result.labels[labelled] == 1) == truth[labelled])
            assert agreement > 0.99

    def test_higher_safety_screens_less(self, problem):
        x = np.full(4, 0.58)
        tight = _train_screener(problem, x, safety=2.0)
        loose = _train_screener(problem, x, safety=5.0)
        rng = np.random.default_rng(5)
        fresh = problem.variation.sample(800, rng)
        assert tight.classify(fresh).n_screened >= loose.classify(fresh).n_screened

    def test_empty_batch(self, problem):
        screener = _train_screener(problem, np.full(4, 0.6))
        result = screener.classify(np.empty((0, problem.process_dimension)))
        assert result.n_screened == 0
        assert result.labels.shape == (0,)
