"""Zero-copy process engine: shared-memory staging and bit-identity.

PR 6 replaced the process pool's per-round ``(designs, samples)`` pickling
with one :class:`multiprocessing.shared_memory` block per round.  These
tests pin the staging mechanics (:class:`~repro.engine.process.ShmRound`)
and the engine contract that matters: results are bit-identical to
:class:`~repro.engine.serial.SerialEngine` for any worker count and
transfer, with and without a warm-start cache — on the circuit-priced
``netlist_ota`` problem whose per-row cost is what the pool exists for.
"""

import numpy as np
import pytest
from multiprocessing import shared_memory

from repro.api import optimize
from repro.engine import make_engine
from repro.engine.cache import make_cache
from repro.engine.process import ProcessPoolEngine, ShmRound, _evaluate_shm_chunk
from repro.yieldsim.estimator import PendingRefinement


class _Shell:
    def __init__(self, x):
        self.x = np.asarray(x, dtype=float)


def _block(x, samples, category="stage1"):
    return PendingRefinement(_Shell(x), np.asarray(samples, dtype=float), category)


class TestShmRound:
    def test_round_trip_and_descriptors(self):
        rng = np.random.default_rng(0)
        blocks = [
            _block([1.0, 2.0], rng.normal(size=(5, 3))),
            _block([3.0, 4.0], rng.normal(size=(2, 3)), category="stage2"),
            _block([5.0, 6.0], rng.normal(size=(7, 3))),
        ]
        with ShmRound(blocks) as staged:
            name, d_shape, s_shape, rows = staged.chunk_descriptor(blocks)
            assert d_shape == (3, 2)
            assert s_shape == (14, 3)
            assert rows == [
                (0, 0, 5, "stage1"),
                (1, 5, 7, "stage2"),
                (2, 7, 14, "stage1"),
            ]
            # A reader attached by name sees the exact bytes.
            shm = shared_memory.SharedMemory(name=name)
            designs = np.ndarray(d_shape, np.float64, buffer=shm.buf)
            samples = np.ndarray(
                s_shape, np.float64, buffer=shm.buf, offset=designs.nbytes
            )
            np.testing.assert_array_equal(designs[1], [3.0, 4.0])
            np.testing.assert_array_equal(samples[5:7], blocks[1].samples)
            del designs, samples
            shm.close()

    def test_close_unlinks_segment(self):
        staged = ShmRound([_block([1.0], np.zeros((2, 2)))])
        name = staged.name
        staged.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_worker_chunk_evaluates_against_views(self):
        # Drive the worker entry point in-process: attach, rebuild views,
        # evaluate, detach — no pool needed to pin the descriptor protocol.
        import repro.engine.process as process_module
        from repro.engine.base import evaluate_pending
        from repro.problems import make_problem

        problem = make_problem("sphere")
        rng = np.random.default_rng(1)
        x = problem.space.clip(np.zeros(problem.space.dimension) + 0.5)
        samples = rng.normal(size=(6, problem.variation.dimension))
        blocks = [_block(x, samples[:4]), _block(x, samples[4:])]
        expected = evaluate_pending(problem, blocks)
        old = process_module._WORKER_PROBLEM
        process_module._WORKER_PROBLEM = problem
        try:
            with ShmRound(blocks) as staged:
                got = _evaluate_shm_chunk(staged.chunk_descriptor(blocks))
        finally:
            process_module._WORKER_PROBLEM = old
        np.testing.assert_array_equal(got, expected)


class TestEngineParams:
    def test_rejects_unknown_transfer(self):
        with pytest.raises(ValueError, match="transfer"):
            ProcessPoolEngine(workers=2, transfer="carrier-pigeon")

    def test_transfer_surfaces_through_registry(self):
        engine = make_engine("process", workers=2, transfer="pickle")
        assert engine.transfer == "pickle"
        engine.close()


@pytest.mark.slow
class TestCircuitPricedBitIdentity:
    """Serial vs process{1,2,4} x {shm,pickle} on the netlist OTA."""

    CONFIG = dict(
        problem="netlist_ota",
        seed=3,
        max_generations=3,
        pop_size=8,
        n0=20,
        n_max=120,
    )

    @pytest.fixture(scope="class")
    def serial_identity(self):
        return optimize(engine="serial", **self.CONFIG).identity_dict()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_shm_transfer_matches_serial(self, serial_identity, workers):
        result = optimize(
            engine="process",
            engine_params={"workers": workers, "transfer": "shm"},
            **self.CONFIG,
        )
        assert result.identity_dict() == serial_identity

    def test_pickle_transfer_matches_serial(self, serial_identity):
        result = optimize(
            engine="process",
            engine_params={"workers": 2, "transfer": "pickle"},
            **self.CONFIG,
        )
        assert result.identity_dict() == serial_identity

    @pytest.mark.parametrize("workers", [2, 4])
    def test_shm_with_cache_matches_serial(self, serial_identity, workers):
        # Cold cache run first, then a warm re-run replaying hits: both
        # must land on the serial identity (ledger-faithful accounting).
        cache = make_cache("lru")
        cold = optimize(
            engine="process",
            engine_params={"workers": workers, "transfer": "shm"},
            cache=cache,
            **self.CONFIG,
        )
        assert cold.identity_dict() == serial_identity
        warm = optimize(
            engine="process",
            engine_params={"workers": workers, "transfer": "shm"},
            cache=cache,
            **self.CONFIG,
        )
        assert warm.identity_dict() == serial_identity
        assert warm.cache_stats["hits"] > 0  # the re-run actually replayed


class TestAutoEngineDecision:
    def test_cheap_problem_commits_serial_with_record(self):
        result = optimize(
            problem="sphere",
            seed=5,
            engine="auto",
            engine_params={"workers": 4},
            max_generations=3,
            pop_size=10,
        )
        decision = result.engine_decision
        assert decision is not None
        assert decision["chosen"] == "serial"
        assert decision["model"] == "crossover"
        assert decision["pilot_cost_seconds"] < decision["crossover_cost_seconds"]
        assert decision["workers"] == 4

    @pytest.mark.slow
    def test_circuit_priced_problem_commits_process(self):
        result = optimize(
            problem="netlist_ota",
            seed=3,
            engine="auto",
            engine_params={"workers": 4, "pilot_rows": 16},
            max_generations=3,
            pop_size=8,
            n0=20,
            n_max=120,
        )
        decision = result.engine_decision
        assert decision is not None
        assert decision["chosen"] == "process"
        assert decision["transfer"] == "shm"
        assert decision["pilot_cost_seconds"] >= decision["crossover_cost_seconds"]

    def test_decision_outside_result_identity(self):
        result = optimize(
            problem="sphere",
            seed=5,
            engine="auto",
            engine_params={"workers": 2},
            max_generations=2,
            pop_size=8,
        )
        assert result.engine_decision is not None
        assert "engine_decision" in result.to_dict()
        assert "engine_decision" not in result.identity_dict()

    def test_fixed_threshold_override_still_forces_process(self):
        # The pre-crossover interface: an explicit threshold bypasses the
        # model entirely (0.0 forces the pool on any workload).
        result = optimize(
            problem="sphere",
            seed=5,
            engine="auto",
            engine_params={
                "workers": 2,
                "cost_threshold_seconds": 0.0,
                "pilot_rows": 1,
            },
            max_generations=2,
            pop_size=8,
        )
        assert result.engine_decision["chosen"] == "process"
        assert result.engine_decision["model"] == "fixed-threshold"
