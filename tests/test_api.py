"""The unified public API: registries, RunSpec, optimize, callbacks,
batched evaluation, result serialization and the CLI."""

import json

import numpy as np
import pytest

from repro import MOHECOResult, RunSpec, optimize, run_moheco
from repro.api import (
    ESTIMATORS,
    METHODS,
    PROBLEMS,
    SAMPLERS,
    Callback,
    EarlyStopOnYield,
    list_methods,
    list_problems,
    register_method,
    register_problem,
)
from repro.api.cli import main as cli_main
from repro.problems import make_sphere_problem
from repro.registry import DuplicateNameError, Registry, UnknownNameError
from repro.sampling import make_sampler

TINY = {"pop_size": 8, "max_generations": 6}


@pytest.fixture(scope="module")
def sphere():
    return make_sphere_problem(sigma=0.2)


class TestRegistry:
    def test_register_and_lookup(self):
        registry = Registry("thing")
        registry.register("alpha", int)
        assert registry.get("alpha") is int
        assert registry.get("ALPHA") is int  # case-insensitive
        assert "alpha" in registry and len(registry) == 1

    def test_decorator_registration(self):
        registry = Registry("thing")

        @registry.register("beta")
        def factory():
            return 42

        assert registry.create("beta") == 42

    def test_duplicate_name_rejected(self):
        registry = Registry("thing")
        registry.register("alpha", int)
        with pytest.raises(DuplicateNameError):
            registry.register("alpha", float)
        registry.register("alpha", float, overwrite=True)
        assert registry.get("alpha") is float

    def test_unknown_name_lists_registered(self):
        registry = Registry("widget")
        registry.register("alpha", int)
        registry.register("beta", float)
        with pytest.raises(UnknownNameError, match="alpha, beta"):
            registry.get("gamma")

    def test_builtin_registries_populated(self):
        assert {"moheco", "oo_only", "fixed_budget", "pswcd"} <= set(list_methods())
        assert {"sphere", "quadratic", "folded_cascode", "telescopic"} <= set(
            list_problems()
        )
        assert {"pmc", "lhs", "sobol"} <= set(SAMPLERS.names())
        assert "incremental" in ESTIMATORS.names()

    def test_make_sampler_error_lists_names_dynamically(self, sphere):
        with pytest.raises(ValueError, match="lhs, pmc, sobol"):
            make_sampler("halton", sphere.variation)
        SAMPLERS.register("halton_stub", object)
        try:
            with pytest.raises(ValueError, match="halton_stub"):
                make_sampler("nope", sphere.variation)
        finally:
            SAMPLERS.unregister("halton_stub")

    def test_method_and_problem_errors_list_names(self):
        with pytest.raises(UnknownNameError, match="moheco"):
            METHODS.get("genetic")
        with pytest.raises(UnknownNameError, match="sphere"):
            PROBLEMS.get("cube")


class TestRunSpec:
    def test_json_round_trip(self):
        spec = RunSpec(
            problem="sphere",
            method="oo_only",
            seed=11,
            problem_params={"dimension": 3, "sigma": 0.25},
            overrides={"pop_size": 10, "n_max": 200},
            tag="unit-test",
        )
        assert RunSpec.from_json(spec.to_json()) == spec
        assert RunSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_defaults(self):
        spec = RunSpec(problem="sphere")
        assert spec.method == "moheco" and spec.seed is None
        assert RunSpec.from_dict({"problem": "sphere"}) == spec

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown RunSpec keys"):
            RunSpec.from_dict({"problem": "sphere", "n_max": 100})

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            RunSpec(problem="")
        with pytest.raises(ValueError):
            RunSpec(problem="sphere", method=42)

    def test_with_overrides_and_seed(self):
        spec = RunSpec(problem="sphere", overrides={"pop_size": 8})
        derived = spec.with_overrides(n_max=100).with_seed(3)
        assert derived.overrides == {"pop_size": 8, "n_max": 100}
        assert derived.seed == 3
        assert spec.overrides == {"pop_size": 8}  # original untouched

    def test_hashable_for_sets_and_caching(self):
        a = RunSpec(problem="sphere", overrides={"pop_size": 8})
        b = RunSpec(problem="sphere", overrides={"pop_size": 8})
        c = a.with_seed(1)
        assert a == b and hash(a) == hash(b)
        assert len({a, b, c}) == 2

    def test_detached_from_caller_dicts(self):
        params = {"dimension": 3}
        spec = RunSpec(problem="sphere", problem_params=params)
        before = hash(spec)
        params["dimension"] = 4  # caller mutates their dict afterwards
        assert spec.problem_params == {"dimension": 3}
        assert hash(spec) == before


class TestOptimizeDriver:
    def test_legacy_shim_equivalence(self):
        """Acceptance: the deprecated wrapper and the spec path coincide."""
        with pytest.deprecated_call():
            legacy = run_moheco(make_sphere_problem(), rng=7)
        spec = optimize(RunSpec(problem="sphere", method="moheco", seed=7))
        assert legacy.best_yield == spec.best_yield
        assert legacy.n_simulations == spec.n_simulations
        np.testing.assert_array_equal(legacy.best_x, spec.best_x)

    def test_problem_name_and_object_agree(self, sphere):
        by_name = optimize("sphere", seed=5, problem_params={"sigma": 0.2}, **TINY)
        by_object = optimize(sphere, seed=5, **TINY)
        assert by_name.best_yield == by_object.best_yield
        assert by_name.n_simulations == by_object.n_simulations

    def test_spec_overrides_merge(self):
        spec = RunSpec(problem="sphere", seed=1, overrides={"pop_size": 8})
        result = optimize(spec, max_generations=3)
        assert result.generations <= 3

    def test_problem_params_with_object_rejected(self, sphere):
        with pytest.raises(TypeError):
            optimize(sphere, problem_params={"sigma": 0.3})

    def test_unknown_method_and_problem(self, sphere):
        with pytest.raises(UnknownNameError):
            optimize(sphere, method="annealing")
        with pytest.raises(UnknownNameError):
            optimize("hypercube")

    def test_custom_method_registration(self, sphere):
        calls = {}

        def fake_runner(problem, *, rng=None, ledger=None, callbacks=None, **kw):
            calls["overrides"] = kw
            return "sentinel"

        register_method("fake_method_for_test", fake_runner)
        try:
            out = optimize(sphere, method="fake_method_for_test", answer=42)
            assert out == "sentinel" and calls["overrides"] == {"answer": 42}
        finally:
            METHODS.unregister("fake_method_for_test")

    def test_custom_problem_registration(self):
        register_problem("sphere_tiny_for_test", lambda: make_sphere_problem(2, 0.3))
        try:
            result = optimize("sphere_tiny_for_test", seed=2, **TINY)
            assert result.best_x.shape == (2,)
        finally:
            PROBLEMS.unregister("sphere_tiny_for_test")

    def test_pswcd_method_runs(self, sphere):
        result = optimize(sphere, method="pswcd", seed=4, n_train=60,
                          pop_size=8, max_generations=5)
        assert 0.0 <= result.best_yield <= 1.0
        assert result.reason == "pswcd"
        assert result.n_simulations > 0

    def test_pswcd_reports_actual_generations(self, sphere):
        result = optimize(sphere, method="pswcd", seed=4, n_train=40,
                          pop_size=8, max_generations=200, patience=2)
        # Patience-based early stop: the reported count is the DE run's,
        # not the configured ceiling.
        assert 0 < result.generations < 200

    def test_seed_argument_overrides_spec_seed(self):
        spec = RunSpec(problem="sphere", seed=1,
                       overrides={"pop_size": 8, "max_generations": 4})
        swept = optimize(spec, seed=9)
        direct = optimize(spec.with_seed(9))
        assert swept.best_yield == direct.best_yield
        assert swept.n_simulations == direct.n_simulations

    def test_conflicting_method_with_spec_rejected(self):
        spec = RunSpec(problem="sphere", method="oo_only")
        with pytest.raises(TypeError, match="conflicting method"):
            optimize(spec, method="fixed_budget")
        # Even the registry default conflicts when stated explicitly.
        with pytest.raises(TypeError, match="conflicting method"):
            optimize(spec, method="moheco")
        # ...but a case variant of the spec's own method is no conflict.
        result = optimize(spec.with_overrides(pop_size=8, max_generations=2),
                          method="OO_ONLY", seed=1)
        assert result.n_simulations > 0

    def test_unknown_config_override_lists_fields(self, sphere):
        with pytest.raises(ValueError, match="valid fields: .*pop_size"):
            optimize(sphere, seed=1, bogus=3)

    def test_fixed_budget_n_max_override_wins_over_alias(self, sphere):
        result = optimize(sphere, method="fixed_budget", seed=1,
                          n_fixed=50, n_max=60, pop_size=8, max_generations=2)
        # Legacy with_overrides semantics: the explicit config field wins.
        assert result.best_estimate.n >= 60

    def test_duck_typed_problem_without_batch_protocol(self, sphere):
        """Pre-1.1 'YieldProblem-like' objects (no evaluate_batch /
        nominal_feasibility_batch) still run through optimize()."""

        class LegacyProblem:
            def __init__(self, inner):
                self._inner = inner
                self.specs = inner.specs
                self.space = inner.space
                self.variation = inner.variation
                self.design_dimension = inner.design_dimension
                self.name = "legacy"

            def simulate(self, x, samples, ledger=None, category="mc"):
                return self._inner.simulate(x, samples, ledger, category)

            def nominal_feasibility(self, x, ledger=None):
                return self._inner.nominal_feasibility(x, ledger)

        modern = optimize(sphere, seed=5, **TINY)
        legacy = optimize(LegacyProblem(sphere), seed=5, **TINY)
        assert legacy.best_yield == modern.best_yield
        assert legacy.n_simulations == modern.n_simulations


class RecordingCallback(Callback):
    def __init__(self):
        self.events = []

    def on_run_start(self, engine):
        self.events.append(("run_start", None))

    def on_generation_end(self, engine, record):
        self.events.append(("generation_end", record.generation))

    def on_stage2_promotion(self, engine, individual):
        self.events.append(("stage2", individual.yield_value))

    def on_local_search(self, engine, generation, incumbent, improved):
        self.events.append(("local_search", generation))

    def on_stop(self, engine, result):
        self.events.append(("stop", result.reason))


class TestCallbacks:
    def test_invocation_order(self, sphere):
        recorder = RecordingCallback()
        result = optimize(sphere, seed=3, callbacks=[recorder], **TINY)
        kinds = [kind for kind, _ in recorder.events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "stop"
        generations = [g for kind, g in recorder.events if kind == "generation_end"]
        # One generation_end per recorded generation, in order, starting at 0.
        assert generations == list(range(len(result.history)))
        # The run saw at least one stage-2 promotion (the sphere reaches
        # high yield quickly), and it happened before the final stop event.
        assert "stage2" in kinds
        assert kinds.index("stage2") < kinds.index("stop")

    def test_early_stop_callback(self, sphere):
        result = optimize(sphere, seed=3, callbacks=[EarlyStopOnYield(0.5)],
                          pop_size=8, max_generations=50)
        assert result.reason == "callback_stop"
        assert result.generations < 50

    def test_early_stop_at_generation_zero(self, sphere):
        class StopNow(Callback):
            def on_generation_end(self, engine, record):
                return True

        result = optimize(sphere, seed=3, callbacks=[StopNow()], **TINY)
        assert result.generations == 0
        assert result.reason == "callback_stop"

    def test_no_callbacks_is_default(self, sphere):
        a = optimize(sphere, seed=9, **TINY)
        b = optimize(sphere, seed=9, callbacks=[RecordingCallback()], **TINY)
        assert a.best_yield == b.best_yield
        assert a.n_simulations == b.n_simulations


class TestBatchedEvaluation:
    def test_evaluate_batch_matches_scalar_path(self, sphere):
        rng = np.random.default_rng(0)
        X = sphere.space.sample(5, rng)
        samples = sphere.variation.sample(40, rng)
        batched = sphere.evaluate_batch(X, samples)
        assert batched.shape == (5, 40, len(sphere.specs))
        for i, x in enumerate(X):
            np.testing.assert_allclose(batched[i], sphere.simulate(x, samples))

    def test_loop_fallback_matches_override(self, sphere):
        rng = np.random.default_rng(1)
        X = sphere.space.sample(4, rng)
        samples = sphere.variation.sample(16, rng)
        vectorized = sphere.evaluate_batch(X, samples)
        # Hide the synthetic evaluator's vectorized override to force the
        # generic per-design loop in YieldProblem.evaluate_batch.
        class Hidden:
            def __init__(self, inner):
                self._inner = inner
                self.variation = inner.variation

            def evaluate(self, x, s):
                return self._inner.evaluate(x, s)

            def metric_names(self):
                return self._inner.metric_names()

            def design_space(self):
                return self._inner.design_space()

        from repro.problems.base import YieldProblem

        looped_problem = YieldProblem(Hidden(sphere.evaluator), sphere.specs)
        np.testing.assert_allclose(
            looped_problem.evaluate_batch(X, samples), vectorized
        )

    def test_ledger_charged_per_design_sample(self, sphere):
        from repro.ledger import SimulationLedger

        ledger = SimulationLedger()
        X = sphere.space.sample(3, np.random.default_rng(2))
        samples = sphere.variation.sample(7, np.random.default_rng(3))
        sphere.evaluate_batch(X, samples, ledger, category="mc")
        assert ledger.count("mc") == 3 * 7

    def test_nominal_feasibility_batch_matches_scalar(self, sphere):
        X = sphere.space.sample(6, np.random.default_rng(4))
        feasible, violations = sphere.nominal_feasibility_batch(X)
        for i, x in enumerate(X):
            f, v = sphere.nominal_feasibility(x)
            assert feasible[i] == f
            assert violations[i] == pytest.approx(v)


class TestResultSerialization:
    def test_round_trip(self, sphere):
        result = optimize(sphere, seed=6, **TINY)
        data = json.loads(json.dumps(result.to_dict()))  # through real JSON
        rebuilt = MOHECOResult.from_dict(data)
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.best_yield == result.best_yield
        assert rebuilt.n_simulations == result.n_simulations
        assert rebuilt.ledger.total == result.ledger.total
        assert len(rebuilt.history) == len(result.history)
        np.testing.assert_array_equal(rebuilt.best_x, result.best_x)

    def test_history_series_survive(self, sphere):
        result = optimize(sphere, seed=8, **TINY)
        rebuilt = MOHECOResult.from_dict(result.to_dict())
        np.testing.assert_array_equal(
            rebuilt.history.best_yield_series(), result.history.best_yield_series()
        )
        np.testing.assert_array_equal(
            rebuilt.history.simulations_series(), result.history.simulations_series()
        )


class TestCLI:
    def test_run_writes_result_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = cli_main([
            "run", "--problem", "sphere", "--method", "moheco", "--seed", "7",
            "--set", "pop_size=8", "--set", "max_generations=4",
            "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["spec"]["problem"] == "sphere"
        assert payload["spec"]["seed"] == 7
        assert 0.0 <= payload["result"]["best_yield"] <= 1.0
        assert payload["result"]["n_simulations"] > 0
        assert "sphere" in capsys.readouterr().out

    def test_run_from_spec_file(self, tmp_path):
        spec = RunSpec(problem="sphere", seed=5,
                       overrides={"pop_size": 8, "max_generations": 3})
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(spec.to_json())
        out = tmp_path / "out.json"
        assert cli_main(["run", "--spec", str(spec_file), "--quiet",
                         "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["spec"] == spec.to_dict()

    def test_cli_matches_api(self, tmp_path):
        out = tmp_path / "result.json"
        cli_main([
            "run", "--problem", "sphere", "--seed", "7", "--quiet",
            "--set", "pop_size=8", "--set", "max_generations=4",
            "--out", str(out),
        ])
        api_result = optimize(
            RunSpec(problem="sphere", seed=7,
                    overrides={"pop_size": 8, "max_generations": 4})
        )
        payload = json.loads(out.read_text())
        assert payload["result"]["best_yield"] == api_result.best_yield
        assert payload["result"]["n_simulations"] == api_result.n_simulations

    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        output = capsys.readouterr().out
        for needle in ("moheco", "sphere", "lhs", "incremental"):
            assert needle in output

    def test_run_requires_problem_or_spec(self):
        with pytest.raises(SystemExit):
            cli_main(["run"])

    def test_bad_override_syntax(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--problem", "sphere", "--set", "pop_size"])
