"""The MOHECO engine on synthetic problems (fast ground-truth checks)."""

import numpy as np
import pytest

from repro.baselines import run_fixed_budget, run_moheco, run_oo_only
from repro.core import MOHECO, MOHECOConfig
from repro.ledger import SimulationLedger
from repro.problems import make_quadratic_problem, make_sphere_problem


@pytest.fixture(scope="module")
def sphere():
    return make_sphere_problem(sigma=0.2)


SMALL = dict(pop_size=12, max_generations=30)


class TestBasicRun:
    def test_finds_high_yield_design(self, sphere):
        result = run_moheco(sphere, rng=0, **SMALL)
        truth = sphere.evaluator.analytic_yield(result.best_x, sphere.specs)
        assert truth > 0.9
        assert result.best_yield > 0.9

    def test_result_fields(self, sphere):
        result = run_moheco(sphere, rng=1, **SMALL)
        assert result.best_x.shape == (sphere.design_dimension,)
        assert result.generations >= 1
        assert result.n_simulations == result.ledger.total
        assert result.reason in ("yield_100", "stalled", "max_generations")
        assert len(result.history) == result.generations + 1  # + generation 0

    def test_reproducible_with_same_seed(self, sphere):
        a = run_moheco(sphere, rng=7, **SMALL)
        b = run_moheco(sphere, rng=7, **SMALL)
        np.testing.assert_array_equal(a.best_x, b.best_x)
        assert a.n_simulations == b.n_simulations

    def test_different_seeds_explore_differently(self, sphere):
        a = run_moheco(sphere, rng=1, **SMALL)
        b = run_moheco(sphere, rng=2, **SMALL)
        assert not np.array_equal(a.best_x, b.best_x)

    def test_final_estimate_has_stage2_accuracy(self, sphere):
        result = run_moheco(sphere, rng=3, **SMALL)
        assert result.best_estimate.n >= MOHECOConfig().n_max


class TestBudgetAccounting:
    def test_ledger_categories_populated(self, sphere):
        ledger = SimulationLedger()
        run_moheco(sphere, rng=4, ledger=ledger, **SMALL)
        categories = ledger.by_category()
        assert categories.get("feasibility", 0) > 0
        assert categories.get("stage1", 0) > 0

    def test_ocba_cheaper_than_fixed_budget(self, sphere):
        """The core efficiency claim, on the synthetic problem."""
        fixed = run_fixed_budget(sphere, n_fixed=500, rng=5, **SMALL)
        ocba = run_oo_only(sphere, n_max=500, rng=5, **SMALL)
        assert ocba.n_simulations < 0.5 * fixed.n_simulations

    def test_fixed_budget_spends_n_per_feasible(self):
        problem = make_sphere_problem(sigma=0.2)
        result = run_fixed_budget(problem, n_fixed=200, rng=6,
                                  pop_size=8, max_generations=5,
                                  use_acceptance_sampling=False)
        # Every feasible candidate costs exactly 200 samples.
        for record in result.history:
            if record.ocba_counts.size:
                assert np.all(record.ocba_counts == 200)


class TestStopping:
    def test_stalls_on_flat_problem(self, sphere):
        result = run_moheco(sphere, rng=8, pop_size=8, max_generations=100,
                            stop_patience=5)
        assert result.reason in ("stalled", "yield_100")
        assert result.generations < 100

    def test_max_generations_cap(self, sphere):
        result = run_moheco(sphere, rng=9, pop_size=8, max_generations=2,
                            stop_patience=50)
        assert result.generations == 2


class TestStages:
    def test_stage2_promotion_on_good_candidates(self, sphere):
        result = run_moheco(sphere, rng=10, **SMALL)
        assert any(record.stage2_count > 0 for record in result.history)

    def test_no_ocba_in_fixed_mode(self, sphere):
        config = MOHECOConfig.fixed_budget(n_fixed=100)
        config = config.with_overrides(pop_size=8, max_generations=3)
        engine = MOHECO(sphere, config, rng=11)
        result = engine.run()
        # All estimated candidates carry exactly n_fixed samples.
        for record in result.history:
            if record.ocba_counts.size:
                assert np.all(record.ocba_counts == 100)


class TestHistory:
    def test_records_monotone_simulations(self, sphere):
        result = run_moheco(sphere, rng=12, **SMALL)
        sims = result.history.simulations_series()
        assert np.all(np.diff(sims) >= 0)

    def test_training_data_accumulates(self, sphere):
        result = run_moheco(sphere, rng=13, **SMALL)
        n_early = result.history.training_data(2)[1].size
        n_late = result.history.training_data(result.generations)[1].size
        assert n_late >= n_early

    def test_generation_data_lookup(self, sphere):
        result = run_moheco(sphere, rng=14, **SMALL)
        x, y = result.history.generation_data(1)
        assert x.shape[0] == y.shape[0]
        missing_x, missing_y = result.history.generation_data(10_000)
        assert missing_x.size == 0 and missing_y.size == 0


class TestConstraintHandling:
    def test_infeasible_population_improves_violation(self):
        """Start far from feasibility: violations must decrease."""
        problem = make_quadratic_problem(cost_bound=0.55)
        result = run_moheco(problem, rng=15, pop_size=10, max_generations=25)
        violations = [r.best_violation for r in result.history]
        assert violations[-1] <= violations[0]

    def test_memetic_trigger_recorded(self, sphere):
        result = run_moheco(sphere, rng=16, pop_size=10, max_generations=40,
                            ls_patience=2)
        fired = [r.local_search_fired for r in result.history]
        # On a stalling synthetic problem the LS should fire at least once.
        assert any(fired) or result.reason == "yield_100"
