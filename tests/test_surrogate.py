"""Surrogate stack: MLP jacobian, LM training, RSB yield model."""

import numpy as np
import pytest

from repro.surrogate import (
    MLP,
    ResponseSurfaceYieldModel,
    train_levenberg_marquardt,
)


class TestMLP:
    def test_parameter_count(self):
        model = MLP(n_inputs=4, n_hidden=5)
        assert model.n_params == 5 * 4 + 5 + 5 + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP(0, 5)
        with pytest.raises(ValueError):
            MLP(4, 0)

    def test_forward_shape(self):
        model = MLP(3, 7)
        params = model.init_params(np.random.default_rng(0))
        y = model.forward(params, np.random.default_rng(1).normal(size=(11, 3)))
        assert y.shape == (11,)

    def test_unpack_roundtrip(self):
        model = MLP(3, 4)
        params = model.init_params(np.random.default_rng(0))
        w1, b1, w2, b2 = model.unpack(params)
        assert w1.shape == (4, 3) and b1.shape == (4,) and w2.shape == (4,)
        rebuilt = np.concatenate([w1.ravel(), b1, w2, [b2]])
        np.testing.assert_array_equal(rebuilt, params)

    def test_jacobian_matches_finite_differences(self):
        model = MLP(3, 4)
        rng = np.random.default_rng(2)
        params = model.init_params(rng)
        x = rng.normal(size=(6, 3))
        jac = model.jacobian(params, x)
        assert jac.shape == (6, model.n_params)
        h = 1e-6
        for k in range(model.n_params):  # every parameter, all four blocks
            dp = np.zeros_like(params)
            dp[k] = h
            fd = (model.forward(params + dp, x) - model.forward(params - dp, x)) / (2 * h)
            np.testing.assert_allclose(jac[:, k], fd, rtol=1e-4, atol=1e-7)

    def test_forward_accepts_single_vector(self):
        model = MLP(3, 4)
        params = model.init_params(np.random.default_rng(6))
        x = np.array([0.1, -0.2, 0.3])
        np.testing.assert_array_equal(
            model.forward(params, x), model.forward(params, x[None, :])
        )

    def test_forward_batch_matches_per_row(self):
        # BLAS may take different paths for (n, d) and (1, d) inputs, so
        # only numerical agreement is promised; the screener keeps *bit*
        # determinism by always scoring a pool in one batch call.
        model = MLP(2, 5)
        rng = np.random.default_rng(7)
        params = model.init_params(rng)
        x = rng.normal(size=(9, 2))
        batched = model.forward(params, x)
        single = np.array([model.forward(params, row)[0] for row in x])
        np.testing.assert_allclose(batched, single, rtol=1e-12)

    def test_init_params_reproducible(self):
        model = MLP(3, 4)
        a = model.init_params(np.random.default_rng(42))
        b = model.init_params(np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
        assert a.shape == (model.n_params,)
        assert np.all(np.isfinite(a))


class TestLevenbergMarquardt:
    def test_fits_smooth_function(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(-1, 1, size=(120, 2))
        y = np.sin(2 * x[:, 0]) + 0.5 * x[:, 1] ** 2
        model = MLP(2, 10)
        result = train_levenberg_marquardt(
            model, x, y, model.init_params(rng), max_iterations=200
        )
        assert result.mse < 0.01
        assert result.iterations >= 1

    def test_error_decreases_monotonically_on_accepted_steps(self):
        rng = np.random.default_rng(4)
        x = rng.uniform(-1, 1, size=(50, 1))
        y = x[:, 0] ** 3
        model = MLP(1, 6)
        params0 = model.init_params(rng)
        first = train_levenberg_marquardt(model, x, y, params0, max_iterations=3)
        more = train_levenberg_marquardt(model, x, y, params0, max_iterations=60)
        assert more.mse <= first.mse + 1e-12

    def test_shape_mismatch_rejected(self):
        model = MLP(2, 3)
        with pytest.raises(ValueError):
            train_levenberg_marquardt(
                model, np.zeros((5, 2)), np.zeros(4),
                model.init_params(np.random.default_rng(0)),
            )

    def test_recovers_linear_fixture_near_exactly(self):
        # y = 0.3 x is inside the model class (tanh is ~linear near 0), so
        # LM must drive the MSE essentially to the noise floor: a known
        # fixture with a known answer.
        rng = np.random.default_rng(8)
        x = rng.uniform(-0.5, 0.5, size=(80, 1))
        y = 0.3 * x[:, 0]
        model = MLP(1, 4)
        result = train_levenberg_marquardt(
            model, x, y, model.init_params(rng), max_iterations=300
        )
        assert result.mse < 1e-6
        predictions = model.forward(result.params, x)
        np.testing.assert_allclose(predictions, y, atol=5e-3)

    def test_deterministic_given_params0(self):
        rng = np.random.default_rng(9)
        x = rng.uniform(-1, 1, size=(40, 2))
        y = x[:, 0] * x[:, 1]
        model = MLP(2, 5)
        params0 = model.init_params(rng)
        first = train_levenberg_marquardt(model, x, y, params0, max_iterations=50)
        second = train_levenberg_marquardt(model, x, y, params0, max_iterations=50)
        np.testing.assert_array_equal(first.params, second.params)
        assert first.mse == second.mse

    def test_result_reports_convergence_flag(self):
        rng = np.random.default_rng(10)
        x = rng.uniform(-0.5, 0.5, size=(30, 1))
        y = 0.1 * x[:, 0]
        model = MLP(1, 3)
        result = train_levenberg_marquardt(
            model, x, y, model.init_params(rng), max_iterations=500
        )
        assert result.converged
        assert result.iterations <= 500
        assert np.all(np.isfinite(result.params))


class TestResponseSurfaceYieldModel:
    def _data(self, n=150, seed=5):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 1, size=(n, 3))
        y = np.clip(1.0 - 2.0 * np.sum((x - 0.6) ** 2, axis=1), 0.0, 1.0)
        return x, y

    def test_fit_predict(self):
        x, y = self._data()
        model = ResponseSurfaceYieldModel(n_hidden=8, n_restarts=2, rng=0)
        model.fit(x, y)
        assert model.fitted
        predictions = model.predict(x)
        assert predictions.shape == y.shape
        assert np.all((predictions >= 0) & (predictions <= 1))
        assert model.rms_error(x, y) < 0.08

    def test_interpolates_better_than_mean_predictor(self):
        x, y = self._data(n=200)
        model = ResponseSurfaceYieldModel(n_hidden=8, n_restarts=2, rng=1)
        model.fit(x[:150], y[:150])
        rms_model = model.rms_error(x[150:], y[150:])
        rms_mean = float(np.sqrt(np.mean((np.mean(y[:150]) - y[150:]) ** 2)))
        assert rms_model < rms_mean

    def test_predict_before_fit_raises(self):
        model = ResponseSurfaceYieldModel()
        with pytest.raises(RuntimeError):
            model.predict(np.zeros((1, 3)))

    def test_too_few_points_rejected(self):
        model = ResponseSurfaceYieldModel()
        with pytest.raises(ValueError):
            model.fit(np.zeros((1, 3)), np.zeros(1))

    def test_fit_returns_self_for_chaining(self):
        x, y = self._data(n=50)
        model = ResponseSurfaceYieldModel(n_hidden=4, n_restarts=1, rng=2)
        assert model.fit(x, y) is model

    def test_same_seed_same_predictions(self):
        # The screener relies on this: a refit is a pure function of the
        # training data and the spawned RNG stream.
        x, y = self._data(n=60)
        probe = self._data(n=20, seed=9)[0]
        predictions = [
            ResponseSurfaceYieldModel(n_hidden=4, n_restarts=1, rng=3)
            .fit(x, y)
            .predict(probe)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(predictions[0], predictions[1])

    def test_predictions_clip_to_unit_interval(self):
        rng = np.random.default_rng(11)
        x = rng.uniform(0, 1, size=(40, 2))
        # Steep targets push the raw network output outside [0, 1].
        y = np.where(x[:, 0] > 0.5, 1.0, 0.0)
        model = ResponseSurfaceYieldModel(n_hidden=6, n_restarts=1, rng=4)
        model.fit(x, y)
        far = rng.uniform(-3, 4, size=(50, 2))
        predictions = model.predict(far)
        assert np.all((predictions >= 0.0) & (predictions <= 1.0))

    def test_constant_feature_does_not_blow_up(self):
        # A collapsed population axis gives zero std; normalisation must
        # guard the divide and training must still succeed.
        rng = np.random.default_rng(12)
        x = rng.uniform(0, 1, size=(40, 3))
        x[:, 1] = 0.7
        y = np.clip(1.0 - (x[:, 0] - 0.5) ** 2, 0.0, 1.0)
        model = ResponseSurfaceYieldModel(n_hidden=4, n_restarts=1, rng=5)
        model.fit(x, y)
        assert np.all(np.isfinite(model.predict(x)))
