"""PSWCD worst-case analysis against the synthetic problem's ground truth."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.baselines import PSWCDOptimizer, pswcd_analysis
from repro.ledger import SimulationLedger
from repro.problems import make_quadratic_problem, make_sphere_problem


class TestAnalysis:
    def test_betas_match_analytic_on_linear_gaussian_problem(self):
        """The synthetic problems ARE linear in the noise, so the fitted
        worst-case distances must equal the analytic z-scores."""
        problem = make_sphere_problem(sigma=0.2)
        x = np.full(4, 0.55)
        truth = problem.evaluator.analytic_yield(x, problem.specs)
        analysis = pswcd_analysis(problem, x, n_train=400,
                                  rng=np.random.default_rng(0))
        # Single spec: yield = Phi(beta) exactly.
        assert norm.cdf(analysis.betas[0]) == pytest.approx(truth, abs=0.03)

    def test_bound_is_pessimistic_with_multiple_specs(self):
        problem = make_quadratic_problem()
        x = np.full(5, 0.62)
        truth = problem.evaluator.analytic_yield(x, problem.specs)
        analysis = pswcd_analysis(problem, x, n_train=400,
                                  rng=np.random.default_rng(1))
        # Union bound never exceeds the true (independent-spec) yield.
        assert analysis.yield_bound <= truth + 0.03

    def test_ledger_charged(self):
        problem = make_sphere_problem()
        ledger = SimulationLedger()
        pswcd_analysis(problem, np.full(4, 0.6), n_train=123,
                       rng=np.random.default_rng(2), ledger=ledger)
        assert ledger.count("pswcd") == 123

    def test_worst_beta_and_names(self):
        problem = make_quadratic_problem()
        analysis = pswcd_analysis(problem, np.full(5, 0.62), n_train=300,
                                  rng=np.random.default_rng(3))
        assert analysis.worst_beta == pytest.approx(np.min(analysis.betas))
        assert analysis.spec_names == ["perf", "cost"]


class TestOptimizer:
    def test_improves_worst_case_distance(self):
        problem = make_sphere_problem(sigma=0.2)
        optimizer = PSWCDOptimizer(problem, n_train=80,
                                   rng=np.random.default_rng(4))
        x, min_beta, analysis = optimizer.run(
            pop_size=10, max_generations=12, patience=6
        )
        assert min_beta > 1.0  # found a design sigmas away from failure
        assert problem.space.contains(x)

    def test_infeasible_designs_graded_by_violation(self):
        problem = make_sphere_problem()
        optimizer = PSWCDOptimizer(problem, n_train=50,
                                   rng=np.random.default_rng(5))
        bad = optimizer.objective(np.zeros(4))
        worse = optimizer.objective(np.full(4, 0.0))
        assert bad <= -1.0
        assert bad == pytest.approx(worse)
