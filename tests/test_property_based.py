"""Property-based tests (Hypothesis) on core invariants."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.circuit.topologies.base import DesignSpace
from repro.ledger import SimulationLedger
from repro.ocba import equal_allocation, ocba_allocation
from repro.optim.constraints import FitnessView, deb_better
from repro.sampling.lhs import latin_hypercube_uniforms
from repro.specs import Spec, SpecSet
from repro.units import db_to_ratio, ratio_to_db
from repro.yieldsim import YieldEstimate

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestUnitsProperties:
    @given(positive_floats)
    def test_db_roundtrip(self, ratio):
        assert abs(db_to_ratio(ratio_to_db(ratio)) - ratio) <= 1e-9 * ratio

    @given(positive_floats, positive_floats)
    def test_db_of_product_is_sum(self, a, b):
        assert ratio_to_db(a * b) == np.float64(ratio_to_db(a) + ratio_to_db(b)).round(9) or (
            abs(ratio_to_db(a * b) - (ratio_to_db(a) + ratio_to_db(b))) < 1e-6
        )


class TestSpecProperties:
    @given(finite_floats, finite_floats)
    def test_margin_sign_agrees_with_passes(self, bound, value):
        spec = Spec("m", ">=", bound)
        assert spec.passes(value) == (spec.margin(value) >= 0.0)

    @given(
        arrays(np.float64, (7, 2),
               elements=st.floats(-100, 100, allow_nan=False)),
    )
    def test_violation_nonnegative_and_zero_iff_pass(self, performance):
        specs = SpecSet([Spec("a", ">=", 1.0), Spec("b", "<=", 2.0)])
        violation = specs.violation(performance)
        passes = specs.passes(performance)
        assert np.all(violation >= 0.0)
        np.testing.assert_array_equal(passes, violation == 0.0)


class TestLHSProperties:
    @given(st.integers(min_value=1, max_value=60),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=2**31 - 1))
    def test_stratification_invariant(self, n, d, seed):
        u = latin_hypercube_uniforms(n, d, np.random.default_rng(seed))
        assert u.shape == (n, d)
        assert np.all((u > 0.0) & (u < 1.0))
        for j in range(d):
            strata = np.floor(u[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))


class TestOCBAProperties:
    @given(
        st.lists(st.floats(0.01, 0.99, allow_nan=False), min_size=2, max_size=12),
        st.integers(min_value=50, max_value=5000),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_allocation_sums_and_nonnegative(self, means, total, seed):
        means = np.array(means)
        rng = np.random.default_rng(seed)
        stds = np.sqrt(means * (1 - means)) + rng.uniform(0, 0.1, len(means))
        alloc = ocba_allocation(means, stds, total)
        assert alloc.sum() == total
        assert np.all(alloc >= 0)

    @given(st.integers(1, 40), st.integers(0, 10_000))
    def test_equal_allocation_invariants(self, n, total):
        alloc = equal_allocation(n, total)
        assert alloc.sum() == total
        assert alloc.max() - alloc.min() <= 1


class TestDebProperties:
    fitness = st.builds(
        FitnessView,
        feasible=st.booleans(),
        violation=st.floats(0.0, 100.0, allow_nan=False),
        objective=st.floats(0.0, 1.0, allow_nan=False),
    )

    @given(fitness, fitness)
    def test_antisymmetry(self, a, b):
        # a and b cannot both be strictly better than each other.
        assert not (deb_better(a, b) and deb_better(b, a))

    @given(fitness)
    def test_irreflexive(self, a):
        assert not deb_better(a, a)

    @given(fitness, fitness, fitness)
    def test_transitivity(self, a, b, c):
        if deb_better(a, b) and deb_better(b, c):
            assert deb_better(a, c)


class TestYieldEstimateProperties:
    @given(st.integers(0, 1000), st.integers(0, 1000))
    def test_value_in_unit_interval(self, passes, extra):
        n = passes + extra
        est = YieldEstimate(passes=passes, n=n)
        assert 0.0 <= est.value <= 1.0
        lo, hi = est.wilson_interval()
        assert 0.0 <= lo <= hi <= 1.0
        if n > 0:
            assert lo <= est.value <= hi


class TestDesignSpaceProperties:
    @given(
        arrays(np.float64, 5, elements=st.floats(-10, 10, allow_nan=False)),
        st.integers(0, 2**31 - 1),
    )
    def test_clip_idempotent_and_inside(self, x, seed):
        space = DesignSpace([f"v{i}" for i in range(5)],
                            np.full(5, -1.0), np.full(5, 1.0))
        clipped = space.clip(x)
        assert space.contains(clipped)
        np.testing.assert_array_equal(space.clip(clipped), clipped)


class TestLedgerProperties:
    @given(st.lists(st.integers(0, 10_000), max_size=30))
    def test_total_is_sum_of_charges(self, charges):
        ledger = SimulationLedger()
        for i, n in enumerate(charges):
            ledger.charge(n, category=f"c{i % 3}")
        assert ledger.total == sum(charges)
