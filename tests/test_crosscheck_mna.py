"""Cross-checks: analytic small-signal formulas vs the MNA engine.

The fast topology evaluators use textbook expressions (cascode output
resistance, pole frequencies).  These tests rebuild the same sub-circuits
as netlists, solve them with the full MNA engine, and require agreement —
the "golden reference" role DESIGN.md assigns to `repro.circuit.mna`.
"""

import numpy as np
import pytest

from repro.circuit.ac import ACAnalysis
from repro.circuit.mna import solve_dc
from repro.circuit.netlist import Circuit
from repro.circuit.tech import C035Technology


@pytest.fixture(scope="module")
def tech():
    return C035Technology()


def _output_resistance(circuit, source_name: str) -> float:
    """Small-signal resistance seen by a unit-AC voltage source.

    Clamping the high-impedance node with a voltage source makes the DC
    problem well-posed (an ideal current source would need nA-precision to
    sit on a cascode's flat I-V branch), and the AC branch current of that
    source directly measures the node resistance: r = |v/i| = 1/|i|.
    """
    dc = solve_dc(circuit)
    analysis = ACAnalysis(circuit, dc)
    x = analysis.solve_at(1.0)  # 1 Hz: purely resistive
    source = circuit[source_name]
    branch = analysis._nodemap.n_nodes + source.branch_index
    return float(1.0 / np.abs(x[branch])), dc


class TestCascodeResistanceCrossCheck:
    """Cascode output resistance: MNA vs the analytic composite formula
    ``Rcas = ro2 (1 + (gm2 + gmbs2) ro1) + ro1`` that the topology
    evaluators rely on."""

    VG1 = 0.62   # input gate (vov ~ 0.12 V)
    VG2 = 1.00   # cascode gate

    def _build_cascode(self, tech, vout=2.0):
        c = Circuit("cascode")
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_voltage_source("VG1", "g1", "0", self.VG1)
        c.add_voltage_source("VG2", "g2", "0", self.VG2)
        c.add_voltage_source("VOUT", "out", "0", vout, ac=1.0)
        c.add_mosfet("M2", "out", "g2", "mid", "0", tech.nmos, 30e-6, 0.7e-6)
        c.add_mosfet("M1", "mid", "g1", "0", "0", tech.nmos, 30e-6, 0.7e-6)
        return c

    def test_resistance_matches_analytic_formula(self, tech):
        circuit = self._build_cascode(tech)
        r_measured, dc = _output_resistance(circuit, "VOUT")
        op1, op2 = dc.op["M1"], dc.op["M2"]
        assert op1.saturated and op2.saturated

        ro1, ro2 = 1.0 / op1.gds, 1.0 / op2.gds
        r_analytic = ro2 * (1.0 + (op2.gm + op2.gmbs) * ro1) + ro1
        assert r_measured == pytest.approx(r_analytic, rel=0.05)

    def test_cascode_multiplies_output_resistance(self, tech):
        """The resistance boost that gives examples 1/2 their gain."""
        r_cascode, _ = _output_resistance(self._build_cascode(tech), "VOUT")

        cs = Circuit("cs")
        cs.add_voltage_source("VDD", "vdd", "0", 3.3)
        cs.add_voltage_source("VG1", "g1", "0", self.VG1)
        cs.add_voltage_source("VOUT", "out", "0", 2.0, ac=1.0)
        cs.add_mosfet("M1", "out", "g1", "0", "0", tech.nmos, 30e-6, 0.7e-6)
        r_single, dcs = _output_resistance(cs, "VOUT")
        assert dcs.op["M1"].saturated

        # gm*ro of the cascode device is ~100 here; require a big boost.
        assert r_cascode > 20.0 * r_single


class TestPoleCrossCheck:
    """MNA pole extraction vs the analytic gm/C expressions the topology
    evaluators use for non-dominant poles."""

    def test_source_follower_input_pole(self, tech):
        # Diode-connected load node: pole ~ gm / (2 pi C) at the node.
        c = Circuit("diode_pole")
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_current_source("IB", "vdd", "d", 100e-6, ac=1.0)
        c.add_mosfet("M1", "d", "d", "0", "0", tech.nmos, 50e-6, 1e-6)
        cap = 2e-12
        c.add_capacitor("CL", "d", "0", cap)
        dc = solve_dc(c)
        op = dc.op["M1"]
        analysis = ACAnalysis(c, dc)
        poles = analysis.poles()
        assert len(poles) >= 1
        # The diode presents 1/(gm+gds); device capacitances add to CL.
        g_node = op.gm + op.gds + op.gmbs
        f_expected = g_node / (2 * np.pi * cap)
        f_measured = float(np.abs(poles[0]))
        # Device parasitics shift the pole; require same order + direction.
        assert f_measured == pytest.approx(f_expected, rel=0.35)
        assert f_measured < f_expected  # parasitics only ever add C

    def test_transfer_corner_equals_extracted_pole(self, tech):
        c = Circuit("rc_check")
        c.add_voltage_source("Vin", "in", "0", 1.0, ac=1.0)
        c.add_resistor("R1", "in", "out", 10e3)
        c.add_capacitor("C1", "out", "0", 1e-12)
        dc = solve_dc(c)
        analysis = ACAnalysis(c, dc)
        pole = float(np.abs(analysis.poles()[0]))
        tf = analysis.transfer("out", frequencies=np.logspace(5, 9, 200))
        # -3 dB frequency of the transfer function == extracted pole.
        idx = int(np.argmin(np.abs(tf.magnitude - 1 / np.sqrt(2))))
        assert tf.frequencies[idx] == pytest.approx(pole, rel=0.1)


class TestMirrorCrossCheck:
    """The topologies' exact-equation mirror model vs a full MNA solve."""

    def test_mirror_error_from_vth_mismatch(self, tech):
        # MNA: mirror with a deliberately shifted output-device threshold.
        shifted_card = tech.nmos.with_overrides(vth0=tech.nmos.vth0 + 0.01)
        c = Circuit("mirror")
        c.add_voltage_source("VDD", "vdd", "0", 3.3)
        c.add_current_source("IREF", "vdd", "d1", 50e-6)
        c.add_mosfet("M1", "d1", "d1", "0", "0", tech.nmos, 40e-6, 2e-6)
        c.add_mosfet("M2", "d2", "d1", "0", "0", shifted_card, 40e-6, 2e-6)
        c.add_voltage_source("VOUT", "d2", "0", 1.5)  # clamp output node
        sol = solve_dc(c)
        i_out = -sol.branch_current(c["VOUT"])

        # Analytic expectation: dI/I ~ -gm/I * dVth (square law: -2 dVth/vov).
        op2 = sol.op["M2"]
        expected_drop = op2.gm / max(op2.ids, 1e-12) * 0.01
        measured_drop = (50e-6 - i_out) / 50e-6
        assert measured_drop == pytest.approx(expected_drop, rel=0.25)
        assert i_out < 50e-6  # higher vth -> less current, always
