"""Yield problems: wiring, ledger accounting, synthetic ground truth."""

import numpy as np
import pytest

from repro.ledger import SimulationLedger
from repro.problems import (
    make_folded_cascode_problem,
    make_quadratic_problem,
    make_sphere_problem,
    make_telescopic_problem,
)
from repro.specs import Spec, SpecSet


class TestPaperProblems:
    def test_example1_definition(self):
        problem = make_folded_cascode_problem()
        assert problem.process_dimension == 80
        bounds = {s.name: (s.kind, s.bound) for s in problem.specs}
        assert bounds["a0_db"] == (">=", 70.0)
        assert bounds["gbw_hz"] == (">=", 40e6)
        assert bounds["pm_deg"] == (">=", 60.0)
        assert bounds["os_v"] == (">=", 4.6)
        assert bounds["power_w"] == ("<=", 1.07e-3)

    def test_example2_definition(self):
        problem = make_telescopic_problem()
        assert problem.process_dimension == 123
        bounds = {s.name: (s.kind, s.bound) for s in problem.specs}
        assert bounds["gbw_hz"] == (">=", 300e6)
        assert bounds["os_v"] == (">=", 1.8)
        assert bounds["area_m2"] == ("<=", 180e-12)
        assert bounds["offset_v"] == ("<=", 0.05e-3)

    def test_mismatched_specs_rejected(self):
        problem = make_sphere_problem()
        wrong = SpecSet([Spec("not_a_metric", ">=", 0.0)])
        with pytest.raises(ValueError):
            type(problem)(problem.evaluator, wrong)


class TestSimulationAccounting:
    def test_simulate_charges_per_sample(self):
        problem = make_sphere_problem()
        ledger = SimulationLedger()
        samples = problem.variation.sample(37, np.random.default_rng(0))
        problem.simulate(np.full(4, 0.6), samples, ledger, category="mc")
        assert ledger.total == 37
        assert ledger.count("mc") == 37

    def test_nominal_feasibility_charges_one(self):
        problem = make_sphere_problem()
        ledger = SimulationLedger()
        problem.nominal_feasibility(np.full(4, 0.6), ledger)
        assert ledger.total == 1
        assert ledger.count("feasibility") == 1

    def test_simulate_without_ledger_is_fine(self):
        problem = make_sphere_problem()
        samples = problem.variation.sample(3, np.random.default_rng(0))
        out = problem.simulate(np.full(4, 0.6), samples)
        assert out.shape == (3, 1)


class TestSyntheticGroundTruth:
    def test_sphere_center_is_feasible_high_yield(self):
        problem = make_sphere_problem(sigma=0.15)
        x = np.full(4, 0.6)
        feasible, violation = problem.nominal_feasibility(x)
        assert feasible and violation == 0.0
        assert problem.evaluator.analytic_yield(x, problem.specs) > 0.99

    def test_sphere_corner_is_infeasible(self):
        problem = make_sphere_problem()
        feasible, violation = problem.nominal_feasibility(np.zeros(4))
        assert not feasible and violation > 0

    def test_analytic_yield_matches_monte_carlo(self):
        problem = make_quadratic_problem()
        rng = np.random.default_rng(3)
        for x in (np.full(5, 0.62), np.full(5, 0.55), np.full(5, 0.68)):
            analytic = problem.evaluator.analytic_yield(x, problem.specs)
            samples = problem.variation.sample(40_000, rng)
            mc = float(np.mean(problem.indicator(x, samples)))
            assert mc == pytest.approx(analytic, abs=0.01)

    def test_quadratic_cost_constraint_active(self):
        problem = make_quadratic_problem()
        # The unconstrained performance optimum (x = 0.7) violates the cost
        # spec, so the yield optimum must sit elsewhere.
        center_yield = problem.evaluator.analytic_yield(
            np.full(5, 0.7), problem.specs
        )
        shifted_yield = problem.evaluator.analytic_yield(
            np.full(5, 0.64), problem.specs
        )
        assert shifted_yield > center_yield

    def test_indicator_shape_and_dtype(self):
        problem = make_sphere_problem()
        samples = problem.variation.sample(11, np.random.default_rng(0))
        out = problem.indicator(np.full(4, 0.6), samples)
        assert out.shape == (11,)
        assert out.dtype == bool

    def test_repr(self):
        assert "sphere" in repr(make_sphere_problem())
