"""Config-composed methods: part registries, screening, determinism.

The load-bearing contracts:

* A composed method is *config*: its parts resolve by name from the
  SCREENERS/PROPOSERS/SELECTIONS registries, and a custom part plus a
  ~10-line config yields a full ``repro list methods`` entry.
* Screening happens before the step-3 feasibility gate, so a pruned
  trial charges **zero** simulations — the ledger's ``pruned`` column
  counts it instead.
* ``screen_trace`` is part of the result identity: bit-identical across
  legacy/serial/process/remote engines and cold/warm caches.
* Bad ``screen_params`` fail at spec-validation time as structured
  :class:`~repro.api.errors.SpecError`, not inside a queued run.
"""

import json
import threading

import numpy as np
import pytest

from repro.api import (
    RunSpec,
    SpecError,
    optimize,
    validate_run_spec,
    validate_sweep_spec,
)
from repro.api.cli import main as cli_main
from repro.api.registries import METHODS
from repro.compose import (
    PROPOSERS,
    SCREENERS,
    SELECTIONS,
    ComposedMOHECO,
    NullScreener,
    SurrogateScreener,
    register_composed_method,
    register_proposer,
    register_screener,
    run_composed,
)
from repro.compose.method import select_greedy, select_one_to_one
from repro.core.config import MOHECOConfig
from repro.core.moheco import MOHECOResult
from repro.core.state import Individual
from repro.ledger import SimulationLedger
from repro.problems import make_problem
from repro.registry import UnknownNameError
from repro.service.worker import serve_worker
from repro.sweep.spec import SweepSpec

# Small enough for sub-second runs, large enough to leave the screener's
# fallback mode within a couple of generations (8 parents/generation).
CONFIG = dict(pop_size=8, max_generations=4, n0=20, n_max=100)
SCREEN = {"min_train": 8, "keep_fraction": 0.5}


def _run(method="moheco_screened", seed=11, screen_params=SCREEN, **kwargs):
    overrides = dict(CONFIG)
    if screen_params is not None:
        overrides["screen_params"] = dict(screen_params)
    spec = RunSpec(problem="quadratic", method=method, seed=seed, overrides=overrides)
    return optimize(spec, **kwargs)


@pytest.fixture
def worker_pool():
    """Start ephemeral-port worker daemons on demand; close them after."""
    servers = []

    def start(n=1, **kwargs):
        batch = []
        for _ in range(n):
            server = serve_worker(port=0, **kwargs)
            threading.Thread(target=server.serve_forever, daemon=True).start()
            servers.append(server)
            batch.append(server)
        return batch

    yield start
    for server in servers:
        server.close()


class TestPartRegistries:
    def test_builtin_parts_registered(self):
        assert {"none", "surrogate"} <= set(SCREENERS.names())
        assert {"de", "line"} <= set(PROPOSERS.names())
        assert {"one_to_one", "greedy"} <= set(SELECTIONS.names())

    def test_composed_methods_registered(self):
        for name in ("moheco_screened", "moheco_lineasy", "fixed_budget_screened"):
            runner = METHODS.get(name)
            assert runner.description
            assert set(runner.compose_config) >= {
                "screener",
                "proposer",
                "selection",
                "backbone",
            }

    def test_unknown_part_lists_registered_names(self):
        with pytest.raises(UnknownNameError, match="surrogate"):
            SCREENERS.get("nope")

    def test_custom_part_composes_into_a_method(self):
        @register_screener("keep-odd-test")
        class KeepOdd:
            def __init__(self, *, rng=None, **params):
                if params:
                    raise ValueError(f"no knobs: {sorted(params)}")

            def observe(self, x, y):
                pass

            def screen(self, xs, generation):
                mask = np.arange(len(xs)) % 2 == 1
                record = {
                    "generation": int(generation),
                    "mode": "keep-odd",
                    "refit": False,
                    "train_rows": 0,
                    "keep": [int(i) for i in np.flatnonzero(mask)],
                    "pruned": [int(i) for i in np.flatnonzero(~mask)],
                }
                return mask, record

        try:
            register_composed_method(
                "moheco_keep_odd_test",
                {
                    "screener": "keep-odd-test",
                    "proposer": "de",
                    "selection": "one_to_one",
                    "backbone": "moheco",
                },
                description="test-only: keep odd trial indices",
            )
            result = _run("moheco_keep_odd_test", screen_params=None)
            assert all(rec["mode"] == "keep-odd" for rec in result.screen_trace)
            assert result.ledger.pruned == 4 * result.generations
        finally:
            METHODS.unregister("moheco_keep_odd_test")
            SCREENERS.unregister("keep-odd-test")

    def test_register_composed_method_validates_config(self):
        good = {
            "screener": "none",
            "proposer": "de",
            "selection": "one_to_one",
            "backbone": "moheco",
        }
        with pytest.raises(ValueError, match="missing field"):
            register_composed_method("bad", {"screener": "none"}, description="x")
        with pytest.raises(ValueError, match="unknown backbone"):
            register_composed_method(
                "bad", {**good, "backbone": "pswcd"}, description="x"
            )
        with pytest.raises(ValueError, match="unknown compose field"):
            register_composed_method(
                "bad", {**good, "typo": 1}, description="x"
            )
        with pytest.raises(UnknownNameError):
            register_composed_method(
                "bad", {**good, "proposer": "nope"}, description="x"
            )
        assert "bad" not in METHODS


class TestNullScreener:
    def test_keeps_everything_and_records(self):
        screener = NullScreener(rng=0)
        mask, record = screener.screen(np.zeros((5, 2)), generation=3)
        assert mask.all()
        assert record == {
            "generation": 3,
            "mode": "none",
            "refit": False,
            "train_rows": 0,
            "keep": [0, 1, 2, 3, 4],
            "pruned": [],
        }

    def test_rejects_any_params(self):
        with pytest.raises(ValueError, match="no screen_params"):
            NullScreener(keep_fraction=0.5)


class TestSurrogateScreener:
    def _trained(self, n=40, seed=0, **kwargs):
        screener = SurrogateScreener(
            min_train=10, n_hidden=4, max_iterations=20, rng=seed, **kwargs
        )
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0, 1, size=(n, 2))
        # Yield peaks at the centre of the box.
        for x in xs:
            screener.observe(x, float(1.0 - np.sum((x - 0.5) ** 2)))
        return screener

    def test_fallback_keeps_all_below_min_train(self):
        screener = SurrogateScreener(min_train=30, rng=0)
        for i in range(10):
            screener.observe(np.array([i, i]), 0.5)
        mask, record = screener.screen(np.zeros((6, 2)), generation=1)
        assert mask.all()
        assert record["mode"] == "fallback"
        assert record["train_rows"] == 10
        assert record["pruned"] == []

    def test_calibrated_keep_fraction(self):
        screener = self._trained(keep_fraction=0.25)
        rng = np.random.default_rng(1)
        mask, record = screener.screen(rng.uniform(0, 1, size=(16, 2)), 1)
        assert record["mode"] == "screened"
        assert record["refit"] is True
        assert mask.sum() == 4  # ceil(0.25 * 16), rank-calibrated
        assert sorted(record["keep"] + record["pruned"]) == list(range(16))
        assert len(record["scores"]) == 16

    def test_screener_prefers_high_yield_region(self):
        screener = self._trained(n=120, keep_fraction=0.5)
        # Half the pool at the yield peak, half far away: the survivors
        # must be dominated by the peak group.
        near = np.full((8, 2), 0.5)
        far = np.full((8, 2), 0.05)
        mask, _ = screener.screen(np.vstack([near, far]), 1)
        assert mask[:8].sum() > mask[8:].sum()

    def test_min_keep_floor(self):
        screener = self._trained(keep_fraction=0.01, min_keep=3)
        mask, _ = screener.screen(np.random.default_rng(2).uniform(size=(10, 2)), 1)
        assert mask.sum() == 3

    def test_refit_cadence(self):
        screener = self._trained(refit_every=2)
        xs = np.random.default_rng(3).uniform(size=(8, 2))
        records = [screener.screen(xs, g)[1] for g in (1, 2, 3)]
        assert [r["refit"] for r in records] == [True, False, True]

    def test_same_seed_same_decisions(self):
        records = []
        for _ in range(2):
            screener = self._trained(seed=7)
            xs = np.random.default_rng(4).uniform(size=(12, 2))
            records.append(screener.screen(xs, 1)[1])
        assert records[0] == records[1]

    def test_records_are_json_compatible(self):
        screener = self._trained()
        _, record = screener.screen(np.random.default_rng(5).uniform(size=(6, 2)), 1)
        assert json.loads(json.dumps(record)) == record

    @pytest.mark.parametrize(
        "params",
        [
            {"keep_fraction": 0.0},
            {"keep_fraction": 1.5},
            {"min_train": 1},
            {"min_keep": 0},
            {"refit_every": 0},
            {"n_hidden": 0},
            {"max_train": 0},
            {"bogus": 1},
        ],
    )
    def test_bad_params_rejected(self, params):
        with pytest.raises(ValueError):
            SurrogateScreener(rng=0, **params)


class TestProposers:
    def _population(self, optimizer, n=8, seed=0):
        rng = np.random.default_rng(seed)
        d = optimizer.problem.design_dimension
        lower, upper = optimizer.de.space.lower, optimizer.de.space.upper
        xs = lower + rng.uniform(0.1, 0.9, size=(n, d)) * (upper - lower)
        return [Individual(x, True, 0.0, None) for x in xs]

    def _optimizer(self, compose):
        return ComposedMOHECO(
            make_problem("quadratic"),
            MOHECOConfig.moheco(n_max=100),
            compose=compose,
            rng=5,
        )

    def test_de_proposer_matches_backbone_operators(self):
        compose = {
            "screener": "none",
            "proposer": "de",
            "selection": "one_to_one",
            "backbone": "moheco",
        }
        a = self._optimizer(compose)
        b = self._optimizer(compose)
        population = self._population(a)
        trials = a._propose_trials(population, 0)
        expected = b.de.propose(np.array([ind.x for ind in population]), 0, b.rng)
        np.testing.assert_array_equal(trials, expected)

    def test_line_proposer_moves_one_coordinate_of_best(self):
        optimizer = self._optimizer(
            {
                "screener": "none",
                "proposer": "line",
                "selection": "one_to_one",
                "backbone": "moheco",
            }
        )
        population = self._population(optimizer)
        best_index = 2
        trials = optimizer._propose_trials(population, best_index)
        best = population[best_index].x
        lower, upper = optimizer.de.space.lower, optimizer.de.space.upper
        for trial in trials:
            changed = np.flatnonzero(trial != best)
            assert len(changed) <= 1  # a zero differential changes nothing
            assert np.all((trial >= lower) & (trial <= upper))

    def test_line_proposer_param_validation(self):
        from repro.compose import LineSubspaceProposer

        with pytest.raises(ValueError, match="f must be"):
            LineSubspaceProposer(f=3.0)
        with pytest.raises(ValueError, match="only 'f'"):
            LineSubspaceProposer(cr=0.5)


class TestSelections:
    def _pair(self, parent_yield, trial_yield):
        class Fixed(Individual):
            def __init__(self, value):
                super().__init__(np.zeros(2), True, 0.0, None)
                self._value = value

            @property
            def yield_value(self):
                return self._value

        return [Fixed(parent_yield)], [Fixed(trial_yield)]

    def test_one_to_one_trial_wins_ties(self):
        population, trials = self._pair(0.5, 0.5)
        select_one_to_one(population, trials)
        assert population[0] is trials[0]

    def test_greedy_parent_wins_ties(self):
        population, trials = self._pair(0.5, 0.5)
        parent = population[0]
        select_greedy(population, trials)
        assert population[0] is parent


class TestComposedRun:
    def test_screen_trace_on_result(self):
        result = _run()
        assert result.screen_trace is not None
        assert len(result.screen_trace) == result.generations
        assert {rec["mode"] for rec in result.screen_trace} <= {
            "fallback",
            "screened",
        }
        # Gen 0 seeds the training set with pop_size rows (min_train ==
        # pop_size here), but the initial quadratic population's yields
        # are constant, so generation 1 takes the no-signal fallback;
        # screening engages as soon as the targets spread.
        assert result.screen_trace[0]["mode"] == "fallback"
        assert any(rec["mode"] == "screened" for rec in result.screen_trace)
        assert result.ledger.pruned > 0

    def test_pruned_trials_charge_zero_simulations(self):
        # With local search off, the only feasibility sims are the gen-0
        # population plus every *kept* trial: pruned rows charge nothing.
        spec = RunSpec(
            problem="quadratic",
            method="moheco_screened",
            seed=11,
            overrides={
                **CONFIG,
                "use_memetic": False,
                "screen_params": dict(SCREEN),
            },
        )
        result = optimize(spec)
        kept = sum(len(rec["keep"]) for rec in result.screen_trace)
        pruned = sum(len(rec["pruned"]) for rec in result.screen_trace)
        assert pruned > 0
        assert result.ledger.pruned == pruned
        assert result.ledger.count("feasibility") == CONFIG["pop_size"] + kept

    def test_screened_spends_less_than_unscreened(self):
        screened = _run()
        unscreened = _run("moheco", screen_params=None)
        assert screened.n_simulations < unscreened.n_simulations

    def test_screenerless_composed_method_still_traces(self):
        result = _run("moheco_lineasy", screen_params=None)
        assert result.screen_trace is not None
        assert all(rec["mode"] == "none" for rec in result.screen_trace)
        assert result.ledger.pruned == 0

    def test_result_roundtrip_preserves_screen_trace(self):
        result = _run()
        rebuilt = MOHECOResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.screen_trace == result.screen_trace
        assert rebuilt.ledger.pruned == result.ledger.pruned
        assert rebuilt.identity_dict() == result.identity_dict()

    def test_screen_trace_is_part_of_identity(self):
        result = _run()
        identity = result.identity_dict()
        assert identity["screen_trace"] == result.screen_trace
        assert identity["ledger"]["pruned"] == result.ledger.pruned

    def test_run_composed_entry_point(self):
        result = run_composed(
            make_problem("quadratic"),
            MOHECOConfig.moheco(n_max=100).with_overrides(
                pop_size=8, max_generations=3, n0=20
            ),
            compose={
                "screener": "surrogate",
                "proposer": "de",
                "selection": "one_to_one",
                "backbone": "moheco",
            },
            screen_params=SCREEN,
            rng=3,
        )
        assert result.screen_trace

    def test_pruned_placeholder_never_enters_population(self):
        # An inf-violation placeholder must lose one-to-one selection to
        # any real parent, so the final population holds no pruned trials.
        result = _run(screen_params={"min_train": 8, "keep_fraction": 0.3})
        assert np.isfinite(result.best_yield)
        assert result.best_estimate.n > 0


class TestDeterminism:
    def test_engines_bit_identical(self):
        baseline = _run(engine="serial")
        for engine in ("legacy", "process"):
            result = _run(engine=engine)
            assert result.identity_dict() == baseline.identity_dict(), engine
            assert result.screen_trace == baseline.screen_trace, engine

    def test_remote_engine_agrees(self, worker_pool):
        baseline = _run(engine="serial")
        (worker,) = worker_pool(1)
        result = _run(
            engine="remote",
            engine_params={"workers": worker.url, "chunk_rows": 32},
        )
        assert result.identity_dict() == baseline.identity_dict()
        assert result.screen_trace == baseline.screen_trace

    def test_cold_and_warm_cache_agree(self):
        from repro.engine.cache import make_cache

        baseline = _run()
        shared = make_cache("lru")
        try:
            cold = _run(cache=shared)
            warm = _run(cache=shared)
        finally:
            shared.close()
        assert cold.identity_dict() == baseline.identity_dict()
        assert warm.identity_dict() == baseline.identity_dict()
        assert warm.screen_trace == baseline.screen_trace
        assert warm.cache_stats["hits"] > 0


class TestSpecValidation:
    def _spec(self, method="moheco_screened", **overrides):
        return RunSpec(problem="sphere", method=method, overrides=overrides)

    def test_good_spec_passes(self):
        validate_run_spec(
            self._spec(screen_params={"keep_fraction": 0.5}, pop_size=10)
        )

    def test_bad_knob_value(self):
        with pytest.raises(SpecError, match="keep_fraction"):
            validate_run_spec(self._spec(screen_params={"keep_fraction": 2.0}))

    def test_unknown_knob(self):
        with pytest.raises(SpecError, match="unknown screen_params"):
            validate_run_spec(self._spec(screen_params={"bogus": 1}))

    def test_non_dict_screen_params(self):
        with pytest.raises(SpecError, match="must be a dict"):
            validate_run_spec(self._spec(screen_params="0.5"))

    def test_screen_params_on_screenerless_method(self):
        with pytest.raises(SpecError, match="takes no screen_params"):
            validate_run_spec(
                self._spec("moheco_lineasy", screen_params={"min_train": 8})
            )

    def test_unknown_config_override_still_rejected(self):
        with pytest.raises(SpecError, match="unknown config override"):
            validate_run_spec(self._spec(pop_sise=8))

    def test_sweep_spec_validation(self):
        spec = SweepSpec.from_dict(
            {
                "methods": [
                    {
                        "method": "moheco_screened",
                        "overrides": {"screen_params": {"keep_fraction": 9.0}},
                    }
                ],
                "problems": [{"problem": "sphere"}],
            }
        )
        with pytest.raises(SpecError, match=r"methods\[0\].overrides"):
            validate_sweep_spec(spec)

    def test_bad_params_fail_at_run_submission(self):
        with pytest.raises(ValueError, match="keep_fraction"):
            _run(screen_params={"keep_fraction": -1.0})


class TestCLI:
    def test_list_methods_shows_descriptions_and_configs(self, capsys):
        assert cli_main(["list", "methods"]) == 0
        out = capsys.readouterr().out
        for name in ("moheco_screened", "moheco_lineasy", "fixed_budget_screened"):
            assert name in out
        assert "screener=surrogate" in out
        assert "proposer=line" in out
        assert "BagNet-style" in out

    def test_run_with_screen_params(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = cli_main(
            [
                "run",
                "--problem",
                "quadratic",
                "--method",
                "moheco_screened",
                "--seed",
                "7",
                "--set",
                "pop_size=8",
                "--set",
                "max_generations=3",
                "--set",
                "n_max=100",
                "--set",
                "screen_params={'min_train': 8}",
                "--out",
                str(out),
                "--quiet",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        trace = payload["result"]["screen_trace"]
        assert trace and trace[0]["mode"] in ("fallback", "screened")
        assert payload["result"]["ledger"]["pruned"] > 0

    def test_bad_screen_params_exit_cleanly(self):
        with pytest.raises(SystemExit, match="keep_fraction"):
            cli_main(
                [
                    "run",
                    "--problem",
                    "quadratic",
                    "--method",
                    "moheco_screened",
                    "--set",
                    "screen_params={'keep_fraction': 5.0}",
                ]
            )


class TestLedgerPruned:
    def test_record_and_serialize(self):
        ledger = SimulationLedger()
        ledger.record_pruned(4)
        ledger.record_pruned(2)
        assert ledger.pruned == 6
        assert ledger.snapshot().pruned == 6
        rebuilt = SimulationLedger.from_dict(ledger.to_dict())
        assert rebuilt.pruned == 6
        ledger.reset()
        assert ledger.pruned == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulationLedger().record_pruned(-1)

    def test_pruned_candidates_do_not_move_totals(self):
        ledger = SimulationLedger()
        ledger.record_pruned(10)
        assert ledger.total == 0
