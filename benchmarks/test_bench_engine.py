"""Execution-engine micro-benchmark: serial-loop vs fused vs process-pool.

Measures simulation throughput (sims/sec) of the OCBA hot path on the
synthetic sphere problem, three ways:

* ``round``: one 20-candidate OCBA refinement round dispatched through
  each backend — the unit the engine layer fuses.  This is where the
  fused :class:`~repro.engine.serial.SerialEngine` must beat the legacy
  per-candidate loop by >= 3x.
* ``ocba``: a full ``ocba_sequential`` run (pilot + allocation rounds),
  which dilutes the dispatch win with the shared per-candidate RNG-stream
  draws and the allocation maths that every backend pays identically.

The process pool is expected to *lose* on the synthetic problem — its IPC
overhead only pays off when each simulation is expensive (the MNA/AC
circuit problems) — and is reported so the trade-off stays visible.

Results land in ``BENCH_engine.json`` at the repo root so successive PRs
can track the trajectory.  Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job
does) to shrink the workload and skip the absolute speedup assertion,
which is only meaningful on an unloaded machine at full scale.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.engine import LegacyEngine, ProcessPoolEngine, SerialEngine
from repro.ledger import SimulationLedger
from repro.ocba import ocba_sequential
from repro.problems import make_sphere_problem
from repro.sampling import make_sampler
from repro.yieldsim import CandidateYieldState

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_CANDIDATES = 20
ROUND_GAIN = 3  # samples per candidate per round: the OCBA-increment regime
ROUND_REPS = 40 if SMOKE else 400
OCBA_REPS = 3 if SMOKE else 20
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_engine.json")


def _build_states(problem, sampler, seed):
    rng = np.random.default_rng(seed)
    ledger = SimulationLedger()
    xs = problem.space.sample(N_CANDIDATES, rng)
    return [
        CandidateYieldState(
            problem, x, sampler, np.random.default_rng(seed * 1000 + i), ledger, "stage1"
        )
        for i, x in enumerate(xs)
    ]


def _bench_round(problem, sampler, engine):
    """Throughput of one fused 20-candidate refinement round."""
    states = _build_states(problem, sampler, seed=0)
    gains = [ROUND_GAIN] * N_CANDIDATES
    engine.refine_round(problem, states, gains)  # warm-up (pools spin up here)
    started = time.perf_counter()
    for _ in range(ROUND_REPS):
        engine.refine_round(problem, states, gains)
    elapsed = time.perf_counter() - started
    sims = N_CANDIDATES * ROUND_GAIN * ROUND_REPS
    return {"sims": sims, "elapsed_seconds": elapsed, "sims_per_sec": sims / elapsed}


def _bench_ocba(problem, sampler, engine):
    """Throughput of full OCBA stage-1 runs (paper settings)."""
    prebuilt = [_build_states(problem, sampler, seed=r) for r in range(OCBA_REPS)]
    total = 0
    started = time.perf_counter()
    for states in prebuilt:
        report = ocba_sequential(states, total_budget=700, n0=15, delta=50, engine=engine)
        total += report.total_samples
    elapsed = time.perf_counter() - started
    return {"sims": total, "elapsed_seconds": elapsed, "sims_per_sec": total / elapsed}


def test_engine_throughput():
    problem = make_sphere_problem()
    sampler = make_sampler("pmc", problem.variation)
    engines = {
        "legacy": LegacyEngine(),
        "serial": SerialEngine(),
        "process": ProcessPoolEngine(workers=2),
    }
    payload = {
        "problem": problem.name,
        "candidates": N_CANDIDATES,
        "round_gain": ROUND_GAIN,
        "round_reps": ROUND_REPS,
        "ocba_reps": OCBA_REPS,
        "smoke": SMOKE,
        "round": {},
        "ocba": {},
    }
    try:
        for name, engine in engines.items():
            payload["round"][name] = _bench_round(problem, sampler, engine)
            payload["ocba"][name] = _bench_ocba(problem, sampler, engine)
    finally:
        for engine in engines.values():
            engine.close()

    round_speedup = (
        payload["round"]["serial"]["sims_per_sec"]
        / payload["round"]["legacy"]["sims_per_sec"]
    )
    ocba_speedup = (
        payload["ocba"]["serial"]["sims_per_sec"]
        / payload["ocba"]["legacy"]["sims_per_sec"]
    )
    payload["speedup_serial_vs_legacy"] = {
        "round": round_speedup,
        "ocba": ocba_speedup,
    }

    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n[saved to {os.path.abspath(OUT_PATH)}]")
    for kind in ("round", "ocba"):
        line = "  ".join(
            f"{name}: {payload[kind][name]['sims_per_sec']:,.0f}/s"
            for name in engines
        )
        print(f"{kind:5s} {line}")
    print(
        f"serial-vs-legacy speedup: round {round_speedup:.2f}x, "
        f"ocba {ocba_speedup:.2f}x"
    )

    # The fused engine must always win; the 3x bar applies to the fused
    # dispatch at full scale on a quiet machine (acceptance criterion).
    assert round_speedup > 1.0
    assert ocba_speedup > 1.0
    if not SMOKE:
        assert round_speedup >= 3.0, (
            f"fused round dispatch only {round_speedup:.2f}x over the "
            "per-candidate loop; expected >= 3x"
        )


@pytest.mark.benchmark(group="engine")
def test_serial_round_dispatch(benchmark):
    """pytest-benchmark guard on the fused round (for component tracking)."""
    problem = make_sphere_problem()
    sampler = make_sampler("pmc", problem.variation)
    states = _build_states(problem, sampler, seed=1)
    engine = SerialEngine()
    gains = [ROUND_GAIN] * N_CANDIDATES

    benchmark(engine.refine_round, problem, states, gains)
    assert all(state.n > 0 for state in states)
