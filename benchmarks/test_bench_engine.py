"""Execution-engine micro-benchmark: serial-loop vs fused vs process-pool.

Measures simulation throughput (sims/sec) of the OCBA hot path on the
synthetic sphere problem, three ways:

* ``round``: one 20-candidate OCBA refinement round dispatched through
  each backend — the unit the engine layer fuses.  This is where the
  fused :class:`~repro.engine.serial.SerialEngine` must beat the legacy
  per-candidate loop by >= 3x.
* ``ocba``: a full ``ocba_sequential`` run (pilot + allocation rounds),
  which dilutes the dispatch win with the shared per-candidate RNG-stream
  draws and the allocation maths that every backend pays identically.

The process pool is expected to *lose* on the synthetic problem — its IPC
overhead only pays off when each simulation is expensive — and is
reported so the trade-off stays visible.  The ``circuit`` section runs
the same fused round on the circuit-priced ``netlist_ota`` problem
(stacked MNA/AC solves, hundreds of microseconds per row), where the
measured per-row cost sits *above* the engine-selection crossover and the
shared-memory process pool must therefore beat the serial dispatch.

Results land in ``BENCH_engine.json`` at the repo root (each test merges
its section) so successive PRs can track the trajectory.  Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job
does) to shrink the workload and skip the absolute speedup assertion,
which is only meaningful on an unloaded machine at full scale.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.engine import LegacyEngine, ProcessPoolEngine, SerialEngine
from repro.engine.auto import AutoEngine
from repro.ledger import SimulationLedger
from repro.ocba import ocba_sequential
from repro.problems import make_netlist_ota_problem, make_sphere_problem
from repro.sampling import make_sampler
from repro.yieldsim import CandidateYieldState

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_CANDIDATES = 20
ROUND_GAIN = 3  # samples per candidate per round: the OCBA-increment regime
ROUND_REPS = 40 if SMOKE else 400
OCBA_REPS = 3 if SMOKE else 20
# Circuit-priced section: bigger rounds (the pool needs rows to shard),
# fewer reps (each row is a stacked multi-frequency MNA solve).  On a
# single-CPU host the pool is benchmarked with 2 workers for the record,
# but it cannot beat serial there (no parallel hardware) — exactly what
# the auto engine's crossover model predicts, so the supremacy assertion
# only applies where the model says the pool should win.
CIRCUIT_ROUND_GAIN = 8
CIRCUIT_ROUND_REPS = 3 if SMOKE else 20
CIRCUIT_CPUS = os.cpu_count() or 1
CIRCUIT_WORKERS = max(2, min(CIRCUIT_CPUS, 4))
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_engine.json")


def _merge_bench(section: str, data) -> dict:
    """Read-modify-write one section of ``BENCH_engine.json``."""
    payload = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[section] = data
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return payload


def _build_states(problem, sampler, seed):
    rng = np.random.default_rng(seed)
    ledger = SimulationLedger()
    xs = problem.space.sample(N_CANDIDATES, rng)
    return [
        CandidateYieldState(
            problem, x, sampler, np.random.default_rng(seed * 1000 + i), ledger, "stage1"
        )
        for i, x in enumerate(xs)
    ]


def _bench_round(problem, sampler, engine, gain=ROUND_GAIN, reps=ROUND_REPS):
    """Throughput of one fused 20-candidate refinement round."""
    states = _build_states(problem, sampler, seed=0)
    gains = [gain] * N_CANDIDATES
    engine.refine_round(problem, states, gains)  # warm-up (pools spin up here)
    started = time.perf_counter()
    for _ in range(reps):
        engine.refine_round(problem, states, gains)
    elapsed = time.perf_counter() - started
    sims = N_CANDIDATES * gain * reps
    return {"sims": sims, "elapsed_seconds": elapsed, "sims_per_sec": sims / elapsed}


def _bench_ocba(problem, sampler, engine):
    """Throughput of full OCBA stage-1 runs (paper settings)."""
    prebuilt = [_build_states(problem, sampler, seed=r) for r in range(OCBA_REPS)]
    total = 0
    started = time.perf_counter()
    for states in prebuilt:
        report = ocba_sequential(states, total_budget=700, n0=15, delta=50, engine=engine)
        total += report.total_samples
    elapsed = time.perf_counter() - started
    return {"sims": total, "elapsed_seconds": elapsed, "sims_per_sec": total / elapsed}


def test_engine_throughput():
    problem = make_sphere_problem()
    sampler = make_sampler("pmc", problem.variation)
    engines = {
        "legacy": LegacyEngine(),
        "serial": SerialEngine(),
        "process": ProcessPoolEngine(workers=2),
    }
    payload = {
        "problem": problem.name,
        "candidates": N_CANDIDATES,
        "round_gain": ROUND_GAIN,
        "round_reps": ROUND_REPS,
        "ocba_reps": OCBA_REPS,
        "smoke": SMOKE,
        "round": {},
        "ocba": {},
    }
    try:
        for name, engine in engines.items():
            payload["round"][name] = _bench_round(problem, sampler, engine)
            payload["ocba"][name] = _bench_ocba(problem, sampler, engine)
    finally:
        for engine in engines.values():
            engine.close()

    round_speedup = (
        payload["round"]["serial"]["sims_per_sec"]
        / payload["round"]["legacy"]["sims_per_sec"]
    )
    ocba_speedup = (
        payload["ocba"]["serial"]["sims_per_sec"]
        / payload["ocba"]["legacy"]["sims_per_sec"]
    )
    payload["speedup_serial_vs_legacy"] = {
        "round": round_speedup,
        "ocba": ocba_speedup,
    }

    _merge_bench("sphere", payload)
    print(f"\n[saved to {os.path.abspath(OUT_PATH)}]")
    for kind in ("round", "ocba"):
        line = "  ".join(
            f"{name}: {payload[kind][name]['sims_per_sec']:,.0f}/s"
            for name in engines
        )
        print(f"{kind:5s} {line}")
    print(
        f"serial-vs-legacy speedup: round {round_speedup:.2f}x, "
        f"ocba {ocba_speedup:.2f}x"
    )

    # The fused engine must always win; the 3x bar applies to the fused
    # dispatch at full scale on a quiet machine (acceptance criterion).
    assert round_speedup > 1.0
    assert ocba_speedup > 1.0
    if not SMOKE:
        assert round_speedup >= 3.0, (
            f"fused round dispatch only {round_speedup:.2f}x over the "
            "per-candidate loop; expected >= 3x"
        )


@pytest.mark.benchmark(group="engine")
def test_serial_round_dispatch(benchmark):
    """pytest-benchmark guard on the fused round (for component tracking)."""
    problem = make_sphere_problem()
    sampler = make_sampler("pmc", problem.variation)
    states = _build_states(problem, sampler, seed=1)
    engine = SerialEngine()
    gains = [ROUND_GAIN] * N_CANDIDATES

    benchmark(engine.refine_round, problem, states, gains)
    assert all(state.n > 0 for state in states)


def test_circuit_priced_crossover():
    """Serial vs process on the netlist OTA: the crossover made concrete.

    The workload is the fused refinement round on ``netlist_ota`` — every
    row a stacked multi-frequency MNA/AC solve.  The test measures the
    serial per-row cost, evaluates the auto engine's crossover cost for
    this round shape, verifies the workload really sits above it, and —
    wherever the model predicts a pool win (>= 2 CPUs, i.e. CI) — requires
    the shared-memory process pool to be at least as fast as the fused
    serial dispatch: the regression guard for the "make the process pool
    win" roadmap item.
    """
    problem = make_netlist_ota_problem()
    sampler = make_sampler("pmc", problem.variation)
    rows_per_round = N_CANDIDATES * CIRCUIT_ROUND_GAIN
    engines = {
        "serial": SerialEngine(),
        "process_shm": ProcessPoolEngine(workers=CIRCUIT_WORKERS, transfer="shm"),
        "process_pickle": ProcessPoolEngine(
            workers=CIRCUIT_WORKERS, transfer="pickle"
        ),
    }
    results = {}
    try:
        for name, engine in engines.items():
            results[name] = _bench_round(
                problem,
                sampler,
                engine,
                gain=CIRCUIT_ROUND_GAIN,
                reps=CIRCUIT_ROUND_REPS,
            )
    finally:
        for engine in engines.values():
            engine.close()

    serial = results["serial"]
    row_cost = serial["elapsed_seconds"] / serial["sims"]
    # The crossover the auto engine would apply on *this* host: inf on a
    # single CPU (its default worker count is 1 there — the pool can never
    # win), finite once real parallelism exists.
    auto_workers = min(CIRCUIT_CPUS, 8)
    host_crossover = AutoEngine().crossover_cost_seconds(
        auto_workers, rows_per_round
    )
    # The crossover at the benchmarked pool width, for the record.
    pool_crossover = AutoEngine().crossover_cost_seconds(
        CIRCUIT_WORKERS, rows_per_round
    )
    pool_should_win = row_cost >= host_crossover
    payload = {
        "problem": problem.name,
        "candidates": N_CANDIDATES,
        "round_gain": CIRCUIT_ROUND_GAIN,
        "round_reps": CIRCUIT_ROUND_REPS,
        "cpus": CIRCUIT_CPUS,
        "workers": CIRCUIT_WORKERS,
        "smoke": SMOKE,
        "round": results,
        "serial_row_cost_seconds": row_cost,
        "crossover_cost_seconds": pool_crossover,
        "row_cost_over_crossover": row_cost / pool_crossover,
        "pool_should_win_here": pool_should_win,
        "speedup_process_vs_serial": {
            "shm": results["process_shm"]["sims_per_sec"]
            / serial["sims_per_sec"],
            "pickle": results["process_pickle"]["sims_per_sec"]
            / serial["sims_per_sec"],
        },
        "speedup_shm_vs_pickle": results["process_shm"]["sims_per_sec"]
        / results["process_pickle"]["sims_per_sec"],
    }
    _merge_bench("circuit", payload)

    line = "  ".join(
        f"{name}: {results[name]['sims_per_sec']:,.0f}/s" for name in engines
    )
    print(f"\ncircuit round ({rows_per_round} rows) {line}")
    print(
        f"serial row cost {row_cost * 1e6:.0f}us vs crossover "
        f"{pool_crossover * 1e6:.0f}us "
        f"({row_cost / pool_crossover:.1f}x above); "
        f"process-shm speedup "
        f"{payload['speedup_process_vs_serial']['shm']:.2f}x "
        f"(shm vs pickle {payload['speedup_shm_vs_pickle']:.2f}x)"
    )

    # The circuit workload must sit above the engine-selection crossover
    # at the benchmarked pool width — otherwise the round is too cheap to
    # prove anything about the pool.
    assert row_cost >= pool_crossover, (
        f"circuit round cost {row_cost * 1e6:.0f}us/row fell below the "
        f"{pool_crossover * 1e6:.0f}us crossover; grow the workload"
    )
    # Where the model predicts a pool win (real parallel hardware), the
    # process backend must not lose to serial.  On single-CPU hosts the
    # model itself returns an infinite crossover — the auto engine would
    # stay serial — so a pool loss there is the *expected* outcome, not a
    # regression.
    if pool_should_win:
        assert (
            results["process_shm"]["sims_per_sec"] >= serial["sims_per_sec"]
        ), (
            "shared-memory process pool slower than fused serial on the "
            "circuit-priced round: "
            f"{results['process_shm']['sims_per_sec']:,.0f}/s vs "
            f"{serial['sims_per_sec']:,.0f}/s"
        )
    else:
        print(
            f"single-CPU host ({CIRCUIT_CPUS} core): crossover model "
            "correctly keeps auto on serial; pool-supremacy assertion "
            "applies on multi-core (CI) hosts"
        )
