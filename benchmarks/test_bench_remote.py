"""Remote streaming engine benchmark: serial vs HTTP worker fan-out.

Measures the fused refinement round three ways — local serial, remote
streaming dispatch, remote barrier (wave-synchronized) dispatch — against
real ``repro worker`` subprocesses, so the numbers include genuine HTTP
framing, JSON+base64 wire cost, and process-level parallelism.

Two sections land in ``BENCH_remote.json`` at the repo root:

* ``sphere`` — a dispatch-dominated synthetic round.  Remote is expected
  to *lose* here; the measured per-row wire overhead calibrates the
  local-vs-remote crossover (the per-row simulation cost above which
  shipping rows to workers pays for itself).
* ``circuit`` — the same round on ``netlist_ota`` (stacked MNA/AC solves
  per row).  On multi-core hosts whose serial row cost sits above the
  calibrated crossover, streaming dispatch over 2+ workers must beat the
  fused serial path by >= 1.5x — the acceptance criterion.  Single-core
  hosts cannot parallelize anything, so (exactly like ``BENCH_engine``'s
  pool-supremacy guard) the assertion only applies where the crossover
  model says remote should win.

Set ``REPRO_BENCH_SMOKE=1`` to shrink the workload and skip the absolute
speedup assertion.
"""

import json
import os
import subprocess
import sys
import time

import numpy as np

from repro.engine import RemoteEngine, SerialEngine
from repro.ledger import SimulationLedger
from repro.problems import make_netlist_ota_problem, make_sphere_problem
from repro.sampling import make_sampler
from repro.yieldsim import CandidateYieldState

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
N_CANDIDATES = 20
CPUS = os.cpu_count() or 1
N_WORKERS = max(2, min(CPUS, 4))
SPHERE_ROUND_GAIN = 8
SPHERE_ROUND_REPS = 5 if SMOKE else 40
CIRCUIT_ROUND_GAIN = 8
CIRCUIT_ROUND_REPS = 2 if SMOKE else 12
CHUNK_ROWS = 32
REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
OUT_PATH = os.path.join(REPO_ROOT, "BENCH_remote.json")


def _merge_bench(section: str, data) -> dict:
    """Read-modify-write one section of ``BENCH_remote.json``."""
    payload = {}
    if os.path.exists(OUT_PATH):
        with open(OUT_PATH, encoding="utf-8") as handle:
            payload = json.load(handle)
    payload[section] = data
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    return payload


class _WorkerFleet:
    """Real ``repro worker`` subprocesses on ephemeral ports."""

    def __init__(self, n: int):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        self.procs = []
        self.urls = []
        for _ in range(n):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker", "--port", "0"],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
                env=env,
            )
            self.procs.append(proc)
            banner = proc.stdout.readline()  # "repro worker listening on URL"
            self.urls.append(banner.strip().rsplit(" ", 1)[-1])

    def close(self):
        for proc in self.procs:
            proc.terminate()
        for proc in self.procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()


def _build_states(problem, sampler, seed):
    rng = np.random.default_rng(seed)
    ledger = SimulationLedger()
    xs = problem.space.sample(N_CANDIDATES, rng)
    return [
        CandidateYieldState(
            problem, x, sampler, np.random.default_rng(seed * 1000 + i), ledger, "stage1"
        )
        for i, x in enumerate(xs)
    ]


def _bench_round(problem, sampler, engine, gain, reps):
    states = _build_states(problem, sampler, seed=0)
    gains = [gain] * N_CANDIDATES
    engine.refine_round(problem, states, gains)  # warm-up (ships the problem)
    started = time.perf_counter()
    for _ in range(reps):
        engine.refine_round(problem, states, gains)
    elapsed = time.perf_counter() - started
    sims = N_CANDIDATES * gain * reps
    return {"sims": sims, "elapsed_seconds": elapsed, "sims_per_sec": sims / elapsed}


def _bench_backends(problem, sampler, fleet, gain, reps):
    workers = ",".join(fleet.urls)
    engines = {
        "serial": SerialEngine(),
        "remote_streaming": RemoteEngine(
            workers=workers, chunk_rows=CHUNK_ROWS, dispatch="streaming"
        ),
        "remote_barrier": RemoteEngine(
            workers=workers, chunk_rows=CHUNK_ROWS, dispatch="barrier"
        ),
    }
    results = {}
    try:
        for name, engine in engines.items():
            results[name] = _bench_round(problem, sampler, engine, gain, reps)
    finally:
        for engine in engines.values():
            engine.close()
    return results


def _row_costs(results):
    return {
        name: stats["elapsed_seconds"] / stats["sims"]
        for name, stats in results.items()
    }


def test_remote_crossover_and_streaming_supremacy():
    fleet = _WorkerFleet(N_WORKERS)
    try:
        # -- sphere: dispatch-dominated, calibrates the wire overhead -----
        sphere = make_sphere_problem()
        sampler = make_sampler("pmc", sphere.variation)
        sphere_results = _bench_backends(
            sphere, sampler, fleet, SPHERE_ROUND_GAIN, SPHERE_ROUND_REPS
        )
        sphere_costs = _row_costs(sphere_results)
        # Per-row wire overhead: what remote pays on top of its share of
        # the (tiny) simulation work.
        wire_row_cost = max(
            sphere_costs["remote_streaming"] - sphere_costs["serial"] / N_WORKERS,
            1e-9,
        )
        # Remote wins once serial_row_cost > serial_row_cost/w + wire:
        crossover_row_cost = wire_row_cost / (1.0 - 1.0 / N_WORKERS)
        _merge_bench(
            "sphere",
            {
                "problem": sphere.name,
                "candidates": N_CANDIDATES,
                "round_gain": SPHERE_ROUND_GAIN,
                "round_reps": SPHERE_ROUND_REPS,
                "cpus": CPUS,
                "workers": N_WORKERS,
                "chunk_rows": CHUNK_ROWS,
                "smoke": SMOKE,
                "round": sphere_results,
                "wire_row_cost_seconds": wire_row_cost,
                "crossover_row_cost_seconds": crossover_row_cost,
            },
        )
        print(
            f"\nsphere round: serial {sphere_results['serial']['sims_per_sec']:,.0f}/s  "
            f"remote {sphere_results['remote_streaming']['sims_per_sec']:,.0f}/s  "
            f"wire {wire_row_cost * 1e6:.0f}us/row, "
            f"crossover {crossover_row_cost * 1e6:.0f}us/row"
        )

        # -- circuit: the regime remote dispatch targets -------------------
        circuit = make_netlist_ota_problem()
        sampler = make_sampler("pmc", circuit.variation)
        circuit_results = _bench_backends(
            circuit, sampler, fleet, CIRCUIT_ROUND_GAIN, CIRCUIT_ROUND_REPS
        )
        costs = _row_costs(circuit_results)
        streaming_speedup = (
            circuit_results["remote_streaming"]["sims_per_sec"]
            / circuit_results["serial"]["sims_per_sec"]
        )
        streaming_vs_barrier = (
            circuit_results["remote_streaming"]["sims_per_sec"]
            / circuit_results["remote_barrier"]["sims_per_sec"]
        )
        # Remote can only win with real parallel hardware (workers are
        # separate processes) and a row cost above the wire crossover.
        remote_should_win = (
            not SMOKE and CPUS >= 3 and costs["serial"] >= crossover_row_cost
        )
        _merge_bench(
            "circuit",
            {
                "problem": circuit.name,
                "candidates": N_CANDIDATES,
                "round_gain": CIRCUIT_ROUND_GAIN,
                "round_reps": CIRCUIT_ROUND_REPS,
                "cpus": CPUS,
                "workers": N_WORKERS,
                "chunk_rows": CHUNK_ROWS,
                "smoke": SMOKE,
                "round": circuit_results,
                "serial_row_cost_seconds": costs["serial"],
                "crossover_row_cost_seconds": crossover_row_cost,
                "row_cost_over_crossover": costs["serial"] / crossover_row_cost,
                "remote_should_win_here": remote_should_win,
                "speedup_streaming_vs_serial": streaming_speedup,
                "speedup_streaming_vs_barrier": streaming_vs_barrier,
            },
        )
        print(
            f"circuit round: serial {circuit_results['serial']['sims_per_sec']:,.0f}/s  "
            f"streaming {circuit_results['remote_streaming']['sims_per_sec']:,.0f}/s  "
            f"barrier {circuit_results['remote_barrier']['sims_per_sec']:,.0f}/s"
        )
        print(
            f"row cost {costs['serial'] * 1e6:.0f}us vs crossover "
            f"{crossover_row_cost * 1e6:.0f}us; streaming "
            f"{streaming_speedup:.2f}x over serial, "
            f"{streaming_vs_barrier:.2f}x over barrier"
        )
        print(f"[saved to {os.path.abspath(OUT_PATH)}]")

        if remote_should_win:
            # Streaming must never lose to wave-synchronized barrier
            # dispatch by more than measurement noise (on single-core or
            # smoke runs both are pure scheduling jitter).
            assert streaming_vs_barrier > 0.8
            assert streaming_speedup >= 1.5, (
                f"remote streaming only {streaming_speedup:.2f}x over serial "
                f"with {N_WORKERS} workers on a {CPUS}-core host; expected "
                ">= 1.5x on a circuit-priced round"
            )
        else:
            print(
                f"{CPUS}-core host / smoke={SMOKE}: remote cannot "
                "out-parallelize serial here; the >=1.5x streaming "
                "assertion applies on multi-core (CI) runners"
            )
    finally:
        fleet.close()
