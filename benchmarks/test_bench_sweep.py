"""Sweep-orchestration benchmark: serial vs process-sharded seed sweeps.

Measures wall-clock of the same :class:`~repro.sweep.spec.SweepSpec` —
replicated MOHECO runs on the folded-cascode circuit, the simulation-bound
regime the sharding exists for — executed serially and sharded across
worker processes, and records the speedup.  Records are asserted
bit-identical across worker counts (the sweep layer's core guarantee)
before any timing is trusted.

Results land in ``BENCH_sweep.json`` at the repo root so successive PRs
can track the trajectory.  Set ``REPRO_BENCH_SMOKE=1`` (the CI smoke job
does) to shrink the workload; the speedup assertion additionally requires
>= 2 CPUs — a single-core machine runs the sharded sweep correctly but
cannot overlap the runs.
"""

import json
import os
import time

from repro.sweep import MethodSpec, ProblemSpec, SweepSpec, run_sweep

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
RUNS = 2 if SMOKE else 4
MAX_GENERATIONS = 3 if SMOKE else 6
REFERENCE_N = 1_000 if SMOKE else 4_000
WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_sweep.json")


def _spec() -> SweepSpec:
    return SweepSpec(
        methods=(MethodSpec("moheco", label="MOHECO", overrides={"n_max": 300}),),
        problems=(ProblemSpec("folded_cascode"),),
        runs=RUNS,
        base_seed=20100308,
        reference_n=REFERENCE_N,
        max_generations=MAX_GENERATIONS,
        tag="bench-sweep",
    )


def test_sweep_throughput():
    spec = _spec()
    payload = {
        "problem": "folded_cascode",
        "runs": RUNS,
        "max_generations": MAX_GENERATIONS,
        "reference_n": REFERENCE_N,
        "smoke": SMOKE,
        "cpu_count": os.cpu_count(),
        "workers": {},
    }
    baseline = None
    for workers in WORKER_COUNTS:
        started = time.perf_counter()
        result = run_sweep(spec, workers=workers)
        elapsed = time.perf_counter() - started
        payload["workers"][str(workers)] = {
            "elapsed_seconds": elapsed,
            "runs_per_second": RUNS / elapsed,
        }
        if baseline is None:
            baseline = result
        else:
            # Sharding must never change what the sweep computes.
            assert result.tables() == baseline.tables()
            for a, b in zip(baseline.records, result.records):
                assert a.identity_dict() == b.identity_dict()

    serial = payload["workers"]["1"]["elapsed_seconds"]
    payload["speedup_vs_serial"] = {
        w: serial / stats["elapsed_seconds"]
        for w, stats in payload["workers"].items()
    }
    # A single-core machine cannot overlap runs: its numbers prove
    # bit-identity, not wall-clock scaling — flag them so trajectory
    # tooling (and readers) don't mistake a 1-CPU artifact for a verdict.
    payload["speedup_meaningful"] = (os.cpu_count() or 1) >= 2

    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n[saved to {os.path.abspath(OUT_PATH)}]")
    for w, stats in payload["workers"].items():
        print(
            f"workers={w}: {stats['elapsed_seconds']:.2f}s "
            f"({payload['speedup_vs_serial'][w]:.2f}x vs serial)"
        )

    # The wall-clock claim needs actual parallel hardware and a quiet
    # machine; the bit-identity assertions above hold everywhere.
    if not SMOKE and (os.cpu_count() or 1) >= 2:
        assert payload["speedup_vs_serial"]["2"] > 1.0, (
            "2-worker sweep did not beat serial on a multi-core machine: "
            f"{payload['speedup_vs_serial']}"
        )
