"""Shared benchmark utilities: results persistence and slow-marking."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_collection_modifyitems(config, items):
    """Every benchmark is a long-running experiment: mark them all slow.

    ``pytest -m "not slow"`` is the fast lane; run the paper-scale studies
    explicitly with ``pytest benchmarks``.
    """
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def results_dir():
    """Directory where rendered tables/figures are persisted."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_result(directory: str, name: str, text: str) -> None:
    """Write one experiment's rendered output and echo it to stdout."""
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
