"""Shared benchmark utilities: results persistence."""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    """Directory where rendered tables/figures are persisted."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_result(directory: str, name: str, text: str) -> None:
    """Write one experiment's rendered output and echo it to stdout."""
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")
