"""Benchmark: paper example 1 — Tables 1, 2 and Fig. 6.

Runs the five compared methods (AS+LHS at 300/500/700 fixed simulations,
OO+AS+LHS, MOHECO) on the folded-cascode problem over independent seeds and
regenerates the paper's two tables plus the Fig. 6 comparison chart.

Scale: ``REPRO_FULL=1`` restores the paper's 10 runs / 50k references;
the default is laptop-scale (see ExperimentSettings).  Expected shape:
deviation shrinks from 300 -> 700 simulations; OO+AS+LHS and MOHECO cut the
simulation count by roughly an order of magnitude at 500-sim accuracy.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments import ExperimentSettings
from repro.experiments.example1 import run_example1
from repro.experiments.figures import format_fig6

_CACHE = {}


def _results():
    if "example1" not in _CACHE:
        _CACHE["example1"] = run_example1(ExperimentSettings.from_env())
    return _CACHE["example1"]


@pytest.mark.benchmark(group="example1")
def test_table1_yield_deviation(benchmark, results_dir):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    table = results.table1()
    save_result(results_dir, "table1.txt", table)
    # Sanity on the reproduction shape: every method's average deviation
    # stays in the small-percentage regime the paper reports.
    for summary in results.summaries:
        assert float(summary.deviations().mean()) < 0.2


@pytest.mark.benchmark(group="example1")
def test_table2_simulation_counts(benchmark, results_dir):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    table = results.table2()
    save_result(results_dir, "table2.txt", table)
    fixed = results.summary_by_name("500 simulations (AS+LHS)")
    moheco = results.summary_by_name("MOHECO")
    oo = results.summary_by_name("OO+AS+LHS")
    # The paper's headline: OO-based methods are several times cheaper
    # than the fixed-budget flow at comparable accuracy.
    assert moheco.simulations().mean() < 0.5 * fixed.simulations().mean()
    assert oo.simulations().mean() < 0.5 * fixed.simulations().mean()


@pytest.mark.benchmark(group="example1")
def test_fig6_summary_chart(benchmark, results_dir):
    results = _results()
    chart = benchmark.pedantic(
        format_fig6, args=(results,), rounds=1, iterations=1
    )
    save_result(results_dir, "fig6.txt", chart)
    assert "average total simulations" in chart
