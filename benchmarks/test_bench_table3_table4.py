"""Benchmark: paper example 2 — Tables 3 and 4.

The two-stage telescopic amplifier in N90 under severe constraints.
Methods: AS+LHS at 300/500 simulations per feasible candidate, and MOHECO.
Expected shape: MOHECO's simulation count lands at a small fraction of the
fixed-budget methods' (paper: ~14 %) with comparable or better deviation;
absolute counts reach ~1e5 vs ~1e6 (paper's magnitudes).
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments import ExperimentSettings
from repro.experiments.example2 import run_example2

_CACHE = {}


def _results():
    if "example2" not in _CACHE:
        _CACHE["example2"] = run_example2(ExperimentSettings.from_env())
    return _CACHE["example2"]


@pytest.mark.benchmark(group="example2")
def test_table3_yield_deviation(benchmark, results_dir):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    table = results.table3()
    save_result(results_dir, "table3.txt", table)
    for summary in results.summaries:
        assert float(summary.deviations().mean()) < 0.2


@pytest.mark.benchmark(group="example2")
def test_table4_simulation_counts(benchmark, results_dir):
    results = benchmark.pedantic(_results, rounds=1, iterations=1)
    table = results.table4()
    save_result(results_dir, "table4.txt", table)
    fixed = results.summary_by_name("500 simulations (AS+LHS)")
    moheco = results.summary_by_name("MOHECO")
    assert moheco.simulations().mean() < fixed.simulations().mean()
