"""Multi-fidelity ladder benchmark: sims-to-target vs fixed fidelity.

The ladder's pitch is charged simulations, not wall-clock: on a problem
where the optimum genuinely reaches 100 % yield, both ``moheco_mf`` and
the fixed-fidelity baseline run until the best design holds a verified
``passes == n == n_max`` estimate (the ``yield_100`` stopping rule), so
the total charged simulation count *is* the sims-to-target metric — no
thresholds to pick, no partial-credit comparisons.

The workload is the circuit-backed ``netlist_ota`` problem (stacked
MNA/AC solves) across several seeds; the baseline is ``fixed_budget``,
the paper's state-of-the-art MC flow that prices every feasible candidate
at the full ``n_fixed``.  The ladder instead opens every generation's
bracket at a cheap wide rung and spends full fidelity only on the
survivors that precision-weighted fusion keeps promoting.

Acceptance bar (full scale): ``moheco_mf`` reaches the fixed-fidelity
method's final yield on every seed, with >= 2x fewer charged simulations
in aggregate.  The CI smoke run shrinks to two seeds and only requires
the ratio to exceed 1x.

Results land in ``BENCH_mf.json`` at the repo root so successive PRs can
track the trajectory.
"""

import json
import os
import time

from repro.api import optimize

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_mf.json")

SEEDS = (7, 11) if SMOKE else (7, 11, 23, 31, 43)
#: Shared run shape; each method gets the same 500-sample full fidelity.
COMMON = {"max_generations": 10, "pop_size": 20, "n0": 15}
FULL_FIDELITY = 500
#: eta=2 halves gently: six rungs from 16 to 500, promotion keeps 1/2.
MF_PARAMS = {"eta": 2}


def _measure(method: str, seed: int, **kwargs) -> dict:
    started = time.perf_counter()
    result = optimize(
        "netlist_ota", method=method, seed=seed, **COMMON, **kwargs
    )
    return {
        "seed": seed,
        "best_yield": result.best_yield,
        "n_simulations": result.n_simulations,
        "generations": result.generations,
        "reason": result.reason,
        "elapsed_seconds": time.perf_counter() - started,
    }


def test_mf_sims_to_target():
    fixed_runs = [
        _measure("fixed_budget", seed, n_fixed=FULL_FIDELITY) for seed in SEEDS
    ]
    mf_runs = [
        _measure("moheco_mf", seed, n_max=FULL_FIDELITY, mf_params=MF_PARAMS)
        for seed in SEEDS
    ]

    fixed_sims = sum(run["n_simulations"] for run in fixed_runs)
    mf_sims = sum(run["n_simulations"] for run in mf_runs)
    ratio = fixed_sims / mf_sims

    payload = {
        "problem": "netlist_ota",
        "config": COMMON,
        "full_fidelity": FULL_FIDELITY,
        "mf_params": MF_PARAMS,
        "seeds": list(SEEDS),
        "smoke": SMOKE,
        "fixed_budget": fixed_runs,
        "moheco_mf": mf_runs,
        "fixed_sims_total": fixed_sims,
        "mf_sims_total": mf_sims,
        "sims_ratio": ratio,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n[saved to {os.path.abspath(OUT_PATH)}]")
    for fixed, mf in zip(fixed_runs, mf_runs):
        print(
            f"seed {fixed['seed']:>3}: fixed_budget {fixed['n_simulations']:>6} "
            f"sims -> yield {fixed['best_yield']:.3f} | moheco_mf "
            f"{mf['n_simulations']:>6} sims -> yield {mf['best_yield']:.3f}"
        )
    print(f"aggregate sims ratio (fixed / mf): {ratio:.2f}x")

    # The ladder must reach the fixed-fidelity yield on every seed...
    for fixed, mf in zip(fixed_runs, mf_runs):
        assert mf["best_yield"] >= fixed["best_yield"], (
            f"seed {mf['seed']}: moheco_mf reached {mf['best_yield']:.4f} "
            f"but fixed_budget reached {fixed['best_yield']:.4f}"
        )
    # ...and always for less total simulation.
    assert ratio > 1.0
    if not SMOKE:
        assert ratio >= 2.0, (
            f"moheco_mf only saved {ratio:.2f}x charged simulations over "
            "fixed_budget; the acceptance bar is >= 2x at full scale"
        )
