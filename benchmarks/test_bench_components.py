"""Micro-benchmarks of the performance-critical components.

These use pytest-benchmark's statistical timing (multiple rounds) since
they are cheap; they guard the substrate's throughput, on which every
experiment's wall-clock depends.
"""

import numpy as np
import pytest

from repro.circuit.tech import C035Technology, N90Technology
from repro.circuit.topologies import (
    FoldedCascodeAmplifier,
    TwoStageTelescopicAmplifier,
)
from repro.ocba import ocba_allocation
from repro.sampling import make_sampler
from repro.surrogate import MLP, train_levenberg_marquardt


@pytest.fixture(scope="module")
def fc_setup():
    amp = FoldedCascodeAmplifier(C035Technology())
    x = amp.design_space().sample(1, np.random.default_rng(0))[0]
    samples = amp.variation.sample(500, np.random.default_rng(1))
    return amp, x, samples


@pytest.fixture(scope="module")
def ts_setup():
    amp = TwoStageTelescopicAmplifier(N90Technology())
    x = amp.design_space().sample(1, np.random.default_rng(0))[0]
    samples = amp.variation.sample(500, np.random.default_rng(1))
    return amp, x, samples


@pytest.mark.benchmark(group="evaluator")
def test_folded_cascode_500_sample_evaluation(benchmark, fc_setup):
    amp, x, samples = fc_setup
    out = benchmark(amp.evaluate, x, samples)
    assert out.shape == (500, 6)


@pytest.mark.benchmark(group="evaluator")
def test_telescopic_500_sample_evaluation(benchmark, ts_setup):
    amp, x, samples = ts_setup
    out = benchmark(amp.evaluate, x, samples)
    assert out.shape == (500, 8)


@pytest.mark.benchmark(group="sampling")
def test_lhs_draw_80dim(benchmark, fc_setup):
    amp, _, _ = fc_setup
    sampler = make_sampler("lhs", amp.variation)
    rng = np.random.default_rng(2)
    out = benchmark(sampler.draw, 500, rng)
    assert out.shape == (500, 80)


@pytest.mark.benchmark(group="ocba")
def test_ocba_allocation_50_designs(benchmark):
    rng = np.random.default_rng(3)
    means = rng.uniform(0.1, 0.99, size=50)
    stds = np.sqrt(means * (1 - means))
    alloc = benchmark(ocba_allocation, means, stds, 1750)
    assert alloc.sum() == 1750


@pytest.mark.benchmark(group="surrogate")
def test_lm_training_step(benchmark):
    rng = np.random.default_rng(4)
    x = rng.uniform(-1, 1, size=(100, 8))
    y = np.sin(x[:, 0]) + x[:, 1] ** 2
    model = MLP(8, 10)
    params0 = model.init_params(rng)
    result = benchmark.pedantic(
        train_levenberg_marquardt, args=(model, x, y, params0),
        kwargs={"max_iterations": 20}, rounds=3, iterations=1,
    )
    assert result.mse < 1.0
