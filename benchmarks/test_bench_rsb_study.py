"""Benchmark: section 3.4 — the NN response-surface accuracy study.

Expected shape (paper): the 20-neuron LM-trained network predicting the
next iteration's yields from all previous iterations keeps an RMS error of
several percent even with ~50 iterations of training data (paper: 6.86 %),
i.e. far above Monte-Carlo accuracy at comparable cost.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.rsb_study import run_rsb_study


@pytest.mark.benchmark(group="rsb")
def test_rsb_nn_prediction_error(benchmark, results_dir):
    result = benchmark.pedantic(
        run_rsb_study, kwargs={"seed": 20100311}, rounds=1, iterations=1
    )
    text = result.formatted()
    save_result(results_dir, "rsb_study.txt", text)

    # The paper's negative result: the surrogate stays percent-level wrong.
    assert result.final_rms > 0.005
    # ... while remaining a plausible regressor (not complete garbage).
    assert result.final_rms < 0.5
