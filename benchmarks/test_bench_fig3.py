"""Benchmark: paper Fig. 3 — OCBA allocation inside one typical population.

Expected shape (paper): high-yield candidates receive a disproportionate
share of the simulations (36 % of the population took 55 %), low-yield
candidates a small share (30 % of the population took 13 %), and the whole
population costs ~10 % of what fixed-500 allocation would.
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.fig3 import run_fig3


@pytest.mark.benchmark(group="fig3")
def test_fig3_ocba_allocation_shares(benchmark, results_dir):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    text = result.formatted()
    save_result(results_dir, "fig3.txt", text)

    # Shape assertions mirroring the paper's reading of the figure.
    assert result.n_candidates >= 10
    if result.high_population_share > 0 and result.low_population_share > 0:
        high_density = result.high_simulation_share / result.high_population_share
        low_density = result.low_simulation_share / result.low_population_share
        assert high_density > low_density
    # The OO population costs a small fraction of fixed-500 estimation.
    assert result.total_vs_fixed < 0.25
