"""Benchmark: section 3.4 — PSWCD over-design quantification.

Expected shape (paper's argument): combining per-spec worst cases
over-estimates failure, so the PSWCD yield bound sits *below* the reference
MC yield on most designs — the over-design that "eliminates good designs".
"""

import pytest

from benchmarks.conftest import save_result
from repro.experiments.pswcd_study import run_pswcd_study


@pytest.mark.benchmark(group="pswcd")
def test_pswcd_bound_underestimates_yield(benchmark, results_dir):
    result = benchmark.pedantic(
        run_pswcd_study, kwargs={"seed": 20100312}, rounds=1, iterations=1
    )
    text = result.formatted()
    save_result(results_dir, "pswcd_study.txt", text)

    # In our linear-Gaussian substrate the per-spec linearisation is nearly
    # exact, so the union bound's pessimism is mild; the claim that survives
    # is directional: on average the worst-case bound sits below the MC
    # yield (over-design pressure), never meaningfully above it.
    assert result.mean_underestimate > -0.01
    assert result.fraction_underestimated >= 0.4
