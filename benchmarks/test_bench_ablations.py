"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but the studies a reviewer would ask for:

* OCBA vs equal allocation — probability of correct selection at equal
  budget (the paper's 'order is easier than value' tenet).
* LHS vs PMC vs Sobol — yield-estimator variance at equal sample count.
* Acceptance sampling on/off — charged simulations for the same estimate.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_result
from repro.ledger import SimulationLedger
from repro.ocba import approximate_pcs, equal_allocation, ocba_allocation
from repro.problems import make_sphere_problem
from repro.rng import make_rng
from repro.sampling import make_sampler
from repro.sampling.acceptance import LinearMarginScreener
from repro.yieldsim import CandidateYieldState


@pytest.mark.benchmark(group="ablation")
def test_ablation_ocba_vs_equal_pcs(benchmark, results_dir):
    means = np.array([0.93, 0.90, 0.82, 0.70, 0.55, 0.45, 0.30, 0.20])
    stds = np.sqrt(means * (1 - means))

    def study():
        rows = []
        # Budgets in the asymptotic regime where OCBA's optimality holds
        # (the Bonferroni APCS bound is loose for starved designs at very
        # small budgets; pilots of n0=15 mirror the sequential procedure).
        for total in (800, 1600, 3200, 6400):
            pcs_eq = approximate_pcs(
                means, stds, equal_allocation(len(means), total)
            )
            pcs_oc = approximate_pcs(
                means, stds, ocba_allocation(means, stds, total, minimum=15)
            )
            rows.append((total, pcs_eq, pcs_oc))
        return rows

    rows = benchmark(study)
    lines = ["Ablation: P{correct selection}, OCBA vs equal allocation",
             f"{'budget':>8s} {'equal':>8s} {'OCBA':>8s}"]
    for total, eq, oc in rows:
        lines.append(f"{total:>8d} {eq:>8.3f} {oc:>8.3f}")
        assert oc >= eq - 1e-9
    save_result(results_dir, "ablation_ocba.txt", "\n".join(lines))


@pytest.mark.benchmark(group="ablation")
def test_ablation_sampler_variance(benchmark, results_dir):
    problem = make_sphere_problem(sigma=0.3)
    x = np.full(4, 0.55)

    def study():
        out = {}
        for kind in ("pmc", "lhs", "sobol"):
            sampler = make_sampler(kind, problem.variation)
            rng = make_rng(7)
            estimates = [
                float(np.mean(problem.indicator(x, sampler.draw(200, rng))))
                for _ in range(60)
            ]
            out[kind] = float(np.std(estimates))
        return out

    stds = benchmark.pedantic(study, rounds=1, iterations=1)
    lines = ["Ablation: yield-estimator std by sampler (200 samples/estimate)"]
    lines.extend(f"{kind:>6s}: {value:.4f}" for kind, value in stds.items())
    save_result(results_dir, "ablation_sampler.txt", "\n".join(lines))
    assert stds["lhs"] <= stds["pmc"] * 1.1  # LHS no worse than PMC


@pytest.mark.benchmark(group="ablation")
def test_ablation_acceptance_sampling_savings(benchmark, results_dir):
    problem = make_sphere_problem(sigma=0.25)
    x = np.full(4, 0.58)

    def study():
        ledger = SimulationLedger()
        state = CandidateYieldState(
            problem, x, make_sampler("lhs", problem.variation), make_rng(3),
            ledger, "stage1", LinearMarginScreener(problem.specs),
        )
        # Refine in batches: the screener trains on early batches and
        # screens later ones (matching how OCBA refinement feeds it).
        for _ in range(10):
            state.refine(200)
        return state.n_simulated, state.n, state.value, ledger.screened_out

    simulated, total, estimate, screened = benchmark.pedantic(
        study, rounds=1, iterations=1
    )
    truth = problem.evaluator.analytic_yield(x, problem.specs)
    text = "\n".join([
        "Ablation: acceptance sampling savings on one candidate",
        f"samples in estimate: {total}",
        f"charged simulations: {simulated} ({simulated / total:.1%})",
        f"screened without simulation: {screened}",
        f"estimate {estimate:.3f} vs analytic {truth:.3f}",
    ])
    save_result(results_dir, "ablation_as.txt", text)
    assert simulated < total
    assert abs(estimate - truth) < 0.05
