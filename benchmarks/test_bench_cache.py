"""Warm-start cache benchmark: cold vs warm sims/sec on a LS-heavy run.

The cache's pitch is simulation-priced: when evaluations cost real time
(MNA/AC circuit solves, or anything heavier than the closed-form
synthetics), a warm-started run replays its Monte-Carlo rounds instead of
recomputing them.  The benchmark therefore wraps the quadratic synthetic
in a deterministic per-row workload (``SIM_COST_FLOPS`` sin/sum flops per
simulated sample) to emulate circuit-priced simulations without leaving
the synthetic substrate, then measures one local-search-heavy MOHECO
configuration three ways:

* ``uncached`` — no cache attached (the baseline the cold overhead is
  judged against),
* ``cold`` — LRU cache attached, first run (pays keying + memoization),
* ``warm`` — the same run again on the now-populated cache.

Because accounting is ledger-faithful, all three report the *same*
``n_simulations``; only the wall-clock moves, so ``sims_per_second`` is
the honest throughput metric.  The acceptance bar: warm >= 1.5x cold on
the local-search-heavy configuration (asserted at full scale; the CI
smoke run shrinks the workload and only requires warm > cold).

Results land in ``BENCH_cache.json`` at the repo root so successive PRs
can track the trajectory.
"""

import json
import os
import time

import numpy as np

from repro.api import LRUEvaluationCache, optimize
from repro.problems import make_quadratic_problem
from repro.problems.base import YieldProblem

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
#: Deterministic extra work per simulated row (emulates circuit pricing).
SIM_COST_FLOPS = 2048 if SMOKE else 8192
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_cache.json")

#: The local-search-heavy regime: tight patience so Nelder-Mead fires, a
#: real stage-2 sample count so every NM evaluation is n_max-priced.
#: (Unlike the other benchmarks the generation count survives smoke mode:
#: shrinking it below the NM trigger point would bench the wrong regime;
#: only the per-row pricing shrinks.)
LS_HEAVY = {
    "pop_size": 10,
    "max_generations": 12,
    "ls_patience": 1,
    "ls_max_triggers": 4,
    "n_max": 150,
    "sim_ave": 20,
    "n0": 10,
    "stop_patience": 30,
}
SEED = 11


class _PricedEvaluator:
    """Wraps an evaluator with deterministic per-row busywork.

    The workload scales with the number of simulated rows (like a real
    simulator) and changes no outputs, so cached and uncached runs stay
    bit-identical while the evaluation cost becomes worth caching.
    """

    def __init__(self, inner, flops_per_row: int) -> None:
        self._inner = inner
        self._spin = np.arange(float(flops_per_row))
        self.variation = inner.variation

    def design_space(self):
        return self._inner.design_space()

    def metric_names(self):
        return self._inner.metric_names()

    def _burn(self, rows: int) -> None:
        for _ in range(rows):
            float(np.sum(np.sin(self._spin)))

    def evaluate(self, x, samples):
        out = self._inner.evaluate(x, samples)
        self._burn(np.atleast_2d(samples).shape[0])
        return out

    def evaluate_batch(self, X, samples):
        out = self._inner.evaluate_batch(X, samples)
        self._burn(np.atleast_2d(X).shape[0] * np.atleast_2d(samples).shape[0])
        return out

    def evaluate_pairs(self, X, samples):
        out = self._inner.evaluate_pairs(X, samples)
        self._burn(np.atleast_2d(X).shape[0])
        return out


def make_priced_quadratic() -> YieldProblem:
    base = make_quadratic_problem()
    evaluator = _PricedEvaluator(base.evaluator, SIM_COST_FLOPS)
    return YieldProblem(evaluator, base.specs, name="priced_quadratic")


def _measure(problem, cache):
    started = time.perf_counter()
    result = optimize(
        problem,
        method="moheco",
        seed=SEED,
        cache=cache,
        **LS_HEAVY,
    )
    elapsed = time.perf_counter() - started
    return {
        "n_simulations": result.n_simulations,
        "elapsed_seconds": elapsed,
        "sims_per_sec": result.n_simulations / elapsed,
        "cache_stats": result.cache_stats,
        "local_search_fired": sum(g.local_search_fired for g in result.history),
        "identity": result.identity_dict(),
    }


def test_cache_warm_start_throughput():
    problem = make_priced_quadratic()
    cache = LRUEvaluationCache()

    uncached = _measure(problem, None)
    cold = _measure(problem, cache)
    warm = _measure(problem, cache)

    # Ledger faithfulness: all three runs charge the identical simulation
    # count and report the identical result.
    assert cold["identity"] == uncached["identity"]
    assert warm["identity"] == uncached["identity"]
    assert warm["n_simulations"] == uncached["n_simulations"]
    assert warm["cache_stats"]["hits"] > 0
    assert warm["cache_stats"]["misses"] == 0
    # The configuration genuinely exercises the memetic local search.
    assert uncached["local_search_fired"] >= 1

    speedup_warm_vs_cold = warm["sims_per_sec"] / cold["sims_per_sec"]
    cold_overhead = uncached["sims_per_sec"] / cold["sims_per_sec"]

    payload = {
        "problem": "priced_quadratic",
        "sim_cost_flops": SIM_COST_FLOPS,
        "config": LS_HEAVY,
        "seed": SEED,
        "smoke": SMOKE,
        "uncached": {k: v for k, v in uncached.items() if k != "identity"},
        "cold": {k: v for k, v in cold.items() if k != "identity"},
        "warm": {k: v for k, v in warm.items() if k != "identity"},
        "speedup_warm_vs_cold": speedup_warm_vs_cold,
        "cold_overhead_vs_uncached": cold_overhead,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n[saved to {os.path.abspath(OUT_PATH)}]")
    for name in ("uncached", "cold", "warm"):
        print(f"{name:9s} {payload[name]['sims_per_sec']:>12,.0f} sims/s")
    print(
        f"warm-vs-cold speedup: {speedup_warm_vs_cold:.2f}x "
        f"(cold overhead vs uncached: {cold_overhead:.2f}x)"
    )

    # Warm must always beat cold; the 1.5x acceptance bar applies at full
    # scale on a quiet machine (CI smoke runners are too noisy and too
    # small for absolute wall-clock bars).
    assert speedup_warm_vs_cold > 1.0
    if not SMOKE:
        assert speedup_warm_vs_cold >= 1.5, (
            f"warm-started run only {speedup_warm_vs_cold:.2f}x over cold; "
            "expected >= 1.5x on the local-search-heavy configuration"
        )
