"""Surrogate-screened method benchmark: sims-to-target vs unscreened.

``moheco_screened`` composes the paper's full algorithm with a BagNet-style
online discriminator (:class:`~repro.compose.screeners.SurrogateScreener`)
that ranks each generation's trial pool by predicted yield and prunes the
bottom half before any simulator time is spent.  Pruned trials charge
zero simulations — the ledger's ``pruned`` column records them instead —
so on a problem where the optimum genuinely reaches 100 % yield, both
methods run until the best design holds a verified ``passes == n ==
n_max`` estimate and the total charged simulation count *is* the
sims-to-target metric, exactly as in ``test_bench_mf.py``.

The workload is the circuit-backed ``netlist_ota`` problem (stacked
MNA/AC solves).  The generation budget is deliberately generous
(``max_generations=20``): screening perturbs the search path, and the
comparison is only meaningful when both methods actually reach the
100 %-yield target rather than timing out mid-climb.

Acceptance bar (full scale): ``moheco_screened`` matches the unscreened
``moheco`` final yield on every seed, with >= 1.2x fewer charged
simulations in aggregate and a non-trivial number of pruned trials.  The
CI smoke run shrinks to two seeds and only requires the ratio to exceed
1x.  Per-seed sims are *not* compared — pruning perturbs the trial
stream, so individual seeds can go either way; the claim is aggregate.

Results land in ``BENCH_compose.json`` at the repo root so successive
PRs can track the trajectory.
"""

import json
import os
import time

from repro.api import optimize

SMOKE = bool(os.environ.get("REPRO_BENCH_SMOKE"))
OUT_PATH = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_compose.json")

SEEDS = (11, 23) if SMOKE else (7, 11, 23, 31, 43, 53, 61, 71)
#: Shared run shape; generous generation budget so both methods reach
#: the verified-100%-yield stopping rule on every seed.
COMMON = {"max_generations": 20, "pop_size": 20, "n0": 15, "n_max": 500}
#: Screen only once three generations of evaluated candidates exist,
#: then keep the top half of each trial pool by predicted yield.
SCREEN_PARAMS = {"min_train": 60, "keep_fraction": 0.5}


def _measure(method: str, seed: int, **kwargs) -> dict:
    started = time.perf_counter()
    result = optimize("netlist_ota", method=method, seed=seed, **COMMON, **kwargs)
    return {
        "seed": seed,
        "best_yield": result.best_yield,
        "n_simulations": result.n_simulations,
        "pruned": result.ledger.pruned,
        "generations": result.generations,
        "reason": result.reason,
        "screen_trace_len": len(result.screen_trace or []),
        "elapsed_seconds": time.perf_counter() - started,
    }


def test_compose_screening_sims_to_target():
    plain_runs = [_measure("moheco", seed) for seed in SEEDS]
    screened_runs = [
        _measure("moheco_screened", seed, screen_params=SCREEN_PARAMS)
        for seed in SEEDS
    ]

    plain_sims = sum(run["n_simulations"] for run in plain_runs)
    screened_sims = sum(run["n_simulations"] for run in screened_runs)
    ratio = plain_sims / screened_sims
    pruned_total = sum(run["pruned"] for run in screened_runs)

    payload = {
        "problem": "netlist_ota",
        "config": COMMON,
        "screen_params": SCREEN_PARAMS,
        "seeds": list(SEEDS),
        "smoke": SMOKE,
        "moheco": plain_runs,
        "moheco_screened": screened_runs,
        "plain_sims_total": plain_sims,
        "screened_sims_total": screened_sims,
        "sims_ratio": ratio,
        "pruned_total": pruned_total,
    }
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    print(f"\n[saved to {os.path.abspath(OUT_PATH)}]")
    for plain, screened in zip(plain_runs, screened_runs):
        print(
            f"seed {plain['seed']:>3}: moheco {plain['n_simulations']:>6} "
            f"sims -> yield {plain['best_yield']:.3f} | moheco_screened "
            f"{screened['n_simulations']:>6} sims -> yield "
            f"{screened['best_yield']:.3f} (pruned {screened['pruned']})"
        )
    print(f"aggregate sims ratio (plain / screened): {ratio:.2f}x")

    # Screening must not cost yield: equal-or-better on every seed...
    for plain, screened in zip(plain_runs, screened_runs):
        assert screened["best_yield"] >= plain["best_yield"], (
            f"seed {screened['seed']}: moheco_screened reached "
            f"{screened['best_yield']:.4f} but moheco reached "
            f"{plain['best_yield']:.4f}"
        )
    # ...the screener must actually engage (trace recorded, trials pruned)...
    assert all(run["screen_trace_len"] > 0 for run in screened_runs)
    assert pruned_total > 0, "the surrogate never pruned a single trial"
    # ...and the aggregate simulation bill must be measurably smaller.
    assert ratio > 1.0
    if not SMOKE:
        assert ratio >= 1.2, (
            f"moheco_screened only saved {ratio:.2f}x charged simulations "
            "over moheco; the acceptance bar is >= 1.2x at full scale"
        )
