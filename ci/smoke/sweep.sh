#!/usr/bin/env bash
# Sweep orchestration smoke: a sharded seed sweep, a no-op resume on the
# complete store, and the tiny-budget sweep benchmark.
set -euo pipefail

# Sharded seed sweep (2 methods x 3 seeds, 2 workers).
repro sweep --problem sphere --method moheco --method fixed_budget \
  --runs 3 --base-seed 42 --reference-n 2000 --max-generations 10 \
  --set pop_size=10 --workers 2 --progress --out sweep-store.jsonl

# Resume is a no-op on a complete store.
repro sweep --problem sphere --method moheco --method fixed_budget \
  --runs 3 --base-seed 42 --reference-n 2000 --max-generations 10 \
  --set pop_size=10 --workers 2 --resume --no-tables \
  --out sweep-store.jsonl | tee resume.log
grep -q "0 run(s) executed, 6 resumed" resume.log

# Sweep benchmark (tiny budget): REPRO_BENCH_SMOKE shrinks the workload
# and skips the speedup assertion (shared runners are too noisy for
# wall-clock bars at smoke scale); the bit-identity checks across worker
# counts still run.
REPRO_BENCH_SMOKE=1 pytest benchmarks/test_bench_sweep.py -q -s
