#!/usr/bin/env bash
# Warm-start cache smoke: a local-search-heavy run populates the spill
# file cold, replays it warm, and the ledger-faithful accounting must
# charge identical totals either way.
set -euo pipefail

run_cached() {
  repro run --problem quadratic --method moheco --seed 11 \
    --set pop_size=10 --set max_generations=12 --set ls_patience=1 \
    --set ls_max_triggers=4 --set n_max=150 --set sim_ave=20 \
    --set n0=10 --set stop_patience=30 \
    --cache lru --cache-param spill_path=cache-spill.jsonl
}

# Cold: populates the spill file.
run_cached | tee cold.log
grep -Eq "cache\[lru\]: hits=0 " cold.log

# Warm: replays from the spill file.
run_cached | tee warm.log
grep -Eq "cache\[lru\]: hits=[1-9][0-9]* misses=0 " warm.log

# Ledger-faithful accounting charges identical totals.
cold=$(grep -oE "in [0-9]+ simulations" cold.log)
warm=$(grep -oE "in [0-9]+ simulations" warm.log)
echo "cold: $cold / warm: $warm"
test "$cold" = "$warm"

# Cache benchmark (tiny budget): REPRO_BENCH_SMOKE shrinks the per-row
# simulation pricing and skips the 1.5x warm-vs-cold bar (shared runners
# are too noisy for wall-clock bars); identity and hit-count assertions
# still run.
REPRO_BENCH_SMOKE=1 pytest benchmarks/test_bench_cache.py -q -s
