#!/usr/bin/env bash
# Remote simulation engine smoke: fan a circuit-priced run across worker
# daemons (one rigged to die mid-round), assert bit-identity with the
# serial reference both ways, then run the tiny-budget remote benchmark.
set -euo pipefail

cleanup() {
  for n in 1 2 3; do
    kill "$(cat worker$n.pid)" 2>/dev/null || true
    cat worker$n.log
  done
}
trap cleanup EXIT

# Start two simulator workers, plus one rigged to die: the third worker
# serves exactly one chunk, then 503s every evaluate call — a
# deterministic mid-round death the engine must survive by
# re-dispatching.
repro worker --port 9101 > worker1.log 2>&1 &
echo $! > worker1.pid
repro worker --port 9102 > worker2.log 2>&1 &
echo $! > worker2.pid
repro worker --port 9103 --fail-after 1 > worker3.log 2>&1 &
echo $! > worker3.pid
for port in 9101 9102 9103; do
  for i in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$port/v1/health" && break
    sleep 0.2
  done
  curl -sf "http://127.0.0.1:$port/v1/health"
done

# Serial reference run (circuit-priced).
repro run --problem netlist_ota --seed 7 \
  --set pop_size=10 --set max_generations=6 --out serial.json

# The same run fanned across two workers must be bit-identical.
repro run --problem netlist_ota --seed 7 \
  --set pop_size=10 --set max_generations=6 \
  --engine remote \
  --engine-param workers=127.0.0.1:9101,127.0.0.1:9102 \
  --out remote.json
python - <<'EOF'
import json
from repro.core.moheco import MOHECOResult
serial = MOHECOResult.from_dict(json.load(open("serial.json"))["result"])
remote = MOHECOResult.from_dict(json.load(open("remote.json"))["result"])
assert remote.identity_dict() == serial.identity_dict(), (
    "remote engine diverged from serial"
)
decision = remote.engine_decision
assert decision["engine"] == "remote"
assert decision["rows"] > decision["local_rows"], decision
print("bit-identity ok; dispatch stats:", decision)
EOF

# A killed worker re-dispatches and stays bit-identical: with a single
# in-flight slot the death point is deterministic and the queued chunks
# must re-dispatch (here onto the local fallback).
repro run --problem netlist_ota --seed 7 \
  --set pop_size=10 --set max_generations=6 \
  --engine remote \
  --engine-param workers=127.0.0.1:9103 \
  --engine-param chunk_rows=16 \
  --engine-param max_in_flight=1 \
  --out remote-kill.json
python - <<'EOF'
import json
from repro.core.moheco import MOHECOResult
serial = MOHECOResult.from_dict(json.load(open("serial.json"))["result"])
killed = MOHECOResult.from_dict(json.load(open("remote-kill.json"))["result"])
assert killed.identity_dict() == serial.identity_dict(), (
    "re-dispatched run diverged from serial"
)
decision = killed.engine_decision
assert decision["worker_failures"] >= 1, decision
assert decision["re_dispatched"] >= 1, decision
assert decision["local_rows"] > 0, decision
print("re-dispatch ok; dispatch stats:", decision)
EOF

# Remote benchmark (tiny budget): REPRO_BENCH_SMOKE shrinks the workload
# and disarms the >=1.5x streaming bar (smoke-scale rounds on shared
# runners are too noisy); the crossover calibration and dispatch records
# still land.
REPRO_BENCH_SMOKE=1 pytest benchmarks/test_bench_remote.py -q -s
