#!/usr/bin/env bash
# Multi-fidelity ladder smoke: the ladder must beat the fixed-fidelity
# baseline on sims-to-target, stay bit-identical over a remote worker
# (cold and warm cache), then run the tiny-budget mf benchmark.
set -euo pipefail

cleanup() {
  kill "$(cat worker.pid)" 2>/dev/null || true
  cat worker.log
}
trap cleanup EXIT

# Tiny 2-bracket ladder on the circuit-priced problem: both runs stop at
# the same verified-100%-yield target, so total charged simulations is
# the sims-to-target metric.
repro run --problem netlist_ota --method moheco_mf --seed 7 \
  --set pop_size=10 --set max_generations=6 \
  --set "mf_params={'eta': 2, 'brackets': 2}" \
  --out mf-serial.json
repro run --problem netlist_ota --method fixed_budget --seed 7 \
  --set pop_size=10 --set max_generations=6 \
  --out fixed.json
python - <<'EOF'
import json
mf = json.load(open("mf-serial.json"))["result"]
fixed = json.load(open("fixed.json"))["result"]
assert mf["best_yield"] >= fixed["best_yield"], (mf["best_yield"], fixed["best_yield"])
assert mf["n_simulations"] < fixed["n_simulations"], (
    f"ladder charged {mf['n_simulations']} sims, fixed-fidelity "
    f"baseline only {fixed['n_simulations']}"
)
trace = mf["fidelity_trace"]
# Early generations can log empty rungs (an all-infeasible trial pool
# gives the ladder nothing to climb), but the run as a whole must have
# exercised the ladder.
assert trace and any(entry["rungs"] for entry in trace), trace
print(
    f"sims-to-target: moheco_mf {mf['n_simulations']} vs "
    f"fixed_budget {fixed['n_simulations']} "
    f"({len(trace)} ladder generations)"
)
EOF

# The fidelity_trace is part of the result identity: the same run
# dispatched to a worker daemon — first against a cold worker cache,
# then a warm one — must match the serial reference bit for bit, while
# the warm replay serves rows from worker memory.
repro worker --port 9104 > worker.log 2>&1 &
echo $! > worker.pid
for i in $(seq 1 50); do
  curl -sf http://127.0.0.1:9104/v1/health && break
  sleep 0.2
done
for out in mf-remote-cold.json mf-remote-warm.json; do
  repro run --problem netlist_ota --method moheco_mf --seed 7 \
    --set pop_size=10 --set max_generations=6 \
    --set "mf_params={'eta': 2, 'brackets': 2}" \
    --engine remote --engine-param workers=127.0.0.1:9104 \
    --engine-param chunk_rows=32 \
    --out "$out"
done
python - <<'EOF'
import json
from repro.core.moheco import MOHECOResult
results = {
    name: MOHECOResult.from_dict(
        json.load(open(f"mf-remote-{name}.json"))["result"]
    )
    for name in ("cold", "warm")
}
serial = MOHECOResult.from_dict(
    json.load(open("mf-serial.json"))["result"]
)
for name, result in results.items():
    assert result.identity_dict() == serial.identity_dict(), name
    assert result.fidelity_trace == serial.fidelity_trace, name
assert results["cold"].engine_decision["worker_cache_rows"] == 0
warm_hits = results["warm"].engine_decision["worker_cache_rows"]
assert warm_hits > 0, results["warm"].engine_decision
print(f"bit-identity ok; warm worker replayed {warm_hits} rows")
EOF

# Multi-fidelity benchmark (tiny budget): REPRO_BENCH_SMOKE shrinks to
# two seeds and disarms the >=2x aggregate bar; the yield-parity and
# ratio-above-1x assertions still run.
REPRO_BENCH_SMOKE=1 pytest benchmarks/test_bench_mf.py -q -s
