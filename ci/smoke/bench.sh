#!/usr/bin/env bash
# Engine benchmark smoke: tiny-budget micro-benchmark plus the persisted
# crossover assertions.  REPRO_BENCH_SMOKE shrinks the workload and
# relaxes the 3x assertion: shared CI runners are too noisy for absolute
# speedup bars.  Includes the circuit-priced round (netlist_ota stacked
# MNA/AC solves).
set -euo pipefail

REPRO_BENCH_SMOKE=1 pytest benchmarks/test_bench_engine.py -q -s

# Re-check the persisted numbers: the circuit-priced round must sit above
# the engine-selection crossover, and wherever the crossover model
# predicts a pool win (multi-core runners — all hosted GitHub runners
# qualify) the shared-memory process backend must not be slower than
# fused serial.
python - <<'EOF'
import json
bench = json.load(open("BENCH_engine.json"))["circuit"]
assert bench["row_cost_over_crossover"] >= 1.0, bench
serial = bench["round"]["serial"]["sims_per_sec"]
shm = bench["round"]["process_shm"]["sims_per_sec"]
if bench["pool_should_win_here"]:
    assert shm >= serial, (
        f"process-shm {shm:,.0f}/s < serial {serial:,.0f}/s "
        f"above the crossover"
    )
print(
    f"crossover ok: {bench['row_cost_over_crossover']:.1f}x above, "
    f"process-shm {shm:,.0f}/s vs serial {serial:,.0f}/s "
    f"(cpus={bench['cpus']})"
)
EOF
