#!/usr/bin/env bash
# Optimization service smoke: boot the HTTP job server, stream a run and
# a sweep through it, check bit-identity with a direct optimize() call,
# and make sure malformed specs answer structured 400s.
set -euo pipefail

cleanup() {
  kill "$(cat serve.pid)" 2>/dev/null || true
  cat serve.log
}
trap cleanup EXIT

# Start the service.
mkdir -p service-data
repro serve --port 8032 --workers 2 --data-dir service-data \
  > serve.log 2>&1 &
echo $! > serve.pid
for i in $(seq 1 50); do
  curl -sf http://127.0.0.1:8032/v1/health && break
  sleep 0.2
done
curl -sf http://127.0.0.1:8032/v1/health

# Submit a run job and stream its events.
repro submit --url http://127.0.0.1:8032 \
  --problem netlist_ota --seed 7 \
  --set pop_size=10 --set max_generations=6 \
  --follow | tee run-events.ndjson
grep -q '"kind": "generation"' run-events.ndjson
grep -q '"state": "succeeded"' run-events.ndjson

# Fetch the run result and assert bit-identity with a direct run.
JOB=$(head -n1 run-events.ndjson | python -c \
  "import json,sys; print(json.load(sys.stdin)['id'])")
repro result "$JOB" --url http://127.0.0.1:8032 --out service-result.json
python - <<'EOF'
import json
from repro.api import optimize
from repro.api.spec import RunSpec
from repro.core.moheco import MOHECOResult
payload = json.load(open("service-result.json"))
served = MOHECOResult.from_dict(payload["result"]["result"])
direct = optimize(RunSpec.from_dict(payload["result"]["spec"]))
assert served.identity_dict() == direct.identity_dict(), (
    "service result diverged from direct optimize()"
)
print("bit-identity ok:", served.best_yield, served.n_simulations)
EOF

# Submit a 2x2 sweep job and stream its events.
cat > sweep-spec.json <<'EOF'
{"methods": ["moheco", "fixed_budget"], "problems": ["sphere"],
 "runs": 2, "base_seed": 42, "reference_n": 2000,
 "max_generations": 8}
EOF
repro submit --url http://127.0.0.1:8032 --spec sweep-spec.json \
  --follow | tee sweep-events.ndjson
test "$(grep -c '"kind": "sweep_run"' sweep-events.ndjson)" = 4
grep -q '"state": "succeeded"' sweep-events.ndjson

# Malformed specs answer structured 400s.
code=$(curl -s -o bad.json -w "%{http_code}" \
  -X POST http://127.0.0.1:8032/v1/runs \
  -H 'Content-Type: application/json' \
  -d '{"problem": "sphere", "pop_size": 8}')
test "$code" = 400
grep -q '"error": "invalid_spec"' bad.json
grep -q '"field": "pop_size"' bad.json
