#!/usr/bin/env bash
# Composed-method smoke: the surrogate-screened method must be
# discoverable, ledger-faithful, and cheaper than the unscreened run at
# equal-or-better yield on a pinned circuit-priced workload.
set -euo pipefail

# The composed methods are discoverable, with descriptions and config
# summaries (the registry prints one line per method).
repro list methods | tee methods.log
grep -q "moheco_screened" methods.log
grep -q "moheco_lineasy" methods.log
grep -q "fixed_budget_screened" methods.log
grep -q "screener=surrogate" methods.log
grep -q "proposer=line" methods.log

# Screened vs unscreened on the same pinned workload (the smoke slice of
# benchmarks/test_bench_compose.py): the screener must engage
# (non-empty screen_trace, pruned trials recorded on the ledger) and the
# screened run must charge fewer simulations at equal-or-better yield.
repro run --problem netlist_ota --method moheco_screened --seed 23 \
  --set pop_size=20 --set max_generations=20 --set n0=15 --set n_max=500 \
  --set "screen_params={'min_train': 60, 'keep_fraction': 0.5}" \
  --out screened.json
repro run --problem netlist_ota --method moheco --seed 23 \
  --set pop_size=20 --set max_generations=20 --set n0=15 --set n_max=500 \
  --out plain.json
python - <<'EOF'
import json
screened = json.load(open("screened.json"))["result"]
plain = json.load(open("plain.json"))["result"]
trace = screened["screen_trace"]
assert trace, "screen_trace is empty"
assert any(rec["mode"] == "screened" for rec in trace), trace
assert screened["ledger"]["pruned"] > 0, screened["ledger"]
assert screened["best_yield"] >= plain["best_yield"], (
    screened["best_yield"], plain["best_yield"]
)
assert screened["n_simulations"] < plain["n_simulations"], (
    f"screened charged {screened['n_simulations']} sims, unscreened "
    f"only {plain['n_simulations']}"
)
print(
    f"screening ok: {screened['n_simulations']} vs "
    f"{plain['n_simulations']} sims at yield {screened['best_yield']:.3f} "
    f"({screened['ledger']['pruned']} trials pruned, "
    f"{len(trace)} trace entries)"
)
EOF

# Compose benchmark (tiny budget): REPRO_BENCH_SMOKE shrinks to two
# seeds and disarms the >=1.2x aggregate bar; the yield-parity and
# ratio-above-1x assertions still run.
REPRO_BENCH_SMOKE=1 pytest benchmarks/test_bench_compose.py -q -s
