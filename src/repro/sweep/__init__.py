"""Sweep orchestration: RunSpec-driven seed sweeps, sharded and resumable.

The paper's evaluation protocol — replicated runs with independent random
numbers, aggregated into best/worst/average/variance tables — as a
first-class subsystem:

* :class:`~repro.sweep.spec.SweepSpec` — a JSON-round-trippable
  methods × problems × seeds grid that expands into per-run
  :class:`~repro.api.spec.RunSpec`\\ s; per-run random streams derive from
  ``(base_seed, run_index)`` (:func:`repro.rng.run_streams`).
* :func:`~repro.sweep.executor.run_sweep` — executes the grid serially or
  sharded across a process pool; any worker count is bit-identical.
* :class:`~repro.sweep.store.ResultStore` — resumable JSONL store, one
  :class:`~repro.sweep.records.RunRecord` line per completed run, with a
  sweep-spec hash guarding resumes.

CLI: ``repro sweep --spec sweep.json --workers 4 --out store.jsonl`` (or
flag-built grids; ``--resume`` continues a partial store).
"""

from repro.sweep.executor import SweepResult, execute_run, run_sweep
from repro.sweep.records import MethodSummary, RunRecord
from repro.sweep.spec import MethodSpec, ProblemSpec, SweepRun, SweepSpec
from repro.sweep.store import ResultStore, StoreMismatchError

__all__ = [
    "MethodSpec",
    "ProblemSpec",
    "SweepRun",
    "SweepSpec",
    "RunRecord",
    "MethodSummary",
    "ResultStore",
    "StoreMismatchError",
    "SweepResult",
    "run_sweep",
    "execute_run",
]
