"""Sweep execution: whole runs sharded across a process pool.

The engine layer (:mod:`repro.engine`) parallelises *within* one run —
fused Monte-Carlo rounds across workers.  This module parallelises *across*
runs: the paper's "10 runs with independent random numbers" are
embarrassingly parallel once each run's random streams derive from its own
``(base_seed, run_index)`` pair (:func:`repro.rng.run_streams`), so an
n-worker sweep is bit-identical to the serial one — same records, same
summary statistics, same rendered tables — and only the wall-clock moves.

Workers follow the fork-friendly recipe of
:class:`~repro.engine.process.ProcessPoolEngine`: they receive pure
JSON-compatible payloads (a :class:`~repro.api.spec.RunSpec` dict plus the
run index), resolve the problem through the registries in their own
process, run :func:`repro.api.optimize` plus the reference MC, and ship a
plain record dict back.  No live object crosses the pool boundary.

Completed runs land incrementally in a resumable
:class:`~repro.sweep.store.ResultStore`; killing a sweep after ``k`` runs
and re-running with ``resume=True`` executes only the missing ones.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, CancelledError, wait
from dataclasses import dataclass

from repro.core.callbacks import Callback, CallbackList, wants_run_progress
from repro.engine.process import make_process_pool, pool_mp_context
from repro.ledger import SimulationLedger
from repro.rng import run_streams
from repro.sweep.records import MethodSummary, RunRecord
from repro.sweep.spec import SweepRun, SweepSpec
from repro.sweep.store import ResultStore, StoreMismatchError

__all__ = ["SweepResult", "run_sweep", "execute_run"]


class _RunBridge(Callback):
    """Per-run observer bridging generation records out of :func:`execute_run`.

    ``progress`` receives each generation's ``to_dict()`` payload;
    ``cancel`` is polled after every generation and a truthy answer
    requests the loop's cooperative early stop (the run returns with
    ``reason="callback_stop"``).
    """

    def __init__(self, progress=None, cancel=None) -> None:
        self.progress = progress
        self.cancel = cancel

    def on_generation_end(self, engine, record) -> bool:
        if self.progress is not None:
            self.progress(record.to_dict())
        return bool(self.cancel is not None and self.cancel())


def execute_run(payload: dict, *, progress=None, cancel=None) -> dict:
    """Execute one sweep run from a pure JSON payload; return a record dict.

    This is the sweep worker function — importable at module top level so
    process pools can pickle it by reference, and side-effect free outside
    its own process: problem resolution, the optimizer, its ledger and the
    reference MC all live and die locally.  Streams derive from
    ``(spec.seed, run_index)`` only, which is the whole determinism story.

    ``progress`` (a callable taking one generation-record dict) and
    ``cancel`` (a zero-argument callable; truthy requests a cooperative
    early stop) attach a :class:`_RunBridge` to the run.  Observers never
    change the seeded result; a triggered ``cancel`` ends the run early
    with ``reason="callback_stop"``, which the sweep layer treats as a
    partial record and refuses to persist.
    """
    # Imported here so a forked worker reuses the parent's modules and a
    # spawned one imports cleanly without circular-import ordering issues.
    from repro.api.driver import _cache_namespace, optimize, resolve_problem
    from repro.api.spec import RunSpec
    from repro.yieldsim import reference_yield

    spec = RunSpec.from_dict(payload["spec"])
    # A per-run cache is created (and its spill loaded) inside this worker;
    # with a shared spill_path the sweep's runs warm-start each other.  The
    # problem is resolved before optimize() sees it, so the key namespace
    # is derived from the spec's registry identity here.
    cache_params = None
    if spec.cache:
        cache_params = dict(spec.cache_params)
        cache_params.setdefault(
            "namespace", _cache_namespace(spec.problem, spec.problem_params)
        )
    run_index = int(payload["run_index"])
    optimizer_rng, reference_rng = run_streams(spec.seed, run_index)
    ledger = SimulationLedger()
    # Resolve once and share between the optimizer and the reference MC —
    # circuit-problem factories (MNA/topology setup) are not free.
    problem = resolve_problem(spec.problem, spec.problem_params)
    bridge = (
        [_RunBridge(progress, cancel)]
        if progress is not None or cancel is not None
        else None
    )
    started = time.perf_counter()
    result = optimize(
        problem,
        method=spec.method,
        rng=optimizer_rng,
        ledger=ledger,
        callbacks=bridge,
        engine=spec.engine,
        engine_params=spec.engine_params or None,
        cache=spec.cache,
        cache_params=cache_params,
        **spec.overrides,
    )
    elapsed = time.perf_counter() - started
    reference = reference_yield(
        problem,
        result.best_x,
        n=int(payload["reference_n"]),
        rng=reference_rng,
        ledger=ledger,
    )
    record = RunRecord(
        method=payload["method_label"],
        problem=payload["problem_label"],
        run_index=run_index,
        reported_yield=result.best_yield,
        reference_yield=reference.value,
        n_simulations=result.n_simulations,
        generations=result.generations,
        reason=result.reason,
        wall_seconds=elapsed,
        result=result.to_dict(),
    )
    return record.to_dict()


def _payload(run: SweepRun) -> dict:
    return {
        "spec": run.spec.to_dict(),
        "run_index": run.run_index,
        "reference_n": run.reference_n,
        "method_label": run.method_label,
        "problem_label": run.problem_label,
        "key": run.key,
    }


#: Worker-side bridge state, set once per pool worker by the initializer.
_WORKER_PROGRESS_QUEUE = None
_WORKER_CANCEL_EVENT = None


def _init_sweep_worker(progress_queue, cancel_event) -> None:
    """Pool initializer: receive the parent's queue/event by inheritance.

    Multiprocessing queues and events cannot travel through a pool's task
    pickles — only through process-construction arguments — so the bridge
    plumbing rides the initializer and lands in module globals.
    """
    global _WORKER_PROGRESS_QUEUE, _WORKER_CANCEL_EVENT
    _WORKER_PROGRESS_QUEUE = progress_queue
    _WORKER_CANCEL_EVENT = cancel_event


def _execute_run_pooled(payload: dict) -> dict:
    """Pool task: :func:`execute_run` wired to the inherited bridge state."""
    queue = _WORKER_PROGRESS_QUEUE
    event = _WORKER_CANCEL_EVENT
    if queue is not None:
        key = payload["key"]

        def progress(record: dict, _key=key, _queue=queue) -> None:
            _queue.put((_key, record))

    else:
        progress = None
    return execute_run(
        payload,
        progress=progress,
        cancel=event.is_set if event is not None else None,
    )


@dataclass
class SweepResult:
    """Everything a finished sweep produced, grid-ordered.

    ``records`` follows the spec's expansion order (problem-major, then
    method, then run index) regardless of the execution order workers
    finished in — which is why summaries and tables are bit-identical for
    any worker count.
    """

    spec: SweepSpec
    records: list[RunRecord]
    #: Runs executed in this invocation vs replayed from a resumed store.
    executed: int = 0
    reused: int = 0
    #: The sweep was cancelled before completing; ``records`` holds only
    #: the runs that finished (partial, early-stopped runs are discarded —
    #: never persisted — so a resume re-executes them in full).
    cancelled: bool = False
    #: Wall-clock of this invocation and the worker count it used.
    elapsed_seconds: float = 0.0
    workers: int = 1
    #: Store path when the sweep persisted its records.
    store_path: str | None = None

    # -- aggregation -------------------------------------------------------
    def summaries(self, problem: str | None = None) -> list[MethodSummary]:
        """Per-method summaries, in spec order.

        ``problem`` selects one grid row by label; the default is valid
        only for single-problem sweeps (ambiguous otherwise).
        """
        if problem is None:
            if len(self.spec.problems) != 1:
                raise ValueError(
                    "multi-problem sweep: pass problem=<label> to summaries()"
                )
            problem = self.spec.problems[0].label
        labels = [p.label for p in self.spec.problems]
        if problem not in labels:
            raise KeyError(
                f"unknown problem label {problem!r}; sweep has {labels}"
            )
        out = []
        for method in self.spec.methods:
            records = [
                r
                for r in self.records
                if r.problem == problem and r.method == method.label
            ]
            out.append(
                MethodSummary(method=method.label, records=records, problem=problem)
            )
        return out

    def summary(self, method: str, problem: str | None = None) -> MethodSummary:
        """One method's summary by label."""
        for candidate in self.summaries(problem):
            if candidate.method == method:
                return candidate
        raise KeyError(method)

    def tables(self) -> str:
        """Paper-style deviation + simulation tables for every problem."""
        from repro.experiments.tables import (
            format_deviation_table,
            format_simulation_table,
        )

        parts = []
        for problem in self.spec.problems:
            summaries = self.summaries(problem.label)
            parts.append(
                format_deviation_table(
                    f"Deviation of the yield results from the "
                    f"{self.spec.reference_n}-sample MC reference "
                    f"({problem.label})",
                    summaries,
                )
            )
            parts.append(
                format_simulation_table(
                    f"Total number of simulations ({problem.label})", summaries
                )
            )
        return "\n\n".join(parts)


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int | None = None,
    store: "ResultStore | str | None" = None,
    resume: bool = False,
    callbacks: "Callback | list[Callback] | None" = None,
    cancel=None,
) -> SweepResult:
    """Execute a sweep and aggregate its records.

    Parameters
    ----------
    spec:
        The grid to run.
    workers:
        Process count for sharding whole runs; ``None`` falls back to
        ``spec.workers``, then 1 (serial, in-process).  Any count yields
        bit-identical records.
    store:
        A :class:`ResultStore`, a JSONL path, or ``None`` (in-memory only).
        Paths are opened against ``spec`` — fresh files get a header,
        existing ones require ``resume=True`` and a matching sweep hash.
        A ready-made store must belong to this spec (same hash) and still
        be open for appends; the caller keeps ownership of its lifetime.
    resume:
        Replay completed runs from the store and execute only the missing
        ones.
    callbacks:
        Observers; the sweep fires ``on_sweep_start`` /
        ``on_sweep_run_end`` / ``on_sweep_end``
        (see :class:`repro.core.callbacks.Callback`).  When any of them
        overrides ``on_sweep_run_progress``, per-generation records are
        additionally bridged out of every run — including runs executing
        in pool workers, whose records travel a multiprocessing queue.
    cancel:
        Cooperative cancellation flag — any object with a
        ``threading.Event``-style ``is_set()`` method.  Once set, no new
        run starts, queued pool work is cancelled, and in-flight runs are
        asked to early-stop after their current generation (via the
        ``on_generation_end`` return).  Early-stopped partial records are
        *discarded*, never persisted, so resuming the store re-executes
        them in full; the returned result has ``cancelled=True``.
    """
    workers = workers if workers is not None else (spec.workers or 1)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    callbacks = CallbackList(callbacks)

    # Resolve every registry name before touching the store: a typo'd
    # problem/method must fail cleanly, not leave a header-only store
    # behind that blocks the corrected rerun (FileExistsError without
    # --resume, hash mismatch with it).
    from repro.api.registries import ENGINES, METHODS, PROBLEMS

    for method in spec.methods:
        METHODS.get(method.method)
    for problem in spec.problems:
        PROBLEMS.get(problem.problem)
    if spec.engine is not None:
        ENGINES.get(spec.engine)

    if workers > 1 and (spec.engine or "").lower() in ("process", "auto"):
        warnings.warn(
            f"sweep sharding (workers={workers}) with the per-run "
            f"engine={spec.engine!r} nests worker pools inside every sweep "
            "worker and oversubscribes the CPUs; prefer the default serial "
            "engine inside sharded sweeps",
            RuntimeWarning,
            stacklevel=2,
        )

    owns_store = isinstance(store, (str, bytes)) or hasattr(store, "__fspath__")
    if owns_store:
        store = ResultStore.open(store, spec, resume=resume)
    elif store is not None:
        # A caller-supplied store must actually belong to this sweep —
        # run keys alone (problem|method|index) would happily replay
        # records produced at a different scale or seed.
        if store.sweep_hash != spec.sweep_hash():
            raise StoreMismatchError(
                f"store {store.path!r} belongs to sweep "
                f"{store.sweep_hash!r}, not {spec.sweep_hash()!r}; open it "
                "with ResultStore.open(path, spec, resume=True) instead"
            )
        if store.completed and not resume:
            # Same contract as the path form: replaying completed runs is
            # an explicit opt-in, never a silent skip.
            raise ValueError(
                f"store {store.path!r} already holds {len(store.completed)} "
                "completed run(s); pass resume=True to replay them"
            )

    runs = spec.expand()
    completed: dict[str, RunRecord] = (
        dict(store.completed) if store is not None else {}
    )
    pending = [run for run in runs if run.key not in completed]
    if pending and store is not None and not store.writable:
        # Fail before any work, not on the first append (e.g. a store from
        # ResultStore.load, which is read-only by design).
        raise RuntimeError(
            f"store {store.path!r} is not open for appends; use "
            "ResultStore.open(path, spec, resume=True)"
        )
    started = time.perf_counter()

    done = len(runs) - len(pending)
    stream_progress = wants_run_progress(callbacks)
    cancelled = lambda: cancel is not None and cancel.is_set()  # noqa: E731

    def complete(run: SweepRun, record: RunRecord) -> None:
        nonlocal done
        completed[run.key] = record
        if store is not None:
            store.append(run, record)
        done += 1
        callbacks.on_sweep_run_end(spec, run, record, done=done, total=len(runs))

    def finish(run: SweepRun, record: RunRecord) -> None:
        # A record produced after cancellation that early-stopped through
        # the bridge is partial: persisting it would make the store replay
        # a truncated run on resume.  Discard it; runs that genuinely
        # finished (any other reason) still count.
        if cancelled() and record.reason == "callback_stop":
            return
        complete(run, record)

    try:
        callbacks.on_sweep_start(spec, total=len(runs), pending=len(pending))
        if workers == 1 or len(pending) <= 1:
            for run in pending:
                if cancelled():
                    break
                if stream_progress:

                    def progress(record: dict, _run=run) -> None:
                        callbacks.on_sweep_run_progress(spec, _run, record)

                else:
                    progress = None
                finish(
                    run,
                    RunRecord.from_dict(
                        execute_run(
                            _payload(run),
                            progress=progress,
                            cancel=(cancel.is_set if cancel is not None else None),
                        )
                    ),
                )
        else:
            runs_by_key = {run.key: run for run in pending}
            context = pool_mp_context()
            progress_queue = context.Queue() if stream_progress else None
            cancel_event = context.Event() if cancel is not None else None
            pool_kwargs = {}
            if progress_queue is not None or cancel_event is not None:
                pool_kwargs = {
                    "initializer": _init_sweep_worker,
                    "initargs": (progress_queue, cancel_event),
                }
            task = (
                _execute_run_pooled
                if pool_kwargs
                else execute_run
            )

            drain_thread = None
            if progress_queue is not None:

                def drain() -> None:
                    while True:
                        item = progress_queue.get()
                        if item is None:
                            return
                        key, record = item
                        run = runs_by_key.get(key)
                        if run is not None:
                            callbacks.on_sweep_run_progress(spec, run, record)

                drain_thread = threading.Thread(
                    target=drain, name="sweep-progress-drain", daemon=True
                )
                drain_thread.start()

            try:
                with make_process_pool(
                    min(workers, len(pending)), **pool_kwargs
                ) as pool:
                    futures = {
                        pool.submit(task, _payload(run)): run for run in pending
                    }
                    remaining = set(futures)
                    failure: BaseException | None = None
                    cancel_signalled = False
                    while remaining:
                        finished, remaining = wait(
                            remaining,
                            timeout=(0.1 if cancel is not None else None),
                            return_when=FIRST_COMPLETED,
                        )
                        if (
                            not cancel_signalled
                            and cancelled()
                        ):
                            # Propagate the cancel into the workers (their
                            # in-flight runs early-stop after the current
                            # generation) and drop everything still queued.
                            cancel_signalled = True
                            if cancel_event is not None:
                                cancel_event.set()
                            pool.shutdown(wait=False, cancel_futures=True)
                        for future in finished:
                            try:
                                record = RunRecord.from_dict(future.result())
                            except CancelledError:
                                continue
                            except BaseException as error:
                                # Keep draining: runs already in flight
                                # still finish and persist, so a resume
                                # after the failure re-executes only what
                                # truly never ran.  Queued-but-unstarted
                                # runs are cancelled rather than computed
                                # into a store that is about to report
                                # failure.
                                if failure is None:
                                    failure = error
                                    pool.shutdown(wait=False, cancel_futures=True)
                                continue
                            finish(futures[future], record)
                    if failure is not None:
                        raise failure
            finally:
                if progress_queue is not None:
                    progress_queue.put(None)
                    drain_thread.join(timeout=5.0)
    finally:
        if owns_store:
            store.close()

    was_cancelled = cancelled()
    result = SweepResult(
        spec=spec,
        records=[completed[run.key] for run in runs if run.key in completed],
        executed=done - (len(runs) - len(pending)),
        reused=len(runs) - len(pending),
        cancelled=was_cancelled,
        elapsed_seconds=time.perf_counter() - started,
        workers=workers,
        store_path=store.path if store is not None else None,
    )
    callbacks.on_sweep_end(spec, result)
    return result
