"""Declarative description of a seed sweep.

A :class:`SweepSpec` is the multi-run analogue of
:class:`~repro.api.spec.RunSpec`: a methods × problems × seeds grid plus
the protocol scale (reference-MC size, generation cap) and the execution
knobs (engine, worker count), as plain JSON-compatible data.
:meth:`SweepSpec.expand` turns the grid into concrete per-run
:class:`RunSpec`\\ s; the per-run random streams are *not* stored — they
derive deterministically from ``(base_seed, run_index)`` via
:func:`repro.rng.run_streams`, which is what lets a process-sharded sweep
reproduce the serial loop bit for bit.

Execution knobs (``engine``/``engine_params``/``cache``/``cache_params``/
``workers``) travel with the spec for convenience but are excluded from
:meth:`SweepSpec.sweep_hash`: they change wall-clock, never results, so a
store written by a 4-worker sweep resumes cleanly under 1 worker and vice
versa.  (Caches only qualify because sweeps refuse the accounting-changing
``count_hits=False`` mode.)
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.api.errors import SpecError
from repro.api.spec import RunSpec, _coerce_dict, _coerce_str

__all__ = ["MethodSpec", "ProblemSpec", "SweepRun", "SweepSpec"]


def _coerce_opt_int(data: dict, key: str, default=None):
    """Optional-integer sweep field; ``None`` stays ``None``."""
    value = data.get(key, default)
    if value is None:
        # JSON null means "unset": the field's default applies.
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(
            f"expected an integer, got {value!r}", field=key, spec="SweepSpec"
        )
    return int(value)


@dataclass(frozen=True)
class MethodSpec:
    """One method column of the grid: registry name + config overrides.

    ``label`` is the display name used in tables and store keys (the
    paper's tables distinguish "300 simulations (AS+LHS)" from "500
    simulations (AS+LHS)" — same registry method, different overrides);
    it defaults to the registry name.
    """

    method: str
    label: str | None = None
    overrides: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.method, str) or not self.method:
            raise ValueError(f"method must be a registry name, got {self.method!r}")
        if self.label is None:
            object.__setattr__(self, "label", self.method)
        if "|" in self.label:
            # '|' is the store-key separator; allowing it would let two
            # distinct grid cells collide into one key.
            raise ValueError(f"labels must not contain '|': {self.label!r}")
        object.__setattr__(self, "overrides", copy.deepcopy(self.overrides))

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "method": self.method,
            "label": self.label,
            "overrides": copy.deepcopy(self.overrides),
        }

    @classmethod
    def from_dict(cls, data: "dict | str") -> "MethodSpec":
        """Inverse of :meth:`to_dict`; a bare string means no overrides."""
        if isinstance(data, str):
            return cls(method=data)
        if "method" not in data:
            raise SpecError(
                "method entry is missing its 'method' registry name",
                field="methods",
                spec="SweepSpec",
            )
        return cls(
            method=data["method"],
            label=data.get("label"),
            overrides=dict(data.get("overrides") or {}),
        )


@dataclass(frozen=True)
class ProblemSpec:
    """One problem row of the grid: registry name + factory parameters."""

    problem: str
    label: str | None = None
    problem_params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.problem, str) or not self.problem:
            raise ValueError(f"problem must be a registry name, got {self.problem!r}")
        if self.label is None:
            object.__setattr__(self, "label", self.problem)
        if "|" in self.label:
            # '|' is the store-key separator; see MethodSpec.
            raise ValueError(f"labels must not contain '|': {self.label!r}")
        object.__setattr__(
            self, "problem_params", copy.deepcopy(self.problem_params)
        )

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "problem": self.problem,
            "label": self.label,
            "problem_params": copy.deepcopy(self.problem_params),
        }

    @classmethod
    def from_dict(cls, data: "dict | str") -> "ProblemSpec":
        """Inverse of :meth:`to_dict`; a bare string means default params."""
        if isinstance(data, str):
            return cls(problem=data)
        if "problem" not in data:
            raise SpecError(
                "problem entry is missing its 'problem' registry name",
                field="problems",
                spec="SweepSpec",
            )
        return cls(
            problem=data["problem"],
            label=data.get("label"),
            problem_params=dict(data.get("problem_params") or {}),
        )


@dataclass(frozen=True)
class SweepRun:
    """One cell-run of the expanded grid.

    ``spec.seed`` holds the sweep's ``base_seed``; the actual streams of
    the run are ``repro.rng.run_streams(spec.seed, run_index)``, so the
    pair ``(spec, run_index)`` fully reproduces the run anywhere.
    """

    ordinal: int
    problem_label: str
    method_label: str
    run_index: int
    reference_n: int
    spec: RunSpec

    @property
    def key(self) -> str:
        """Store key: unique and stable across expansions of the same spec.

        Uniqueness holds because labels cannot contain the ``|`` separator
        (enforced by Method/ProblemSpec validation).
        """
        return f"{self.problem_label}|{self.method_label}|{self.run_index}"


@dataclass(frozen=True)
class SweepSpec:
    """A methods × problems × seeds grid, JSON-round-trippable.

    Parameters
    ----------
    methods / problems:
        The grid axes (at least one entry each).
    runs:
        Independent replications per (method, problem) cell; run ``i``
        always sees the same random streams regardless of execution order
        or worker count.
    base_seed:
        Root seed all per-run streams derive from.
    reference_n:
        Sample count of the high-N reference MC every returned design is
        scored against (charged to the excluded ``reference`` ledger
        category).
    max_generations:
        Sweep-wide generation cap merged into every method's overrides
        (a method's own ``max_generations`` override wins); ``None``
        leaves the method defaults.
    engine / engine_params:
        Execution backend forwarded to every per-run :class:`RunSpec`
        (seed-equivalent — excluded from :meth:`sweep_hash`).
    cache / cache_params:
        Warm-start evaluation cache forwarded to every per-run
        :class:`RunSpec`.  With a ``spill_path`` cache parameter the runs
        of the sweep share one warm cache file (best-effort under
        concurrent workers).  Sweeps require the default ledger-faithful
        accounting (``count_hits=False`` is refused), which is what makes
        the cache another execution knob: records stay byte-identical to
        a cache-off sweep, so these fields are excluded from
        :meth:`sweep_hash` too.
    workers:
        Default process count for the sweep executor (1 = serial);
        ``None`` lets the executor decide.  Excluded from
        :meth:`sweep_hash`.
    tag:
        Free-form label carried into reports and the store header.
    """

    methods: tuple[MethodSpec, ...]
    problems: tuple[ProblemSpec, ...]
    runs: int = 3
    base_seed: int = 20100308
    reference_n: int = 20_000
    max_generations: int | None = None
    engine: str | None = None
    engine_params: dict = field(default_factory=dict)
    cache: str | None = None
    cache_params: dict = field(default_factory=dict)
    workers: int | None = None
    tag: str | None = None

    def __post_init__(self) -> None:
        methods = tuple(
            m if isinstance(m, MethodSpec) else MethodSpec.from_dict(m)
            for m in self.methods
        )
        problems = tuple(
            p if isinstance(p, ProblemSpec) else ProblemSpec.from_dict(p)
            for p in self.problems
        )
        object.__setattr__(self, "methods", methods)
        object.__setattr__(self, "problems", problems)
        object.__setattr__(self, "engine_params", copy.deepcopy(self.engine_params))
        object.__setattr__(self, "cache_params", copy.deepcopy(self.cache_params))
        if not methods:
            raise ValueError("a sweep needs at least one method")
        if not problems:
            raise ValueError("a sweep needs at least one problem")
        if self.runs < 1:
            raise ValueError(f"runs must be >= 1, got {self.runs}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.engine_params and self.engine is None:
            raise ValueError("engine_params require an engine name")
        if self.cache_params and self.cache is None:
            raise ValueError("cache_params require a cache name")
        if self.cache is not None and not self.cache_params.get("count_hits", True):
            # Free-hit accounting changes the reported simulation totals,
            # which would make the sweep's records non-comparable with the
            # paper protocol *and* with stores written cache-off — exactly
            # what sweep_hash interchangeability promises.  Refused here,
            # loudly, rather than silently producing skewed tables.
            raise ValueError(
                "sweeps require ledger-faithful cache accounting; "
                "count_hits=False would change the recorded simulation "
                "totals (use a plain RunSpec for free-hit experiments)"
            )
        seen_m = [m.label for m in methods]
        if len(set(seen_m)) != len(seen_m):
            raise ValueError(f"duplicate method labels in sweep: {seen_m}")
        seen_p = [p.label for p in problems]
        if len(set(seen_p)) != len(seen_p):
            raise ValueError(f"duplicate problem labels in sweep: {seen_p}")

    # -- derivation --------------------------------------------------------
    def with_workers(self, workers: int | None) -> "SweepSpec":
        """Copy with a different default worker count (same results)."""
        return replace(self, workers=workers)

    def expand(self) -> list[SweepRun]:
        """The grid as concrete per-run items, in deterministic order.

        Order is problem-major, then method, then run index — the order
        the serial executor works through; sharded executors may finish
        runs in any order, but every run's streams depend only on its own
        ``run_index``, so order never leaks into results.
        """
        items: list[SweepRun] = []
        ordinal = 0
        for problem in self.problems:
            for method in self.methods:
                overrides = dict(method.overrides)
                if (
                    self.max_generations is not None
                    and "max_generations" not in overrides
                ):
                    overrides["max_generations"] = self.max_generations
                spec = RunSpec(
                    problem=problem.problem,
                    method=method.method,
                    seed=self.base_seed,
                    problem_params=problem.problem_params,
                    overrides=overrides,
                    engine=self.engine,
                    engine_params=self.engine_params,
                    cache=self.cache,
                    cache_params=self.cache_params,
                    tag=self.tag,
                )
                for run_index in range(self.runs):
                    items.append(
                        SweepRun(
                            ordinal=ordinal,
                            problem_label=problem.label,
                            method_label=method.label,
                            run_index=run_index,
                            reference_n=self.reference_n,
                            spec=spec,
                        )
                    )
                    ordinal += 1
        return items

    @property
    def total_runs(self) -> int:
        """Grid size: problems × methods × runs."""
        return len(self.problems) * len(self.methods) * self.runs

    # -- identity ----------------------------------------------------------
    def sweep_hash(self) -> str:
        """Hash of the result-determining fields (store resume validation).

        Execution knobs (``engine``, ``engine_params``, ``workers``) and
        the ``tag`` are excluded: two sweeps that differ only there produce
        byte-identical records, so their stores are interchangeable.
        """
        payload = {
            "methods": [m.to_dict() for m in self.methods],
            "problems": [p.to_dict() for p in self.problems],
            "runs": self.runs,
            "base_seed": self.base_seed,
            "reference_n": self.reference_n,
            "max_generations": self.max_generations,
        }
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "methods": [m.to_dict() for m in self.methods],
            "problems": [p.to_dict() for p in self.problems],
            "runs": self.runs,
            "base_seed": self.base_seed,
            "reference_n": self.reference_n,
            "max_generations": self.max_generations,
            "engine": self.engine,
            "engine_params": copy.deepcopy(self.engine_params),
            "cache": self.cache,
            "cache_params": copy.deepcopy(self.cache_params),
            "workers": self.workers,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected.

        Method/problem entries may be bare registry-name strings.
        """
        known = {
            "methods",
            "problems",
            "runs",
            "base_seed",
            "reference_n",
            "max_generations",
            "engine",
            "engine_params",
            "cache",
            "cache_params",
            "workers",
            "tag",
        }
        if not isinstance(data, dict):
            raise SpecError(
                f"expected a JSON object, got {type(data).__name__}",
                spec="SweepSpec",
            )
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown SweepSpec keys: {sorted(unknown)}; expected a "
                f"subset of {sorted(known)}",
                field=sorted(unknown)[0],
                spec="SweepSpec",
            )
        for axis, entry_cls in (("methods", MethodSpec), ("problems", ProblemSpec)):
            if not isinstance(data.get(axis, ()), (list, tuple)):
                raise SpecError(
                    f"expected a list, got {data[axis]!r}",
                    field=axis,
                    spec="SweepSpec",
                )
            for index, entry in enumerate(data.get(axis, ())):
                if not isinstance(entry, (dict, str)):
                    raise SpecError(
                        "expected a registry-name string or an object, got "
                        f"{entry!r}",
                        field=f"{axis}[{index}]",
                        spec="SweepSpec",
                    )
        tag = data.get("tag")
        if tag is not None and not isinstance(tag, str):
            raise SpecError(
                f"expected a string, got {tag!r}", field="tag", spec="SweepSpec"
            )
        return cls(
            methods=tuple(
                MethodSpec.from_dict(m) for m in data.get("methods", ())
            ),
            problems=tuple(
                ProblemSpec.from_dict(p) for p in data.get("problems", ())
            ),
            runs=_coerce_opt_int(data, "runs", 3),
            base_seed=_coerce_opt_int(data, "base_seed", 20100308),
            reference_n=_coerce_opt_int(data, "reference_n", 20_000),
            max_generations=_coerce_opt_int(data, "max_generations"),
            engine=_coerce_str(data, "engine", "SweepSpec"),
            engine_params=_coerce_dict(data, "engine_params", "SweepSpec"),
            cache=_coerce_str(data, "cache", "SweepSpec"),
            cache_params=_coerce_dict(data, "cache_params", "SweepSpec"),
            workers=_coerce_opt_int(data, "workers"),
            tag=tag,
        )

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from a JSON string."""
        return cls.from_dict(json.loads(text))
