"""Resumable JSONL result store for seed sweeps.

One file per sweep.  The first line is a header carrying the
:meth:`~repro.sweep.spec.SweepSpec.sweep_hash` (and the full spec, for
humans and tooling); every following line is one completed run::

    {"kind": "sweep-header", "version": 1, "sweep_hash": "...", "spec": {...}}
    {"kind": "run", "key": "sphere|MOHECO|0", "record": {...}}

Records append incrementally (flushed per line), so a sweep killed after
``k`` runs leaves ``k`` valid lines behind; reopening the same spec with
``resume=True`` replays those and executes only the missing runs.  The
header hash covers exactly the result-determining fields of the spec —
resuming under a different worker count or engine is fine, resuming a
*different experiment* into the same file is refused loudly.

A torn final line (the process died mid-write) is detected on reopen,
dropped with a warning, and the file is compacted to the surviving valid
lines before appending resumes — so the fragment can neither corrupt the
next record nor haunt future resumes; the run it described simply
re-executes.
"""

from __future__ import annotations

import json
import os
import warnings

from repro.sweep.records import RunRecord
from repro.sweep.spec import SweepRun, SweepSpec

__all__ = ["ResultStore", "StoreMismatchError"]

_HEADER_KIND = "sweep-header"
_RUN_KIND = "run"
_VERSION = 1


class StoreMismatchError(RuntimeError):
    """The store on disk belongs to a different sweep spec."""


class ResultStore:
    """Append-only JSONL store of one sweep's :class:`RunRecord` lines.

    Use :meth:`open` (create-or-resume against a spec) rather than the
    constructor.  The store keeps the file handle open in append mode for
    the executor's incremental writes; it is a context manager.
    """

    def __init__(self, path, sweep_hash: str, spec_dict: dict | None = None) -> None:
        self.path = os.fspath(path)
        self.sweep_hash = sweep_hash
        self.spec_dict = spec_dict
        #: Completed runs by store key, in file order.
        self.completed: dict[str, RunRecord] = {}
        self._handle = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def open(
        cls, path, spec: SweepSpec, resume: bool = False
    ) -> "ResultStore":
        """Create the store for ``spec``, or reopen it to resume.

        A fresh path writes the header and starts empty.  An existing path
        requires ``resume=True`` (protecting finished stores from silent
        clobbering) and a matching sweep hash; its run lines are loaded
        into :attr:`completed`.
        """
        path = os.fspath(path)
        sweep_hash = spec.sweep_hash()
        store = cls(path, sweep_hash, spec.to_dict())
        if os.path.exists(path) and os.path.getsize(path) > 0:
            if not resume:
                raise FileExistsError(
                    f"result store {path!r} already exists; pass resume=True "
                    "(CLI: --resume) to continue it, or choose a fresh path"
                )
            store._load_existing(repair=True)
        else:
            store._write_header()
        store._handle = open(path, "a", encoding="utf-8")
        return store

    def close(self) -> None:
        """Close the append handle; reading stays possible via :meth:`load`."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    @property
    def writable(self) -> bool:
        """Whether :meth:`append` will accept records (open handle)."""
        return self._handle is not None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------
    def _write_header(self) -> None:
        header = {
            "kind": _HEADER_KIND,
            "version": _VERSION,
            "sweep_hash": self.sweep_hash,
            "spec": self.spec_dict,
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def append(self, run: SweepRun, record: RunRecord) -> None:
        """Persist one completed run (flushed immediately)."""
        if self._handle is None:
            raise RuntimeError("store is closed; reopen it with ResultStore.open")
        line = {
            "kind": _RUN_KIND,
            "key": run.key,
            "record": record.to_dict(),
        }
        self._handle.write(json.dumps(line) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.completed[run.key] = record

    # -- reading -----------------------------------------------------------
    def _load_existing(self, repair: bool = False) -> None:
        with open(self.path, encoding="utf-8") as handle:
            raw = handle.read()
        lines = raw.splitlines()
        if not lines:
            raise StoreMismatchError(f"store {self.path!r} has no header line")
        header = self._parse_line(lines[0], line_no=1)
        if header is None or header.get("kind") != _HEADER_KIND:
            raise StoreMismatchError(
                f"store {self.path!r} does not start with a sweep header — "
                "not a sweep result store?"
            )
        if header.get("sweep_hash") != self.sweep_hash:
            raise StoreMismatchError(
                f"store {self.path!r} belongs to sweep "
                f"{header.get('sweep_hash')!r}, not {self.sweep_hash!r}; "
                "the grid/seeds/scale differ — use a fresh store path"
            )
        kept = [lines[0]]
        for line_no, text in enumerate(lines[1:], start=2):
            if not text.strip():
                continue
            entry = self._parse_line(text, line_no=line_no)
            if entry is None:
                continue  # torn tail line: that run re-executes
            kept.append(text)
            if entry.get("kind") != _RUN_KIND:
                continue  # unknown kinds are preserved, not interpreted
            self.completed[entry["key"]] = RunRecord.from_dict(entry["record"])
        if repair and (len(kept) != len(lines) or not raw.endswith("\n")):
            # Compact away torn/blank lines before appends resume: writing
            # after an unterminated fragment would concatenate the next
            # record onto it and corrupt both.  Only the resume/write path
            # repairs — read-only inspection (:meth:`load`) must never
            # touch a file another process may still be appending to.
            self._rewrite(kept)

    def _rewrite(self, lines: list[str]) -> None:
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)

    def _parse_line(self, text: str, line_no: int) -> dict | None:
        try:
            return json.loads(text)
        except json.JSONDecodeError:
            warnings.warn(
                f"{self.path}:{line_no}: dropping torn JSONL line "
                "(interrupted write?); the run will re-execute",
                RuntimeWarning,
                stacklevel=3,
            )
            return None

    @classmethod
    def load(cls, path) -> "ResultStore":
        """Read a store without a spec (inspection/aggregation tooling).

        Strictly read-only: no hash validation (the header's own hash is
        trusted), no torn-line repair (another process may be mid-append),
        and the returned store is not :attr:`writable`.
        """
        path = os.fspath(path)
        with open(path, encoding="utf-8") as handle:
            first = handle.readline()
        header = json.loads(first)
        if header.get("kind") != _HEADER_KIND:
            raise StoreMismatchError(f"{path!r} is not a sweep result store")
        store = cls(path, header.get("sweep_hash", ""), header.get("spec"))
        store._load_existing()
        return store

    def __len__(self) -> int:
        return len(self.completed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore(path={self.path!r}, sweep_hash={self.sweep_hash!r}, "
            f"completed={len(self.completed)})"
        )
