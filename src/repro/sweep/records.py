"""Per-run records and per-method aggregation of a seed sweep.

The paper's evaluation protocol is replicated runs — "10 runs with
independent random numbers have been performed for all experiments" —
aggregated into best / worst / average / variance tables.  A
:class:`RunRecord` is one such run scored against its high-N reference MC;
a :class:`MethodSummary` is all runs of one method on one problem.

Both types are JSON-round-trippable: records are what the resumable
:class:`~repro.sweep.store.ResultStore` persists line by line, and what
process-pool sweep workers ship back to the parent.  The optimizer output
travels as the plain :meth:`~repro.core.moheco.MOHECOResult.to_dict`
payload, never as the live object — a paper-scale sweep would otherwise
retain every run's full history/ledger graph in memory, and live results
don't pickle cheaply across worker boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RunRecord", "MethodSummary"]


@dataclass
class RunRecord:
    """One optimization run, scored against the reference MC."""

    method: str
    run_index: int
    reported_yield: float
    reference_yield: float
    n_simulations: int
    generations: int
    reason: str
    wall_seconds: float
    #: The run's :meth:`MOHECOResult.to_dict` payload (plain JSON data, not
    #: the live object — see the module docstring), or ``None`` when the
    #: producer dropped it.
    result: dict | None = field(repr=False, default=None)
    #: Problem label of the sweep cell this run belongs to ("" for records
    #: produced outside a sweep grid, e.g. the legacy ``replicate_method``).
    problem: str = ""

    @property
    def deviation(self) -> float:
        """|reported - reference| — the quantity of Tables 1 and 3."""
        return abs(self.reported_yield - self.reference_yield)

    @property
    def cache_stats(self) -> dict | None:
        """Warm-start cache statistics of the run, from the result payload.

        ``None`` when no cache was attached (or the producer dropped the
        result).  Observational, like ``wall_seconds``: with a spill file
        shared across sweep workers, hit counts depend on scheduling, so
        the stats are excluded from :meth:`identity_dict`.
        """
        if not isinstance(self.result, dict):
            return None
        return self.result.get("cache_stats")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (one ResultStore line's payload)."""
        return {
            "method": self.method,
            "problem": self.problem,
            "run_index": int(self.run_index),
            "reported_yield": float(self.reported_yield),
            "reference_yield": float(self.reference_yield),
            "n_simulations": int(self.n_simulations),
            "generations": int(self.generations),
            "reason": str(self.reason),
            "wall_seconds": float(self.wall_seconds),
            "result": self.result,
        }

    def identity_dict(self) -> dict:
        """:meth:`to_dict` minus the wall-clock fields.

        This is the record's *result identity* — what must be byte-equal
        between a serial and a sharded execution of the same run (timing
        legitimately differs).  The equivalence tests and benchmarks
        compare these.
        """
        data = self.to_dict()
        data.pop("wall_seconds")
        if isinstance(data.get("result"), dict):
            result = dict(data["result"])
            result.pop("elapsed_seconds", None)
            result.pop("cache_stats", None)
            # Timing-derived, like the two above: the auto engine's pilot
            # measures wall-clock, so its commit record varies run to run.
            result.pop("engine_decision", None)
            if isinstance(result.get("ledger"), dict):
                # The ledger's ``cached`` column says how much was
                # replayed, not what was computed — warm vs cold runs
                # legitimately differ there.
                result["ledger"] = dict(result["ledger"])
                result["ledger"].pop("cached", None)
            data["result"] = result
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            method=str(data["method"]),
            run_index=int(data["run_index"]),
            reported_yield=float(data["reported_yield"]),
            reference_yield=float(data["reference_yield"]),
            n_simulations=int(data["n_simulations"]),
            generations=int(data["generations"]),
            reason=str(data["reason"]),
            wall_seconds=float(data["wall_seconds"]),
            result=data.get("result"),
            problem=str(data.get("problem", "")),
        )


@dataclass
class MethodSummary:
    """All runs of one method."""

    method: str
    records: list[RunRecord]
    #: Problem label when the summary comes from a sweep grid cell.
    problem: str = ""

    def deviations(self) -> np.ndarray:
        """Per-run deviations."""
        return np.array([r.deviation for r in self.records])

    def simulations(self) -> np.ndarray:
        """Per-run total simulation counts."""
        return np.array([r.n_simulations for r in self.records], dtype=float)
