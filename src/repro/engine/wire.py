"""Chunk wire format of the remote streaming engine (stdlib + NumPy only).

One refinement round's miss blocks are streamed to remote simulator
workers as *chunks* — contiguous runs of pending blocks, exactly the unit
:class:`~repro.engine.process.ProcessPoolEngine` ships to its pool, but
serialized as JSON so they can cross a host boundary over plain HTTP.

Bit-exactness is the whole contract: array payloads travel as base64 of
their raw little-endian ``float64`` bytes (never a decimal rendering), so
a row simulated on a remote worker is byte-for-byte the row the parent
would have produced locally, and :class:`~repro.engine.remote.RemoteEngine`
results stay identical to :class:`~repro.engine.serial.SerialEngine` for
any worker set, chunk size, or failure/re-dispatch history.

The problem itself crosses the wire *once*, not per chunk: a
:func:`encode_problem` payload (pickle, addressed by a content token)
installs it on the worker, and every subsequent chunk references the
token — mirroring the process pool's ``_init_worker`` pattern.  Pickle
implies the same trust model as ``multiprocessing``: only run ``repro
worker`` for parents you trust.
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from dataclasses import dataclass

import numpy as np

from repro.yieldsim.estimator import PendingRefinement

__all__ = [
    "encode_array",
    "decode_array",
    "encode_problem",
    "decode_problem",
    "ChunkRequest",
]

#: Canonical on-wire dtype: every design vector and sample matrix in the
#: engine layer is float64 already; pinning it (little-endian) keeps the
#: format byte-stable across hosts.
_WIRE_DTYPE = np.dtype("<f8")


def encode_array(array: np.ndarray) -> dict:
    """A float64 array as a JSON-safe ``{shape, data}`` payload.

    The bytes are the array's own IEEE-754 representation — decoding
    reproduces it exactly, which is what the engine's bit-identity
    guarantee rests on.
    """
    array = np.ascontiguousarray(np.asarray(array, dtype=_WIRE_DTYPE))
    return {
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def decode_array(payload: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`; raises ``ValueError`` on bad shape."""
    shape = tuple(int(n) for n in payload["shape"])
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=_WIRE_DTYPE)
    expected = int(np.prod(shape)) if shape else 1
    if array.size != expected:
        raise ValueError(
            f"array payload holds {array.size} values, shape {shape} "
            f"needs {expected}"
        )
    # frombuffer views are read-only; copy so callers own mutable data.
    return array.reshape(shape).astype(np.float64, copy=True)


def encode_problem(problem) -> dict:
    """The one-time problem-install payload: pickle + content token.

    The token is a hash of the pickle bytes, so two parents shipping the
    identical problem configuration share one warm worker-side instance,
    and any change to the problem re-installs under a fresh token.
    """
    blob = pickle.dumps(problem)
    token = hashlib.blake2b(blob, digest_size=16).hexdigest()
    return {"token": token, "pickle": base64.b64encode(blob).decode("ascii")}


def decode_problem(payload: dict):
    """Inverse of :func:`encode_problem`; returns ``(token, problem)``."""
    blob = base64.b64decode(payload["pickle"])
    token = hashlib.blake2b(blob, digest_size=16).hexdigest()
    declared = payload.get("token")
    if declared is not None and declared != token:
        raise ValueError(
            f"problem payload token mismatch: declared {declared}, "
            f"content hashes to {token}"
        )
    return token, pickle.loads(blob)


class _DesignShell:
    """Worker-side stand-in for a candidate state: just the design vector."""

    __slots__ = ("x",)

    def __init__(self, x: np.ndarray) -> None:
        self.x = x


@dataclass
class ChunkRequest:
    """One evaluate-this request: a contiguous run of pending blocks.

    ``designs`` holds one row per block, ``samples`` the stacked sample
    rows, and ``blocks`` the ``(design_row, start_row, stop_row)`` extents
    tying them together — the same descriptor layout
    :class:`~repro.engine.process.ShmRound` uses, minus the shared-memory
    indirection.  ``problem_token`` references a problem previously
    installed on the worker via :func:`encode_problem`.
    """

    problem_token: str
    designs: np.ndarray
    samples: np.ndarray
    blocks: list[tuple[int, int, int]]

    @classmethod
    def from_pending(cls, problem_token: str, pending) -> "ChunkRequest":
        """Build the request for a chunk of pending refinement blocks."""
        designs = np.stack(
            [np.asarray(block.state.x, dtype=np.float64) for block in pending]
        )
        samples = np.concatenate(
            [
                np.atleast_2d(np.asarray(block.samples, dtype=np.float64))
                for block in pending
            ]
        )
        blocks, start = [], 0
        for row, block in enumerate(pending):
            stop = start + block.n_samples
            blocks.append((row, start, stop))
            start = stop
        return cls(problem_token, designs, samples, blocks)

    @property
    def n_rows(self) -> int:
        """Sample rows awaiting simulation."""
        return int(self.samples.shape[0])

    def to_pending(self) -> list[PendingRefinement]:
        """Rebuild the worker-side pending blocks (design shells only)."""
        return [
            PendingRefinement(
                _DesignShell(self.designs[row]),
                self.samples[start:stop],
                "remote",
            )
            for row, start, stop in self.blocks
        ]

    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "problem_token": self.problem_token,
            "designs": encode_array(self.designs),
            "samples": encode_array(self.samples),
            "blocks": [list(extent) for extent in self.blocks],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChunkRequest":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` on bad extents."""
        designs = decode_array(data["designs"])
        samples = decode_array(data["samples"])
        blocks = []
        for extent in data["blocks"]:
            row, start, stop = (int(v) for v in extent)
            if not (0 <= row < designs.shape[0]):
                raise ValueError(f"design row {row} outside {designs.shape}")
            if not (0 <= start < stop <= samples.shape[0]):
                raise ValueError(
                    f"block extent [{start}, {stop}) outside the "
                    f"{samples.shape[0]}-row sample matrix"
                )
            blocks.append((row, start, stop))
        return cls(str(data["problem_token"]), designs, samples, blocks)
