"""Content-addressed warm-start cache for fused evaluation rounds.

The paper's whole economy is the *number of circuit simulations*: OCBA
exists to spend as few as possible.  Yet a deployment happily re-simulates
work it has already paid for — re-running a study after a crash, replaying
a sweep cell under a new aggregation, or A/B-ing an execution backend all
recompute sample blocks whose performance rows are already known.  An
:class:`EvaluationCache` memoizes those rows, keyed on the *content* of the
request — a hash over the design vector bytes and the sample-block bytes —
so any evaluation that is bit-for-bit a repeat is served from memory (or
from a JSONL spill file shared across processes) instead of the simulator.

Ledger faithfulness
-------------------
A cache hit is **not** free in paper accounting.  The tables count every
Monte-Carlo sample the method *needed*, not every sample the machine
*computed*; a warm-started run needed exactly as many as a cold one.  Hits
are therefore still charged to the candidate's ledger category by default,
and additionally recorded under the ledger's separate ``cached`` column
(:meth:`repro.ledger.SimulationLedger.record_cached`) — mirroring how
acceptance-sampling screening is reported without distorting the totals.
Opting into ``count_hits=False`` makes hits free (only the ``cached``
column moves), which *changes paper accounting* and is refused by the
sweep layer for that reason.

Keys and correctness
--------------------
Keys cover the cache's ``namespace`` (the API driver fills it with the
resolved problem name + factory parameters), a cheap problem token, and
the bytes/shapes of the design vector and sample block.  Two problems that
share a registry name but were built with different factory parameters
therefore hash apart when resolved through :func:`repro.api.optimize`;
hand-constructed problems fall back to the token alone, so share one cache
(or one spill file) only across runs of the same problem configuration.

Key granularity
---------------
The default ``key="block"`` memoizes whole sample blocks: a lookup hits
only when a block is bit-for-bit a repeat — size included.  ``key="sample"``
hashes each ``(design, sample-row)`` pair individually, so a block that
overlaps a previously simulated block *partially* (different OCBA
allocations, different chunk boundaries on the remote engine) still
replays its known rows and simulates only the genuinely new ones.  Sample
keying trades per-row hashing overhead for strictly higher hit rates; both
modes splice through :class:`CachedRound` and stay bit-identical to an
uncached run.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.registry import Registry
from repro.yieldsim.estimator import PendingRefinement

#: Key granularities understood by :class:`EvaluationCache`.
KEY_MODES = ("block", "sample")

__all__ = [
    "CacheStats",
    "EvaluationCache",
    "LRUEvaluationCache",
    "NullCache",
    "CachedRound",
    "CACHES",
    "KEY_MODES",
    "make_cache",
    "block_key",
    "problem_token",
]


def problem_token(problem) -> str:
    """A cheap identity string separating unrelated problems' keys.

    Problems may expose ``cache_token()`` for an exact identity; the
    fallback (type + report name) cannot see factory parameters, which is
    why the API driver also namespaces driver-created caches with the full
    ``(problem, problem_params)`` pair.
    """
    token = getattr(problem, "cache_token", None)
    if callable(token):
        return str(token())
    return f"{type(problem).__qualname__}:{getattr(problem, 'name', '')}"


def block_key(namespace: str, problem, x: np.ndarray, samples: np.ndarray) -> str:
    """Content hash of one evaluation request: ``H(namespace, problem, x, samples)``."""
    digest = hashlib.blake2b(digest_size=20)
    digest.update(namespace.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(problem_token(problem).encode("utf-8"))
    digest.update(b"\x00")
    x = np.ascontiguousarray(np.asarray(x, dtype=float))
    samples = np.ascontiguousarray(np.asarray(samples, dtype=float))
    digest.update(repr(x.shape).encode("ascii"))
    digest.update(x.tobytes())
    digest.update(repr(samples.shape).encode("ascii"))
    digest.update(samples.tobytes())
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Running counters (hits/misses/evictions) plus residency gauges."""

    #: Blocks served from the cache / sent to the simulator.
    hits: int = 0
    misses: int = 0
    #: Simulation rows replayed from the cache / actually simulated.
    hit_rows: int = 0
    miss_rows: int = 0
    #: Entries dropped to stay within the byte budget.
    evictions: int = 0
    #: Entries replayed from a spill file when the cache opened.  Reported
    #: absolute (like the gauges): loading happens at construction, before
    #: any per-run delta window opens.
    spill_loaded: int = 0
    #: Current residency (maintained by the cache, absolute not cumulative).
    entries: int = 0
    bytes: int = 0

    _COUNTERS = ("hits", "misses", "hit_rows", "miss_rows", "evictions")

    def to_dict(self) -> dict:
        """JSON-compatible snapshot."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rows": self.hit_rows,
            "miss_rows": self.miss_rows,
            "evictions": self.evictions,
            "spill_loaded": self.spill_loaded,
            "entries": self.entries,
            "bytes": self.bytes,
        }

    def delta(self, earlier: dict | None) -> dict:
        """Counters as differences since ``earlier``; gauges stay absolute.

        This is what one run reports when the cache is shared across runs:
        *its* hits and misses, but the cache's current size.
        """
        out = self.to_dict()
        for key in self._COUNTERS:
            out[key] -= (earlier or {}).get(key, 0)
        return out


class EvaluationCache:
    """Base class: key derivation, stats accounting, accounting policy.

    Subclasses implement ``_get(key)`` / ``_put(key, rows)``.  Caches are
    resolved by name through :data:`CACHES` (``RunSpec.cache``,
    ``optimize(cache=...)``, ``repro run --cache``) and attached to an
    execution engine for the duration of a run; one cache instance may
    serve many runs (that is the warm-start point).

    Parameters
    ----------
    count_hits:
        ``True`` (default) keeps paper accounting intact: replayed rows
        are still charged to the candidate's ledger category, and also
        recorded under the ledger's ``cached`` column.  ``False`` makes
        hits free — only the ``cached`` column moves — which changes the
        reported simulation totals.
    namespace:
        Free-form string folded into every key; the API driver sets it to
        the resolved problem name + factory parameters.
    key:
        Key granularity: ``"block"`` (default) memoizes whole sample
        blocks, ``"sample"`` memoizes individual ``(design, sample-row)``
        pairs so partially overlapping blocks replay their known rows.
        With sample keying, hit/miss *counters* count rows, not blocks.
    """

    name = "base"

    def __init__(
        self,
        count_hits: bool = True,
        namespace: str = "",
        key: str = "block",
    ) -> None:
        if key not in KEY_MODES:
            raise ValueError(f"key must be one of {KEY_MODES}, got {key!r}")
        self.count_hits = bool(count_hits)
        self.namespace = str(namespace)
        self.key_mode = key
        self.stats = CacheStats()

    # -- keying ------------------------------------------------------------
    def key(self, problem, x: np.ndarray, samples: np.ndarray) -> str:
        """The content key of one ``(design, sample-block)`` request."""
        return block_key(self.namespace, problem, x, samples)

    # -- lookup ------------------------------------------------------------
    def lookup(self, key: str, n_rows: int) -> np.ndarray | None:
        """The memoized performance rows for ``key``, or ``None`` (counted)."""
        rows = self._get(key)
        if rows is None:
            self.stats.misses += 1
            self.stats.miss_rows += n_rows
            return None
        self.stats.hits += 1
        self.stats.hit_rows += n_rows
        return rows

    def store(self, key: str, rows: np.ndarray) -> None:
        """Memoize freshly simulated performance rows under ``key``."""
        self._put(key, rows)

    # -- storage protocol --------------------------------------------------
    def _get(self, key: str) -> np.ndarray | None:
        raise NotImplementedError

    def _put(self, key: str, rows: np.ndarray) -> None:
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release resources (spill file handles); idempotent."""

    def __enter__(self) -> "EvaluationCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats
        return (
            f"{type(self).__name__}(entries={stats.entries}, "
            f"bytes={stats.bytes}, hits={stats.hits}, misses={stats.misses})"
        )


class LRUEvaluationCache(EvaluationCache):
    """In-memory LRU cache with a byte budget and an optional JSONL spill.

    Parameters
    ----------
    max_bytes:
        Byte budget for the memoized performance rows; least-recently-used
        entries are evicted when a put exceeds it.  ``None`` disables the
        budget (unbounded).
    spill_path:
        Optional JSONL file the cache persists entries to.  Existing
        entries are loaded when the cache opens (this is what lets two
        ``repro run`` invocations — or the runs of a long sweep — share
        one warm cache); fresh entries append one flushed line each, so a
        killed process leaves at most one torn line behind, which the next
        load drops with a warning.  Concurrent appenders are tolerated on
        the same best-effort basis.
    count_hits / namespace / key:
        See :class:`EvaluationCache`.

    Storage operations take an internal lock, so one instance may be
    shared across threads — the ``repro worker`` daemon serves every
    handler thread from a single warm cache.  (The stats counters remain
    plain ints: racing increments can at worst under-count, never corrupt
    the store.)
    """

    name = "lru"

    def __init__(
        self,
        max_bytes: int | None = 256 * 2**20,
        spill_path=None,
        count_hits: bool = True,
        namespace: str = "",
        key: str = "block",
    ) -> None:
        super().__init__(count_hits=count_hits, namespace=namespace, key=key)
        if max_bytes is not None and int(max_bytes) < 0:
            raise ValueError(f"max_bytes must be >= 0 or None, got {max_bytes}")
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.spill_path = None if spill_path is None else os.fspath(spill_path)
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self._spill_handle = None
        self._spill_needs_newline = False
        if self.spill_path is not None:
            self._load_spill()

    # -- storage -----------------------------------------------------------
    def _get(self, key: str) -> np.ndarray | None:
        with self._lock:
            rows = self._entries.get(key)
            if rows is not None:
                self._entries.move_to_end(key)
            return rows

    def _put(self, key: str, rows: np.ndarray) -> None:
        with self._lock:
            if key in self._entries:
                # Duplicate put (e.g. an identical block simulated before
                # the first one's rows landed): refresh recency, keep one
                # copy.
                self._entries.move_to_end(key)
                return
            # Detach from the caller's stacked round matrix: holding a
            # slice view would pin the whole round in memory.
            rows = np.array(rows, dtype=float)
            self._entries[key] = rows
            self._bytes += rows.nbytes
            if self.spill_path is not None:
                self._append_spill(key, rows)
            self._evict()
            self._update_gauges()

    def _evict(self) -> None:
        if self.max_bytes is None:
            return
        while self._bytes > self.max_bytes and self._entries:
            _, rows = self._entries.popitem(last=False)
            self._bytes -= rows.nbytes
            self.stats.evictions += 1

    def _update_gauges(self) -> None:
        self.stats.entries = len(self._entries)
        self.stats.bytes = self._bytes

    # -- spill file --------------------------------------------------------
    def _load_spill(self) -> None:
        """Stream the spill file in, evicting as the budget fills.

        The file is read line by line and eviction interleaves with
        insertion, so peak memory tracks ``max_bytes`` — not the file size,
        which an append-only spill (evicted entries are never compacted
        away; delete the file to reset it) can exceed by a lot on long
        sweeps.
        """
        path = self.spill_path
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return
        loaded = 0
        text = ""
        with open(path, encoding="utf-8") as handle:
            for line_no, text in enumerate(handle, start=1):
                if not text.strip():
                    continue
                entry = self._parse_spill_line(text, line_no)
                if entry is None:
                    continue
                key, rows = entry
                if key in self._entries:
                    continue
                self._entries[key] = rows
                self._bytes += rows.nbytes
                loaded += 1
                self._evict()
        # A process killed mid-append leaves an unterminated tail; appends
        # must not concatenate onto it, so the first fresh line starts with
        # a newline of its own.
        self._spill_needs_newline = bool(text) and not text.endswith("\n")
        self.stats.spill_loaded += loaded
        self._update_gauges()

    def _parse_spill_line(self, text: str, line_no: int):
        try:
            entry = json.loads(text)
            rows = np.frombuffer(
                base64.b64decode(entry["data"]), dtype=np.dtype(entry["dtype"])
            )
            rows = rows.reshape(entry["shape"]).astype(float)
            return str(entry["key"]), rows
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
            warnings.warn(
                f"{self.spill_path}:{line_no}: dropping unreadable cache "
                f"spill line ({error}); that block will re-simulate",
                RuntimeWarning,
                stacklevel=4,
            )
            return None

    def _append_spill(self, key: str, rows: np.ndarray) -> None:
        if self._spill_handle is None:
            self._spill_handle = open(self.spill_path, "a", encoding="utf-8")
        line = json.dumps(
            {
                "key": key,
                "shape": list(rows.shape),
                "dtype": rows.dtype.str,
                "data": base64.b64encode(rows.tobytes()).decode("ascii"),
            }
        )
        prefix = "\n" if self._spill_needs_newline else ""
        self._spill_needs_newline = False
        # One write call per line keeps concurrent appenders from
        # interleaving mid-entry in practice; a torn tail is dropped (with
        # a warning) by the next load either way.
        self._spill_handle.write(prefix + line + "\n")
        self._spill_handle.flush()

    def close(self) -> None:
        if self._spill_handle is not None:
            self._spill_handle.close()
            self._spill_handle = None


class NullCache(EvaluationCache):
    """A cache that never remembers: every lookup misses, puts are dropped.

    Useful to A/B the pure cache-layer overhead (keying + partition) with
    no behaviour change, and as an explicit "caching off" spec value that
    still exercises the cached dispatch path.
    """

    name = "null"

    def _get(self, key: str) -> np.ndarray | None:
        return None

    def _put(self, key: str, rows: np.ndarray) -> None:
        return None


class CachedRound:
    """One refinement round partitioned into cache hits and misses.

    Engines build this from the round's pending blocks, evaluate only
    :attr:`misses` (stacked, chunked across workers — however the backend
    likes), then call :meth:`assemble` to splice the simulated rows back
    into full block order and memoize them.  The partition is computed in
    the parent process before any dispatch, so it is deterministic for
    every backend and worker count.

    Under block keying a block either fully hits or fully misses; under
    sample keying (``cache.key_mode == "sample"``) a block may *partially*
    hit, in which case :attr:`misses` carries a reduced block holding only
    its unknown sample rows and :meth:`assemble` splices row by row.
    Either way :attr:`hit_rows` reports, per pending block, how many of
    its rows were replayed — :func:`~repro.engine.base.scatter_round`
    turns that into ledger accounting.
    """

    def __init__(self, cache: EvaluationCache, problem, pending) -> None:
        self.cache = cache
        self.pending = pending
        self.sample_mode = getattr(cache, "key_mode", "block") == "sample"
        #: Blocks that genuinely need the simulator, in round order; under
        #: sample keying these may be *reduced* blocks (miss rows only).
        self.misses: list[PendingRefinement] = []
        #: Per-block replayed-row counts, aligned with the pending order.
        self.hit_rows: list[int] = []
        if self.sample_mode:
            self._partition_samples(problem, pending)
        else:
            self.keys = [cache.key(problem, b.state.x, b.samples) for b in pending]
            self.rows = [
                cache.lookup(k, b.n_samples) for k, b in zip(self.keys, pending)
            ]
            self.misses = [b for b, rows in zip(pending, self.rows) if rows is None]
            self.hit_rows = [
                b.n_samples if rows is not None else 0
                for b, rows in zip(pending, self.rows)
            ]

    def _partition_samples(self, problem, pending) -> None:
        """Per-row partition: each sample row hits or misses on its own.

        Row keys hash the 1-D sample row, whose shape repr differs from
        any 2-D block's, so block-mode and sample-mode entries can never
        collide even inside one shared spill file.
        """
        self._row_keys: list[list[str]] = []
        self._row_cached: list[list[np.ndarray | None]] = []
        for block in pending:
            keys = [
                self.cache.key(problem, block.state.x, block.samples[j])
                for j in range(block.n_samples)
            ]
            cached = [self.cache.lookup(key, 1) for key in keys]
            miss_index = [j for j, rows in enumerate(cached) if rows is None]
            self._row_keys.append(keys)
            self._row_cached.append(cached)
            self.hit_rows.append(block.n_samples - len(miss_index))
            if miss_index:
                self.misses.append(
                    PendingRefinement(
                        block.state,
                        block.samples[np.asarray(miss_index, dtype=np.intp)],
                        block.category,
                    )
                )

    def assemble(self, miss_performance: np.ndarray | None) -> np.ndarray:
        """Full-round performance matrix: cached rows + simulated rows.

        ``miss_performance`` is the stacked result of evaluating
        :attr:`misses` (``None`` when everything hit).  Simulated rows are
        memoized here, under the keys computed at partition time.
        """
        if self.sample_mode:
            return self._assemble_samples(miss_performance)
        parts = []
        offset = 0
        for key, block, rows in zip(self.keys, self.pending, self.rows):
            if rows is None:
                stop = offset + block.n_samples
                rows = miss_performance[offset:stop]
                offset = stop
                self.cache.store(key, rows)
            parts.append(rows)
        return np.concatenate(parts)

    def _assemble_samples(self, miss_performance: np.ndarray | None) -> np.ndarray:
        parts = []
        offset = 0
        for keys, cached in zip(self._row_keys, self._row_cached):
            for key, rows in zip(keys, cached):
                if rows is None:
                    rows = miss_performance[offset : offset + 1]
                    offset += 1
                    self.cache.store(key, rows)
                parts.append(np.atleast_2d(rows))
        return np.concatenate(parts)


#: Name -> evaluation-cache class; the API layer resolves through it.
CACHES: Registry = Registry("cache")
CACHES.register("lru", LRUEvaluationCache)
CACHES.register("null", NullCache)


def make_cache(kind, **kwargs) -> EvaluationCache | None:
    """Coerce ``kind`` into a cache instance, or ``None`` (caching off).

    Accepts an existing :class:`EvaluationCache` (returned unchanged;
    ``kwargs`` are rejected), a registry name (instantiated with
    ``kwargs``), or ``None`` (no caching — unlike engines there is no
    default instance, because reuse across runs is an explicit opt-in).
    """
    if kind is None:
        if kwargs:
            raise TypeError("cache parameters require a cache name (e.g. 'lru')")
        return None
    if isinstance(kind, EvaluationCache):
        if kwargs:
            raise TypeError(
                "cache parameters only apply when the cache is resolved "
                "by name; configure the instance directly instead"
            )
        return kind
    return CACHES.create(kind, **kwargs)
