"""Streaming remote backend: fan one optimization's rounds across hosts.

:class:`RemoteEngine` is the distribution step past
:class:`~repro.engine.process.ProcessPoolEngine`: instead of sharding a
round across local worker *processes*, it streams the round's miss-only
pending blocks (the in-parent cache partition has already happened) as
wire chunks (:mod:`repro.engine.wire`) over HTTP to a pool of ``repro
worker`` daemons (:mod:`repro.service.worker`) — one optimization, many
hosts.

Streaming, not barriering
-------------------------
Chunks dispatch as soon as they are formed and results splice back
row-aligned as they arrive: each chunk owns a fixed row extent of the
round's stacked performance matrix, so completion order cannot change the
result.  Dispatch is pipelined with bounded in-flight backpressure — each
worker serves at most ``max_in_flight`` chunks at a time, and a fast
worker that finishes early immediately pulls the next chunk off the queue
instead of waiting for the round's slowest peer (``dispatch="barrier"``
keeps the wave-synchronized alternative for A/B measurement; see
``benchmarks/test_bench_remote.py``).

Failure semantics
-----------------
Every chunk has a per-request timeout.  A worker that times out, drops
the connection, or answers 5xx is marked dead for the round and its
chunks are re-dispatched to the surviving workers; dead workers are
health-checked again at the next round and revived if they answer.  If
every worker is gone the remaining chunks are evaluated in-parent with
the same fused serial path the workers run — so a run *completes* (and
completes bit-identically) through any sequence of worker deaths.

Determinism
-----------
Workers are pure ``(designs, samples) -> performance`` functions; RNG
streams, screeners, ledgers and the warm-start cache partition all stay
in the parent, and chunk results are spliced by index.  A remote run is
therefore bit-identical (``MOHECOResult.identity_dict()``) to
:class:`~repro.engine.serial.SerialEngine` for any worker count, chunk
size, cache state, and failure/re-dispatch history.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import deque

import numpy as np

from repro.engine.base import (
    EvaluationEngine,
    collect_pending,
    evaluate_pending,
    scatter_round,
)
from repro.engine.cache import CachedRound
from repro.engine.wire import ChunkRequest, encode_problem, decode_array

__all__ = ["RemoteEngine", "WorkerError", "normalize_worker_url"]

DISPATCH_MODES = ("streaming", "barrier")


class WorkerError(RuntimeError):
    """One worker failed one request (timeout, connection loss, 5xx)."""


def normalize_worker_url(worker: str) -> str:
    """Canonical base URL of one worker: ``host:port`` -> ``http://host:port``."""
    worker = str(worker).strip().rstrip("/")
    if not worker:
        raise ValueError("empty worker address")
    if "://" not in worker:
        worker = f"http://{worker}"
    return worker


def _parse_workers(workers) -> list[str]:
    """``"host:a,host:b"`` / iterable -> deduplicated normalized URL list."""
    if isinstance(workers, str):
        workers = [part for part in workers.split(",") if part.strip()]
    urls = []
    for worker in workers:
        url = normalize_worker_url(worker)
        if url not in urls:
            urls.append(url)
    if not urls:
        raise ValueError(
            "remote engine needs at least one worker "
            "(engine_params={'workers': 'host:port,...'})"
        )
    return urls


def _chunk_pending(pending, chunk_rows: int) -> list[list]:
    """Split blocks into contiguous chunks of roughly ``chunk_rows`` rows.

    Block boundaries are respected (grouped evaluator dispatch stays
    intact); a block larger than ``chunk_rows`` forms its own chunk.  The
    chunk list — not the worker set — is the unit of re-dispatch, so its
    boundaries must not depend on which workers are alive.
    """
    chunks, current, rows = [], [], 0
    for block in pending:
        current.append(block)
        rows += block.n_samples
        if rows >= chunk_rows:
            chunks.append(current)
            current, rows = [], 0
    if current:
        chunks.append(current)
    return chunks


class _RoundState:
    """Shared bookkeeping of one in-flight round's chunk queue."""

    def __init__(self, n_chunks: int) -> None:
        self.queue: deque[int] = deque(range(n_chunks))
        self.results: list[np.ndarray | None] = [None] * n_chunks
        self.completed = 0
        self.total = n_chunks
        self.cond = threading.Condition()

    def take(self) -> int | None:
        with self.cond:
            if self.queue:
                return self.queue.popleft()
            return None

    def requeue(self, index: int) -> None:
        with self.cond:
            self.queue.append(index)
            self.cond.notify_all()

    def finish(self, index: int, rows: np.ndarray) -> None:
        with self.cond:
            self.results[index] = rows
            self.completed += 1
            self.cond.notify_all()

    @property
    def done(self) -> bool:
        return self.completed >= self.total


class RemoteEngine(EvaluationEngine):
    """Stream refinement rounds to a pool of HTTP simulator workers.

    Parameters
    ----------
    workers:
        The worker pool: ``"host:port,host:port"``, or an iterable of
        addresses/URLs.  The service's ``POST /v1/workers`` registration
        endpoint fills this in for ``repro serve`` jobs that submit
        ``engine="remote"`` without an explicit list.
    chunk_rows:
        Target sample rows per chunk.  Smaller chunks pipeline better
        (more re-fill opportunities, finer re-dispatch on failure) at the
        price of more HTTP round-trips; the default suits circuit-priced
        rows (hundreds of microseconds each).
    max_in_flight:
        Chunks in flight per worker.  ``2`` keeps a worker's next chunk
        queued behind its current one (transfer overlaps compute) without
        letting one worker hoard the round.
    timeout_seconds:
        Per-chunk HTTP timeout; a worker that blows it is treated as dead
        for the round and its chunk is re-dispatched.
    dispatch:
        ``"streaming"`` (default) pipelines chunks with bounded in-flight
        backpressure; ``"barrier"`` submits worker-count-sized waves and
        waits for each wave to fully return — the round-barrier baseline
        the benchmark A/Bs against.
    min_dispatch_rows:
        Rounds smaller than this many rows are evaluated in-parent (HTTP
        overhead would dominate).
    local_fallback:
        Evaluate chunks in-parent when every worker is dead (default).
        ``False`` raises :class:`WorkerError` instead — for deployments
        where silent local execution would hide a fleet outage.
    health_timeout_seconds:
        Timeout of the registration/revival health probes.
    """

    name = "remote"

    def __init__(
        self,
        workers,
        chunk_rows: int = 64,
        max_in_flight: int = 2,
        timeout_seconds: float = 60.0,
        dispatch: str = "streaming",
        min_dispatch_rows: int = 2,
        local_fallback: bool = True,
        health_timeout_seconds: float = 5.0,
    ) -> None:
        if chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        if dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, got {dispatch!r}"
            )
        self.worker_urls = _parse_workers(workers)
        self.chunk_rows = int(chunk_rows)
        self.max_in_flight = int(max_in_flight)
        self.timeout_seconds = float(timeout_seconds)
        self.dispatch = dispatch
        self.min_dispatch_rows = int(min_dispatch_rows)
        self.local_fallback = bool(local_fallback)
        self.health_timeout_seconds = float(health_timeout_seconds)
        self._dead: set[str] = set()
        self._checked: set[str] = set()
        self._installed: dict[str, set[str]] = {url: set() for url in self.worker_urls}
        self._problem = None
        self._problem_payload: dict | None = None
        self._problem_token: str | None = None
        #: Cumulative dispatch record; surfaces as
        #: ``MOHECOResult.engine_decision`` (identity-excluded, like the
        #: auto engine's commit record).
        self.decision: dict = {
            "engine": "remote",
            "dispatch": dispatch,
            "workers": list(self.worker_urls),
            "chunk_rows": self.chunk_rows,
            "max_in_flight": self.max_in_flight,
            "rounds": 0,
            "chunks": 0,
            "rows": 0,
            "re_dispatched": 0,
            "worker_failures": 0,
            "local_rows": 0,
            "worker_cache_rows": 0,
            "per_worker": {
                url: {"chunks": 0, "rows": 0, "cache_hit_rows": 0}
                for url in self.worker_urls
            },
        }

    # -- HTTP plumbing -----------------------------------------------------
    def _post_json(self, url: str, payload: dict, timeout: float) -> dict:
        """POST ``payload``; returns the parsed body.  Raises WorkerError."""
        body = json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            url,
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            detail = b""
            try:
                detail = error.read()
            except OSError:  # pragma: no cover - socket already gone
                pass
            raise WorkerError(
                f"{url} answered {error.code}: {detail[:200]!r}"
            ) from error
        except (urllib.error.URLError, OSError, TimeoutError, ValueError) as error:
            raise WorkerError(f"{url} unreachable: {error}") from error

    def _probe(self, url: str) -> bool:
        """One health check; ``True`` when the worker answers ok."""
        try:
            request = urllib.request.Request(f"{url}/v1/health", method="GET")
            with urllib.request.urlopen(
                request, timeout=self.health_timeout_seconds
            ) as response:
                return bool(json.loads(response.read().decode("utf-8")).get("ok"))
        except (urllib.error.URLError, OSError, TimeoutError, ValueError):
            return False

    def _mark_dead(self, url: str) -> None:
        if url not in self._dead:
            self._dead.add(url)
            self.decision["worker_failures"] += 1
        # A revived worker may have restarted and lost its problem store.
        self._installed[url] = set()

    def _live_workers(self) -> list[str]:
        """Health-check unverified/dead workers; return the usable pool."""
        for url in self.worker_urls:
            if url in self._checked and url not in self._dead:
                continue
            if self._probe(url):
                self._checked.add(url)
                self._dead.discard(url)
            else:
                self._checked.add(url)
                if url not in self._dead:
                    self._dead.add(url)
                    self.decision["worker_failures"] += 1
        return [url for url in self.worker_urls if url not in self._dead]

    # -- problem installation ----------------------------------------------
    def _problem_wire(self, problem) -> tuple[str, dict]:
        if self._problem is not problem:
            self._problem_payload = encode_problem(problem)
            self._problem_token = self._problem_payload["token"]
            self._problem = problem
            for url in self._installed:
                self._installed[url].discard(self._problem_token)
        return self._problem_token, self._problem_payload

    def _ensure_installed(self, url: str, token: str, payload: dict) -> None:
        """Install the problem on ``url`` if not already there (raises)."""
        if token in self._installed.setdefault(url, set()):
            return
        self._post_json(f"{url}/v1/problems", payload, self.timeout_seconds)
        self._installed[url].add(token)

    # -- chunk dispatch ----------------------------------------------------
    def _evaluate_on(
        self, url: str, chunk: ChunkRequest, payload: dict
    ) -> tuple[np.ndarray, int]:
        """Evaluate one chunk on one worker; raises :class:`WorkerError`.

        Returns ``(rows, worker-cache hit rows)`` — workers that predate
        the daemon-side cache simply omit the count and report ``0``.
        """
        token = chunk.problem_token
        self._ensure_installed(url, token, payload)
        try:
            body = self._post_json(
                f"{url}/v1/evaluate", chunk.to_dict(), self.timeout_seconds
            )
        except WorkerError as error:
            if "409" in str(error):
                # The worker restarted and lost the problem store: this is
                # recoverable on the same worker, not a death.
                self._installed[url] = set()
                self._ensure_installed(url, token, payload)
                body = self._post_json(
                    f"{url}/v1/evaluate", chunk.to_dict(), self.timeout_seconds
                )
            else:
                raise
        rows = decode_array(body["rows"])
        if rows.shape[0] != chunk.n_rows:
            raise WorkerError(
                f"{url} returned {rows.shape[0]} rows for a "
                f"{chunk.n_rows}-row chunk"
            )
        return rows, int(body.get("cache_hit_rows", 0) or 0)

    def _pump(self, url: str, state: _RoundState, chunks, payload: dict) -> None:
        """One worker slot: pull chunks until the round drains or the
        worker dies.  Run ``max_in_flight`` of these per worker."""
        while not state.done and url not in self._dead:
            index = state.take()
            if index is None:
                if state.done:
                    return
                # Nothing queued right now, but peers may still fail and
                # requeue; park briefly on the round condition.
                with state.cond:
                    if not state.queue and not state.done:
                        state.cond.wait(timeout=0.05)
                continue
            try:
                rows, hit_rows = self._evaluate_on(url, chunks[index], payload)
            except WorkerError:
                self._mark_dead(url)
                self.decision["re_dispatched"] += 1
                state.requeue(index)
                with state.cond:
                    state.cond.notify_all()
                return
            state.finish(index, rows)
            stats = self.decision["per_worker"][url]
            stats["chunks"] += 1
            stats["rows"] += chunks[index].n_rows
            stats["cache_hit_rows"] += hit_rows
            self.decision["worker_cache_rows"] += hit_rows

    def _drain_streaming(self, live, state: _RoundState, chunks, payload) -> None:
        threads = [
            threading.Thread(
                target=self._pump,
                args=(url, state, chunks, payload),
                name=f"repro-remote-{url}-{slot}",
                daemon=True,
            )
            for url in live
            for slot in range(self.max_in_flight)
        ]
        for thread in threads:
            thread.start()
        while True:
            with state.cond:
                if state.done:
                    break
                if not any(thread.is_alive() for thread in threads):
                    break  # every worker died; leftovers fall back locally
                state.cond.wait(timeout=0.1)
        for thread in threads:
            thread.join(timeout=self.timeout_seconds)

    def _drain_barrier(self, live, state: _RoundState, chunks, payload) -> None:
        """Wave-synchronized dispatch: the round-barrier baseline."""
        while not state.done:
            wave_live = [url for url in live if url not in self._dead]
            if not wave_live:
                return  # leftovers fall back locally
            wave: list[tuple[str, int]] = []
            for url in wave_live:
                index = state.take()
                if index is None:
                    break
                wave.append((url, index))
            if not wave:
                return

            def _one(url: str, index: int) -> None:
                try:
                    rows, hit_rows = self._evaluate_on(url, chunks[index], payload)
                except WorkerError:
                    self._mark_dead(url)
                    self.decision["re_dispatched"] += 1
                    state.requeue(index)
                    return
                state.finish(index, rows)
                stats = self.decision["per_worker"][url]
                stats["chunks"] += 1
                stats["rows"] += chunks[index].n_rows
                stats["cache_hit_rows"] += hit_rows
                self.decision["worker_cache_rows"] += hit_rows

            threads = [
                threading.Thread(target=_one, args=pair, daemon=True)
                for pair in wave
            ]
            for thread in threads:
                thread.start()
            for thread in threads:  # the barrier
                thread.join(timeout=self.timeout_seconds * 2)

    def _simulate_remote(self, problem, to_simulate) -> np.ndarray:
        token, payload = self._problem_wire(problem)
        block_chunks = _chunk_pending(to_simulate, self.chunk_rows)
        chunks = [
            ChunkRequest.from_pending(token, blocks) for blocks in block_chunks
        ]
        state = _RoundState(len(chunks))
        live = self._live_workers()
        if live:
            if self.dispatch == "streaming":
                self._drain_streaming(live, state, chunks, payload)
            else:
                self._drain_barrier(live, state, chunks, payload)
        leftovers = [i for i, rows in enumerate(state.results) if rows is None]
        if leftovers:
            if not self.local_fallback and not live:
                raise WorkerError(
                    f"no live workers among {self.worker_urls} and "
                    "local_fallback is disabled"
                )
            # Survivors gone mid-round (or none to begin with): finish the
            # round in-parent with the identical fused serial path.
            for index in leftovers:
                state.results[index] = evaluate_pending(
                    problem, block_chunks[index]
                )
                self.decision["local_rows"] += chunks[index].n_rows
        self.decision["rounds"] += 1
        self.decision["chunks"] += len(chunks)
        self.decision["rows"] += sum(chunk.n_rows for chunk in chunks)
        return np.concatenate(state.results)

    # -- rounds ------------------------------------------------------------
    def refine_round(self, problem, states, gains, category=None):
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        # The cache partition happens in the parent before any dispatch —
        # hit rows never cross the wire, and chunk boundaries see only the
        # miss rows, identically for every worker set.
        round_ = None
        to_simulate = pending
        if self.cache is not None:
            round_ = CachedRound(self.cache, problem, pending)
            to_simulate = round_.misses
        total_rows = sum(block.n_samples for block in to_simulate)
        if not to_simulate:
            performance = None
        elif total_rows < self.min_dispatch_rows:
            performance = evaluate_pending(problem, to_simulate)
            self.decision["local_rows"] += total_rows
        else:
            performance = self._simulate_remote(problem, to_simulate)
        if round_ is None:
            scatter_round(problem, pending, performance)
        else:
            performance = round_.assemble(performance)
            scatter_round(problem, pending, performance, round_.hit_rows, self.cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteEngine(workers={len(self.worker_urls)}, "
            f"dispatch={self.dispatch!r}, chunk_rows={self.chunk_rows})"
        )
