"""Process-pool backend: fused rounds sharded across worker processes.

For expensive circuit problems (MNA/AC amplifier simulation) the per-round
evaluation dominates wall-clock; :class:`ProcessPoolEngine` splits the
stacked pair matrix of each round into contiguous chunks — respecting
candidate-block boundaries so grouped evaluator dispatch stays intact —
and simulates the chunks on a pool of worker processes.

Zero-copy transfer
------------------
With the default ``transfer="shm"`` the round's numeric payload crosses
the process boundary through one :class:`multiprocessing.shared_memory`
block created per round: the parent packs the per-block design vectors and
the stacked sample matrix into the block once, and each worker receives
only a tiny descriptor — ``(shm_name, shapes, block offsets)`` — from
which it reconstructs zero-copy NumPy views.  Nothing per-sample is ever
pickled on the way in; the pool stays warm across rounds (it is only
rebuilt when the problem object changes), so steady-state round cost is
descriptor pickling + the simulations themselves.  ``transfer="pickle"``
keeps the legacy behaviour of shipping ``(designs, samples)`` chunks
through the call pickle, and is also the automatic fallback on platforms
where POSIX shared memory is unavailable.

Determinism
-----------
Workers are *pure*: they receive chunk descriptors (or pickled chunks) and
return performance rows.  All RNG streams, screener state and ledger
accounting stay in the parent; the block partition and chunk boundaries do
not depend on the transfer mechanism; and chunk results are reassembled in
submission order — so a run is bit-for-bit reproducible for any worker
count and either transfer, including ``workers=1`` and the in-process
:class:`~repro.engine.serial.SerialEngine`.

The problem object is shipped to each worker once, at pool start-up (via
the initializer, which under the default ``fork`` start method costs no
pickling at all), not once per round.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.engine.base import (
    EvaluationEngine,
    collect_pending,
    evaluate_pending,
    scatter_round,
)
from repro.engine.cache import CachedRound

__all__ = ["ProcessPoolEngine", "make_process_pool", "pool_mp_context", "ShmRound"]

TRANSFERS = ("shm", "pickle")


def make_process_pool(workers: int, **kwargs) -> ProcessPoolExecutor:
    """A fork-preferred worker pool (the engine/sweep layers' one recipe).

    ``fork`` inherits the parent's imported modules (registries, problem
    factories) for free; platforms without it fall back to ``spawn``.
    ``kwargs`` pass through to :class:`ProcessPoolExecutor` (initializer,
    initargs, ...).
    """
    return ProcessPoolExecutor(
        max_workers=workers, mp_context=pool_mp_context(), **kwargs
    )


def pool_mp_context():
    """The multiprocessing context :func:`make_process_pool` pools run in.

    Queues/events that cross into pool workers (the sweep executor's
    progress bridge and cancel flag) must come from the same context the
    pool was built with, so the choice lives in one place.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: The problem each worker evaluates against (set by the pool initializer).
_WORKER_PROBLEM = None


def _init_worker(problem) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _evaluate_chunk(pending) -> np.ndarray:
    """Simulate one pickled chunk of pending blocks (legacy transfer)."""
    return evaluate_pending(_WORKER_PROBLEM, pending)


def _evaluate_shm_chunk(descriptor) -> np.ndarray:
    """Simulate one chunk described by shared-memory offsets.

    ``descriptor`` is ``(shm_name, designs_shape, samples_shape, blocks)``
    with ``blocks`` a list of ``(design_row, start_row, stop_row,
    category)``.  The worker attaches to the parent's block, rebuilds
    read-only zero-copy views, and evaluates — no array bytes cross the
    call pickle.  (Attaching registers the name with the resource tracker;
    under ``fork`` the tracker is shared with the parent, whose ``unlink``
    retires the name exactly once.)
    """
    from repro.yieldsim.estimator import PendingRefinement

    name, designs_shape, samples_shape, blocks = descriptor
    shm = shared_memory.SharedMemory(name=name)
    designs = np.ndarray(designs_shape, dtype=np.float64, buffer=shm.buf)
    samples = np.ndarray(
        samples_shape,
        dtype=np.float64,
        buffer=shm.buf,
        offset=designs.nbytes,
    )
    designs.flags.writeable = False
    samples.flags.writeable = False
    pending = []
    try:
        pending = [
            PendingRefinement(
                _BareState(designs[design_row]), samples[start:stop], category
            )
            for design_row, start, stop, category in blocks
        ]
        return evaluate_pending(_WORKER_PROBLEM, pending)
    finally:
        del pending, designs, samples
        try:
            shm.close()
        except BufferError:  # pragma: no cover - evaluator kept a view alive
            pass  # mapping lives until GC drops the view; unlink still reclaims


def _chunk_blocks(pending, n_chunks: int) -> list[list]:
    """Split blocks into up to ``n_chunks`` contiguous, row-balanced chunks."""
    total_rows = sum(block.n_samples for block in pending)
    target = max(1, -(-total_rows // n_chunks))  # ceil division
    chunks, current, rows = [], [], 0
    for block in pending:
        current.append(block)
        rows += block.n_samples
        if rows >= target and len(chunks) < n_chunks - 1:
            chunks.append(current)
            current, rows = [], 0
    if current:
        chunks.append(current)
    return chunks


class ShmRound:
    """One round's ``(designs, samples)`` staged in a shared-memory block.

    The parent packs each pending block's design vector (one row of the
    ``designs`` matrix) and its sample rows (a contiguous slice of the
    stacked ``samples`` matrix) into a single block, then hands workers
    offset descriptors via :meth:`chunk_descriptor`.  Use as a context
    manager: exit closes *and unlinks*, so the segment never outlives the
    round even on error paths.
    """

    def __init__(self, blocks) -> None:
        designs = np.ascontiguousarray(
            np.stack([np.asarray(block.state.x, dtype=np.float64) for block in blocks])
        )
        samples = np.ascontiguousarray(
            np.concatenate(
                [np.atleast_2d(np.asarray(block.samples, dtype=np.float64))
                 for block in blocks]
            )
        )
        self._shm = shared_memory.SharedMemory(
            create=True, size=designs.nbytes + samples.nbytes
        )
        buf = self._shm.buf
        np.ndarray(designs.shape, np.float64, buffer=buf)[:] = designs
        np.ndarray(
            samples.shape, np.float64, buffer=buf, offset=designs.nbytes
        )[:] = samples
        self.name = self._shm.name
        self._designs_shape = designs.shape
        self._samples_shape = samples.shape
        # Row extents of each block inside the stacked sample matrix.
        self._rows = {}
        start = 0
        for i, block in enumerate(blocks):
            stop = start + block.n_samples
            self._rows[id(block)] = (i, start, stop)
            start = stop

    def chunk_descriptor(self, chunk) -> tuple:
        """The picklable descriptor workers get instead of array payloads."""
        blocks = [
            (*self._rows[id(block)], block.category) for block in chunk
        ]
        return (self.name, self._designs_shape, self._samples_shape, blocks)

    def close(self) -> None:
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already retired
            pass

    def __enter__(self) -> ShmRound:
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessPoolEngine(EvaluationEngine):
    """Sharded backend for simulation-bound problems.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count (capped
        at 8 — yield estimation rounds rarely stack enough work to feed
        more).
    min_dispatch_rows:
        Rounds smaller than this many border-band samples are evaluated
        in-process.  The default only keeps trivial one-sample rounds
        local — on circuit problems even a small promotion round is worth
        shipping; raise it when each simulation is cheap enough that IPC
        would dominate.
    transfer:
        ``"shm"`` (default) stages each round's arrays in one shared-memory
        block and ships only offset descriptors to the workers;
        ``"pickle"`` ships ``(designs, samples)`` chunks through the call
        pickle.  ``"shm"`` silently downgrades to ``"pickle"`` if the
        platform cannot allocate POSIX shared memory.
    """

    name = "process"

    def __init__(
        self,
        workers: int | None = None,
        min_dispatch_rows: int = 2,
        transfer: str = "shm",
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if transfer not in TRANSFERS:
            raise ValueError(
                f"transfer must be one of {TRANSFERS}, got {transfer!r}"
            )
        self.workers = workers if workers is not None else min(os.cpu_count() or 1, 8)
        self.min_dispatch_rows = int(min_dispatch_rows)
        self.transfer = transfer
        self._pool: ProcessPoolExecutor | None = None
        self._pool_problem = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self, problem) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_problem is not problem:
            # A new problem invalidates the workers' cached copy.
            self.close()
        if self._pool is None:
            self._pool = make_process_pool(
                self.workers, initializer=_init_worker, initargs=(problem,)
            )
            self._pool_problem = problem
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_problem = None

    # -- dispatch ----------------------------------------------------------
    def _simulate_sharded(self, problem, to_simulate) -> np.ndarray:
        """Evaluate miss blocks on the pool; returns stacked rows."""
        pool = self._ensure_pool(problem)
        chunks = _chunk_blocks(to_simulate, self.workers)
        if self.transfer == "shm":
            try:
                staged = ShmRound(to_simulate)
            except OSError:  # pragma: no cover - no POSIX shm on platform
                self.transfer = "pickle"
            else:
                with staged:
                    futures = [
                        pool.submit(
                            _evaluate_shm_chunk, staged.chunk_descriptor(chunk)
                        )
                        for chunk in chunks
                    ]
                    return np.concatenate(
                        [future.result() for future in futures]
                    )
        # Workers must not drag parent-side state (RNGs, ledgers,
        # screeners) through the queue: ship bare (x, samples) shells.
        futures = [
            pool.submit(_evaluate_chunk, [_strip(block) for block in chunk])
            for chunk in chunks
        ]
        return np.concatenate([future.result() for future in futures])

    # -- rounds ------------------------------------------------------------
    def refine_round(self, problem, states, gains, category=None):
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        # The cache partition happens in the parent, before any dispatch:
        # hit blocks never cross the pool boundary at all, and the chunking
        # below sees only the miss blocks — block boundaries stay intact,
        # and the partition is identical for every worker count.
        round_ = None
        to_simulate = pending
        if self.cache is not None:
            round_ = CachedRound(self.cache, problem, pending)
            to_simulate = round_.misses
        total_rows = sum(block.n_samples for block in to_simulate)
        if not to_simulate:
            performance = None
        elif self.workers == 1 or total_rows < self.min_dispatch_rows:
            performance = evaluate_pending(problem, to_simulate)
        else:
            performance = self._simulate_sharded(problem, to_simulate)
        if round_ is None:
            scatter_round(problem, pending, performance)
        else:
            performance = round_.assemble(performance)
            scatter_round(problem, pending, performance, round_.hit_rows, self.cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessPoolEngine(workers={self.workers}, "
            f"transfer={self.transfer!r})"
        )


class _BareState:
    """Pickle-light stand-in for a candidate state: just the design vector."""

    __slots__ = ("x",)

    def __init__(self, x: np.ndarray) -> None:
        self.x = x


def _strip(block):
    """A pending block reduced to what workers need: design + samples."""
    from repro.yieldsim.estimator import PendingRefinement

    return PendingRefinement(_BareState(block.state.x), block.samples, block.category)
