"""Process-pool backend: fused rounds sharded across worker processes.

For expensive circuit problems (MNA/AC amplifier simulation) the per-round
evaluation dominates wall-clock; :class:`ProcessPoolEngine` splits the
stacked pair matrix of each round into contiguous chunks — respecting
candidate-block boundaries so grouped evaluator dispatch stays intact —
and simulates the chunks on a pool of worker processes.

Determinism
-----------
Workers are *pure*: they receive ``(designs, samples)`` chunks and return
performance rows.  All RNG streams, screener state and ledger accounting
stay in the parent, and chunk results are reassembled in submission order,
so a run is bit-for-bit reproducible for any worker count — including
``workers=1`` and the in-process :class:`~repro.engine.serial.SerialEngine`.

The problem object is shipped to each worker once, at pool start-up (via
the initializer, which under the default ``fork`` start method costs no
pickling at all), not once per round.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.engine.base import (
    EvaluationEngine,
    collect_pending,
    evaluate_pending,
    scatter_round,
)
from repro.engine.cache import CachedRound

__all__ = ["ProcessPoolEngine", "make_process_pool"]


def make_process_pool(workers: int, **kwargs) -> ProcessPoolExecutor:
    """A fork-preferred worker pool (the engine/sweep layers' one recipe).

    ``fork`` inherits the parent's imported modules (registries, problem
    factories) for free; platforms without it fall back to ``spawn``.
    ``kwargs`` pass through to :class:`ProcessPoolExecutor` (initializer,
    initargs, ...).
    """
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    return ProcessPoolExecutor(max_workers=workers, mp_context=context, **kwargs)


#: The problem each worker evaluates against (set by the pool initializer).
_WORKER_PROBLEM = None


def _init_worker(problem) -> None:
    global _WORKER_PROBLEM
    _WORKER_PROBLEM = problem


def _evaluate_chunk(pending) -> np.ndarray:
    """Simulate one chunk of pending blocks against the worker's problem."""
    return evaluate_pending(_WORKER_PROBLEM, pending)


def _chunk_blocks(pending, n_chunks: int) -> list[list]:
    """Split blocks into up to ``n_chunks`` contiguous, row-balanced chunks."""
    total_rows = sum(block.n_samples for block in pending)
    target = max(1, -(-total_rows // n_chunks))  # ceil division
    chunks, current, rows = [], [], 0
    for block in pending:
        current.append(block)
        rows += block.n_samples
        if rows >= target and len(chunks) < n_chunks - 1:
            chunks.append(current)
            current, rows = [], 0
    if current:
        chunks.append(current)
    return chunks


class ProcessPoolEngine(EvaluationEngine):
    """Sharded backend for simulation-bound problems.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count (capped
        at 8 — yield estimation rounds rarely stack enough work to feed
        more).
    min_dispatch_rows:
        Rounds smaller than this many border-band samples are evaluated
        in-process.  The default only keeps trivial one-sample rounds
        local — on circuit problems even a small promotion round is worth
        shipping; raise it when each simulation is cheap enough that IPC
        would dominate.
    """

    name = "process"

    def __init__(self, workers: int | None = None, min_dispatch_rows: int = 2) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers if workers is not None else min(os.cpu_count() or 1, 8)
        self.min_dispatch_rows = int(min_dispatch_rows)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_problem = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self, problem) -> ProcessPoolExecutor:
        if self._pool is not None and self._pool_problem is not problem:
            # A new problem invalidates the workers' cached copy.
            self.close()
        if self._pool is None:
            self._pool = make_process_pool(
                self.workers, initializer=_init_worker, initargs=(problem,)
            )
            self._pool_problem = problem
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_problem = None

    # -- rounds ------------------------------------------------------------
    def refine_round(self, problem, states, gains, category=None):
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        # The cache partition happens in the parent, before any dispatch:
        # hit blocks never cross the pool boundary at all, and the chunking
        # below sees only the miss blocks — block boundaries stay intact,
        # and the partition is identical for every worker count.
        round_ = None
        to_simulate = pending
        if self.cache is not None:
            round_ = CachedRound(self.cache, problem, pending)
            to_simulate = round_.misses
        total_rows = sum(block.n_samples for block in to_simulate)
        if not to_simulate:
            performance = None
        elif self.workers == 1 or total_rows < self.min_dispatch_rows:
            performance = evaluate_pending(problem, to_simulate)
        else:
            pool = self._ensure_pool(problem)
            chunks = _chunk_blocks(to_simulate, self.workers)
            # Workers must not drag parent-side state (RNGs, ledgers,
            # screeners) through the queue: ship bare (x, samples) shells.
            futures = [
                pool.submit(_evaluate_chunk, [_strip(block) for block in chunk])
                for chunk in chunks
            ]
            performance = np.concatenate([future.result() for future in futures])
        if round_ is None:
            scatter_round(problem, pending, performance)
        else:
            performance = round_.assemble(performance)
            scatter_round(problem, pending, performance, round_.hit_flags, self.cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessPoolEngine(workers={self.workers})"


class _BareState:
    """Pickle-light stand-in for a candidate state: just the design vector."""

    __slots__ = ("x",)

    def __init__(self, x: np.ndarray) -> None:
        self.x = x


def _strip(block):
    """A pending block reduced to what workers need: design + samples."""
    from repro.yieldsim.estimator import PendingRefinement

    return PendingRefinement(_BareState(block.state.x), block.samples, block.category)
