"""The execution-engine protocol and the legacy per-candidate backend.

An :class:`EvaluationEngine` executes one *round* of refinement requests —
``(candidate state_i, k_i additional samples)`` for many candidates at once
— and updates every candidate's running yield estimate.  The OCBA loop,
the pilot-``n0`` phase, stage-2 promotions and the fixed-budget baseline
all submit their per-round work through this interface, which is what lets
a backend fuse the simulations into one stacked dispatch
(:class:`~repro.engine.serial.SerialEngine`) or shard them across worker
processes (:class:`~repro.engine.process.ProcessPoolEngine`).

Reproducibility contract
------------------------
Sample *generation* always happens in the caller's process, per candidate,
from each candidate's private RNG stream
(:meth:`~repro.yieldsim.estimator.CandidateYieldState.prepare`), and the
screener's classification stays local; a backend only simulates the border
band and hands the performance rows back
(:meth:`~repro.yieldsim.estimator.CandidateYieldState.absorb`).  Every
backend therefore produces identical estimates for the same seed — fused,
sharded, or not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.engine.cache import CachedRound, EvaluationCache
from repro.yieldsim.estimator import CandidateYieldState, PendingRefinement

__all__ = [
    "EvaluationEngine",
    "LegacyEngine",
    "collect_pending",
    "evaluate_pending",
    "scatter_round",
]


def collect_pending(
    states: Sequence[CandidateYieldState],
    gains: Sequence[int],
    category: str | None = None,
) -> list[PendingRefinement]:
    """Draw + screen every candidate's block; return the non-empty bands.

    Candidates are prepared in list order so each private RNG stream
    advances exactly as the per-candidate path would advance it.
    """
    pending = []
    for state, gain in zip(states, gains):
        block = state.prepare(int(gain), category)
        if block is not None:
            pending.append(block)
    return pending


def evaluate_pending(problem, pending: list[PendingRefinement]) -> np.ndarray:
    """Simulate a fused round: one stacked dispatch, no ledger side effects.

    Stacks every pending block into one ``(sum(k_i), ...)`` pair matrix and
    resolves it through the problem's ``evaluate_pairs`` protocol; problems
    that predate the protocol fall back to one ``evaluate_batch`` /
    ``simulate`` call per block.  Returns the stacked performance matrix in
    block order.  Ledger charging is the caller's job (workers in a process
    pool must not touch the parent's ledger).
    """
    evaluate_pairs = getattr(problem, "evaluate_pairs", None)
    if evaluate_pairs is not None:
        X = np.repeat(
            np.stack([block.state.x for block in pending]),
            [block.n_samples for block in pending],
            axis=0,
        )
        samples = np.concatenate([block.samples for block in pending])
        return np.asarray(evaluate_pairs(X, samples), dtype=float)

    rows = []
    for block in pending:
        evaluate_batch = getattr(problem, "evaluate_batch", None)
        if evaluate_batch is not None:
            rows.append(evaluate_batch(block.state.x[None, :], block.samples)[0])
        else:
            rows.append(problem.simulate(block.state.x, block.samples))
    return np.concatenate([np.atleast_2d(r) for r in rows])


def scatter_round(
    problem,
    pending: list[PendingRefinement],
    performance: np.ndarray,
    hit_rows: Sequence[int] | None = None,
    cache: EvaluationCache | None = None,
) -> None:
    """Charge ledgers and feed each block its performance rows back.

    The margin matrix and the per-block pass counts are computed once on
    the stacked round — two vectorized ops instead of one ``specs.margins``
    + one boolean reduction per candidate — and each state receives its
    pre-sliced share.

    ``hit_rows[i]`` counts the rows of block ``i`` that were replayed from
    ``cache`` instead of simulated (under block keying that is all-or-none;
    sample keying can replay part of a block).  Replayed rows are recorded
    under the ledger's ``cached`` column and — unless the cache opted into
    ``count_hits=False`` — still charged to the block's category, so the
    paper-accounting totals match a cache-off run exactly.
    """
    margins = problem.specs.margins(performance)
    passed = np.all(margins >= 0.0, axis=1)
    sizes = [block.n_samples for block in pending]
    starts = np.concatenate([[0], np.cumsum(sizes[:-1])]).astype(np.intp)
    pass_counts = np.add.reduceat(passed, starts)
    offset = 0
    for i, (block, size, n_passed) in enumerate(zip(pending, sizes, pass_counts)):
        ledger = block.state.ledger
        if ledger is not None:
            replayed = 0 if hit_rows is None else int(hit_rows[i])
            if replayed:
                ledger.record_cached(replayed)
            charged = size if cache is None or cache.count_hits else size - replayed
            if charged > 0:
                ledger.charge(charged, category=block.category)
        stop = offset + size
        block.state.absorb(
            block.samples,
            performance[offset:stop],
            margins[offset:stop],
            int(n_passed),
        )
        offset = stop


class EvaluationEngine(ABC):
    """Executes rounds of candidate refinements against a problem.

    Engines are resolved by name through :data:`repro.engine.ENGINES`
    (``MOHECO(engine=...)``, ``RunSpec.engine``, ``repro run --engine``).
    They hold no per-run state beyond optional worker resources, so one
    engine instance can serve many runs; call :meth:`close` (or use the
    engine as a context manager) to release worker resources.
    """

    #: Registry name of the backend.
    name: str = "base"

    #: Optional warm-start cache consulted on every refinement round.  The
    #: MOHECO loop attaches the run's cache here (:mod:`repro.engine.cache`);
    #: backends partition each round into hits and misses in the parent
    #: process, simulate only the misses, and splice the replayed rows back
    #: — ledger-faithfully — via :func:`scatter_round`.
    cache: EvaluationCache | None = None

    @abstractmethod
    def refine_round(
        self,
        problem,
        states: Sequence[CandidateYieldState],
        gains: Sequence[int],
        category: str | None = None,
    ) -> None:
        """Refine ``states[i]`` by ``gains[i]`` fresh samples each.

        ``category`` overrides every state's ledger category for this round
        (stage-2 promotions charge ``"stage2"`` on stage-1 states); ``None``
        keeps each state's own category.
        """

    def close(self) -> None:
        """Release backend resources (worker processes); idempotent."""

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LegacyEngine(EvaluationEngine):
    """The pre-engine path: one full draw-screen-simulate loop per candidate.

    Kept as the bit-identical baseline the cross-backend equivalence suite
    (and any downstream problem with exotic duck typing) can fall back to;
    every Python-level loop iteration pays the full call-chain overhead the
    fused backends exist to remove.
    """

    name = "legacy"

    def refine_round(self, problem, states, gains, category=None):
        if self.cache is None:
            for state, gain in zip(states, gains):
                if gain > 0:
                    state.refine(int(gain), category)
            return
        # Cached dispatch keeps the per-candidate granularity (one block
        # per iteration, no fusing) but routes each block through the same
        # partition/splice/scatter path as the fused backends, so hits,
        # accounting and results stay bit-identical across engines.
        for state, gain in zip(states, gains):
            if gain <= 0:
                continue
            block = state.prepare(int(gain), category)
            if block is None:
                continue
            round_ = CachedRound(self.cache, problem, [block])
            missed = evaluate_pending(problem, round_.misses) if round_.misses else None
            performance = round_.assemble(missed)
            scatter_round(problem, [block], performance, round_.hit_rows, self.cache)
