"""The execution-engine protocol and the legacy per-candidate backend.

An :class:`EvaluationEngine` executes one *round* of refinement requests —
``(candidate state_i, k_i additional samples)`` for many candidates at once
— and updates every candidate's running yield estimate.  The OCBA loop,
the pilot-``n0`` phase, stage-2 promotions and the fixed-budget baseline
all submit their per-round work through this interface, which is what lets
a backend fuse the simulations into one stacked dispatch
(:class:`~repro.engine.serial.SerialEngine`) or shard them across worker
processes (:class:`~repro.engine.process.ProcessPoolEngine`).

Reproducibility contract
------------------------
Sample *generation* always happens in the caller's process, per candidate,
from each candidate's private RNG stream
(:meth:`~repro.yieldsim.estimator.CandidateYieldState.prepare`), and the
screener's classification stays local; a backend only simulates the border
band and hands the performance rows back
(:meth:`~repro.yieldsim.estimator.CandidateYieldState.absorb`).  Every
backend therefore produces identical estimates for the same seed — fused,
sharded, or not.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.yieldsim.estimator import CandidateYieldState, PendingRefinement

__all__ = ["EvaluationEngine", "LegacyEngine", "collect_pending", "evaluate_pending"]


def collect_pending(
    states: Sequence[CandidateYieldState],
    gains: Sequence[int],
    category: str | None = None,
) -> list[PendingRefinement]:
    """Draw + screen every candidate's block; return the non-empty bands.

    Candidates are prepared in list order so each private RNG stream
    advances exactly as the per-candidate path would advance it.
    """
    pending = []
    for state, gain in zip(states, gains):
        block = state.prepare(int(gain), category)
        if block is not None:
            pending.append(block)
    return pending


def evaluate_pending(problem, pending: list[PendingRefinement]) -> np.ndarray:
    """Simulate a fused round: one stacked dispatch, no ledger side effects.

    Stacks every pending block into one ``(sum(k_i), ...)`` pair matrix and
    resolves it through the problem's ``evaluate_pairs`` protocol; problems
    that predate the protocol fall back to one ``evaluate_batch`` /
    ``simulate`` call per block.  Returns the stacked performance matrix in
    block order.  Ledger charging is the caller's job (workers in a process
    pool must not touch the parent's ledger).
    """
    evaluate_pairs = getattr(problem, "evaluate_pairs", None)
    if evaluate_pairs is not None:
        X = np.repeat(
            np.stack([block.state.x for block in pending]),
            [block.n_samples for block in pending],
            axis=0,
        )
        samples = np.concatenate([block.samples for block in pending])
        return np.asarray(evaluate_pairs(X, samples), dtype=float)

    rows = []
    for block in pending:
        evaluate_batch = getattr(problem, "evaluate_batch", None)
        if evaluate_batch is not None:
            rows.append(evaluate_batch(block.state.x[None, :], block.samples)[0])
        else:
            rows.append(problem.simulate(block.state.x, block.samples))
    return np.concatenate([np.atleast_2d(r) for r in rows])


class EvaluationEngine(ABC):
    """Executes rounds of candidate refinements against a problem.

    Engines are resolved by name through :data:`repro.engine.ENGINES`
    (``MOHECO(engine=...)``, ``RunSpec.engine``, ``repro run --engine``).
    They hold no per-run state beyond optional worker resources, so one
    engine instance can serve many runs; call :meth:`close` (or use the
    engine as a context manager) to release worker resources.
    """

    #: Registry name of the backend.
    name: str = "base"

    @abstractmethod
    def refine_round(
        self,
        problem,
        states: Sequence[CandidateYieldState],
        gains: Sequence[int],
        category: str | None = None,
    ) -> None:
        """Refine ``states[i]`` by ``gains[i]`` fresh samples each.

        ``category`` overrides every state's ledger category for this round
        (stage-2 promotions charge ``"stage2"`` on stage-1 states); ``None``
        keeps each state's own category.
        """

    def close(self) -> None:
        """Release backend resources (worker processes); idempotent."""

    def __enter__(self) -> "EvaluationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LegacyEngine(EvaluationEngine):
    """The pre-engine path: one full draw-screen-simulate loop per candidate.

    Kept as the bit-identical baseline the cross-backend equivalence suite
    (and any downstream problem with exotic duck typing) can fall back to;
    every Python-level loop iteration pays the full call-chain overhead the
    fused backends exist to remove.
    """

    name = "legacy"

    def refine_round(self, problem, states, gains, category=None):
        for state, gain in zip(states, gains):
            if gain > 0:
                state.refine(int(gain), category)
