"""Fused single-process backend: one stacked dispatch per round.

Where the legacy path walks the candidates one by one (draw, screen,
simulate a handful of samples, bookkeep — times 50 candidates, times every
OCBA increment), :class:`SerialEngine` runs the cheap per-candidate halves
locally and fuses every border-band sample of the round into **one**
``(sum(k_i), ...)`` evaluation — one vectorized simulate, one vectorized
margin computation — before scattering the results back.  On the synthetic
problems this removes almost all Python-level overhead from the OCBA hot
path (see ``benchmarks/test_bench_engine.py``).
"""

from __future__ import annotations

from repro.engine.base import (
    EvaluationEngine,
    collect_pending,
    evaluate_pending,
    scatter_round,
)
from repro.engine.cache import CachedRound

__all__ = ["SerialEngine"]


class SerialEngine(EvaluationEngine):
    """Default backend: fused rounds, evaluated in-process.

    With a warm-start cache attached the round is partitioned first: the
    miss blocks form one (smaller) stacked dispatch, hit blocks replay
    their memoized rows, and the splice preserves block order — so the
    absorbed estimates are bit-identical to the cache-off path.
    """

    name = "serial"

    def refine_round(self, problem, states, gains, category=None):
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        if self.cache is None:
            performance = evaluate_pending(problem, pending)
            scatter_round(problem, pending, performance)
            return
        round_ = CachedRound(self.cache, problem, pending)
        missed = evaluate_pending(problem, round_.misses) if round_.misses else None
        performance = round_.assemble(missed)
        scatter_round(problem, pending, performance, round_.hit_rows, self.cache)
