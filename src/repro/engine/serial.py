"""Fused single-process backend: one stacked dispatch per round.

Where the legacy path walks the candidates one by one (draw, screen,
simulate a handful of samples, bookkeep — times 50 candidates, times every
OCBA increment), :class:`SerialEngine` runs the cheap per-candidate halves
locally and fuses every border-band sample of the round into **one**
``(sum(k_i), ...)`` evaluation — one vectorized simulate, one vectorized
margin computation — before scattering the results back.  On the synthetic
problems this removes almost all Python-level overhead from the OCBA hot
path (see ``benchmarks/test_bench_engine.py``).
"""

from __future__ import annotations

import numpy as np

from repro.engine.base import EvaluationEngine, collect_pending, evaluate_pending

__all__ = ["SerialEngine"]


class SerialEngine(EvaluationEngine):
    """Default backend: fused rounds, evaluated in-process."""

    name = "serial"

    def refine_round(self, problem, states, gains, category=None):
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        performance = evaluate_pending(problem, pending)
        self._scatter(problem, pending, performance)

    @staticmethod
    def _scatter(problem, pending, performance) -> None:
        """Charge ledgers and feed each block its performance rows back.

        The margin matrix and the per-block pass counts are computed once
        on the stacked block — two vectorized ops instead of one
        ``specs.margins`` + one boolean reduction per candidate — and each
        state receives its pre-sliced share.
        """
        margins = problem.specs.margins(performance)
        passed = np.all(margins >= 0.0, axis=1)
        sizes = [block.n_samples for block in pending]
        starts = np.concatenate([[0], np.cumsum(sizes[:-1])]).astype(np.intp)
        pass_counts = np.add.reduceat(passed, starts)
        offset = 0
        for block, size, n_passed in zip(pending, sizes, pass_counts):
            if block.state.ledger is not None:
                block.state.ledger.charge(size, category=block.category)
            stop = offset + size
            block.state.absorb(
                block.samples,
                performance[offset:stop],
                margins[offset:stop],
                int(n_passed),
            )
            offset = stop
