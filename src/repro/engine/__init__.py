"""Execution engines: how a round of candidate refinements is simulated.

The algorithm layer (OCBA stage 1, stage-2 promotion, the fixed-budget
baseline, memetic local search) describes *what* to refine — ``(candidate,
k_i samples)`` per round — and an :class:`~repro.engine.base.EvaluationEngine`
decides *how* to execute it:

* :class:`~repro.engine.base.LegacyEngine` (``"legacy"``) — the original
  per-candidate Python loop; the bit-identical reference baseline.
* :class:`~repro.engine.serial.SerialEngine` (``"serial"``, the default) —
  fuses each round into one stacked ``(sum(k_i), ...)`` dispatch.
* :class:`~repro.engine.process.ProcessPoolEngine` (``"process"``) — shards
  fused rounds across worker processes for simulation-bound problems.
* :class:`~repro.engine.auto.AutoEngine` (``"auto"``) — measures the
  per-simulation cost on a pilot and commits to serial or process
  accordingly (the ``BENCH_engine.json`` trade-off, automated).
* :class:`~repro.engine.remote.RemoteEngine` (``"remote"``) — streams fused
  rounds as wire chunks to a pool of ``repro worker`` HTTP daemons on other
  hosts, pipelined with bounded in-flight backpressure and re-dispatch on
  worker death.

All backends are seed-reproducible against each other: sample draws stay in
per-candidate RNG streams in the parent process, so only the *execution* of
the simulations moves.  Engines resolve by name through :data:`ENGINES`
(``repro.api.register_engine`` adds third-party backends), surface on
:class:`~repro.api.spec.RunSpec` as the ``engine`` field, and on the CLI as
``repro run --engine``.

Any backend can additionally carry a **warm-start evaluation cache**
(:mod:`repro.engine.cache`, resolved by name through :data:`CACHES` /
``RunSpec.cache`` / ``--cache``): rounds are partitioned into content-hash
hits and misses in the parent, only the misses are simulated, and replayed
rows are credited in the ledger's ``cached`` column without moving the
paper-accounting totals.
"""

from repro.engine.auto import AutoEngine
from repro.engine.base import EvaluationEngine, LegacyEngine
from repro.engine.cache import (
    CACHES,
    CacheStats,
    EvaluationCache,
    LRUEvaluationCache,
    NullCache,
    make_cache,
)
from repro.engine.process import ProcessPoolEngine
from repro.engine.remote import RemoteEngine
from repro.engine.serial import SerialEngine
from repro.registry import Registry

__all__ = [
    "EvaluationEngine",
    "LegacyEngine",
    "SerialEngine",
    "ProcessPoolEngine",
    "AutoEngine",
    "RemoteEngine",
    "ENGINES",
    "make_engine",
    "EvaluationCache",
    "LRUEvaluationCache",
    "NullCache",
    "CacheStats",
    "CACHES",
    "make_cache",
]

#: Name -> execution-engine class; the API layer resolves through it.
ENGINES: Registry = Registry("engine")
ENGINES.register("legacy", LegacyEngine)
ENGINES.register("serial", SerialEngine)
ENGINES.register("process", ProcessPoolEngine)
ENGINES.register("auto", AutoEngine)
ENGINES.register("remote", RemoteEngine)


def make_engine(kind, **kwargs) -> EvaluationEngine:
    """Coerce ``kind`` into an engine instance.

    Accepts an existing :class:`EvaluationEngine` (returned unchanged;
    ``kwargs`` are rejected), a registry name (instantiated with
    ``kwargs``), or ``None`` (the default :class:`SerialEngine`).
    """
    if kind is None:
        return SerialEngine(**kwargs)
    if isinstance(kind, EvaluationEngine):
        if kwargs:
            raise TypeError(
                "engine parameters only apply when the engine is resolved "
                "by name; configure the instance directly instead"
            )
        return kind
    return ENGINES.create(kind, **kwargs)
