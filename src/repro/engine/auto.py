"""Adaptive backend: measure the workload, then pick serial or process.

``BENCH_engine.json`` documents the trade-off the hard-coded backends leave
to the user: the fused in-process dispatch wins on cheap synthetic
problems (micro-second simulations — IPC would dominate), while the
process pool wins on simulation-bound circuit problems (hundreds of
microseconds per MNA/AC solve).  :class:`AutoEngine` makes that choice
from *measured* workload shape instead of guesswork: the first rounds run
in-process as a pilot (identically to
:class:`~repro.engine.serial.SerialEngine`), timing the simulation
dispatch and counting the rows each round stacks, and once enough rows
are measured the engine commits.

The commit uses a crossover model rather than a bare cost threshold.  A
round of ``R`` rows at per-row cost ``t`` takes ``R * t`` in-process; on a
``W``-worker pool it takes roughly ``overhead + R * ipc + R * t / W``
(per-round dispatch overhead, per-row descriptor/result IPC, then the
simulations at ideal speed-up).  Shipping therefore wins when::

    t  >  (overhead / R + ipc) / (1 - 1 / W)

— the *crossover cost*.  Small rounds (tiny ``R``) raise it (the fixed
dispatch overhead amortises badly), extra workers lower it.  Both the
measured inputs and the resulting decision are recorded in
:attr:`AutoEngine.decision` and surface on
:class:`~repro.core.moheco.MOHECOResult` as ``engine_decision``.

Determinism is untouched: the pilot evaluates exactly the rounds a serial
backend would evaluate, and every backend is seed-equivalent, so the
decision only ever changes wall-clock.
"""

from __future__ import annotations

import os
import time

from repro.engine.base import (
    EvaluationEngine,
    collect_pending,
    evaluate_pending,
    scatter_round,
)
from repro.engine.cache import CachedRound
from repro.engine.process import ProcessPoolEngine
from repro.engine.serial import SerialEngine

__all__ = ["AutoEngine"]

#: Per-row IPC cost of the pool path [s]: descriptor pickling, result
#: pickling and queue traffic, per stacked row.  Calibrated from the
#: BENCH_engine.json sphere numbers (where the round is pure IPC).
DEFAULT_IPC_ROW_COST_SECONDS = 25e-6

#: Fixed per-round pool dispatch cost [s]: chunking, shared-memory
#: staging, future submission and collection.
DEFAULT_ROUND_OVERHEAD_SECONDS = 400e-6

#: Kept for backward compatibility with callers of the pre-crossover
#: fixed-threshold interface (``cost_threshold_seconds=...``).
DEFAULT_COST_THRESHOLD_SECONDS = 100e-6


class AutoEngine(EvaluationEngine):
    """Pilot-measured choice between the serial and process backends.

    Parameters
    ----------
    workers:
        Worker count handed to the process pool if chosen; ``None``
        defers to :class:`ProcessPoolEngine`'s default (CPU count, capped).
    pilot_rows:
        Keep measuring in-process until this many simulation rows have
        been timed; then commit.
    cost_threshold_seconds:
        ``None`` (default) commits via the crossover model above.  A float
        bypasses the model: the process pool is selected iff the measured
        per-row cost is at or above this fixed threshold (``0.0`` forces
        the pool — handy in tests).
    ipc_row_cost_seconds / round_overhead_seconds:
        The crossover model's IPC constants; override after measuring a
        platform with ``benchmarks/test_bench_engine.py``.
    transfer:
        Transfer mechanism handed to the process pool if chosen (see
        :class:`~repro.engine.process.ProcessPoolEngine`).
    """

    name = "auto"

    def __init__(
        self,
        workers: int | None = None,
        pilot_rows: int = 64,
        cost_threshold_seconds: float | None = None,
        ipc_row_cost_seconds: float = DEFAULT_IPC_ROW_COST_SECONDS,
        round_overhead_seconds: float = DEFAULT_ROUND_OVERHEAD_SECONDS,
        transfer: str = "shm",
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pilot_rows < 1:
            raise ValueError(f"pilot_rows must be >= 1, got {pilot_rows}")
        self.workers = workers
        self.pilot_rows = int(pilot_rows)
        self.cost_threshold_seconds = (
            None if cost_threshold_seconds is None else float(cost_threshold_seconds)
        )
        self.ipc_row_cost_seconds = float(ipc_row_cost_seconds)
        self.round_overhead_seconds = float(round_overhead_seconds)
        self.transfer = transfer
        #: Registry name of the committed backend (``None`` while piloting).
        self.chosen: str | None = None
        #: Measured per-simulation cost the decision was based on.
        self.pilot_cost_seconds: float | None = None
        #: Full record of the commit (inputs + outcome); ``None`` while
        #: piloting.  Surfaces as ``MOHECOResult.engine_decision``.
        self.decision: dict | None = None
        self._cache = None
        self._delegate: EvaluationEngine | None = None
        self._timed_rows = 0
        self._timed_seconds = 0.0
        self._timed_rounds = 0

    # The attached warm-start cache must follow the delegation: rounds
    # executed before the commit consult it in the pilot path below, and
    # the committed backend inherits it.
    @property
    def cache(self):
        return self._cache

    @cache.setter
    def cache(self, value) -> None:
        self._cache = value
        if self._delegate is not None:
            self._delegate.cache = value

    def refine_round(self, problem, states, gains, category=None):
        if self._delegate is not None:
            self._delegate.refine_round(problem, states, gains, category)
            return
        # Pilot: evaluate in-process exactly as SerialEngine would, timing
        # the simulation dispatch (not the draw/screen bookkeeping, which
        # every backend pays identically in-parent).
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        if self._cache is None:
            started = time.perf_counter()
            performance = evaluate_pending(problem, pending)
            self._timed_seconds += time.perf_counter() - started
            scatter_round(problem, pending, performance)
            self._timed_rows += sum(block.n_samples for block in pending)
            self._timed_rounds += 1
        else:
            # Only genuinely simulated rows may inform the cost estimate:
            # replayed rows would read as impossibly cheap simulations and
            # bias the engine toward staying serial.
            round_ = CachedRound(self._cache, problem, pending)
            missed = None
            if round_.misses:
                started = time.perf_counter()
                missed = evaluate_pending(problem, round_.misses)
                self._timed_seconds += time.perf_counter() - started
                self._timed_rows += sum(b.n_samples for b in round_.misses)
                self._timed_rounds += 1
            performance = round_.assemble(missed)
            scatter_round(problem, pending, performance, round_.hit_rows, self._cache)
        if self._timed_rows >= self.pilot_rows:
            self._commit()

    def crossover_cost_seconds(self, workers: int, rows_per_round: float) -> float:
        """Per-row cost above which a ``workers``-wide pool beats serial."""
        if workers <= 1:
            return float("inf")
        amortised_overhead = self.round_overhead_seconds / max(rows_per_round, 1.0)
        return (amortised_overhead + self.ipc_row_cost_seconds) / (1.0 - 1.0 / workers)

    def _commit(self) -> None:
        self.pilot_cost_seconds = self._timed_seconds / self._timed_rows
        pool_workers = (
            self.workers if self.workers is not None else min(os.cpu_count() or 1, 8)
        )
        rows_per_round = self._timed_rows / max(self._timed_rounds, 1)
        if self.cost_threshold_seconds is not None:
            model = "fixed-threshold"
            crossover = self.cost_threshold_seconds
        else:
            model = "crossover"
            crossover = self.crossover_cost_seconds(pool_workers, rows_per_round)
        if pool_workers > 1 and self.pilot_cost_seconds >= crossover:
            self._delegate = ProcessPoolEngine(
                workers=pool_workers, transfer=self.transfer
            )
        else:
            # Cheap simulations (or nothing to parallelise across): IPC
            # would dominate, stay fused in-process.
            self._delegate = SerialEngine()
        self._delegate.cache = self._cache
        self.chosen = self._delegate.name
        self.decision = {
            "chosen": self.chosen,
            "model": model,
            "pilot_cost_seconds": self.pilot_cost_seconds,
            # inf (single worker: the pool can never win) is stored as None
            # to keep the dict JSON-clean.
            "crossover_cost_seconds": (
                crossover if crossover != float("inf") else None
            ),
            "mean_rows_per_round": rows_per_round,
            "pilot_rows": self._timed_rows,
            "pilot_rounds": self._timed_rounds,
            "workers": pool_workers,
            "transfer": self.transfer if self.chosen == "process" else None,
        }

    def close(self) -> None:
        if self._delegate is not None:
            self._delegate.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.chosen or f"piloting ({self._timed_rows}/{self.pilot_rows} rows)"
        return f"AutoEngine({state})"
