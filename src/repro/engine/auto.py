"""Adaptive backend: measure the workload, then pick serial or process.

``BENCH_engine.json`` documents the trade-off the hard-coded backends leave
to the user: the fused in-process dispatch wins on cheap synthetic
problems (micro-second simulations — IPC would dominate), while the
process pool wins on simulation-bound circuit problems (milli-second
MNA/AC solves).  :class:`AutoEngine` makes that choice from *measured*
cost instead of guesswork: the first rounds run in-process as a pilot
(identically to :class:`~repro.engine.serial.SerialEngine`), the per-
simulation cost is timed, and once enough rows are measured the engine
commits to :class:`SerialEngine` below the threshold or
:class:`~repro.engine.process.ProcessPoolEngine` above it.

Determinism is untouched: the pilot evaluates exactly the rounds a serial
backend would evaluate, and every backend is seed-equivalent, so the
decision only ever changes wall-clock.
"""

from __future__ import annotations

import os
import time

from repro.engine.base import (
    EvaluationEngine,
    collect_pending,
    evaluate_pending,
    scatter_round,
)
from repro.engine.cache import CachedRound
from repro.engine.process import ProcessPoolEngine
from repro.engine.serial import SerialEngine

__all__ = ["AutoEngine"]

#: Per-simulation cost above which the process pool pays off.  From the
#: BENCH_engine.json trade-off: the synthetic sphere at ~3 us/sim loses
#: ~25 us/row to pool IPC, so shipping starts winning when the simulation
#: itself costs several times the IPC — circuit problems sit at
#: hundreds of us to ms per sample, comfortably above.
DEFAULT_COST_THRESHOLD_SECONDS = 100e-6


class AutoEngine(EvaluationEngine):
    """Pilot-measured choice between the serial and process backends.

    Parameters
    ----------
    workers:
        Worker count handed to the process pool if chosen; ``None``
        defers to :class:`ProcessPoolEngine`'s default (CPU count, capped).
    pilot_rows:
        Keep measuring in-process until this many simulation rows have
        been timed; then commit.
    cost_threshold_seconds:
        Measured per-simulation cost at or above which the process pool is
        selected (default: the ``BENCH_engine.json``-derived 100 us).
    """

    name = "auto"

    def __init__(
        self,
        workers: int | None = None,
        pilot_rows: int = 64,
        cost_threshold_seconds: float = DEFAULT_COST_THRESHOLD_SECONDS,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pilot_rows < 1:
            raise ValueError(f"pilot_rows must be >= 1, got {pilot_rows}")
        self.workers = workers
        self.pilot_rows = int(pilot_rows)
        self.cost_threshold_seconds = float(cost_threshold_seconds)
        #: Registry name of the committed backend (``None`` while piloting).
        self.chosen: str | None = None
        #: Measured per-simulation cost the decision was based on.
        self.pilot_cost_seconds: float | None = None
        self._cache = None
        self._delegate: EvaluationEngine | None = None
        self._timed_rows = 0
        self._timed_seconds = 0.0

    # The attached warm-start cache must follow the delegation: rounds
    # executed before the commit consult it in the pilot path below, and
    # the committed backend inherits it.
    @property
    def cache(self):
        return self._cache

    @cache.setter
    def cache(self, value) -> None:
        self._cache = value
        if self._delegate is not None:
            self._delegate.cache = value

    def refine_round(self, problem, states, gains, category=None):
        if self._delegate is not None:
            self._delegate.refine_round(problem, states, gains, category)
            return
        # Pilot: evaluate in-process exactly as SerialEngine would, timing
        # the simulation dispatch (not the draw/screen bookkeeping, which
        # every backend pays identically in-parent).
        pending = collect_pending(states, gains, category)
        if not pending:
            return
        if self._cache is None:
            started = time.perf_counter()
            performance = evaluate_pending(problem, pending)
            self._timed_seconds += time.perf_counter() - started
            scatter_round(problem, pending, performance)
            self._timed_rows += sum(block.n_samples for block in pending)
        else:
            # Only genuinely simulated rows may inform the cost estimate:
            # replayed rows would read as impossibly cheap simulations and
            # bias the engine toward staying serial.
            round_ = CachedRound(self._cache, problem, pending)
            missed = None
            if round_.misses:
                started = time.perf_counter()
                missed = evaluate_pending(problem, round_.misses)
                self._timed_seconds += time.perf_counter() - started
                self._timed_rows += sum(b.n_samples for b in round_.misses)
            performance = round_.assemble(missed)
            scatter_round(problem, pending, performance, round_.hit_flags, self._cache)
        if self._timed_rows >= self.pilot_rows:
            self._commit()

    def _commit(self) -> None:
        self.pilot_cost_seconds = self._timed_seconds / self._timed_rows
        pool_workers = (
            self.workers if self.workers is not None else min(os.cpu_count() or 1, 8)
        )
        if (
            pool_workers > 1
            and self.pilot_cost_seconds >= self.cost_threshold_seconds
        ):
            self._delegate = ProcessPoolEngine(workers=pool_workers)
        else:
            # Cheap simulations (or nothing to parallelise across): IPC
            # would dominate, stay fused in-process.
            self._delegate = SerialEngine()
        self._delegate.cache = self._cache
        self.chosen = self._delegate.name

    def close(self) -> None:
        if self._delegate is not None:
            self._delegate.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.chosen or f"piloting ({self._timed_rows}/{self.pilot_rows} rows)"
        return f"AutoEngine({state})"
