"""Performance-specific worst-case distance (PSWCD) method (section 3.4).

PSWCD methods [Schenkel 2001] linearise each specification around the
nominal process point and size the circuit by maximising the *worst-case
distances*: the distance (in standardised process space) from nominal to the
nearest point where spec ``j`` fails.  For a linearised margin
``m_j(z) ~ m_j(0) + w_j . z`` with ``z`` standard-normal, the worst-case
distance is ``beta_j = m_j(0) / ||w_j||`` and the per-spec yield is
``Phi(beta_j)``.

The over-design the paper criticises is structural: combining the separate
per-spec worst cases assumes they can occur *simultaneously*, so the
combined yield is estimated pessimistically — here via the Bonferroni
(union) bound ``Y_wc = 1 - sum_j (1 - Phi(beta_j))`` — and designs are
rejected that MC would accept.  ``repro.experiments.pswcd_study`` quantifies
this gap against reference MC.

Gradients are estimated by ridge regression on simulated samples
(spec-wise linearisation), matching the spirit of feasibility-guided PSWCD
without requiring adjoint sensitivities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

from repro.ledger import SimulationLedger
from repro.optim.de import DifferentialEvolution
from repro.rng import ensure_rng, spawn

__all__ = ["WorstCaseAnalysis", "pswcd_analysis", "PSWCDOptimizer"]


@dataclass
class WorstCaseAnalysis:
    """Worst-case distances of one design point."""

    #: Per-spec worst-case distances (sigmas to the failure surface).
    betas: np.ndarray
    #: Per-spec yields Phi(beta_j).
    spec_yields: np.ndarray
    #: Pessimistic combined yield (union bound over per-spec worst cases).
    yield_bound: float
    #: Spec names, aligned with ``betas``.
    spec_names: list[str]

    @property
    def worst_beta(self) -> float:
        """The binding worst-case distance (PSWCD's sizing objective)."""
        return float(np.min(self.betas))


def pswcd_analysis(
    problem,
    x: np.ndarray,
    n_train: int = 200,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    ridge: float = 1e-3,
) -> WorstCaseAnalysis:
    """Spec-wise linearised worst-case analysis of design ``x``.

    Simulates ``n_train`` process samples (charged to category ``pswcd``),
    fits one linear model per spec margin in *standardised* process
    coordinates, and converts intercept/gradient-norm into worst-case
    distances.
    """
    rng = ensure_rng(rng)
    variation = problem.variation
    samples = variation.sample(n_train, rng)
    performance = problem.simulate(x, samples, ledger, category="pswcd")
    margins = problem.specs.margins(performance)

    # Standardise process coordinates so distances are in sigma units.
    means = variation.full_group.means()
    stds = np.maximum(variation.full_group.stds(), 1e-12)
    z = (samples - means) / stds

    n, d = z.shape
    design = np.hstack([np.ones((n, 1)), z])
    penalty = np.sqrt(ridge) * np.eye(d + 1)
    penalty[0, 0] = 0.0
    a_aug = np.vstack([design, penalty])
    b_aug = np.vstack([margins, np.zeros((d + 1, margins.shape[1]))])
    weights, *_ = np.linalg.lstsq(a_aug, b_aug, rcond=None)

    intercepts = weights[0]
    gradients = weights[1:]
    norms = np.maximum(np.linalg.norm(gradients, axis=0), 1e-12)
    betas = intercepts / norms
    spec_yields = _scipy_stats.norm.cdf(betas)
    yield_bound = max(0.0, 1.0 - float(np.sum(1.0 - spec_yields)))
    return WorstCaseAnalysis(
        betas=betas,
        spec_yields=spec_yields,
        yield_bound=yield_bound,
        spec_names=list(problem.specs.metric_names),
    )


class PSWCDOptimizer:
    """Sizes a circuit by maximising the minimum worst-case distance.

    The classic PSWCD objective: push the nominal design as many sigmas away
    from every spec's failure surface as possible.  Feasibility at nominal
    is enforced with Deb-style graded objectives (infeasible designs score
    ``-1 - violation``).
    """

    def __init__(
        self,
        problem,
        n_train: int = 200,
        rng: np.random.Generator | int | None = None,
        ledger: SimulationLedger | None = None,
    ) -> None:
        self.problem = problem
        self.n_train = int(n_train)
        self.rng = ensure_rng(rng)
        self.ledger = ledger if ledger is not None else SimulationLedger()
        #: DE result of the last :meth:`run` (generation count, trajectory).
        self.de_result = None

    def objective(self, x: np.ndarray) -> float:
        """min-beta objective with feasibility grading."""
        feasible, violation = self.problem.nominal_feasibility(x, self.ledger)
        if not feasible:
            return -1.0 - violation
        analysis = pswcd_analysis(
            self.problem, x, self.n_train, spawn(self.rng), self.ledger
        )
        return analysis.worst_beta

    def run(
        self,
        pop_size: int = 30,
        max_generations: int = 40,
        patience: int = 10,
    ):
        """Optimize; returns ``(best_x, best_min_beta, analysis)``."""
        de = DifferentialEvolution(self.problem.space)
        result = de.optimize(
            self.objective,
            pop_size=pop_size,
            max_generations=max_generations,
            rng=self.rng,
            patience=patience,
        )
        self.de_result = result
        analysis = pswcd_analysis(
            self.problem, result.x, self.n_train, spawn(self.rng), self.ledger
        )
        return result.x, result.objective, analysis
