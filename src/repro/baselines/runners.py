"""Legacy wrappers for the paper's compared methods.

These predate the unified :func:`repro.api.optimize` driver and are kept as
thin deprecation shims: each one forwards to ``optimize(problem,
method=...)`` with the matching method-registry name.  New code should call
:func:`repro.api.optimize` (or pass a :class:`repro.api.RunSpec`) directly.

All three methods share the same evolutionary engine, sampler (LHS),
acceptance sampling and constraint handling — exactly as the paper states
("In all methods, the AS and LHS technique are used ... All experiments
also use the DE optimization engine and the selection-based constraint
handling mechanism") — and differ only in the yield-estimation budget
policy and the presence of the memetic operators.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.moheco import MOHECOResult
from repro.ledger import SimulationLedger

__all__ = ["run_fixed_budget", "run_oo_only", "run_moheco"]


def _delegate(method: str, problem, rng, ledger, **overrides) -> MOHECOResult:
    # Imported lazily: repro.api imports repro.baselines for the pswcd
    # registration, so a module-level import here would be circular.
    from repro.api.driver import optimize

    warnings.warn(
        f"run_{method} is deprecated; use repro.api.optimize(problem, "
        f"method={method!r}, ...) or a RunSpec instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return optimize(problem, method=method, rng=rng, ledger=ledger, **overrides)


def run_fixed_budget(
    problem,
    n_fixed: int = 500,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    **overrides,
) -> MOHECOResult:
    """AS + LHS with ``n_fixed`` simulations per feasible candidate.

    .. deprecated:: 1.1
       Use ``optimize(problem, method="fixed_budget", n_fixed=...)``.
    """
    return _delegate("fixed_budget", problem, rng, ledger, n_fixed=n_fixed, **overrides)


def run_oo_only(
    problem,
    n_max: int = 500,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    **overrides,
) -> MOHECOResult:
    """OO + AS + LHS: budget allocation without memetic local search.

    .. deprecated:: 1.1
       Use ``optimize(problem, method="oo_only", n_max=...)``.
    """
    return _delegate("oo_only", problem, rng, ledger, n_max=n_max, **overrides)


def run_moheco(
    problem,
    n_max: int = 500,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    **overrides,
) -> MOHECOResult:
    """The full MOHECO algorithm.

    .. deprecated:: 1.1
       Use ``optimize(problem, method="moheco", n_max=...)``.
    """
    return _delegate("moheco", problem, rng, ledger, n_max=n_max, **overrides)
