"""Thin factories running the paper's compared methods.

All three share the same evolutionary engine, sampler (LHS), acceptance
sampling and constraint handling — exactly as the paper states ("In all
methods, the AS and LHS technique are used ... All experiments also use the
DE optimization engine and the selection-based constraint handling
mechanism") — and differ only in the yield-estimation budget policy and the
presence of the memetic operators.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import MOHECOConfig
from repro.core.moheco import MOHECO, MOHECOResult
from repro.ledger import SimulationLedger

__all__ = ["run_fixed_budget", "run_oo_only", "run_moheco"]


def _run(problem, config: MOHECOConfig, rng, ledger) -> MOHECOResult:
    engine = MOHECO(problem, config, ledger=ledger or SimulationLedger(), rng=rng)
    return engine.run()


def run_fixed_budget(
    problem,
    n_fixed: int = 500,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    **overrides,
) -> MOHECOResult:
    """AS + LHS with ``n_fixed`` simulations per feasible candidate."""
    config = MOHECOConfig.fixed_budget(n_fixed=n_fixed).with_overrides(**overrides)
    return _run(problem, config, rng, ledger)


def run_oo_only(
    problem,
    n_max: int = 500,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    **overrides,
) -> MOHECOResult:
    """OO + AS + LHS: budget allocation without memetic local search."""
    config = MOHECOConfig.oo_only(n_max=n_max).with_overrides(**overrides)
    return _run(problem, config, rng, ledger)


def run_moheco(
    problem,
    n_max: int = 500,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    **overrides,
) -> MOHECOResult:
    """The full MOHECO algorithm."""
    config = MOHECOConfig.moheco(n_max=n_max).with_overrides(**overrides)
    return _run(problem, config, rng, ledger)
