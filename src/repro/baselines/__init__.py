"""Comparison methods from the paper's experimental section.

* :func:`run_fixed_budget` — "AS + LHS, N simulations per feasible
  candidate" (the state-of-the-art MC flow of Tables 1-4).
* :func:`run_oo_only` — "OO + AS + LHS": ordinal optimization without the
  memetic operators (isolates the OO contribution, Table 1/2 row 4).
* :func:`run_moheco` — the full method.
* :mod:`repro.baselines.pswcd` — the performance-specific worst-case
  distance method discussed in section 3.4.
* The RSB (response-surface) baseline lives in :mod:`repro.surrogate`.
"""

from repro.baselines.runners import run_fixed_budget, run_moheco, run_oo_only
from repro.baselines.pswcd import (
    PSWCDOptimizer,
    WorstCaseAnalysis,
    pswcd_analysis,
)

__all__ = [
    "run_fixed_budget",
    "run_oo_only",
    "run_moheco",
    "pswcd_analysis",
    "WorstCaseAnalysis",
    "PSWCDOptimizer",
]
