"""MOHECO — analog circuit yield optimization via computing budget
allocation and memetic search.

A self-contained reproduction of Liu, Fernández, Gielen, *"An Accurate and
Efficient Yield Optimization Method for Analog Circuits Based on Computing
Budget Allocation and Memetic Search Technique"*, DATE 2010.

Quickstart
----------
Everything routes through the :mod:`repro.api` facade — problems and
methods are registry names, runs are declarative specs:

>>> from repro import RunSpec, optimize
>>> result = optimize(RunSpec(problem="sphere", method="moheco", seed=7))
>>> result.best_yield  # doctest: +SKIP
1.0

or imperatively, with callbacks observing the generation loop:

>>> from repro.api import EarlyStopOnYield
>>> result = optimize("sphere", method="oo_only", seed=7,
...                   callbacks=[EarlyStopOnYield(0.99)])  # doctest: +SKIP

The same runs are scriptable from the shell::

    python -m repro run --problem folded_cascode --method moheco --seed 7 \
        --out result.json
    python -m repro list

Replicated evaluation — the paper's "10 runs with independent random
numbers" — is a first-class sweep: a declarative
:class:`~repro.sweep.SweepSpec` grid (methods × problems × seeds) whose
whole runs shard across a process pool, bit-identical to serial, with a
resumable JSONL result store:

>>> from repro import SweepSpec, MethodSpec, ProblemSpec, run_sweep
>>> sweep = run_sweep(SweepSpec(                       # doctest: +SKIP
...     methods=(MethodSpec("moheco"), MethodSpec("fixed_budget")),
...     problems=(ProblemSpec("folded_cascode"),), runs=10),
...     workers=4, store="store.jsonl")

or from the shell::

    python -m repro sweep --problem folded_cascode --method moheco \
        --method fixed_budget --runs 10 --workers 4 --out store.jsonl

Results serialize losslessly (``result.to_dict()`` /
``MOHECOResult.from_dict``), and third-party problems, methods, samplers,
yield estimators and execution engines plug in by name via
``repro.api.register_*``.  The pre-1.1
``run_moheco``/``run_oo_only``/``run_fixed_budget`` wrappers still work as
deprecation shims over :func:`optimize`.

Execution engines
-----------------
The Monte-Carlo refinement work — OCBA stage-1 rounds, stage-2
promotions, the fixed-budget baseline, memetic local search — is expressed
as *rounds* of ``(candidate, k_i samples)`` requests and executed by a
pluggable :class:`~repro.engine.base.EvaluationEngine`:

* ``"serial"`` (default) fuses each round into one stacked
  ``(sum(k_i), ...)`` vectorized dispatch;
* ``"process"`` shards fused rounds across worker processes, for
  simulation-bound circuit problems (``engine_params={"workers": N}``);
* ``"auto"`` times a pilot of in-process rounds and commits to serial or
  process based on the measured per-simulation cost;
* ``"legacy"`` is the original per-candidate loop.

Every backend is seed-equivalent — sample draws stay in per-candidate RNG
streams, so the result is bit-identical and only the wall-clock changes::

    optimize(RunSpec(problem="folded_cascode", seed=7,
                     engine="process", engine_params={"workers": 4}))
    # shell: python -m repro run --problem folded_cascode --seed 7 \
    #            --engine process --engine-param workers=4

Any backend can carry a **warm-start evaluation cache** (``cache="lru"``,
``--cache lru``, optionally with a JSONL spill file shared across runs):
repeated ``(design, sample-block)`` evaluations replay memoized rows
instead of re-simulating.  Replayed rows stay ledger-faithful — charged to
their category and reported under the separate ``cached`` column — so the
paper-accounting totals and the seeded results are unchanged.

Package map
-----------
* :mod:`repro.api` — the public facade: registries, RunSpec, optimize, CLI.
* :mod:`repro.core` — the MOHECO engine, config, history, callbacks.
* :mod:`repro.engine` — execution backends for the refinement rounds
  (fused serial dispatch, process pool, legacy loop).
* :mod:`repro.problems` — the paper's two circuits + synthetic problems.
* :mod:`repro.circuit` — the analog evaluation substrate (devices, MNA,
  topologies, technologies).
* :mod:`repro.process` — statistical process-variation models.
* :mod:`repro.sampling` / :mod:`repro.yieldsim` — PMC/LHS/Sobol/AS and
  Monte-Carlo yield estimation.
* :mod:`repro.ocba` — ordinal optimization / budget allocation.
* :mod:`repro.optim` — DE, Nelder-Mead, constraint handling.
* :mod:`repro.baselines` / :mod:`repro.surrogate` — compared methods.
* :mod:`repro.experiments` — the paper's tables and figures.
"""

from repro.api import (
    MethodSpec,
    ProblemSpec,
    ResultStore,
    RunSpec,
    SweepSpec,
    optimize,
    register_estimator,
    register_method,
    register_problem,
    register_sampler,
    run_sweep,
)
from repro.baselines import run_fixed_budget, run_moheco, run_oo_only
from repro.core import (
    MOHECO,
    MOHECOConfig,
    MOHECOResult,
    Callback,
    CheckpointCallback,
    EarlyStopOnYield,
    ProgressCallback,
)
from repro.ledger import SimulationLedger
from repro.problems import (
    YieldProblem,
    make_folded_cascode_problem,
    make_problem,
    make_quadratic_problem,
    make_sphere_problem,
    make_telescopic_problem,
)
from repro.specs import Spec, SpecSet
from repro.yieldsim import reference_yield

__version__ = "1.1.0"

__all__ = [
    # unified API
    "optimize",
    "RunSpec",
    "SweepSpec",
    "MethodSpec",
    "ProblemSpec",
    "ResultStore",
    "run_sweep",
    "register_method",
    "register_problem",
    "register_sampler",
    "register_estimator",
    "Callback",
    "ProgressCallback",
    "EarlyStopOnYield",
    "CheckpointCallback",
    # engine + data types
    "MOHECO",
    "MOHECOConfig",
    "MOHECOResult",
    "SimulationLedger",
    "Spec",
    "SpecSet",
    "YieldProblem",
    # problem factories
    "make_problem",
    "make_folded_cascode_problem",
    "make_telescopic_problem",
    "make_sphere_problem",
    "make_quadratic_problem",
    # legacy shims
    "run_moheco",
    "run_oo_only",
    "run_fixed_budget",
    "reference_yield",
    "__version__",
]
