"""MOHECO — analog circuit yield optimization via computing budget
allocation and memetic search.

A self-contained reproduction of Liu, Fernández, Gielen, *"An Accurate and
Efficient Yield Optimization Method for Analog Circuits Based on Computing
Budget Allocation and Memetic Search Technique"*, DATE 2010.

Quickstart
----------
>>> from repro import make_folded_cascode_problem, run_moheco
>>> result = run_moheco(make_folded_cascode_problem(), rng=7)
>>> result.best_yield  # doctest: +SKIP
1.0

Package map
-----------
* :mod:`repro.core` — the MOHECO engine.
* :mod:`repro.problems` — the paper's two circuits + synthetic problems.
* :mod:`repro.circuit` — the analog evaluation substrate (devices, MNA,
  topologies, technologies).
* :mod:`repro.process` — statistical process-variation models.
* :mod:`repro.sampling` / :mod:`repro.yieldsim` — PMC/LHS/Sobol/AS and
  Monte-Carlo yield estimation.
* :mod:`repro.ocba` — ordinal optimization / budget allocation.
* :mod:`repro.optim` — DE, Nelder-Mead, constraint handling.
* :mod:`repro.baselines` / :mod:`repro.surrogate` — compared methods.
* :mod:`repro.experiments` — the paper's tables and figures.
"""

from repro.baselines import run_fixed_budget, run_moheco, run_oo_only
from repro.core import MOHECO, MOHECOConfig, MOHECOResult
from repro.ledger import SimulationLedger
from repro.problems import (
    YieldProblem,
    make_folded_cascode_problem,
    make_quadratic_problem,
    make_sphere_problem,
    make_telescopic_problem,
)
from repro.specs import Spec, SpecSet
from repro.yieldsim import reference_yield

__version__ = "1.0.0"

__all__ = [
    "MOHECO",
    "MOHECOConfig",
    "MOHECOResult",
    "SimulationLedger",
    "Spec",
    "SpecSet",
    "YieldProblem",
    "make_folded_cascode_problem",
    "make_telescopic_problem",
    "make_sphere_problem",
    "make_quadratic_problem",
    "run_moheco",
    "run_oo_only",
    "run_fixed_budget",
    "reference_yield",
    "__version__",
]
