"""Built-in method registrations.

The paper's compared methods are four entries in the method registry, all
driven through :func:`repro.api.optimize`:

* ``moheco`` — the full algorithm (OO + AS + LHS + memetic NM).
* ``oo_only`` — budget allocation without the memetic operators.
* ``fixed_budget`` — AS + LHS with ``n_fixed`` simulations per feasible
  candidate (the state-of-the-art MC flow the paper compares against).
* ``pswcd`` — the performance-specific worst-case-distance baseline of
  section 3.4, adapted to the common result type.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.api.registries import register_method
from repro.baselines.pswcd import PSWCDOptimizer
from repro.core.callbacks import CallbackList
from repro.core.config import MOHECOConfig
from repro.core.history import OptimizationHistory
from repro.core.moheco import MOHECO, MOHECOResult
from repro.ledger import SimulationLedger
from repro.yieldsim.estimator import YieldEstimate

__all__ = []


def _config_builder(config_factory, budget_arg: str):
    """Overrides-dict -> validated ``MOHECOConfig`` for one method entry.

    ``budget_arg`` is the factory's named budget parameter (``n_max`` or the
    ``n_fixed`` alias); it is routed to the factory while every other
    override goes through ``with_overrides`` — so a config-field override
    that shadows the alias (e.g. ``n_fixed=50, n_max=60``) wins instead of
    colliding, matching the legacy ``run_*`` semantics.  Bad overrides —
    unknown names, or values the config rejects (e.g. a stage-1 budget that
    cannot cover the pilot samples) — raise ``ValueError`` here, which the
    spec layer (:func:`repro.api.errors.validate_run_spec`) surfaces as a
    structured :class:`~repro.api.errors.SpecError` at submission time.
    """

    config_fields = {field.name for field in dataclasses.fields(MOHECOConfig)}

    def build(overrides: dict) -> MOHECOConfig:
        overrides = dict(overrides)
        factory_kwargs = (
            {budget_arg: overrides.pop(budget_arg)} if budget_arg in overrides else {}
        )
        unknown = set(overrides) - config_fields
        if unknown:
            raise ValueError(
                f"unknown config override(s) {sorted(unknown)}; valid fields: "
                f"{', '.join(sorted(config_fields | {budget_arg}))}"
            )
        return config_factory(**factory_kwargs).with_overrides(**overrides)

    return build


def _engine_runner(config_factory, budget_arg: str):
    """Wrap a MOHECOConfig classmethod into a method-registry runner.

    The runner grows a ``validate_overrides`` attribute — the config build
    without the run — so ``validate_run_spec`` can reject bad overrides at
    submission time with a structured error instead of letting a queued job
    trip the bare config assertion minutes later.
    """

    build = _config_builder(config_factory, budget_arg)

    def runner(
        problem,
        *,
        rng=None,
        ledger=None,
        callbacks=None,
        engine=None,
        cache=None,
        **overrides,
    ):
        optimizer = MOHECO(
            problem,
            build(overrides),
            ledger=ledger,
            rng=rng,
            callbacks=callbacks,
            engine=engine,
            cache=cache,
        )
        return optimizer.run()

    runner.validate_overrides = build
    return runner


def _mf_runner():
    """The ``moheco_mf`` runner: MOHECO stage 1 becomes a fidelity ladder.

    Accepts every ``moheco`` override plus ``mf_params`` — the ladder knobs
    ``{"eta", "r_min", "brackets"}`` (``R`` is pinned to the config's
    ``n_max``).  ``validate_overrides`` builds both the config and the
    ladder, so impossible schedules (``r_min`` above the fidelity ceiling,
    a pilot the budget cannot cover) fail at spec validation; and
    ``cache_defaults`` asks the API driver for sample-level cache keying —
    a promoted candidate's low-rung rows replay for free when later rungs
    and stage-2 promotions re-cover them.
    """
    from repro.mf import FidelityLadder, run_multi_fidelity

    build = _config_builder(MOHECOConfig.moheco, "n_max")

    def _check_mf_params(mf_params):
        if mf_params is not None and not isinstance(mf_params, dict):
            raise ValueError(
                f"mf_params must be a dict of ladder knobs, got {mf_params!r}"
            )

    def runner(
        problem,
        *,
        rng=None,
        ledger=None,
        callbacks=None,
        engine=None,
        cache=None,
        mf_params=None,
        **overrides,
    ):
        _check_mf_params(mf_params)
        return run_multi_fidelity(
            problem,
            build(overrides),
            mf_params=mf_params,
            ledger=ledger,
            rng=rng,
            callbacks=callbacks,
            engine=engine,
            cache=cache,
        )

    def validate_overrides(overrides: dict) -> None:
        overrides = dict(overrides)
        mf_params = overrides.pop("mf_params", None)
        _check_mf_params(mf_params)
        config = build(overrides)
        FidelityLadder.from_params(config.n_max, config.n0, mf_params)

    runner.validate_overrides = validate_overrides
    runner.cache_defaults = {"key": "sample"}
    return runner


def _described(runner, description: str):
    """Attach the one-liner ``repro list methods`` prints."""
    runner.description = description
    return runner


register_method(
    "moheco",
    _described(
        _engine_runner(MOHECOConfig.moheco, "n_max"),
        "The paper's full algorithm: OCBA budget allocation + acceptance "
        "sampling + LHS + memetic Nelder-Mead local search",
    ),
)
register_method(
    "oo_only",
    _described(
        _engine_runner(MOHECOConfig.oo_only, "n_max"),
        "Ablation: OCBA budget allocation without the memetic operators",
    ),
)
register_method(
    "fixed_budget",
    _described(
        _engine_runner(MOHECOConfig.fixed_budget, "n_fixed"),
        "State-of-the-art Monte-Carlo baseline: n_fixed simulations per "
        "feasible candidate",
    ),
)
register_method(
    "moheco_mf",
    _described(
        _mf_runner(),
        "Multi-fidelity MOHECO: stage 1 climbs a Hyperband-style ladder "
        "over the MC sample count",
    ),
)


@register_method("pswcd")
def run_pswcd(
    problem,
    *,
    rng=None,
    ledger=None,
    callbacks=None,
    engine=None,
    cache=None,
    n_train: int = 200,
    pop_size: int = 30,
    max_generations: int = 40,
    patience: int = 10,
    **overrides,
):
    """PSWCD sizing, adapted to the common :class:`MOHECOResult` shape.

    ``best_yield`` is the method's own (pessimistic) worst-case yield bound
    — exactly the quantity whose over-design the paper criticises; score it
    against :func:`repro.yieldsim.reference_yield` to see the gap.

    Callback support is partial: PSWCD drives a plain DE loop with no
    staged yield estimation, so only ``on_run_start`` and ``on_stop`` fire;
    generation-level observers (``ProgressCallback``, ``EarlyStopOnYield``)
    have nothing to hook into here.  The ``engine`` and ``cache`` arguments
    are likewise accepted but unused — PSWCD performs no Monte-Carlo
    refinement rounds, so there is nothing for an execution backend to fuse
    or for a warm-start cache to replay.
    """
    if overrides:
        raise TypeError(
            f"pswcd accepts n_train/pop_size/max_generations/patience, "
            f"got unexpected overrides: {sorted(overrides)}"
        )
    ledger = ledger if ledger is not None else SimulationLedger()
    callbacks = CallbackList(callbacks)
    optimizer = PSWCDOptimizer(problem, n_train=n_train, rng=rng, ledger=ledger)
    callbacks.on_run_start(optimizer)
    best_x, _, analysis = optimizer.run(
        pop_size=pop_size, max_generations=max_generations, patience=patience
    )
    result = MOHECOResult(
        best_x=np.asarray(best_x, dtype=float),
        best_yield=analysis.yield_bound,
        best_estimate=YieldEstimate(passes=0, n=0),
        generations=optimizer.de_result.generations,
        n_simulations=ledger.total,
        reason="pswcd",
        history=OptimizationHistory(),
        ledger=ledger,
    )
    callbacks.on_stop(optimizer, result)
    return result


run_pswcd.description = (
    "Performance-specific worst-case-distance sizing baseline "
    "(section 3.4); best_yield is its pessimistic worst-case bound"
)

# Composed methods (repro/compose) register themselves on import, after the
# plain entries above so their backbones already exist.
import repro.compose.method  # noqa: E402,F401
