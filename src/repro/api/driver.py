"""The one driver every entry point funnels through.

:func:`optimize` accepts either a declarative :class:`~repro.api.spec.RunSpec`
or an imperative ``(problem, method=...)`` call, resolves names through the
registries, and dispatches to the registered method runner.  The legacy
``run_moheco``/``run_oo_only``/``run_fixed_budget`` wrappers, the experiment
harness and the CLI are all thin shims over this function.
"""

from __future__ import annotations

import json

import numpy as np

from repro.api.registries import METHODS, PROBLEMS
from repro.api.spec import RunSpec
from repro.engine import EvaluationCache, EvaluationEngine, make_cache, make_engine
from repro.registry import Registry
from repro.core.callbacks import Callback
from repro.core.moheco import MOHECOResult
from repro.ledger import SimulationLedger
from repro.problems.base import YieldProblem

# Built-in methods register on import.
import repro.api.methods  # noqa: F401

__all__ = ["optimize", "resolve_problem"]


def resolve_problem(problem, problem_params: dict | None = None) -> YieldProblem:
    """Turn a registry name or an existing problem object into a problem.

    ``problem_params`` are forwarded to the factory for names and rejected
    for ready-made problem objects (they would be silently ignored).
    """
    if isinstance(problem, str):
        return PROBLEMS.create(problem, **(problem_params or {}))
    if problem_params:
        raise TypeError(
            "problem_params only apply when the problem is resolved by "
            "name; pass a configured problem object instead"
        )
    return problem


def _cache_namespace(problem, problem_params: dict | None) -> str:
    """The key namespace of a driver-created cache.

    Folding the resolved problem name + factory parameters into every key
    keeps a shared spill file safe across sweep cells: ``sphere`` with
    ``sigma=0.2`` can never replay rows computed for the default sigma.
    Problems passed as ready-made objects have no factory identity here;
    their keys fall back to the problem token alone.
    """
    if not isinstance(problem, str):
        return ""
    return json.dumps(
        {"problem": problem, "problem_params": problem_params or {}},
        sort_keys=True,
        default=str,
    )


def optimize(
    problem,
    method: str | None = None,
    *,
    seed: int | None = None,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    callbacks: Callback | list[Callback] | None = None,
    problem_params: dict | None = None,
    engine: EvaluationEngine | str | None = None,
    engine_params: dict | None = None,
    cache: EvaluationCache | str | None = None,
    cache_params: dict | None = None,
    **overrides,
) -> MOHECOResult:
    """Run one yield optimization and return its result.

    Two calling styles::

        optimize(RunSpec(problem="sphere", method="moheco", seed=7))
        optimize(my_problem, method="oo_only", seed=7, pop_size=20)

    Parameters
    ----------
    problem:
        A :class:`RunSpec`, a problem-registry name, or a
        :class:`~repro.problems.base.YieldProblem`-like object.
    method:
        Method-registry name; default ``"moheco"``.  When ``problem`` is a
        spec, passing a method that differs from the spec's is an error.
    seed / rng:
        Seed or generator for the run; ``rng`` wins when both are given.
        Either one overrides a spec's ``seed`` field (handy for seed
        sweeps over a base spec).
    ledger:
        Simulation ledger (fresh when omitted).
    callbacks:
        Loop observers (see :class:`~repro.core.callbacks.Callback`).
    problem_params:
        Factory kwargs when ``problem`` is a registry name.
    engine / engine_params:
        Execution backend for the refinement rounds: an engine-registry
        name (``"legacy"``, ``"serial"``, ``"process"``; ``engine_params``
        go to its factory, e.g. ``workers=4``) or a ready
        :class:`~repro.engine.base.EvaluationEngine` instance.  An engine
        argument overrides the spec's ``engine`` field.  Name-resolved
        engines are closed when the run finishes; instances stay open (the
        caller owns their worker pools).  Backends are seed-equivalent:
        the result is identical, only the wall-clock changes.
    cache / cache_params:
        Warm-start evaluation cache for the refinement rounds: a
        cache-registry name (``"lru"``, ``"null"``; ``cache_params`` go to
        its factory, e.g. ``max_bytes=..., spill_path=...``) or a ready
        :class:`~repro.engine.cache.EvaluationCache` instance shared
        across runs.  A cache argument overrides the spec's ``cache``
        field.  Name-resolved caches are namespaced to the resolved
        problem (+ params), and closed — spill flushed — when the run
        finishes; instances are the caller's to share and close.  Under
        the default ledger-faithful accounting the result is bit-identical
        to a cache-off run.
    **overrides:
        Method/config overrides (``pop_size=20``, ``n_max=300``, ...).

    Returns
    -------
    MOHECOResult
        The common result type all registered methods produce.
    """
    if isinstance(problem, RunSpec):
        spec = problem
        if problem_params:
            raise TypeError("pass problem_params inside the RunSpec, not alongside it")
        if method is not None and Registry._normalize(method) != Registry._normalize(
            spec.method
        ):
            raise TypeError(
                f"conflicting method: spec says {spec.method!r}, argument says "
                f"{method!r}; put the method in the RunSpec or drop the argument"
            )
        method = spec.method
        problem = resolve_problem(spec.problem, spec.problem_params)
        overrides = {**spec.overrides, **overrides}
        if engine is None:
            # An explicit engine= argument beats the spec's engine field
            # (same precedence as seed=).
            engine = spec.engine
            if engine_params is None and spec.engine_params:
                engine_params = spec.engine_params
        if cache is None:
            # Same precedence story for the cache.
            cache = spec.cache
            if cache_params is None and spec.cache_params:
                cache_params = spec.cache_params
        if rng is None:
            # Explicit seed= beats the spec's seed (same precedence as the
            # non-spec path); rng= beats both.
            rng = seed if seed is not None else spec.seed
        namespace = _cache_namespace(spec.problem, spec.problem_params)
    else:
        namespace = _cache_namespace(problem, problem_params)
        problem = resolve_problem(problem, problem_params)
        if rng is None:
            rng = seed

    if engine_params:
        if engine is None:
            raise TypeError(
                "engine_params require an engine name (e.g. engine='process')"
            )
        if not isinstance(engine, str):
            raise TypeError(
                "engine_params only apply when the engine is resolved by name; "
                "configure the engine instance directly instead"
            )
    if cache_params:
        if cache is None:
            raise TypeError("cache_params require a cache name (e.g. cache='lru')")
        if not isinstance(cache, str):
            raise TypeError(
                "cache_params only apply when the cache is resolved by name; "
                "configure the cache instance directly instead"
            )

    runner = METHODS.get(method if method is not None else "moheco")
    # Methods may declare factory defaults for name-resolved caches (e.g.
    # ``moheco_mf`` asks for sample-level keying so promoted candidates
    # replay their low-rung rows); explicit cache_params still win, and
    # ready-made cache instances are never reconfigured.
    cache_defaults = getattr(runner, "cache_defaults", None)
    if cache_defaults and isinstance(cache, str):
        cache_params = {**cache_defaults, **(cache_params or {})}
    engine_obj = make_engine(engine, **(engine_params or {})) if engine is not None else None
    owns_engine = engine_obj is not None and not isinstance(engine, EvaluationEngine)
    cache_obj = make_cache(cache, **(cache_params or {})) if cache is not None else None
    owns_cache = cache_obj is not None and not isinstance(cache, EvaluationCache)
    if owns_cache and not cache_obj.namespace:
        # Keys of driver-created caches carry the resolved problem identity,
        # so one spill file can safely serve many problem configurations.
        cache_obj.namespace = namespace
    try:
        engine_kwargs = {"engine": engine_obj} if engine_obj is not None else {}
        cache_kwargs = {"cache": cache_obj} if cache_obj is not None else {}
        return runner(
            problem,
            rng=rng,
            ledger=ledger,
            callbacks=callbacks,
            **engine_kwargs,
            **cache_kwargs,
            **overrides,
        )
    finally:
        if owns_cache:
            cache_obj.close()
        if owns_engine:
            engine_obj.close()
