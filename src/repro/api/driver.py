"""The one driver every entry point funnels through.

:func:`optimize` accepts either a declarative :class:`~repro.api.spec.RunSpec`
or an imperative ``(problem, method=...)`` call, resolves names through the
registries, and dispatches to the registered method runner.  The legacy
``run_moheco``/``run_oo_only``/``run_fixed_budget`` wrappers, the experiment
harness and the CLI are all thin shims over this function.
"""

from __future__ import annotations

import numpy as np

from repro.api.registries import METHODS, PROBLEMS
from repro.api.spec import RunSpec
from repro.registry import Registry
from repro.core.callbacks import Callback
from repro.core.moheco import MOHECOResult
from repro.ledger import SimulationLedger
from repro.problems.base import YieldProblem

# Built-in methods register on import.
import repro.api.methods  # noqa: F401

__all__ = ["optimize", "resolve_problem"]


def resolve_problem(problem, problem_params: dict | None = None) -> YieldProblem:
    """Turn a registry name or an existing problem object into a problem.

    ``problem_params`` are forwarded to the factory for names and rejected
    for ready-made problem objects (they would be silently ignored).
    """
    if isinstance(problem, str):
        return PROBLEMS.create(problem, **(problem_params or {}))
    if problem_params:
        raise TypeError(
            "problem_params only apply when the problem is resolved by "
            "name; pass a configured problem object instead"
        )
    return problem


def optimize(
    problem,
    method: str | None = None,
    *,
    seed: int | None = None,
    rng: np.random.Generator | int | None = None,
    ledger: SimulationLedger | None = None,
    callbacks: Callback | list[Callback] | None = None,
    problem_params: dict | None = None,
    **overrides,
) -> MOHECOResult:
    """Run one yield optimization and return its result.

    Two calling styles::

        optimize(RunSpec(problem="sphere", method="moheco", seed=7))
        optimize(my_problem, method="oo_only", seed=7, pop_size=20)

    Parameters
    ----------
    problem:
        A :class:`RunSpec`, a problem-registry name, or a
        :class:`~repro.problems.base.YieldProblem`-like object.
    method:
        Method-registry name; default ``"moheco"``.  When ``problem`` is a
        spec, passing a method that differs from the spec's is an error.
    seed / rng:
        Seed or generator for the run; ``rng`` wins when both are given.
        Either one overrides a spec's ``seed`` field (handy for seed
        sweeps over a base spec).
    ledger:
        Simulation ledger (fresh when omitted).
    callbacks:
        Loop observers (see :class:`~repro.core.callbacks.Callback`).
    problem_params:
        Factory kwargs when ``problem`` is a registry name.
    **overrides:
        Method/config overrides (``pop_size=20``, ``n_max=300``, ...).

    Returns
    -------
    MOHECOResult
        The common result type all registered methods produce.
    """
    if isinstance(problem, RunSpec):
        spec = problem
        if problem_params:
            raise TypeError("pass problem_params inside the RunSpec, not alongside it")
        if method is not None and Registry._normalize(method) != Registry._normalize(
            spec.method
        ):
            raise TypeError(
                f"conflicting method: spec says {spec.method!r}, argument says "
                f"{method!r}; put the method in the RunSpec or drop the argument"
            )
        method = spec.method
        problem = resolve_problem(spec.problem, spec.problem_params)
        overrides = {**spec.overrides, **overrides}
        if rng is None:
            # Explicit seed= beats the spec's seed (same precedence as the
            # non-spec path); rng= beats both.
            rng = seed if seed is not None else spec.seed
    else:
        problem = resolve_problem(problem, problem_params)
        if rng is None:
            rng = seed

    runner = METHODS.get(method if method is not None else "moheco")
    return runner(
        problem, rng=rng, ledger=ledger, callbacks=callbacks, **overrides
    )
