"""The six public plugin registries and their register/get/list helpers.

Samplers, problems, yield estimators, execution engines and evaluation
caches live next to their implementations (:data:`repro.sampling.SAMPLERS`,
:data:`repro.problems.PROBLEMS`, :data:`repro.yieldsim.ESTIMATORS`,
:data:`repro.engine.ENGINES`, :data:`repro.engine.CACHES`); the method
registry is owned here.  All
six share :class:`~repro.registry.Registry` semantics: case-insensitive
names, :class:`~repro.registry.DuplicateNameError` on re-registration, and
unknown-name errors that list what *is* registered.

A **method** entry is a runner callable::

    runner(problem, *, rng=None, ledger=None, callbacks=None, **overrides)
        -> MOHECOResult

so every optimizer — the paper's MOHECO and its ablations, PSWCD, or a
third-party algorithm — is driven identically by
:func:`repro.api.optimize` and the CLI.
"""

from __future__ import annotations

from repro.engine import CACHES, ENGINES
from repro.problems import PROBLEMS
from repro.registry import Registry
from repro.sampling import SAMPLERS
from repro.yieldsim import ESTIMATORS

__all__ = [
    "METHODS",
    "PROBLEMS",
    "SAMPLERS",
    "ESTIMATORS",
    "ENGINES",
    "register_method",
    "get_method",
    "list_methods",
    "register_problem",
    "get_problem",
    "list_problems",
    "register_sampler",
    "get_sampler",
    "list_samplers",
    "register_estimator",
    "get_estimator",
    "list_estimators",
    "register_engine",
    "get_engine",
    "list_engines",
    "CACHES",
    "register_cache",
    "get_cache",
    "list_caches",
]

#: Name -> optimization-method runner (see module docstring for signature).
METHODS: Registry = Registry("method")


def register_method(name: str, runner=None, *, overwrite: bool = False):
    """Register an optimization method runner (usable as a decorator)."""
    return METHODS.register(name, runner, overwrite=overwrite)


def get_method(name: str):
    """The runner registered under ``name``."""
    return METHODS.get(name)


def list_methods() -> list[str]:
    """Sorted names of the registered methods."""
    return METHODS.names()


def register_problem(name: str, factory=None, *, overwrite: bool = False):
    """Register a problem factory returning a fresh ``YieldProblem``."""
    return PROBLEMS.register(name, factory, overwrite=overwrite)


def get_problem(name: str):
    """The problem factory registered under ``name``."""
    return PROBLEMS.get(name)


def list_problems() -> list[str]:
    """Sorted names of the registered problems."""
    return PROBLEMS.names()


def register_sampler(name: str, sampler_cls=None, *, overwrite: bool = False):
    """Register a :class:`~repro.sampling.base.Sampler` subclass."""
    return SAMPLERS.register(name, sampler_cls, overwrite=overwrite)


def get_sampler(name: str):
    """The sampler class registered under ``name``."""
    return SAMPLERS.get(name)


def list_samplers() -> list[str]:
    """Sorted names of the registered samplers."""
    return SAMPLERS.names()


def register_estimator(name: str, estimator_cls=None, *, overwrite: bool = False):
    """Register a per-candidate yield estimator class."""
    return ESTIMATORS.register(name, estimator_cls, overwrite=overwrite)


def get_estimator(name: str):
    """The estimator class registered under ``name``."""
    return ESTIMATORS.get(name)


def list_estimators() -> list[str]:
    """Sorted names of the registered yield estimators."""
    return ESTIMATORS.names()


def register_engine(name: str, engine_cls=None, *, overwrite: bool = False):
    """Register an :class:`~repro.engine.base.EvaluationEngine` class."""
    return ENGINES.register(name, engine_cls, overwrite=overwrite)


def get_engine(name: str):
    """The execution-engine class registered under ``name``."""
    return ENGINES.get(name)


def list_engines() -> list[str]:
    """Sorted names of the registered execution engines."""
    return ENGINES.names()


def register_cache(name: str, cache_cls=None, *, overwrite: bool = False):
    """Register an :class:`~repro.engine.cache.EvaluationCache` class."""
    return CACHES.register(name, cache_cls, overwrite=overwrite)


def get_cache(name: str):
    """The evaluation-cache class registered under ``name``."""
    return CACHES.get(name)


def list_caches() -> list[str]:
    """Sorted names of the registered evaluation caches."""
    return CACHES.names()
