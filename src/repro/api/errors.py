"""Structured spec-validation errors.

A :class:`SpecError` pinpoints *which field* of a ``RunSpec``/``SweepSpec``
payload is wrong and *why*, as data rather than prose: the HTTP service
maps it to a 400 body clients can route on, and the CLI prints it as a
``field: reason`` line instead of a traceback.  It subclasses
:class:`ValueError`, so every pre-existing ``except ValueError`` path
(CLI error handling, tests) keeps working unchanged.

:func:`validate_run_spec` / :func:`validate_sweep_spec` go one step past
shape checking: they resolve every registry name (problem, method, engine,
cache) so a typo fails at submission time with the list of valid names —
not minutes later inside a queued job.
"""

from __future__ import annotations

__all__ = ["SpecError", "validate_run_spec", "validate_sweep_spec"]


class SpecError(ValueError):
    """A spec payload failed validation.

    Parameters
    ----------
    reason:
        Human-readable explanation of the failure.
    field:
        Dotted path of the offending field (``"seed"``,
        ``"methods[1].overrides"``); ``None`` when the payload as a whole
        is malformed (e.g. not a JSON object).
    spec:
        Which spec kind was being validated (``"RunSpec"``/``"SweepSpec"``).
    """

    def __init__(
        self, reason: str, *, field: str | None = None, spec: str | None = None
    ) -> None:
        self.reason = str(reason)
        self.field = field
        self.spec = spec
        prefix = f"{spec}." if spec else ""
        location = f"{prefix}{field}: " if field else (f"{spec}: " if spec else "")
        super().__init__(f"{location}{self.reason}")

    def to_dict(self) -> dict:
        """JSON body of a service 400 response."""
        return {
            "error": "invalid_spec",
            "spec": self.spec,
            "field": self.field,
            "reason": self.reason,
            "message": str(self),
        }


def _check_registry(registry, name: str, field: str, spec: str) -> None:
    from repro.registry import UnknownNameError

    try:
        registry.get(name)
    except UnknownNameError as error:
        raise SpecError(str(error), field=field, spec=spec) from error


def _check_overrides(runner, overrides: dict, field: str, spec: str) -> None:
    """Run the method's own overrides validator, if it declares one.

    Method runners may expose a ``validate_overrides(overrides)``
    attribute — the config (and, for multi-fidelity methods, ladder)
    construction without the run.  Bad overrides — unknown field names, a
    stage-1 budget that cannot cover the pilot samples, an impossible rung
    schedule — therefore fail *at submission time* as a structured
    :class:`SpecError` instead of tripping the bare config assertion
    inside a queued job.
    """
    validator = getattr(runner, "validate_overrides", None)
    if validator is None:
        return
    try:
        validator(overrides)
    except SpecError:
        raise
    except (ValueError, TypeError) as error:
        raise SpecError(str(error), field=field, spec=spec) from error


def validate_run_spec(spec) -> None:
    """Resolve every registry name a :class:`RunSpec` references.

    Raises :class:`SpecError` (with the offending field) for unregistered
    problem/method/engine/cache names, and for overrides the resolved
    method itself rejects (via its ``validate_overrides`` hook).  Shape
    errors (unknown keys, wrong types) are already raised by
    ``RunSpec.from_dict`` itself.
    """
    from repro.api.registries import CACHES, ENGINES, METHODS, PROBLEMS

    _check_registry(PROBLEMS, spec.problem, "problem", "RunSpec")
    _check_registry(METHODS, spec.method, "method", "RunSpec")
    _check_overrides(
        METHODS.get(spec.method), spec.overrides, "overrides", "RunSpec"
    )
    if spec.engine is not None:
        _check_registry(ENGINES, spec.engine, "engine", "RunSpec")
    if spec.cache is not None:
        _check_registry(CACHES, spec.cache, "cache", "RunSpec")


def validate_sweep_spec(spec) -> None:
    """Resolve every registry name a :class:`SweepSpec` references."""
    from repro.api.registries import CACHES, ENGINES, METHODS, PROBLEMS

    for index, method in enumerate(spec.methods):
        _check_registry(
            METHODS, method.method, f"methods[{index}].method", "SweepSpec"
        )
        _check_overrides(
            METHODS.get(method.method),
            method.overrides,
            f"methods[{index}].overrides",
            "SweepSpec",
        )
    for index, problem in enumerate(spec.problems):
        _check_registry(
            PROBLEMS, problem.problem, f"problems[{index}].problem", "SweepSpec"
        )
    if spec.engine is not None:
        _check_registry(ENGINES, spec.engine, "engine", "SweepSpec")
    if spec.cache is not None:
        _check_registry(CACHES, spec.cache, "cache", "SweepSpec")
