"""Command-line interface.

::

    python -m repro run --problem folded_cascode --method moheco --seed 7 \
        --out result.json
    python -m repro run --spec run.json --progress
    python -m repro sweep --problem sphere --method moheco \
        --method fixed_budget --runs 10 --workers 4 --out store.jsonl
    python -m repro list

``run`` executes one optimization described by flags or a
:class:`~repro.api.spec.RunSpec` JSON file and writes
``{"spec": ..., "result": ...}`` JSON; ``sweep`` executes a replicated
methods × problems × seeds grid (:class:`~repro.sweep.spec.SweepSpec`),
shards whole runs across ``--workers`` processes, persists records to a
resumable JSONL store (``--out`` + ``--resume``) and prints the paper's
aggregate tables; ``list`` prints the registries so you can see what
plugs in.  Both ``run`` and ``sweep`` take ``--json`` to emit the result
as machine-readable JSON on stdout (progress lines move to stderr).

The service family turns the same specs into long-lived jobs:
``serve`` starts the HTTP job server (:mod:`repro.service`), ``worker``
starts a simulator worker daemon for ``--engine remote``, and the thin
client commands — ``submit``, ``status``, ``result``, ``cancel`` — talk
to the service over ``urllib`` (``--url``, or ``REPRO_SERVICE_URL``)::

    repro serve --port 8032 --data-dir service-data &
    repro worker --port 9101 --register http://127.0.0.1:8032 &
    repro submit --problem sphere --seed 7 --follow
    repro status <job-id>
    repro result <job-id> --out result.json
    repro cancel <job-id>

Installed as the ``repro`` console script.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import os
import sys

from repro.api.driver import optimize
from repro.api.registries import (
    list_caches,
    list_engines,
    list_estimators,
    list_methods,
    list_problems,
    list_samplers,
)
from repro.api.spec import RunSpec
from repro.core.callbacks import ProgressCallback, SweepProgressCallback
from repro.sweep import MethodSpec, ProblemSpec, SweepSpec, run_sweep
from repro.sweep.store import StoreMismatchError

__all__ = ["main", "build_parser"]


def _parse_value(text: str):
    """Best-effort literal parsing: ``"20"`` -> 20, ``"true"`` -> True."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_assignments(pairs: list[str], flag: str) -> dict:
    out = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"{flag} expects KEY=VALUE, got {pair!r}")
        out[key] = _parse_value(value)
    return out


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for docs and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MOHECO analog-circuit yield optimization (DATE 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute one optimization run")
    run.add_argument("--spec", help="RunSpec JSON file (flags override it)")
    run.add_argument("--problem", help="problem registry name")
    run.add_argument("--method", help="method registry name (default: moheco)")
    run.add_argument("--seed", type=int, help="root seed of the run")
    run.add_argument(
        "--engine",
        help="execution backend for the refinement rounds: 'serial' (fused "
        "single-process dispatch, the default), 'process' (fused rounds "
        "sharded across worker processes), 'auto' (measures the per-"
        "simulation cost on a pilot, then commits to serial or process), "
        "'remote' (rounds streamed to `repro worker` daemons; needs "
        "--engine-param workers=host:port,...), or 'legacy' (the per-"
        "candidate loop); all backends produce the identical seeded result",
    )
    run.add_argument(
        "--engine-param",
        dest="engine_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="engine factory parameter (repeatable), e.g. --engine-param workers=4",
    )
    run.add_argument(
        "--cache",
        help="warm-start evaluation cache for the refinement rounds: 'lru' "
        "(content-addressed LRU with a byte budget and an optional JSONL "
        "spill file shared across runs) or 'null' (always-miss, for "
        "overhead A/B).  Ledger-faithful by default: replayed rows are "
        "still charged, so results and simulation totals match a "
        "cache-off run",
    )
    run.add_argument(
        "--cache-param",
        dest="cache_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="cache factory parameter (repeatable), e.g. "
        "--cache-param spill_path=cache.jsonl --cache-param max_bytes=67108864",
    )
    run.add_argument("--out", help="write {'spec', 'result'} JSON here")
    run.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="method/config override (repeatable), e.g. --set pop_size=20",
    )
    run.add_argument(
        "--problem-param",
        dest="problem_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="problem factory parameter (repeatable), e.g. --problem-param sigma=0.2",
    )
    run.add_argument(
        "--progress", action="store_true", help="stream per-generation progress"
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )
    run.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="print {'spec', 'result'} JSON on stdout instead of the "
        "summary (progress lines move to stderr)",
    )

    sweep = sub.add_parser(
        "sweep", help="execute a replicated methods x problems x seeds grid"
    )
    sweep.add_argument("--spec", help="SweepSpec JSON file (flags override it)")
    sweep.add_argument(
        "--problem",
        dest="problems",
        action="append",
        default=[],
        metavar="NAME",
        help="problem registry name (repeatable: one grid row each)",
    )
    sweep.add_argument(
        "--method",
        dest="methods",
        action="append",
        default=[],
        metavar="NAME",
        help="method registry name (repeatable: one grid column each)",
    )
    sweep.add_argument(
        "--runs", type=int, help="independent replications per grid cell"
    )
    sweep.add_argument("--base-seed", type=int, help="root seed of the sweep")
    sweep.add_argument(
        "--reference-n", type=int, help="reference-MC sample count per run"
    )
    sweep.add_argument(
        "--max-generations", type=int, help="generation cap for every method"
    )
    sweep.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="config override applied to every method (repeatable)",
    )
    sweep.add_argument(
        "--problem-param",
        dest="problem_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="factory parameter applied to every problem (repeatable)",
    )
    sweep.add_argument(
        "--engine",
        help="per-run execution backend (serial/process/auto/legacy); "
        "seed-equivalent, combines with --workers sharding whole runs",
    )
    sweep.add_argument(
        "--engine-param",
        dest="engine_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="engine factory parameter (repeatable)",
    )
    sweep.add_argument(
        "--cache",
        help="per-run warm-start cache (lru/null); with a spill_path cache "
        "parameter the runs of the sweep share one warm cache file",
    )
    sweep.add_argument(
        "--cache-param",
        dest="cache_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="cache factory parameter (repeatable)",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        help="process count sharding whole runs (default: spec's, else 1); "
        "every count produces bit-identical records",
    )
    sweep.add_argument(
        "--out", help="JSONL result store (one RunRecord line per run)"
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue a partial --out store: completed runs are replayed, "
        "only missing ones execute",
    )
    sweep.add_argument(
        "--progress", action="store_true", help="stream one line per run"
    )
    sweep.add_argument(
        "--no-tables",
        action="store_true",
        help="suppress the aggregate tables on stdout",
    )
    sweep.add_argument(
        "--quiet", action="store_true", help="suppress the summary line"
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="print the sweep outcome (spec, per-run records, counters) as "
        "JSON on stdout instead of tables (progress lines move to stderr)",
    )

    serve_parser = sub.add_parser(
        "serve", help="start the long-lived HTTP optimization service"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8032, help="TCP port (default 8032; 0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="jobs simulating concurrently (default 2)",
    )
    serve_parser.add_argument(
        "--data-dir",
        help="directory for job persistence and the shared cache spill "
        "(default: a private temporary directory)",
    )
    serve_parser.add_argument(
        "--no-shared-cache",
        action="store_true",
        help="disable the multi-tenant warm cache (jobs may still bring "
        "their own via the spec's cache fields)",
    )

    worker = sub.add_parser(
        "worker",
        help="start a simulator worker daemon for --engine remote",
    )
    worker.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    worker.add_argument(
        "--port",
        type=int,
        default=9101,
        help="TCP port (default 9101; 0 = ephemeral)",
    )
    worker.add_argument(
        "--register",
        metavar="SERVICE_URL",
        help="self-register with a running `repro serve` instance so its "
        "engine=remote jobs dispatch here (e.g. http://127.0.0.1:8032)",
    )
    worker.add_argument(
        "--fail-after",
        type=int,
        default=None,
        metavar="N",
        help="fault-injection drill: answer 503 to every evaluate call "
        "after N successful chunks (parents must re-dispatch)",
    )
    worker.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the worker-side evaluation cache (on by default: "
        "re-dispatched and replayed sample rows skip the simulator; "
        "identical rows are returned either way)",
    )
    worker.add_argument(
        "--cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU byte budget of the worker-side cache (default 256 MiB)",
    )

    def add_url(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url",
            default=None,
            help="service base URL (default: $REPRO_SERVICE_URL, else "
            "http://127.0.0.1:8032)",
        )

    submit = sub.add_parser(
        "submit", help="submit a run or sweep spec to the service"
    )
    add_url(submit)
    submit.add_argument(
        "--spec",
        help="RunSpec or SweepSpec JSON file (sweeps are recognised by "
        "their 'methods'/'problems' keys)",
    )
    submit.add_argument("--problem", help="problem registry name (run jobs)")
    submit.add_argument("--method", help="method registry name (default: moheco)")
    submit.add_argument("--seed", type=int, help="root seed of the run")
    submit.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="method/config override (repeatable)",
    )
    submit.add_argument(
        "--problem-param",
        dest="problem_params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="problem factory parameter (repeatable)",
    )
    submit.add_argument(
        "--follow",
        action="store_true",
        help="stream the job's NDJSON events until it finishes",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="block until the job finishes and print its final status",
    )

    status = sub.add_parser("status", help="show a service job's status")
    add_url(status)
    status.add_argument("job", help="job id (from submit)")
    status.add_argument(
        "--follow",
        action="store_true",
        help="stream the job's NDJSON events until it finishes",
    )

    result_parser = sub.add_parser(
        "result", help="fetch a finished service job's result"
    )
    add_url(result_parser)
    result_parser.add_argument("job", help="job id (from submit)")
    result_parser.add_argument("--out", help="write the result JSON here")

    cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    add_url(cancel)
    cancel.add_argument("job", help="job id (from submit)")

    lister = sub.add_parser("list", help="show the plugin registries")
    lister.add_argument(
        "category",
        nargs="?",
        choices=["methods", "problems", "samplers", "estimators", "engines", "caches"],
        help="one registry (default: all)",
    )
    return parser


def _apply_engine_flags(spec, args: argparse.Namespace):
    """Merge ``--engine``/``--engine-param`` into a Run- or SweepSpec.

    One rule for both subcommands: switching backends invalidates the
    spec's ``engine_params`` (they belong to the old backend); fresh
    ``--engine-param`` values re-fill them.
    """
    if args.engine:
        spec = dataclasses.replace(spec, engine=args.engine, engine_params={})
    if args.engine_params:
        if spec.engine is None:
            raise SystemExit("--engine-param requires --engine (or a spec engine)")
        spec = dataclasses.replace(
            spec,
            engine_params={
                **spec.engine_params,
                **_parse_assignments(args.engine_params, "--engine-param"),
            },
        )
    return spec


def _apply_cache_flags(spec, args: argparse.Namespace):
    """Merge ``--cache``/``--cache-param`` into a Run- or SweepSpec.

    Same semantics as the engine flags: switching caches invalidates the
    spec's ``cache_params``; fresh ``--cache-param`` values re-fill them.
    """
    if args.cache:
        spec = dataclasses.replace(spec, cache=args.cache, cache_params={})
    if args.cache_params:
        if spec.cache is None:
            raise SystemExit("--cache-param requires --cache (or a spec cache)")
        spec = dataclasses.replace(
            spec,
            cache_params={
                **spec.cache_params,
                **_parse_assignments(args.cache_params, "--cache-param"),
            },
        )
    return spec


def _command_run(args: argparse.Namespace) -> int:
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = RunSpec.from_dict(json.load(handle))
        flag_fields = {
            key: value
            for key, value in (
                ("problem", args.problem),
                ("method", args.method),
                ("seed", args.seed),
            )
            if value is not None
        }
        if flag_fields:
            spec = dataclasses.replace(spec, **flag_fields)
    elif args.problem:
        spec = RunSpec(
            problem=args.problem,
            method=args.method or "moheco",
            seed=args.seed,
        )
    else:
        raise SystemExit("run requires --problem or --spec")
    spec = _apply_engine_flags(spec, args)
    spec = _apply_cache_flags(spec, args)
    if args.overrides:
        spec = spec.with_overrides(**_parse_assignments(args.overrides, "--set"))
    if args.problem_params:
        spec = dataclasses.replace(
            spec,
            problem_params={
                **spec.problem_params,
                **_parse_assignments(args.problem_params, "--problem-param"),
            },
        )

    # With --json, stdout belongs to the payload; progress moves to stderr.
    progress_print = _stderr_print if args.json_output else print
    callbacks = [ProgressCallback(print_fn=progress_print)] if args.progress else []
    try:
        result = optimize(spec, callbacks=callbacks)
    except (ValueError, TypeError) as error:
        # User errors (unknown registry names, bad overrides) get the
        # message without a traceback; genuine bugs still raise elsewhere.
        raise SystemExit(f"error: {error}") from error

    payload = {"spec": spec.to_dict(), "result": result.to_dict()}
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
    if args.json_output:
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    if not args.quiet:
        throughput = (
            f", {result.elapsed_seconds:.2f}s at "
            f"{result.sims_per_second:,.0f} sims/s"
            if result.elapsed_seconds > 0.0
            else ""
        )
        print(
            f"{spec.method} on {spec.problem}: yield {result.best_yield:.2%} "
            f"in {result.n_simulations} simulations "
            f"({result.generations} generations, {result.reason}{throughput})"
            + (f"; wrote {args.out}" if args.out else "")
        )
        if result.engine_decision is not None:
            decision = result.engine_decision
            if decision.get("engine") == "remote":
                fleet = len(decision["workers"]) - decision["worker_failures"]
                print(
                    f"engine[remote]: {decision['rows']} rows in "
                    f"{decision['chunks']} chunks over {fleet}/"
                    f"{len(decision['workers'])} worker(s) "
                    f"({decision['dispatch']} dispatch, "
                    f"re_dispatched={decision['re_dispatched']}, "
                    f"local_rows={decision['local_rows']}, "
                    f"worker_cache_rows={decision.get('worker_cache_rows', 0)})"
                )
            else:
                crossover = decision["crossover_cost_seconds"]
                crossover_text = (
                    f"{crossover * 1e6:.0f}us" if crossover is not None else "inf"
                )
                print(
                    f"engine[auto]: chose {decision['chosen']} "
                    f"({decision['model']}: measured "
                    f"{decision['pilot_cost_seconds'] * 1e6:.0f}us/row vs "
                    f"crossover {crossover_text} at "
                    f"{decision['mean_rows_per_round']:.0f} rows/round, "
                    f"workers={decision['workers']})"
                )
        if result.cache_stats is not None:
            stats = result.cache_stats
            print(
                f"cache[{spec.cache}]: hits={stats['hits']} "
                f"misses={stats['misses']} rows_replayed={stats['hit_rows']} "
                f"rows_simulated={stats['miss_rows']} "
                f"entries={stats['entries']} bytes={stats['bytes']}"
            )
    return 0


def _build_sweep_spec(args: argparse.Namespace) -> SweepSpec:
    """Assemble the SweepSpec from ``--spec`` and/or flags.

    Raises the registry/validation ``ValueError``s of the spec layer; the
    caller converts them to the CLI's ``error: ...`` form.
    """
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            spec = SweepSpec.from_dict(json.load(handle))
        # Grid flags override the file's axes wholesale (a bare name entry
        # per flag), matching the scalar flags' override semantics.
        if args.methods:
            spec = dataclasses.replace(
                spec, methods=tuple(MethodSpec(name) for name in args.methods)
            )
        if args.problems:
            spec = dataclasses.replace(
                spec, problems=tuple(ProblemSpec(name) for name in args.problems)
            )
    elif args.problems and args.methods:
        spec = SweepSpec(
            methods=tuple(MethodSpec(name) for name in args.methods),
            problems=tuple(ProblemSpec(name) for name in args.problems),
        )
    else:
        raise SystemExit("sweep requires --spec, or --problem plus --method")

    flag_fields = {
        key: value
        for key, value in (
            ("runs", args.runs),
            ("base_seed", args.base_seed),
            ("reference_n", args.reference_n),
            ("max_generations", args.max_generations),
            ("workers", args.workers),
        )
        if value is not None
    }
    if flag_fields:
        spec = dataclasses.replace(spec, **flag_fields)
    if args.overrides:
        overrides = _parse_assignments(args.overrides, "--set")
        spec = dataclasses.replace(
            spec,
            methods=tuple(
                dataclasses.replace(m, overrides={**m.overrides, **overrides})
                for m in spec.methods
            ),
        )
    if args.problem_params:
        params = _parse_assignments(args.problem_params, "--problem-param")
        spec = dataclasses.replace(
            spec,
            problems=tuple(
                dataclasses.replace(
                    p, problem_params={**p.problem_params, **params}
                )
                for p in spec.problems
            ),
        )
    return _apply_cache_flags(_apply_engine_flags(spec, args), args)


def _stderr_print(*print_args, **print_kwargs) -> None:
    print(*print_args, file=sys.stderr, **print_kwargs)


def _command_sweep(args: argparse.Namespace) -> int:
    progress_print = _stderr_print if args.json_output else print
    callbacks = (
        [SweepProgressCallback(print_fn=progress_print)] if args.progress else []
    )
    try:
        # Spec assembly validates the grid (duplicate labels, runs >= 1,
        # unknown keys, ...) — user errors, not tracebacks.
        spec = _build_sweep_spec(args)
        result = run_sweep(
            spec,
            store=args.out,
            resume=args.resume,
            callbacks=callbacks,
        )
    except (ValueError, TypeError, FileExistsError, StoreMismatchError) as error:
        raise SystemExit(f"error: {error}") from error

    if args.json_output:
        payload = {
            "spec": spec.to_dict(),
            "records": [record.to_dict() for record in result.records],
            "executed": result.executed,
            "reused": result.reused,
            "cancelled": result.cancelled,
            "elapsed_seconds": result.elapsed_seconds,
            "workers": result.workers,
            "store_path": result.store_path,
        }
        json.dump(payload, sys.stdout, indent=2)
        print()
        return 0
    if not args.no_tables:
        print(result.tables())
    if not args.quiet:
        wrote = f"; store: {result.store_path}" if result.store_path else ""
        print(
            f"\n{result.executed} run(s) executed, {result.reused} resumed "
            f"in {result.elapsed_seconds:.2f}s with {result.workers} "
            f"worker(s){wrote}"
        )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service.server import serve

    try:
        server = serve(
            args.host,
            args.port,
            workers=args.workers,
            data_dir=args.data_dir,
            shared_cache=not args.no_shared_cache,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error
    print(
        f"repro service listening on {server.url} "
        f"({args.workers} worker(s), data: {server.manager.data_dir})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import serve_worker

    cache_kwargs = {}
    if args.cache_bytes is not None:
        cache_kwargs["cache_bytes"] = args.cache_bytes
    try:
        server = serve_worker(
            args.host,
            args.port,
            fail_after=args.fail_after,
            cache=not args.no_cache,
            **cache_kwargs,
        )
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error
    cache_note = "cache on" if server.cache is not None else "cache off"
    print(f"repro worker listening on {server.url} ({cache_note})", flush=True)
    if args.register:
        from repro.service.client import ServiceClient

        client = ServiceClient(args.register)
        fleet = _service_errors(lambda: client.register_worker(server.url))
        print(
            f"registered with {args.register} "
            f"({len(fleet)} worker(s) in the fleet)",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
    return 0


def _service_client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    url = args.url or os.environ.get("REPRO_SERVICE_URL") or "http://127.0.0.1:8032"
    return ServiceClient(url)


def _service_errors(call):
    """Run one client call, mapping service/transport failures to exits."""
    import urllib.error

    from repro.service.client import ServiceError

    try:
        return call()
    except ServiceError as error:
        raise SystemExit(f"error: {error}") from error
    except urllib.error.URLError as error:
        raise SystemExit(
            f"error: cannot reach the service ({error.reason}); is "
            "`repro serve` running, and is --url/$REPRO_SERVICE_URL right?"
        ) from error


def _print_events(client, job_id: str) -> None:
    """Stream one NDJSON line per event until the job is terminal."""
    for event in client.events(job_id):
        print(json.dumps(event), flush=True)


def _command_submit(args: argparse.Namespace) -> int:
    if args.spec:
        with open(args.spec, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise SystemExit("error: the spec file must hold a JSON object")
        # A sweep spec is unmistakable: it has grid axes.
        is_sweep = "methods" in payload or "problems" in payload
    elif args.problem:
        payload = {
            "problem": args.problem,
            "method": args.method or "moheco",
            "seed": args.seed,
        }
        is_sweep = False
    else:
        raise SystemExit("submit requires --spec or --problem")
    if not args.spec:
        if args.overrides:
            payload["overrides"] = _parse_assignments(args.overrides, "--set")
        if args.problem_params:
            payload["problem_params"] = _parse_assignments(
                args.problem_params, "--problem-param"
            )

    client = _service_client(args)
    job = _service_errors(
        lambda: client.submit_sweep(payload)
        if is_sweep
        else client.submit_run(payload)
    )
    print(json.dumps(job), flush=True)
    if args.follow:
        _service_errors(lambda: _print_events(client, job["id"]))
    if args.wait or args.follow:
        final = _service_errors(lambda: client.wait(job["id"]))
        print(json.dumps(final), flush=True)
        return 0 if final["state"] == "succeeded" else 1
    return 0


def _command_status(args: argparse.Namespace) -> int:
    client = _service_client(args)
    print(json.dumps(_service_errors(lambda: client.status(args.job))))
    if args.follow:
        _service_errors(lambda: _print_events(client, args.job))
    return 0


def _command_result(args: argparse.Namespace) -> int:
    client = _service_client(args)
    payload = _service_errors(lambda: client.result(args.job))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {args.out}")
    else:
        json.dump(payload, sys.stdout, indent=2)
        print()
    return 0 if payload["state"] in ("succeeded", "cancelled") else 1


def _command_cancel(args: argparse.Namespace) -> int:
    client = _service_client(args)
    print(json.dumps(_service_errors(lambda: client.cancel(args.job))))
    return 0


def _print_methods() -> None:
    """One line per method: name, description, composed-config summary.

    The description comes from the runner's ``description`` attribute and
    the config summary from ``compose_config`` — both attached by the
    method registrations, so third-party methods opt in the same way.
    """
    from repro.api.registries import get_method

    print("methods:")
    names = list_methods()
    width = max(len(name) for name in names)
    for name in names:
        runner = get_method(name)
        description = getattr(runner, "description", "") or "(no description)"
        compose = getattr(runner, "compose_config", None)
        if compose is not None:
            parts = " ".join(
                f"{field}={compose[field]}"
                for field in ("screener", "proposer", "selection", "backbone")
            )
            description = f"{description} [{parts}]"
        print(f"  {name:<{width}}  {description}")


def _command_list(args: argparse.Namespace) -> int:
    sections = {
        "methods": list_methods,
        "problems": list_problems,
        "samplers": list_samplers,
        "estimators": list_estimators,
        "engines": list_engines,
        "caches": list_caches,
    }
    chosen = [args.category] if args.category else list(sections)
    for name in chosen:
        if name == "methods":
            _print_methods()
        else:
            print(f"{name}: {', '.join(sections[name]())}")
    return 0


_COMMANDS = {
    "run": _command_run,
    "sweep": _command_sweep,
    "serve": _command_serve,
    "worker": _command_worker,
    "submit": _command_submit,
    "status": _command_status,
    "result": _command_result,
    "cancel": _command_cancel,
    "list": _command_list,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro`` script."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Piped into `head` & co.; die quietly like standard Unix tools.
        # Point stdout at devnull so the interpreter's exit-time flush of
        # the dead pipe cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
