"""The public API facade.

Everything a user (or a deployment) needs is reachable from here:

* **Registries** — :func:`register_method` / :func:`get_method` /
  :func:`list_methods` (and the problem/sampler/estimator equivalents) let
  third-party scenarios plug in by name.
* **RunSpec** — a declarative, JSON-round-trippable description of one run.
* **optimize** — the single driver behind every entry point (legacy
  ``run_*`` wrappers, experiments, CLI).
* **Sweeps** — :class:`~repro.sweep.spec.SweepSpec` grids
  (methods × problems × seeds) executed by
  :func:`~repro.sweep.executor.run_sweep`: whole runs sharded across a
  process pool, bit-identical to serial, with a resumable JSONL
  :class:`~repro.sweep.store.ResultStore`.
* **Callbacks** — observe the generation loop: progress streaming, early
  stopping, checkpointing.
* **Engines** — pluggable execution backends for the Monte-Carlo
  refinement rounds (:mod:`repro.engine`): the fused ``"serial"`` default,
  the sharded ``"process"`` pool, the per-candidate ``"legacy"`` loop —
  all seed-equivalent, selected via ``RunSpec.engine`` or ``--engine``.
* **Caches** — warm-start evaluation caches (:mod:`repro.engine.cache`):
  content-addressed replay of already-simulated sample blocks, with an
  LRU byte budget and an optional JSONL spill file shared across runs;
  ledger-faithful by default, selected via ``RunSpec.cache`` or
  ``--cache``.
* **Composed methods** — :func:`register_composed_method` turns a
  ``{screener, proposer, selection, backbone}`` config into a full method
  entry (:mod:`repro.compose`); the parts plug in by name through the
  :data:`SCREENERS` / :data:`PROPOSERS` / :data:`SELECTIONS` registries.
* **CLI** — ``python -m repro run --problem folded_cascode --seed 7 --out
  result.json`` (:mod:`repro.api.cli`).

Quickstart
----------
>>> from repro.api import RunSpec, optimize
>>> result = optimize(RunSpec(problem="sphere", method="moheco", seed=7))
>>> result.best_yield  # doctest: +SKIP
1.0
"""

from repro.api.driver import optimize, resolve_problem
from repro.api.errors import SpecError, validate_run_spec, validate_sweep_spec
from repro.api.registries import (
    CACHES,
    ENGINES,
    ESTIMATORS,
    METHODS,
    PROBLEMS,
    SAMPLERS,
    get_cache,
    get_engine,
    get_estimator,
    get_method,
    get_problem,
    get_sampler,
    list_caches,
    list_engines,
    list_estimators,
    list_methods,
    list_problems,
    list_samplers,
    register_cache,
    register_engine,
    register_estimator,
    register_method,
    register_problem,
    register_sampler,
)
from repro.api.spec import RunSpec
from repro.compose import (
    PROPOSERS,
    SCREENERS,
    SELECTIONS,
    get_proposer,
    get_screener,
    get_selection,
    list_proposers,
    list_screeners,
    list_selections,
    register_composed_method,
    register_proposer,
    register_screener,
    register_selection,
    run_composed,
)
from repro.engine import (
    CacheStats,
    EvaluationCache,
    EvaluationEngine,
    LegacyEngine,
    LRUEvaluationCache,
    NullCache,
    ProcessPoolEngine,
    SerialEngine,
    make_cache,
    make_engine,
)
from repro.core.callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopOnYield,
    ProgressCallback,
    SweepProgressCallback,
)
from repro.core.moheco import MOHECOResult
from repro.registry import DuplicateNameError, Registry, UnknownNameError
from repro.sweep import (
    MethodSpec,
    ProblemSpec,
    ResultStore,
    SweepResult,
    SweepSpec,
    run_sweep,
)

__all__ = [
    "optimize",
    "resolve_problem",
    "RunSpec",
    "MOHECOResult",
    # spec validation
    "SpecError",
    "validate_run_spec",
    "validate_sweep_spec",
    # sweeps
    "SweepSpec",
    "MethodSpec",
    "ProblemSpec",
    "SweepResult",
    "ResultStore",
    "run_sweep",
    # registries
    "Registry",
    "DuplicateNameError",
    "UnknownNameError",
    "METHODS",
    "PROBLEMS",
    "SAMPLERS",
    "ESTIMATORS",
    "ENGINES",
    "register_method",
    "get_method",
    "list_methods",
    "register_problem",
    "get_problem",
    "list_problems",
    "register_sampler",
    "get_sampler",
    "list_samplers",
    "register_estimator",
    "get_estimator",
    "list_estimators",
    "register_engine",
    "get_engine",
    "list_engines",
    "CACHES",
    "register_cache",
    "get_cache",
    "list_caches",
    # composed methods and their part registries
    "SCREENERS",
    "PROPOSERS",
    "SELECTIONS",
    "register_screener",
    "get_screener",
    "list_screeners",
    "register_proposer",
    "get_proposer",
    "list_proposers",
    "register_selection",
    "get_selection",
    "list_selections",
    "register_composed_method",
    "run_composed",
    # engines
    "EvaluationEngine",
    "LegacyEngine",
    "SerialEngine",
    "ProcessPoolEngine",
    "make_engine",
    # caches
    "EvaluationCache",
    "LRUEvaluationCache",
    "NullCache",
    "CacheStats",
    "make_cache",
    # callbacks
    "Callback",
    "CallbackList",
    "ProgressCallback",
    "SweepProgressCallback",
    "EarlyStopOnYield",
    "CheckpointCallback",
]
