"""Declarative run description.

A :class:`RunSpec` captures everything needed to reproduce one optimization
run — problem name (+ factory parameters), method name (+ config
overrides) and the seed — as plain JSON-compatible data.  Specs are what
the CLI consumes (``python -m repro run --spec run.json``), what
experiments archive next to their results, and what remote workers would
receive in a scaled-out deployment.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field, replace

from repro.api.errors import SpecError

__all__ = ["RunSpec"]


def _coerce_str(data: dict, key: str, spec: str, *, default=None) -> str | None:
    """A required-string field of a spec payload, or its default."""
    value = data.get(key, default)
    if value is None:
        return None
    if not isinstance(value, str) or not value:
        raise SpecError(
            f"expected a non-empty registry-name string, got {value!r}",
            field=key,
            spec=spec,
        )
    return value


def _coerce_int(data: dict, key: str, spec: str) -> int | None:
    """An optional-integer field of a spec payload."""
    value = data.get(key)
    if value is None:
        return None
    # bool is an int subclass; `"seed": true` is a mistake, not seed 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(
            f"expected an integer, got {value!r}", field=key, spec=spec
        )
    return value


def _coerce_dict(data: dict, key: str, spec: str) -> dict:
    """An optional-object field of a spec payload (``None`` means empty)."""
    value = data.get(key)
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise SpecError(
            f"expected a JSON object, got {value!r}", field=key, spec=spec
        )
    return dict(value)


@dataclass(frozen=True)
class RunSpec:
    """One optimization run, described declaratively.

    Parameters
    ----------
    problem:
        Name in the problem registry (e.g. ``"sphere"``,
        ``"folded_cascode"``).
    method:
        Name in the method registry (e.g. ``"moheco"``, ``"oo_only"``,
        ``"fixed_budget"``, ``"pswcd"``).
    seed:
        Root seed of the run; ``None`` draws OS entropy (irreproducible).
    problem_params:
        Keyword arguments for the problem factory.
    overrides:
        Method/config overrides (e.g. ``{"pop_size": 20, "n_max": 300}``).
    engine:
        Execution-engine registry name (``"legacy"``, ``"serial"``,
        ``"process"``); ``None`` leaves the method's default (the fused
        serial engine).  Engines never change the seeded result — only how
        fast it is produced — so the field travels with the spec as a
        deployment knob, not an algorithm knob.
    engine_params:
        Keyword arguments for the engine factory (e.g. ``{"workers": 4}``).
    cache:
        Warm-start evaluation-cache registry name (``"lru"``, ``"null"``);
        ``None`` disables caching.  Under the default ledger-faithful
        accounting a cache never changes the seeded result — it is a
        deployment knob like ``engine`` — but ``count_hits=False`` in
        ``cache_params`` changes the reported simulation totals.
    cache_params:
        Keyword arguments for the cache factory (e.g. ``{"max_bytes":
        67108864, "spill_path": "cache.jsonl"}``).
    tag:
        Free-form label carried through to reports.
    """

    problem: str
    method: str = "moheco"
    seed: int | None = None
    problem_params: dict = field(default_factory=dict)
    overrides: dict = field(default_factory=dict)
    engine: str | None = None
    engine_params: dict = field(default_factory=dict)
    cache: str | None = None
    cache_params: dict = field(default_factory=dict)
    tag: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.problem, str) or not self.problem:
            raise ValueError(f"problem must be a registry name, got {self.problem!r}")
        if not isinstance(self.method, str) or not self.method:
            raise ValueError(f"method must be a registry name, got {self.method!r}")
        if self.engine is not None and (
            not isinstance(self.engine, str) or not self.engine
        ):
            raise ValueError(
                f"engine must be a registry name or None, got {self.engine!r}"
            )
        if self.engine_params and self.engine is None:
            raise ValueError("engine_params require an engine name")
        if self.cache is not None and (
            not isinstance(self.cache, str) or not self.cache
        ):
            raise ValueError(
                f"cache must be a registry name or None, got {self.cache!r}"
            )
        if self.cache_params and self.cache is None:
            raise ValueError("cache_params require a cache name")
        # Detach from caller-owned dicts: a frozen, hashable spec must not
        # change identity when the caller later mutates what it passed in.
        object.__setattr__(self, "problem_params", copy.deepcopy(self.problem_params))
        object.__setattr__(self, "overrides", copy.deepcopy(self.overrides))
        object.__setattr__(self, "engine_params", copy.deepcopy(self.engine_params))
        object.__setattr__(self, "cache_params", copy.deepcopy(self.cache_params))

    def __hash__(self) -> int:
        # The dataclass-generated hash would choke on the dict fields; hash
        # the canonical JSON form instead so specs work in sets/dict keys
        # (deduping seed sweeps, caching results per spec).
        return hash(json.dumps(self.to_dict(), sort_keys=True, default=str))

    # -- derivation --------------------------------------------------------
    def with_overrides(self, **overrides) -> "RunSpec":
        """Copy with extra method/config overrides merged in."""
        return replace(self, overrides={**self.overrides, **overrides})

    def with_seed(self, seed: int | None) -> "RunSpec":
        """Copy with a different seed (for replication sweeps)."""
        return replace(self, seed=seed)

    def with_engine(self, engine: str | None, **engine_params) -> "RunSpec":
        """Copy with a different execution backend (same seeded result)."""
        return replace(self, engine=engine, engine_params=engine_params)

    def with_cache(self, cache: str | None, **cache_params) -> "RunSpec":
        """Copy with a different warm-start cache configuration."""
        return replace(self, cache=cache, cache_params=cache_params)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation."""
        return {
            "problem": self.problem,
            "method": self.method,
            "seed": self.seed,
            "problem_params": copy.deepcopy(self.problem_params),
            "overrides": copy.deepcopy(self.overrides),
            "engine": self.engine,
            "engine_params": copy.deepcopy(self.engine_params),
            "cache": self.cache,
            "cache_params": copy.deepcopy(self.cache_params),
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        """Inverse of :meth:`to_dict`.

        Raises :class:`~repro.api.errors.SpecError` — with the offending
        field — for non-object payloads, unknown keys and wrong value
        types, so services and the CLI can report *which* part of a
        submitted spec is broken.
        """
        if not isinstance(data, dict):
            raise SpecError(
                f"expected a JSON object, got {type(data).__name__}",
                spec="RunSpec",
            )
        known = {
            "problem",
            "method",
            "seed",
            "problem_params",
            "overrides",
            "engine",
            "engine_params",
            "cache",
            "cache_params",
            "tag",
        }
        unknown = set(data) - known
        if unknown:
            raise SpecError(
                f"unknown RunSpec keys {sorted(unknown)}; expected a subset "
                f"of {sorted(known)}",
                field=sorted(unknown)[0],
                spec="RunSpec",
            )
        problem = _coerce_str(data, "problem", "RunSpec")
        if problem is None:
            raise SpecError("required field is missing", field="problem", spec="RunSpec")
        tag = data.get("tag")
        if tag is not None and not isinstance(tag, str):
            raise SpecError(
                f"expected a string, got {tag!r}", field="tag", spec="RunSpec"
            )
        return cls(
            problem=problem,
            method=_coerce_str(data, "method", "RunSpec", default="moheco"),
            seed=_coerce_int(data, "seed", "RunSpec"),
            problem_params=_coerce_dict(data, "problem_params", "RunSpec"),
            overrides=_coerce_dict(data, "overrides", "RunSpec"),
            engine=_coerce_str(data, "engine", "RunSpec"),
            engine_params=_coerce_dict(data, "engine_params", "RunSpec"),
            cache=_coerce_str(data, "cache", "RunSpec"),
            cache_params=_coerce_dict(data, "cache_params", "RunSpec"),
            tag=tag,
        )

    def to_json(self, indent: int | None = 2) -> str:
        """The spec as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        """Parse a spec from a JSON string."""
        return cls.from_dict(json.loads(text))
