"""Random-number plumbing.

Every stochastic component in the library accepts a
:class:`numpy.random.Generator`.  This module centralises how generators are
created and how independent streams are derived for multi-run experiments,
so that

* a single integer seed reproduces an entire experiment, and
* parallel/independent runs never share a stream by accident.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "make_rng",
    "spawn",
    "spawn_many",
    "ensure_rng",
    "independent_streams",
    "run_streams",
]


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a fresh :class:`numpy.random.Generator` from ``seed``.

    ``None`` gives OS entropy — fine for exploration, wrong for experiments;
    the experiment drivers always pass explicit seeds.
    """
    return np.random.default_rng(seed)


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a Generator.

    Accepts an existing Generator (returned unchanged), an integer seed, or
    ``None``.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one statistically independent child generator from ``rng``.

    The child is constructed by drawing fresh seed material from the parent,
    so the parent stream advances (two successive ``spawn`` calls give
    different children).
    """
    seed = rng.integers(0, 2**63 - 1, dtype=np.int64)
    return np.random.default_rng(np.random.SeedSequence(int(seed)))


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [spawn(rng) for _ in range(n)]


def independent_streams(seed: int, n: int) -> Iterator[np.random.Generator]:
    """Yield ``n`` independent generators derived from a root ``seed``.

    Used by the experiment runner: run ``i`` of a 10-run experiment always
    sees the same stream regardless of how many runs execute before it.
    """
    root = np.random.SeedSequence(seed)
    for child in root.spawn(n):
        yield np.random.default_rng(child)


def run_streams(
    base_seed: int, run_index: int
) -> tuple[np.random.Generator, np.random.Generator]:
    """The ``(optimizer, reference)`` stream pair of run ``run_index``.

    Index-addressable form of :func:`independent_streams`: run ``i`` owns
    the children at spawn keys ``2*i`` (optimizer) and ``2*i + 1``
    (reference MC), so a sweep worker can rebuild exactly the streams the
    serial ``for i in range(runs)`` loop would hand to run ``i`` — without
    materialising the streams of the runs before it.  This is what makes a
    process-sharded seed sweep bit-identical to the serial one.
    """
    if run_index < 0:
        raise ValueError(f"run_index must be >= 0, got {run_index}")
    optimizer = np.random.SeedSequence(base_seed, spawn_key=(2 * run_index,))
    reference = np.random.SeedSequence(base_seed, spawn_key=(2 * run_index + 1,))
    return np.random.default_rng(optimizer), np.random.default_rng(reference)
