"""Experiment harness reproducing the paper's tables and figures.

Each experiment module exposes a ``run_*`` function returning plain data
plus a ``format_*`` helper rendering the paper-style table; the
pytest-benchmark wrappers in ``benchmarks/`` call these and persist the
rendered output under ``benchmarks/results/``.

Scaling: paper-scale experiments (10 runs, 50 000-sample references) take
tens of minutes; the default settings are laptop-scale.  The replication
protocol itself lives in :mod:`repro.sweep` — experiments here are thin
adapters that build a :class:`~repro.sweep.spec.SweepSpec` and hand it to
:func:`~repro.sweep.executor.run_sweep`, so they inherit process sharding
(``workers=``) and resumable stores (``store=``/``resume=``) for free.
The ``REPRO_*`` environment variables remain as a deprecated
compatibility path mapped onto the spec — see
:class:`ExperimentSettings`.
"""

from repro.experiments.runner import (
    ExperimentSettings,
    MethodSummary,
    RunRecord,
    replicate_method,
)
from repro.experiments.stats import summary_row

__all__ = [
    "ExperimentSettings",
    "RunRecord",
    "MethodSummary",
    "replicate_method",
    "summary_row",
]
