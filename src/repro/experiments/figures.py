"""Figure rendering (Fig. 6): ASCII charts of the example-1 comparison."""

from __future__ import annotations

import numpy as np

from repro.experiments.example1 import Example1Results

__all__ = ["format_fig6"]


def _bar_chart(title: str, labels: list[str], values: np.ndarray, unit: str,
               width: int = 46) -> str:
    """Simple horizontal ASCII bar chart."""
    peak = max(float(np.max(values)), 1e-12)
    lines = [title]
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{label:28s} |{bar:<{width}} {value:.4g}{unit}")
    return "\n".join(lines)


def format_fig6(results: Example1Results) -> str:
    """Paper Fig. 6: average yield deviation and simulation count per method."""
    labels = [summary.method for summary in results.summaries]
    deviations = np.array(
        [float(np.mean(summary.deviations())) * 100 for summary in results.summaries]
    )
    simulations = np.array(
        [float(np.mean(summary.simulations())) for summary in results.summaries]
    )
    parts = [
        "Fig. 6. Average yield-estimate deviation and number of simulations "
        "for different methods (example 1)",
        "",
        _bar_chart("average deviation from reference MC", labels, deviations, "%"),
        "",
        _bar_chart("average total simulations", labels, simulations, ""),
    ]
    return "\n".join(parts)
