"""Experiment: paper example 2 (Tables 3-4).

Two-stage telescopic-cascode amplifier in N90 under "extremely severe
performance constraints".  Three methods: AS+LHS at 300 and 500 simulations
per feasible candidate, and MOHECO.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import optimize
from repro.experiments.runner import (
    ExperimentSettings,
    MethodSummary,
    replicate_method,
)
from repro.experiments.tables import format_deviation_table, format_simulation_table
from repro.problems import make_telescopic_problem

__all__ = ["Example2Results", "run_example2", "METHODS"]

#: Method name -> runner closure over the unified :func:`repro.api.optimize`.
METHODS = {
    "300 simulations (AS+LHS)":
        lambda p, **kw: optimize(p, method="fixed_budget", n_fixed=300, **kw),
    "500 simulations (AS+LHS)":
        lambda p, **kw: optimize(p, method="fixed_budget", n_fixed=500, **kw),
    "MOHECO": lambda p, **kw: optimize(p, method="moheco", n_max=500, **kw),
}


@dataclass
class Example2Results:
    """Both tables of example 2 plus the raw summaries."""

    summaries: list[MethodSummary]
    settings: ExperimentSettings

    def table3(self) -> str:
        """Paper Table 3: yield deviation from the reference MC."""
        return format_deviation_table(
            "Table 3. Deviation of the yield results from the "
            f"{self.settings.reference_n}-sample MC reference (example 2)",
            self.summaries,
        )

    def table4(self) -> str:
        """Paper Table 4: total number of simulations."""
        return format_simulation_table(
            "Table 4. Total number of simulations (example 2)", self.summaries
        )

    def summary_by_name(self, name: str) -> MethodSummary:
        """Look up one method's summary."""
        for summary in self.summaries:
            if summary.method == name:
                return summary
        raise KeyError(name)


def run_example2(
    settings: ExperimentSettings | None = None,
    methods: dict | None = None,
    base_seed: int = 20100309,
) -> Example2Results:
    """Run the full example-2 comparison."""
    settings = settings or ExperimentSettings.from_env()
    problem = make_telescopic_problem()
    summaries = []
    for name, runner in (methods or METHODS).items():
        summaries.append(
            replicate_method(problem, name, runner, settings, base_seed=base_seed)
        )
    return Example2Results(summaries=summaries, settings=settings)
