"""Experiment: paper example 2 (Tables 3-4).

Two-stage telescopic-cascode amplifier in N90 under "extremely severe
performance constraints".  Three methods: AS+LHS at 300 and 500 simulations
per feasible candidate, and MOHECO.

Like example 1, the comparison is one :class:`~repro.sweep.spec.SweepSpec`
executed by :func:`~repro.sweep.executor.run_sweep` — shardable across
processes and resumable from a partial result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentSettings, ensure_method_specs
from repro.experiments.tables import format_deviation_table, format_simulation_table
from repro.sweep import (
    MethodSpec,
    MethodSummary,
    ProblemSpec,
    SweepResult,
    SweepSpec,
    run_sweep,
)

__all__ = ["Example2Results", "run_example2", "sweep_spec_example2", "METHODS"]

#: The three compared methods, as sweep grid entries.
METHODS: tuple[MethodSpec, ...] = (
    MethodSpec(
        "fixed_budget", label="300 simulations (AS+LHS)", overrides={"n_fixed": 300}
    ),
    MethodSpec(
        "fixed_budget", label="500 simulations (AS+LHS)", overrides={"n_fixed": 500}
    ),
    MethodSpec("moheco", label="MOHECO", overrides={"n_max": 500}),
)

_PROBLEM = ProblemSpec("telescopic", label="example 2 (telescopic)")


@dataclass
class Example2Results:
    """Both tables of example 2 plus the raw summaries."""

    summaries: list[MethodSummary]
    settings: ExperimentSettings
    #: The underlying sweep (records, store path, timing); ``None`` only
    #: for results built by hand.
    sweep: SweepResult | None = field(default=None, repr=False)

    def table3(self) -> str:
        """Paper Table 3: yield deviation from the reference MC."""
        return format_deviation_table(
            "Table 3. Deviation of the yield results from the "
            f"{self.settings.reference_n}-sample MC reference (example 2)",
            self.summaries,
        )

    def table4(self) -> str:
        """Paper Table 4: total number of simulations."""
        return format_simulation_table(
            "Table 4. Total number of simulations (example 2)", self.summaries
        )

    def summary_by_name(self, name: str) -> MethodSummary:
        """Look up one method's summary."""
        for summary in self.summaries:
            if summary.method == name:
                return summary
        raise KeyError(name)


def sweep_spec_example2(
    settings: ExperimentSettings | None = None,
    methods: "tuple[MethodSpec, ...] | None" = None,
    base_seed: int = 20100309,
    **kwargs,
) -> SweepSpec:
    """The example-2 comparison as a declarative sweep spec."""
    settings = settings or ExperimentSettings.from_env()
    return settings.sweep_spec(
        problems=(_PROBLEM,),
        methods=ensure_method_specs(methods) or METHODS,
        base_seed=base_seed,
        **kwargs,
    )


def run_example2(
    settings: ExperimentSettings | None = None,
    methods: "tuple[MethodSpec, ...] | None" = None,
    base_seed: int = 20100309,
    *,
    workers: int | None = None,
    store=None,
    resume: bool = False,
    callbacks=None,
) -> Example2Results:
    """Run the full example-2 comparison (optionally sharded/resumable)."""
    settings = settings or ExperimentSettings.from_env()
    spec = sweep_spec_example2(settings, methods, base_seed)
    sweep = run_sweep(
        spec, workers=workers, store=store, resume=resume, callbacks=callbacks
    )
    return Example2Results(
        summaries=sweep.summaries(), settings=settings, sweep=sweep
    )
