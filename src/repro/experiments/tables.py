"""Paper-style table rendering."""

from __future__ import annotations

from repro.experiments.runner import MethodSummary
from repro.experiments.stats import summary_row

__all__ = ["format_deviation_table", "format_simulation_table", "format_generic"]


def format_generic(title: str, headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table with a title line."""
    widths = [len(h) for h in headers]
    for row in rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[j]) for j, cell in enumerate(cells))
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def format_deviation_table(title: str, summaries: list[MethodSummary]) -> str:
    """Tables 1 / 3: yield deviation vs the high-N reference, per method."""
    rows = []
    for summary in summaries:
        stats = summary_row(summary.deviations())
        rows.append([summary.method, *stats.formatted(as_percent=True)])
    return format_generic(
        title, ["methods", "best", "worst", "average", "variance"], rows
    )


def format_simulation_table(title: str, summaries: list[MethodSummary]) -> str:
    """Tables 2 / 4: total number of simulations, per method."""
    rows = []
    for summary in summaries:
        stats = summary_row(summary.simulations())
        rows.append([summary.method, *stats.formatted(as_percent=False)])
    return format_generic(
        title, ["methods", "best", "worst", "average", "variance"], rows
    )
