"""Experiment: paper example 1 (Tables 1-2, Fig. 6).

Folded-cascode amplifier in C035.  Five methods compared over independent
runs: AS+LHS with 300/500/700 fixed simulations per feasible candidate,
OO+AS+LHS, and MOHECO.  Reported quantities: deviation of the reported
yield from the reference MC (Table 1) and total simulation count (Table 2).

The comparison is one :class:`~repro.sweep.spec.SweepSpec` — the method
column of the paper's tables is the grid's method axis — executed by
:func:`~repro.sweep.executor.run_sweep`: pass ``workers=4`` to shard the
runs across processes (bit-identical results) and ``store=``/``resume=``
to persist and continue partial experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.runner import ExperimentSettings, ensure_method_specs
from repro.experiments.tables import format_deviation_table, format_simulation_table
from repro.sweep import (
    MethodSpec,
    MethodSummary,
    ProblemSpec,
    SweepResult,
    SweepSpec,
    run_sweep,
)

__all__ = ["Example1Results", "run_example1", "sweep_spec_example1", "METHODS"]

#: The five compared methods, as sweep grid entries.  The fixed budgets
#: are the paper's; labels match the tables' row names.
METHODS: tuple[MethodSpec, ...] = (
    MethodSpec(
        "fixed_budget", label="300 simulations (AS+LHS)", overrides={"n_fixed": 300}
    ),
    MethodSpec(
        "fixed_budget", label="500 simulations (AS+LHS)", overrides={"n_fixed": 500}
    ),
    MethodSpec(
        "fixed_budget", label="700 simulations (AS+LHS)", overrides={"n_fixed": 700}
    ),
    MethodSpec("oo_only", label="OO+AS+LHS", overrides={"n_max": 500}),
    MethodSpec("moheco", label="MOHECO", overrides={"n_max": 500}),
)

_PROBLEM = ProblemSpec("folded_cascode", label="example 1 (folded cascode)")


@dataclass
class Example1Results:
    """Both tables of example 1 plus the raw summaries."""

    summaries: list[MethodSummary]
    settings: ExperimentSettings
    #: The underlying sweep (records, store path, timing); ``None`` only
    #: for results built by hand.
    sweep: SweepResult | None = field(default=None, repr=False)

    def table1(self) -> str:
        """Paper Table 1: yield deviation from the reference MC."""
        return format_deviation_table(
            "Table 1. Deviation of the yield results from the "
            f"{self.settings.reference_n}-sample MC reference (example 1)",
            self.summaries,
        )

    def table2(self) -> str:
        """Paper Table 2: total number of simulations."""
        return format_simulation_table(
            "Table 2. Total number of simulations (example 1)", self.summaries
        )

    def summary_by_name(self, name: str) -> MethodSummary:
        """Look up one method's summary."""
        for summary in self.summaries:
            if summary.method == name:
                return summary
        raise KeyError(name)


def sweep_spec_example1(
    settings: ExperimentSettings | None = None,
    methods: "tuple[MethodSpec, ...] | None" = None,
    base_seed: int = 20100308,
    **kwargs,
) -> SweepSpec:
    """The example-1 comparison as a declarative sweep spec.

    ``kwargs`` (``engine``, ``workers``, ``tag``, ...) pass through to
    :class:`SweepSpec` — archive ``spec.to_json()`` next to the results.
    """
    settings = settings or ExperimentSettings.from_env()
    return settings.sweep_spec(
        problems=(_PROBLEM,),
        methods=ensure_method_specs(methods) or METHODS,
        base_seed=base_seed,
        **kwargs,
    )


def run_example1(
    settings: ExperimentSettings | None = None,
    methods: "tuple[MethodSpec, ...] | None" = None,
    base_seed: int = 20100308,
    *,
    workers: int | None = None,
    store=None,
    resume: bool = False,
    callbacks=None,
) -> Example1Results:
    """Run the full example-1 comparison (optionally sharded/resumable)."""
    settings = settings or ExperimentSettings.from_env()
    spec = sweep_spec_example1(settings, methods, base_seed)
    sweep = run_sweep(
        spec, workers=workers, store=store, resume=resume, callbacks=callbacks
    )
    return Example1Results(
        summaries=sweep.summaries(), settings=settings, sweep=sweep
    )
