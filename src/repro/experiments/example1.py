"""Experiment: paper example 1 (Tables 1-2, Fig. 6).

Folded-cascode amplifier in C035.  Five methods compared over independent
runs: AS+LHS with 300/500/700 fixed simulations per feasible candidate,
OO+AS+LHS, and MOHECO.  Reported quantities: deviation of the reported
yield from the reference MC (Table 1) and total simulation count (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api import optimize
from repro.experiments.runner import (
    ExperimentSettings,
    MethodSummary,
    replicate_method,
)
from repro.experiments.tables import format_deviation_table, format_simulation_table
from repro.problems import make_folded_cascode_problem

__all__ = ["Example1Results", "run_example1", "METHODS"]

#: Method name -> runner closure over the unified :func:`repro.api.optimize`
#: driver.  The fixed budgets are the paper's.
METHODS = {
    "300 simulations (AS+LHS)":
        lambda p, **kw: optimize(p, method="fixed_budget", n_fixed=300, **kw),
    "500 simulations (AS+LHS)":
        lambda p, **kw: optimize(p, method="fixed_budget", n_fixed=500, **kw),
    "700 simulations (AS+LHS)":
        lambda p, **kw: optimize(p, method="fixed_budget", n_fixed=700, **kw),
    "OO+AS+LHS": lambda p, **kw: optimize(p, method="oo_only", n_max=500, **kw),
    "MOHECO": lambda p, **kw: optimize(p, method="moheco", n_max=500, **kw),
}


@dataclass
class Example1Results:
    """Both tables of example 1 plus the raw summaries."""

    summaries: list[MethodSummary]
    settings: ExperimentSettings

    def table1(self) -> str:
        """Paper Table 1: yield deviation from the reference MC."""
        return format_deviation_table(
            "Table 1. Deviation of the yield results from the "
            f"{self.settings.reference_n}-sample MC reference (example 1)",
            self.summaries,
        )

    def table2(self) -> str:
        """Paper Table 2: total number of simulations."""
        return format_simulation_table(
            "Table 2. Total number of simulations (example 1)", self.summaries
        )

    def summary_by_name(self, name: str) -> MethodSummary:
        """Look up one method's summary."""
        for summary in self.summaries:
            if summary.method == name:
                return summary
        raise KeyError(name)


def run_example1(
    settings: ExperimentSettings | None = None,
    methods: dict | None = None,
    base_seed: int = 20100308,
) -> Example1Results:
    """Run the full example-1 comparison."""
    settings = settings or ExperimentSettings.from_env()
    problem = make_folded_cascode_problem()
    summaries = []
    for name, runner in (methods or METHODS).items():
        summaries.append(
            replicate_method(problem, name, runner, settings, base_seed=base_seed)
        )
    return Example1Results(summaries=summaries, settings=settings)
