"""Statistical summaries matching the paper's table columns."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SummaryRow", "summary_row"]


@dataclass(frozen=True)
class SummaryRow:
    """best / worst / average / variance of one quantity over runs.

    "best" is the smallest value (both table families report quantities
    where smaller is better: deviation and simulation count).
    """

    best: float
    worst: float
    average: float
    variance: float

    def formatted(self, as_percent: bool = False) -> tuple[str, str, str, str]:
        """Render the four statistics the way the paper prints them."""
        if as_percent:
            return (
                f"{self.best * 100:.2f}%",
                f"{self.worst * 100:.2f}%",
                f"{self.average * 100:.2f}%",
                f"{self.variance:.1e}",
            )
        return (
            f"{self.best:.0f}",
            f"{self.worst:.0f}",
            f"{self.average:.0f}",
            f"{self.variance:.1e}",
        )


def summary_row(values: np.ndarray) -> SummaryRow:
    """Summarise per-run values (smaller = better)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarise an empty value set")
    return SummaryRow(
        best=float(np.min(values)),
        worst=float(np.max(values)),
        average=float(np.mean(values)),
        variance=float(np.var(values, ddof=1)) if values.size > 1 else 0.0,
    )
