"""Experiment: Fig. 3 — how OCBA distributes samples in one population.

The paper illustrates ordinal optimization on a typical example-1
population: candidates with yield > 70 % (36 % of the population) received
55 % of the simulations, candidates with yield < 40 % (30 % of the
population) only 13 %, and the whole population cost ~11 % of what the
fixed-500 AS+LHS method would have spent.

Reproduction: build a population with a broad yield spread by perturbing a
good anchor design (found by a short MOHECO run) at graded strengths, keep
the nominally-feasible ones, run the sequential OCBA loop on them, and
report the same bucket shares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import optimize
from repro.core.config import MOHECOConfig
from repro.ledger import SimulationLedger
from repro.ocba.sequential import ocba_sequential
from repro.problems import make_folded_cascode_problem
from repro.rng import ensure_rng, spawn
from repro.sampling import make_sampler
from repro.yieldsim.estimator import CandidateYieldState

__all__ = ["Fig3Result", "run_fig3"]


@dataclass
class Fig3Result:
    """Bucket shares of one OCBA population (the Fig. 3 quantities)."""

    estimates: np.ndarray
    counts: np.ndarray
    high_population_share: float
    high_simulation_share: float
    low_population_share: float
    low_simulation_share: float
    total_vs_fixed: float
    n_candidates: int

    def formatted(self) -> str:
        """Render the Fig. 3 comparison."""
        lines = [
            "Fig. 3. The function of OO in one typical population",
            f"population size (feasible candidates): {self.n_candidates}",
            f"yield > 70%: {self.high_population_share:6.1%} of population, "
            f"{self.high_simulation_share:6.1%} of simulations",
            f"yield < 40%: {self.low_population_share:6.1%} of population, "
            f"{self.low_simulation_share:6.1%} of simulations",
            f"total samples vs fixed-500 AS+LHS: {self.total_vs_fixed:6.1%}",
            "(paper: 36% of pop -> 55% of sims; 30% of pop -> 13% of sims; "
            "total ~11%)",
        ]
        return "\n".join(lines)


def run_fig3(
    n_candidates: int = 25,
    seed: int = 20100310,
    anchor_generations: int = 80,
    n_fixed_reference: int = 500,
) -> Fig3Result:
    """Build one typical population and report the OCBA allocation shares."""
    rng = ensure_rng(seed)
    problem = make_folded_cascode_problem()

    anchor_result = optimize(
        problem, method="moheco", rng=spawn(rng),
        max_generations=anchor_generations,
    )
    anchor = anchor_result.best_x

    # Graded perturbations: mild ones keep high yield, strong ones degrade
    # it.  The feasible region is narrow (the power spec binds), so each
    # attempt moves only a few coordinates and strengths stay small; the
    # strength sweep still produces the broad yield spread Fig. 3 needs.
    space = problem.space
    span = space.upper - space.lower
    candidates: list[np.ndarray] = [anchor.copy()]
    attempts = 0
    while len(candidates) < n_candidates and attempts < 600:
        attempts += 1
        strength = float(rng.uniform(0.002, 0.08))
        mask = rng.uniform(size=space.dimension) < 0.35
        if not np.any(mask):
            continue
        x = space.clip(
            anchor + mask * strength * span * rng.normal(size=space.dimension)
        )
        feasible, _ = problem.nominal_feasibility(x)
        if feasible:
            candidates.append(x)

    ledger = SimulationLedger()
    sampler = make_sampler("lhs", problem.variation)
    config = MOHECOConfig()
    states = [
        CandidateYieldState(problem, x, sampler, spawn(rng), ledger, "stage1")
        for x in candidates
    ]
    report = ocba_sequential(
        states,
        total_budget=config.sim_ave * len(states),
        n0=config.n0,
        delta=config.delta,
    )

    estimates, counts = report.estimates, report.counts
    total = max(int(np.sum(counts)), 1)
    high = estimates > 0.70
    low = estimates < 0.40
    return Fig3Result(
        estimates=estimates,
        counts=counts,
        high_population_share=float(np.mean(high)),
        high_simulation_share=float(np.sum(counts[high]) / total),
        low_population_share=float(np.mean(low)),
        low_simulation_share=float(np.sum(counts[low]) / total),
        total_vs_fixed=float(total / (n_fixed_reference * len(states))),
        n_candidates=len(states),
    )
