"""Experiment: section 3.4 — PSWCD over-design quantification.

The paper argues PSWCD methods over-design because "the separated
worst-case points cannot be achieved simultaneously, so their combination
is over-estimated".  We quantify that: on a set of designs with known MC
yields, compare the PSWCD worst-case yield bound with the reference MC
yield.  The bound should systematically *underestimate* the yield
(over-design pressure: designs get rejected or pushed further from spec
boundaries than necessary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import RunSpec, optimize, resolve_problem
from repro.baselines import pswcd_analysis
from repro.rng import ensure_rng, spawn
from repro.yieldsim import reference_yield

__all__ = ["PSWCDStudyResult", "run_pswcd_study", "backbone_spec"]


def backbone_spec(max_generations: int = 80) -> RunSpec:
    """The MOHECO trajectory the study draws its designs from, as a spec."""
    return RunSpec(
        problem="folded_cascode",
        method="moheco",
        overrides={"max_generations": max_generations},
        tag="pswcd-study-backbone",
    )


@dataclass
class PSWCDStudyResult:
    """Per-design PSWCD bounds against MC reference yields."""

    mc_yields: np.ndarray
    wc_bounds: np.ndarray

    @property
    def mean_underestimate(self) -> float:
        """Mean (MC yield - worst-case bound); positive = over-design."""
        return float(np.mean(self.mc_yields - self.wc_bounds))

    @property
    def fraction_underestimated(self) -> float:
        """Share of designs whose yield the bound underestimates."""
        return float(np.mean(self.wc_bounds <= self.mc_yields + 1e-9))

    def formatted(self) -> str:
        """Render the comparison."""
        lines = [
            "Section 3.4: PSWCD worst-case yield bound vs reference MC",
            f"{'MC yield':>10s} {'WC bound':>10s} {'gap':>8s}",
        ]
        for mc, wc in zip(self.mc_yields, self.wc_bounds):
            lines.append(f"{mc * 100:>9.2f}% {wc * 100:>9.2f}% {(mc - wc) * 100:>7.2f}%")
        lines.append(
            f"mean over-design gap: {self.mean_underestimate * 100:.2f}% "
            f"(bound below MC on {self.fraction_underestimated:.0%} of designs)"
        )
        return "\n".join(lines)


def run_pswcd_study(
    seed: int = 20100312,
    n_designs: int = 8,
    n_train: int = 300,
    reference_n: int = 5000,
    max_generations: int = 80,
    spec: RunSpec | None = None,
) -> PSWCDStudyResult:
    """Assess PSWCD bounds on designs drawn from a MOHECO trajectory.

    ``spec`` swaps the backbone run (default :func:`backbone_spec`); the
    study's own ``seed`` stays in charge of the random streams.
    """
    rng = ensure_rng(seed)
    spec = spec if spec is not None else backbone_spec(max_generations)
    # One problem instance serves the backbone run, the PSWCD analyses and
    # the reference MCs below.
    problem = resolve_problem(spec.problem, spec.problem_params)
    result = optimize(
        problem,
        method=spec.method,
        rng=spawn(rng),
        engine=spec.engine,
        engine_params=spec.engine_params or None,
        **spec.overrides,
    )

    # Collect distinct feasible designs spanning the yield range.
    designs: list[np.ndarray] = []
    for record in result.history:
        if record.evaluated_x.size:
            order = np.argsort(record.evaluated_yield)
            for idx in order[-2:]:
                designs.append(record.evaluated_x[idx])
    if not designs:
        raise RuntimeError("no feasible designs recorded in the MOHECO run")
    step = max(1, len(designs) // n_designs)
    chosen = designs[::step][:n_designs]

    mc_yields, wc_bounds = [], []
    for x in chosen:
        analysis = pswcd_analysis(problem, x, n_train=n_train, rng=spawn(rng))
        reference = reference_yield(problem, x, n=reference_n, rng=spawn(rng))
        wc_bounds.append(analysis.yield_bound)
        mc_yields.append(reference.value)

    return PSWCDStudyResult(
        mc_yields=np.array(mc_yields), wc_bounds=np.array(wc_bounds)
    )
