"""Experiment: section 3.4 — response-surface (NN) accuracy study.

Protocol from the paper: take a typical MOHECO run on example 1; at every
checkpoint iteration ``k``, train the 20-neuron BP network (LM training) on
all (design, yield) data from iterations <= k and predict the yields of
iteration ``k + 1``; report the RMS error.  The paper's finding: "even when
the training data corresponding to the first 50 iterations of MOHECO are
used, the RMS error is still 6.86 %" — far above what a designer could
accept, and the reason RSB methods lose to MOHECO at equal cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import RunSpec, optimize
from repro.rng import ensure_rng, spawn
from repro.surrogate import ResponseSurfaceYieldModel

__all__ = ["RSBStudyResult", "run_rsb_study", "backbone_spec"]


def backbone_spec(max_generations: int = 120) -> RunSpec:
    """The study's backbone MOHECO run, as a declarative spec.

    The study trains its response-surface models on one "typical MOHECO
    run"; this is that run, expressed through the unified API so it can be
    archived, re-executed from the CLI, or swapped for another problem.
    """
    return RunSpec(
        problem="folded_cascode",
        method="moheco",
        overrides={"max_generations": max_generations},
        tag="rsb-study-backbone",
    )


@dataclass
class RSBStudyResult:
    """RMS prediction error per training-cutoff iteration."""

    checkpoints: np.ndarray
    rms_errors: np.ndarray
    train_sizes: np.ndarray

    @property
    def final_rms(self) -> float:
        """RMS error at the largest training cutoff (paper: ~6.9 %)."""
        return float(self.rms_errors[-1])

    def formatted(self) -> str:
        """Render the error-vs-training-data curve."""
        lines = [
            "Section 3.4: NN response-surface accuracy on MOHECO run data",
            f"{'train<=iter':>12s} {'#train':>8s} {'RMS error':>10s}",
        ]
        for k, n, e in zip(self.checkpoints, self.train_sizes, self.rms_errors):
            lines.append(f"{int(k):>12d} {int(n):>8d} {e * 100:>9.2f}%")
        lines.append(
            f"final RMS error: {self.final_rms * 100:.2f}% "
            "(paper: 6.86% with 50 iterations of training data)"
        )
        return "\n".join(lines)


def run_rsb_study(
    seed: int = 20100311,
    n_checkpoints: int = 6,
    n_hidden: int = 20,
    max_generations: int = 120,
    spec: RunSpec | None = None,
) -> RSBStudyResult:
    """Run the study on a fresh typical MOHECO trajectory.

    ``spec`` swaps the backbone run (default :func:`backbone_spec`); the
    study's own ``seed`` stays in charge of the random streams.
    """
    rng = ensure_rng(seed)
    spec = spec if spec is not None else backbone_spec(max_generations)
    result = optimize(spec, rng=spawn(rng))
    history = result.history

    # Usable checkpoints: generations with data both before and at k+1.
    usable = [
        record.generation
        for record in history
        if record.generation + 1 < len(history)
        and history.training_data(record.generation)[1].size >= 20
        and history.generation_data(record.generation + 1)[1].size >= 3
    ]
    if not usable:
        raise RuntimeError("the MOHECO run produced too little data for the study")
    idx = np.unique(
        np.linspace(0, len(usable) - 1, min(n_checkpoints, len(usable))).astype(int)
    )
    checkpoints = [usable[i] for i in idx]

    errors, sizes = [], []
    for k in checkpoints:
        x_train, y_train = history.training_data(k)
        x_test, y_test = history.generation_data(k + 1)
        model = ResponseSurfaceYieldModel(
            n_hidden=n_hidden, n_restarts=2, rng=spawn(rng)
        )
        model.fit(x_train, y_train)
        errors.append(model.rms_error(x_test, y_test))
        sizes.append(len(y_train))

    return RSBStudyResult(
        checkpoints=np.array(checkpoints),
        rms_errors=np.array(errors),
        train_sizes=np.array(sizes),
    )
