"""Multi-run experiment driver.

The paper's protocol: "10 runs with independent random numbers have been
performed for all experiments and the results have been analyzed and
compared statistically."  :func:`replicate_method` runs one method that many
times with independent seed-sequence streams, scores every returned design
against a high-N reference MC, and aggregates the paper's four statistics
(best / worst / average / variance).

Environment knobs
-----------------
``REPRO_FULL=1``
    Paper scale: 10 runs, 50 000-sample references.
``REPRO_RUNS=<n>`` / ``REPRO_REF_N=<n>`` / ``REPRO_MAXGEN=<n>``
    Individual overrides (take precedence over REPRO_FULL).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.ledger import SimulationLedger
from repro.rng import independent_streams
from repro.yieldsim import reference_yield

__all__ = ["ExperimentSettings", "RunRecord", "MethodSummary", "replicate_method"]


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale of an experiment run."""

    runs: int
    reference_n: int
    max_generations: int
    full: bool

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Build settings from the REPRO_* environment variables."""
        full = os.environ.get("REPRO_FULL", "0") == "1"
        runs = int(os.environ.get("REPRO_RUNS", "10" if full else "3"))
        reference_n = int(
            os.environ.get("REPRO_REF_N", "50000" if full else "20000")
        )
        max_generations = int(
            os.environ.get("REPRO_MAXGEN", "200" if full else "150")
        )
        return cls(
            runs=runs,
            reference_n=reference_n,
            max_generations=max_generations,
            full=full,
        )


@dataclass
class RunRecord:
    """One optimization run, scored against the reference MC."""

    method: str
    run_index: int
    reported_yield: float
    reference_yield: float
    n_simulations: int
    generations: int
    reason: str
    wall_seconds: float
    result: object = field(repr=False, default=None)

    @property
    def deviation(self) -> float:
        """|reported - reference| — the quantity of Tables 1 and 3."""
        return abs(self.reported_yield - self.reference_yield)


@dataclass
class MethodSummary:
    """All runs of one method."""

    method: str
    records: list[RunRecord]

    def deviations(self) -> np.ndarray:
        """Per-run deviations."""
        return np.array([r.deviation for r in self.records])

    def simulations(self) -> np.ndarray:
        """Per-run total simulation counts."""
        return np.array([r.n_simulations for r in self.records], dtype=float)


def replicate_method(
    problem,
    method: str,
    run_fn,
    settings: ExperimentSettings,
    base_seed: int = 20100308,
) -> MethodSummary:
    """Run ``run_fn(problem, rng=..., ledger=..., max_generations=...)``
    ``settings.runs`` times with independent streams.

    ``run_fn`` must return a :class:`~repro.core.moheco.MOHECOResult`-like
    object (``best_x``, ``best_yield``, ``n_simulations``, ``generations``,
    ``reason``).  The reference MC at the returned design point is charged
    to the excluded ``reference`` ledger category.
    """
    records: list[RunRecord] = []
    streams = list(independent_streams(base_seed, settings.runs * 2))
    for i in range(settings.runs):
        optimizer_rng = streams[2 * i]
        reference_rng = streams[2 * i + 1]
        ledger = SimulationLedger()
        start = time.perf_counter()
        result = run_fn(
            problem,
            rng=optimizer_rng,
            ledger=ledger,
            max_generations=settings.max_generations,
        )
        elapsed = time.perf_counter() - start
        reference = reference_yield(
            problem,
            result.best_x,
            n=settings.reference_n,
            rng=reference_rng,
            ledger=ledger,
        )
        records.append(
            RunRecord(
                method=method,
                run_index=i,
                reported_yield=result.best_yield,
                reference_yield=reference.value,
                n_simulations=result.n_simulations,
                generations=result.generations,
                reason=result.reason,
                wall_seconds=elapsed,
                result=result,
            )
        )
    return MethodSummary(method=method, records=records)
