"""Multi-run experiment driver (now a thin adapter over :mod:`repro.sweep`).

The paper's protocol: "10 runs with independent random numbers have been
performed for all experiments and the results have been analyzed and
compared statistically."  That protocol is owned by the sweep layer —
:class:`~repro.sweep.spec.SweepSpec` grids executed by
:func:`~repro.sweep.executor.run_sweep` (serial or process-sharded,
resumable) — and this module keeps the historical entry points alive on
top of it:

* :class:`ExperimentSettings` — the legacy ``REPRO_*`` environment knobs,
  now a **deprecated compatibility path**: each knob maps onto a
  :class:`SweepSpec` field (see :meth:`ExperimentSettings.sweep_spec`).
  New code should build the spec directly (or use ``repro sweep``).
* :func:`replicate_method` — **deprecated** closure-driven replication
  shim; same records as before, produced with the sweep layer's
  index-addressable streams (:func:`repro.rng.run_streams`).
* :class:`RunRecord` / :class:`MethodSummary` — re-exported from their
  canonical home :mod:`repro.sweep.records`.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass

from repro.ledger import SimulationLedger
from repro.rng import run_streams
from repro.sweep.records import MethodSummary, RunRecord
from repro.sweep.spec import SweepSpec
from repro.yieldsim import reference_yield

__all__ = [
    "ExperimentSettings",
    "RunRecord",
    "MethodSummary",
    "replicate_method",
    "ensure_method_specs",
]


def ensure_method_specs(methods):
    """Reject the pre-1.2 dict-of-closures ``methods`` form loudly.

    The experiment entry points used to take ``{label: run_fn}``; iterating
    a dict would silently yield its keys as bare registry names and drop
    the closures/overrides, so the break must be explicit.
    """
    if isinstance(methods, dict):
        raise TypeError(
            "methods is a sequence of MethodSpec entries (registry name + "
            "overrides); the pre-1.2 dict-of-closures form cannot express "
            "a sweep — register the closure as a method and pass "
            "MethodSpec(name, overrides={...}) instead"
        )
    return methods


@dataclass(frozen=True)
class ExperimentSettings:
    """Scale of an experiment run.

    Environment knobs (deprecated compatibility path)
    -------------------------------------------------
    The pre-sweep harness was configured through ``REPRO_*`` environment
    variables.  :meth:`from_env` still honours them, and each maps onto a
    :class:`~repro.sweep.spec.SweepSpec` field — prefer setting those
    directly (or the matching ``repro sweep`` flags):

    =====================  =========================  ====================
    env knob               SweepSpec field            ``repro sweep`` flag
    =====================  =========================  ====================
    ``REPRO_FULL=1``       ``runs=10`` +              —
                           ``reference_n=50000`` +
                           ``max_generations=200``
    ``REPRO_RUNS=<n>``     ``runs``                   ``--runs``
    ``REPRO_REF_N=<n>``    ``reference_n``            ``--reference-n``
    ``REPRO_MAXGEN=<n>``   ``max_generations``        ``--max-generations``
    =====================  =========================  ====================
    """

    runs: int
    reference_n: int
    max_generations: int
    full: bool

    @classmethod
    def from_env(cls) -> "ExperimentSettings":
        """Build settings from the (deprecated) REPRO_* environment knobs."""
        full = os.environ.get("REPRO_FULL", "0") == "1"
        runs = int(os.environ.get("REPRO_RUNS", "10" if full else "3"))
        reference_n = int(
            os.environ.get("REPRO_REF_N", "50000" if full else "20000")
        )
        max_generations = int(
            os.environ.get("REPRO_MAXGEN", "200" if full else "150")
        )
        return cls(
            runs=runs,
            reference_n=reference_n,
            max_generations=max_generations,
            full=full,
        )

    def sweep_spec(
        self,
        problems,
        methods,
        base_seed: int,
        **kwargs,
    ) -> SweepSpec:
        """These settings as a :class:`SweepSpec` over ``problems × methods``.

        ``problems`` / ``methods`` accept :class:`ProblemSpec` /
        :class:`MethodSpec` entries or the dict/str forms their
        ``from_dict`` understands; extra ``kwargs`` (``engine``,
        ``workers``, ``tag``, ...) pass through to the spec.
        """
        return SweepSpec(
            methods=tuple(methods),
            problems=tuple(problems),
            runs=self.runs,
            base_seed=base_seed,
            reference_n=self.reference_n,
            max_generations=self.max_generations,
            **kwargs,
        )


def replicate_method(
    problem,
    method: str,
    run_fn,
    settings: ExperimentSettings,
    base_seed: int = 20100308,
) -> MethodSummary:
    """Run ``run_fn(problem, rng=..., ledger=..., max_generations=...)``
    ``settings.runs`` times with independent streams.

    .. deprecated:: 1.2
        Describe the runs as a :class:`~repro.sweep.spec.SweepSpec`
        (method registry name + overrides instead of a ``run_fn`` closure)
        and execute it with :func:`repro.sweep.run_sweep`, which adds
        process sharding and a resumable result store.  This shim remains
        for closures that cannot be expressed as registry methods.

    ``run_fn`` must return a :class:`~repro.core.moheco.MOHECOResult`-like
    object (``best_x``, ``best_yield``, ``n_simulations``, ``generations``,
    ``reason``).  The reference MC at the returned design point is charged
    to the excluded ``reference`` ledger category.  Run ``i`` sees exactly
    the streams :func:`repro.rng.run_streams` derives for it — the same
    streams a sweep over an equivalent spec would use.
    """
    warnings.warn(
        "replicate_method is deprecated; describe the runs as a SweepSpec "
        "and execute them with repro.sweep.run_sweep (sharded + resumable)",
        DeprecationWarning,
        stacklevel=2,
    )
    problem_label = getattr(problem, "name", "")
    records: list[RunRecord] = []
    for i in range(settings.runs):
        optimizer_rng, reference_rng = run_streams(base_seed, i)
        ledger = SimulationLedger()
        start = time.perf_counter()
        result = run_fn(
            problem,
            rng=optimizer_rng,
            ledger=ledger,
            max_generations=settings.max_generations,
        )
        elapsed = time.perf_counter() - start
        reference = reference_yield(
            problem,
            result.best_x,
            n=settings.reference_n,
            rng=reference_rng,
            ledger=ledger,
        )
        to_dict = getattr(result, "to_dict", None)
        records.append(
            RunRecord(
                method=method,
                problem=problem_label,
                run_index=i,
                reported_yield=result.best_yield,
                reference_yield=reference.value,
                n_simulations=result.n_simulations,
                generations=result.generations,
                reason=result.reason,
                wall_seconds=elapsed,
                result=to_dict() if to_dict is not None else None,
            )
        )
    return MethodSummary(method=method, records=records, problem=problem_label)
