"""Paper example 2: two-stage telescopic-cascode amplifier in N90 (90 nm).

Specifications (paper section 3.3)::

    A0     >= 60 dB
    GBW    >= 300 MHz
    PM     >= 60 deg
    OS     >= 1.8 V       (differential peak-to-peak; at VDD = 1.2 V this
                           forces tiny saturation voltages in stage 2)
    power  <= 10 mW
    area   <= 180 um^2
    offset <= 0.05 mV
    all transistors saturated (satmargin >= 0)

The paper stresses that these specs are "very challenging" even without
process variations — the swing/area/offset trio is mutually antagonistic
(swing wants small overdrives = wide devices = area; offset wants large
gate area; area wants everything small).
"""

from __future__ import annotations

from repro.circuit.tech import N90Technology
from repro.circuit.topologies import TwoStageTelescopicAmplifier
from repro.problems.base import YieldProblem
from repro.specs import Spec, SpecSet

__all__ = ["make_telescopic_problem", "TELESCOPIC_SPECS"]

TELESCOPIC_SPECS = SpecSet(
    [
        Spec("a0_db", ">=", 60.0, unit="dB"),
        Spec("gbw_hz", ">=", 300e6, unit="Hz"),
        Spec("pm_deg", ">=", 60.0, unit="deg"),
        Spec("os_v", ">=", 1.8, unit="V"),
        Spec("power_w", "<=", 10e-3, unit="W"),
        Spec("area_m2", "<=", 180e-12, unit="m^2"),
        Spec("offset_v", "<=", 0.05e-3, unit="V"),
        Spec("satmargin_v", ">=", 0.0, unit="V", scale=0.1),
    ]
)


def make_telescopic_problem(tech: N90Technology | None = None) -> YieldProblem:
    """Build the example-2 problem (fresh technology unless provided)."""
    amplifier = TwoStageTelescopicAmplifier(tech or N90Technology())
    return YieldProblem(amplifier, TELESCOPIC_SPECS, name="telescopic_n90")
