"""The generic yield-optimization problem.

A problem couples

* an **evaluator** — anything with ``design_space()``, ``metric_names()``,
  ``evaluate(x, samples)`` and a ``variation`` model (amplifier topologies
  and synthetic evaluators both qualify),
* a **spec set** — pass/fail semantics per sample, and
* **ledger accounting** — every evaluated sample is charged to the supplied
  :class:`~repro.ledger.SimulationLedger`, which is what the paper's
  simulation-count tables report.

The per-sample indicator ``J(x, xi) in {0, 1}`` of the paper is
:meth:`YieldProblem.indicator`; yield is its mean over the process
distribution.
"""

from __future__ import annotations

import numpy as np

from repro.ledger import SimulationLedger
from repro.specs import SpecSet

__all__ = ["YieldProblem"]


def _equal_row_runs(X: np.ndarray):
    """Yield ``(start, stop)`` slices of runs of identical consecutive rows."""
    n = X.shape[0]
    if n == 0:
        return
    changed = np.flatnonzero(np.any(X[1:] != X[:-1], axis=1)) + 1
    start = 0
    for stop in (*changed.tolist(), n):
        yield start, stop
        start = stop


class YieldProblem:
    """A sizing problem: maximise yield subject to nominal feasibility.

    Parameters
    ----------
    evaluator:
        The circuit performance model.
    specs:
        Specifications defining pass/fail; metric names must match the
        evaluator's ``metric_names()`` (order included).
    name:
        Label used in experiment reports.
    """

    def __init__(self, evaluator, specs: SpecSet, name: str = "problem") -> None:
        if list(specs.metric_names) != list(evaluator.metric_names()):
            raise ValueError(
                "spec metrics must match evaluator metrics in order: "
                f"{specs.metric_names} vs {evaluator.metric_names()}"
            )
        self.evaluator = evaluator
        self.specs = specs
        self.name = name
        self.space = evaluator.design_space()
        self.variation = evaluator.variation

    # -- dimensions ---------------------------------------------------------
    @property
    def design_dimension(self) -> int:
        """Number of design variables."""
        return self.space.dimension

    @property
    def process_dimension(self) -> int:
        """Number of process variables (paper: 80 / 123)."""
        return self.variation.dimension

    # -- simulation ------------------------------------------------------------
    def simulate(
        self,
        x: np.ndarray,
        samples: np.ndarray,
        ledger: SimulationLedger | None = None,
        category: str = "mc",
    ) -> np.ndarray:
        """Performance matrix of ``x`` at ``samples``; charges the ledger.

        One charged simulation per sample row — the unit the paper's
        Tables 2/4 count.
        """
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if ledger is not None:
            ledger.charge(samples.shape[0], category=category)
        return self.evaluator.evaluate(np.asarray(x, dtype=float), samples)

    def indicator(
        self,
        x: np.ndarray,
        samples: np.ndarray,
        ledger: SimulationLedger | None = None,
        category: str = "mc",
    ) -> np.ndarray:
        """Per-sample pass indicator J(x, xi), shape ``(n,)`` of bool."""
        performance = self.simulate(x, samples, ledger, category)
        return self.specs.passes(performance)

    # -- batched simulation ----------------------------------------------------
    def evaluate_batch(
        self,
        X: np.ndarray,
        samples: np.ndarray,
        ledger: SimulationLedger | None = None,
        category: str = "mc",
    ) -> np.ndarray:
        """Performance tensor of ``m`` designs at ``n`` shared samples.

        This is the batched evaluation protocol the Monte-Carlo hot paths
        call: one array op instead of ``m`` Python-level evaluator calls.
        Evaluators that define ``evaluate_batch(X, samples)`` (the synthetic
        problems do) are called once for the whole design batch; all others
        fall back to a per-design loop with identical semantics.

        Parameters
        ----------
        X:
            Design matrix, shape ``(m, design_dimension)`` (a single design
            vector is promoted to ``m = 1``).
        samples:
            Process sample matrix, shape ``(n, process_dimension)``.

        Returns
        -------
        numpy.ndarray
            Performance tensor, shape ``(m, n, n_metrics)``; ``m * n``
            simulations are charged to the ledger.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if ledger is not None:
            ledger.charge(X.shape[0] * samples.shape[0], category=category)
        batch_evaluate = getattr(self.evaluator, "evaluate_batch", None)
        if batch_evaluate is not None:
            return np.asarray(batch_evaluate(X, samples), dtype=float)
        out = np.empty((X.shape[0], samples.shape[0], len(self.specs)))
        for i, x in enumerate(X):
            out[i] = self.evaluator.evaluate(x, samples)
        return out

    def evaluate_pairs(
        self,
        X: np.ndarray,
        samples: np.ndarray,
        ledger: SimulationLedger | None = None,
        category: str = "mc",
    ) -> np.ndarray:
        """Row-aligned evaluation: design ``X[i]`` at its own ``samples[i]``.

        This is the fused-round protocol of the execution engines: one OCBA
        round's border-band samples for *all* candidates, stacked into a
        single ``(N, ...)`` pair matrix (each design row repeated for its
        own samples), resolved in one dispatch.  Unlike
        :meth:`evaluate_batch` — the cross-product ``m x n`` protocol — it
        charges exactly ``N`` simulations.

        Evaluators that define ``evaluate_pairs(X, samples)`` handle the
        whole matrix in one array op; all others are dispatched one call
        per run of identical consecutive design rows (which is exactly one
        call per candidate when the engines build the stack).

        Parameters
        ----------
        X:
            Design matrix, shape ``(N, design_dimension)``, aligned row by
            row with ``samples``.
        samples:
            Process sample matrix, shape ``(N, process_dimension)``.

        Returns
        -------
        numpy.ndarray
            Performance matrix, shape ``(N, n_metrics)``.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        if X.shape[0] != samples.shape[0]:
            raise ValueError(
                f"pairs must align row by row: {X.shape[0]} designs vs "
                f"{samples.shape[0]} samples"
            )
        if ledger is not None:
            ledger.charge(X.shape[0], category=category)
        pairs_evaluate = getattr(self.evaluator, "evaluate_pairs", None)
        if pairs_evaluate is not None:
            return np.asarray(pairs_evaluate(X, samples), dtype=float)
        out = np.empty((X.shape[0], len(self.specs)))
        for start, stop in _equal_row_runs(X):
            out[start:stop] = self.evaluator.evaluate(X[start], samples[start:stop])
        return out

    # -- nominal feasibility -------------------------------------------------------
    def nominal_performance(
        self, x: np.ndarray, ledger: SimulationLedger | None = None
    ) -> np.ndarray:
        """Performance at the nominal process point (one charged sim)."""
        nominal = self.variation.nominal()[None, :]
        return self.simulate(x, nominal, ledger, category="feasibility")[0]

    def nominal_feasibility(
        self, x: np.ndarray, ledger: SimulationLedger | None = None
    ) -> tuple[bool, float]:
        """(feasible, constraint violation) at the nominal process point.

        This is the paper's step-3 feasibility check: infeasible candidates
        get yield 0 and compete by violation (Deb's rules); no MC analysis
        is spent on them.
        """
        performance = self.nominal_performance(x, ledger)[None, :]
        violation = float(self.specs.violation(performance)[0])
        return violation == 0.0, violation

    def nominal_feasibility_batch(
        self, X: np.ndarray, ledger: SimulationLedger | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Step-3 feasibility of a whole design batch in one evaluation.

        Returns ``(feasible, violation)`` arrays of shape ``(m,)``; one
        simulation per design is charged, exactly as ``m`` scalar calls
        would.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        nominal = self.variation.nominal()[None, :]
        performance = self.evaluate_batch(X, nominal, ledger, category="feasibility")
        violations = self.specs.violation(performance[:, 0, :])
        return violations == 0.0, violations

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"YieldProblem({self.name!r}, d={self.design_dimension}, "
            f"p={self.process_dimension}, specs={len(self.specs)})"
        )
