"""Paper example 1: folded-cascode amplifier in C035 (0.35 um, 3.3 V).

Specifications (paper section 3.2)::

    A0    >= 70 dB
    GBW   >= 40 MHz
    PM    >= 60 deg
    OS    >= 4.6 V      (differential peak-to-peak)
    power <= 1.07 mW
    all transistors saturated (satmargin >= 0)

The paper chose the 1.07 mW bound deliberately: "1.08 mW is easy to meet,
but 1.06 mW cannot reach 100% yield" — the power spec is the binding one.
"""

from __future__ import annotations

from repro.circuit.tech import C035Technology
from repro.circuit.topologies import FoldedCascodeAmplifier
from repro.problems.base import YieldProblem
from repro.specs import Spec, SpecSet

__all__ = ["make_folded_cascode_problem", "FOLDED_CASCODE_SPECS"]

FOLDED_CASCODE_SPECS = SpecSet(
    [
        Spec("a0_db", ">=", 70.0, unit="dB"),
        Spec("gbw_hz", ">=", 40e6, unit="Hz"),
        Spec("pm_deg", ">=", 60.0, unit="deg"),
        Spec("os_v", ">=", 4.6, unit="V"),
        Spec("power_w", "<=", 1.07e-3, unit="W"),
        Spec("satmargin_v", ">=", 0.0, unit="V", scale=0.2),
    ]
)


def make_folded_cascode_problem(tech: C035Technology | None = None) -> YieldProblem:
    """Build the example-1 problem (fresh technology unless provided)."""
    amplifier = FoldedCascodeAmplifier(tech or C035Technology())
    return YieldProblem(amplifier, FOLDED_CASCODE_SPECS, name="folded_cascode_c035")
