"""Netlist-priced problem: two-stage Miller OTA through the MNA/AC path.

Unlike ``folded_cascode``/``telescopic`` — whose performance models are
closed-form NumPy expressions costing microseconds per sample — every
sample here is priced like a real simulator run: a stacked multi-frequency
complex linear solve over the amplifier's MNA system (see
:class:`~repro.circuit.topologies.netlist_ota.NetlistTwoStageOTA`).  That
makes this the benchmark of choice for the execution-engine layer: the
per-row cost sits well above the serial/process crossover, so the process
pool genuinely wins here.

Specifications (chosen so the feasible region is non-trivial but
reachable, mirroring the paper's spec style)::

    A0    >= 65 dB
    GBW   >= 30 MHz
    PM    >= 55 deg
    power <= 2.2 mW
"""

from __future__ import annotations

from repro.circuit.tech import C035Technology
from repro.circuit.topologies import NetlistTwoStageOTA
from repro.problems.base import YieldProblem
from repro.specs import Spec, SpecSet

__all__ = ["make_netlist_ota_problem", "NETLIST_OTA_SPECS"]

NETLIST_OTA_SPECS = SpecSet(
    [
        Spec("a0_db", ">=", 65.0, unit="dB"),
        Spec("gbw_hz", ">=", 30e6, unit="Hz"),
        Spec("pm_deg", ">=", 55.0, unit="deg"),
        Spec("power_w", "<=", 2.2e-3, unit="W"),
    ]
)


def make_netlist_ota_problem(tech: C035Technology | None = None) -> YieldProblem:
    """Build the netlist-backed OTA problem (fresh technology unless provided)."""
    amplifier = NetlistTwoStageOTA(tech or C035Technology())
    return YieldProblem(amplifier, NETLIST_OTA_SPECS, name="netlist_ota_c035")
