"""Closed-form synthetic yield problems.

These problems mimic the *interface* of the circuit problems while having an
analytically known yield, which makes them ideal for

* testing yield estimators and OCBA allocation against ground truth,
* fast algorithm-level benchmarks and ablations (no circuit maths), and
* Hypothesis property tests (cheap evaluation).

Model: each performance metric ``j`` is ``g_j(x) + sigma_j * xi_j`` with its
own dedicated standard-normal process variable, so metrics are statistically
independent and the true yield factorises::

    Y(x) = prod_j Phi(margin_j(x) / sigma_j)

where ``margin_j`` is the signed spec slack of the noise-free metric.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import stats as _scipy_stats

from repro.problems.base import YieldProblem
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.variation import IntraDieSpec, ProcessVariationModel
from repro.circuit.topologies.base import DesignSpace
from repro.specs import Spec, SpecSet

__all__ = [
    "SyntheticEvaluator",
    "make_sphere_problem",
    "make_quadratic_problem",
]


class SyntheticEvaluator:
    """Evaluator with one Gaussian noise channel per metric.

    Parameters
    ----------
    g_funcs:
        One noise-free function per metric; each maps a design vector to a
        scalar.
    sigmas:
        Noise standard deviation per metric.
    space:
        Design space.
    metric_labels:
        Metric (column) names.
    """

    def __init__(
        self,
        g_funcs: list[Callable[[np.ndarray], float]],
        sigmas: list[float],
        space: DesignSpace,
        metric_labels: list[str],
        g_batch_funcs: list[Callable[[np.ndarray], np.ndarray] | None] | None = None,
    ) -> None:
        if not (len(g_funcs) == len(sigmas) == len(metric_labels)):
            raise ValueError("g_funcs, sigmas and metric_labels must align")
        if g_batch_funcs is not None and len(g_batch_funcs) != len(g_funcs):
            raise ValueError("g_batch_funcs must align with g_funcs")
        self._g_funcs = list(g_funcs)
        self._g_batch_funcs = (
            list(g_batch_funcs) if g_batch_funcs is not None else [None] * len(g_funcs)
        )
        self._sigmas = np.asarray(sigmas, dtype=float)
        self._space = space
        self._labels = list(metric_labels)
        group = ParameterGroup(
            [StatisticalParameter.normal(f"xi_{label}") for label in metric_labels]
        )
        self.variation = ProcessVariationModel(group, [], IntraDieSpec(()))

    # -- evaluator protocol ----------------------------------------------------
    def design_space(self) -> DesignSpace:
        return self._space

    def metric_names(self) -> list[str]:
        return list(self._labels)

    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        x = np.asarray(x, dtype=float)
        out = np.empty((samples.shape[0], len(self._g_funcs)))
        for j, g in enumerate(self._g_funcs):
            out[:, j] = float(g(x)) + self._sigmas[j] * samples[:, j]
        return out

    def evaluate_batch(self, X: np.ndarray, samples: np.ndarray) -> np.ndarray:
        """Vectorized batch evaluation: ``(m, n, n_metrics)`` in one array op.

        Metrics registered with a batch-aware ``g`` evaluate the whole
        design matrix at once; the rest fall back to a per-design loop for
        the noise-free part only (the noise add is always vectorized).
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        out = np.empty((X.shape[0], samples.shape[0], len(self._g_funcs)))
        for j, (g, g_batch) in enumerate(zip(self._g_funcs, self._g_batch_funcs)):
            if g_batch is not None:
                base = np.asarray(g_batch(X), dtype=float)
            else:
                base = np.array([float(g(x)) for x in X])
            out[:, :, j] = base[:, None] + self._sigmas[j] * samples[None, :, j]
        return out

    def evaluate_pairs(self, X: np.ndarray, samples: np.ndarray) -> np.ndarray:
        """Row-aligned evaluation ``(N, n_metrics)`` — the fused-round path.

        Design row ``i`` is evaluated at its own sample row ``i``; this is
        what lets an execution engine resolve one OCBA round's samples for
        every candidate in a single array op.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        out = np.empty((X.shape[0], len(self._g_funcs)))
        for j, (g, g_batch) in enumerate(zip(self._g_funcs, self._g_batch_funcs)):
            if g_batch is not None:
                base = np.asarray(g_batch(X), dtype=float)
            else:
                base = np.array([float(g(x)) for x in X])
            out[:, j] = base + self._sigmas[j] * samples[:, j]
        return out

    # -- ground truth ---------------------------------------------------------------
    def noise_free(self, x: np.ndarray) -> np.ndarray:
        """The vector g(x) (no process noise)."""
        return np.array([float(g(np.asarray(x, dtype=float))) for g in self._g_funcs])

    def analytic_yield(self, x: np.ndarray, specs: SpecSet) -> float:
        """Exact yield of design ``x`` under ``specs``."""
        g = self.noise_free(x)
        total = 1.0
        for j, spec in enumerate(specs):
            if spec.kind == ">=":
                z = (g[j] - spec.bound) / self._sigmas[j]
            else:
                z = (spec.bound - g[j]) / self._sigmas[j]
            total *= float(_scipy_stats.norm.cdf(z))
        return total


class _CenteredQuadratic:
    """``offset - scale * ||x - c||^2`` as a picklable callable.

    The synthetic factories used local closures here, which cannot cross a
    process boundary; the :class:`~repro.engine.process.ProcessPoolEngine`
    ships the problem to its workers, so the metric functions are plain
    objects (the maths is unchanged, expression for expression).
    """

    def __init__(self, center: np.ndarray, scale: float, offset: float) -> None:
        self.center = np.asarray(center, dtype=float)
        self.scale = float(scale)
        self.offset = float(offset)

    def __call__(self, x: np.ndarray) -> float:
        return self.offset - self.scale * float(np.sum((x - self.center) ** 2))

    def batch(self, X: np.ndarray) -> np.ndarray:
        return self.offset - self.scale * np.sum((X - self.center) ** 2, axis=1)


class _MeanCost:
    """``mean(x)`` as a picklable callable (see :class:`_CenteredQuadratic`)."""

    def __call__(self, x: np.ndarray) -> float:
        return float(np.mean(x))

    def batch(self, X: np.ndarray) -> np.ndarray:
        return np.mean(X, axis=1)


def make_sphere_problem(
    dimension: int = 4, sigma: float = 0.15, center: float = 0.6
) -> YieldProblem:
    """Single-spec problem: margin = 1 - 4 ||x - c||^2 must be >= 0.

    The optimum ``x = c`` has yield ``Phi(1/sigma)`` (about 1 for the default
    sigma); yield decays smoothly away from the centre.
    """
    space = DesignSpace(
        [f"x{i}" for i in range(dimension)],
        np.zeros(dimension),
        np.ones(dimension),
    )
    margin = _CenteredQuadratic(np.full(dimension, center), scale=4.0, offset=1.0)

    evaluator = SyntheticEvaluator(
        [margin], [sigma], space, ["margin"], g_batch_funcs=[margin.batch]
    )
    specs = SpecSet([Spec("margin", ">=", 0.0)])
    return YieldProblem(evaluator, specs, name=f"sphere_d{dimension}")


def make_quadratic_problem(
    dimension: int = 5,
    sigma_perf: float = 0.2,
    sigma_cost: float = 0.05,
    cost_bound: float | None = None,
) -> YieldProblem:
    """Two-spec problem with an active resource constraint.

    * ``perf = 2 - 3 ||x - c||^2`` must be >= 1 (performance floor), and
    * ``cost = mean(x)`` must be <= ``cost_bound`` (resource ceiling).

    The default bound passes through the performance optimum's neighbourhood
    so the best-yield design sits near the constraint surface — mimicking
    the paper's binding power spec.
    """
    space = DesignSpace(
        [f"x{i}" for i in range(dimension)],
        np.zeros(dimension),
        np.ones(dimension),
    )
    if cost_bound is None:
        cost_bound = 0.68

    perf = _CenteredQuadratic(np.full(dimension, 0.7), scale=3.0, offset=2.0)
    cost = _MeanCost()

    evaluator = SyntheticEvaluator(
        [perf, cost],
        [sigma_perf, sigma_cost],
        space,
        ["perf", "cost"],
        g_batch_funcs=[perf.batch, cost.batch],
    )
    specs = SpecSet(
        [Spec("perf", ">=", 1.0), Spec("cost", "<=", float(cost_bound))]
    )
    return YieldProblem(evaluator, specs, name=f"quadratic_d{dimension}")
