"""Yield-optimization problem definitions.

A :class:`YieldProblem` couples a circuit performance model with a
specification set and the simulation-budget accounting.  The two concrete
paper problems live here, plus closed-form synthetic problems whose true
yield is known analytically (used heavily by the test suite and for
algorithm ablations).

Problem factories are resolved by name through the :data:`PROBLEMS`
registry, which is what :func:`repro.api.optimize` and the CLI use:
``"sphere"``, ``"quadratic"``, ``"folded_cascode"``, ``"telescopic"`` and
``"netlist_ota"`` ship built in; third-party scenarios add themselves with
:func:`repro.api.register_problem`.
"""

from repro.registry import Registry
from repro.problems.base import YieldProblem
from repro.problems.folded_cascode_problem import make_folded_cascode_problem
from repro.problems.netlist_ota_problem import make_netlist_ota_problem
from repro.problems.telescopic_problem import make_telescopic_problem
from repro.problems.synthetic import (
    SyntheticEvaluator,
    make_quadratic_problem,
    make_sphere_problem,
)

__all__ = [
    "YieldProblem",
    "PROBLEMS",
    "make_problem",
    "make_folded_cascode_problem",
    "make_netlist_ota_problem",
    "make_telescopic_problem",
    "SyntheticEvaluator",
    "make_quadratic_problem",
    "make_sphere_problem",
]

#: Name -> problem factory; each factory returns a fresh
#: :class:`YieldProblem` and accepts the keyword arguments its
#: ``make_*_problem`` function documents.
PROBLEMS: Registry = Registry("problem")
PROBLEMS.register("sphere", make_sphere_problem)
PROBLEMS.register("quadratic", make_quadratic_problem)
PROBLEMS.register("folded_cascode", make_folded_cascode_problem)
PROBLEMS.register("telescopic", make_telescopic_problem)
PROBLEMS.register("netlist_ota", make_netlist_ota_problem)


def make_problem(name: str, **kwargs) -> YieldProblem:
    """Build the problem registered under ``name``.

    Unknown names raise a :class:`~repro.registry.UnknownNameError` listing
    the currently registered names.
    """
    return PROBLEMS.create(name, **kwargs)
