"""Yield-optimization problem definitions.

A :class:`YieldProblem` couples a circuit performance model with a
specification set and the simulation-budget accounting.  The two concrete
paper problems live here, plus closed-form synthetic problems whose true
yield is known analytically (used heavily by the test suite and for
algorithm ablations).
"""

from repro.problems.base import YieldProblem
from repro.problems.folded_cascode_problem import make_folded_cascode_problem
from repro.problems.telescopic_problem import make_telescopic_problem
from repro.problems.synthetic import (
    SyntheticEvaluator,
    make_quadratic_problem,
    make_sphere_problem,
)

__all__ = [
    "YieldProblem",
    "make_folded_cascode_problem",
    "make_telescopic_problem",
    "SyntheticEvaluator",
    "make_quadratic_problem",
    "make_sphere_problem",
]
