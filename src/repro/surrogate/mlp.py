"""One-hidden-layer perceptron with analytic parameter Jacobian.

The network is ``y = w2 . tanh(W1 x + b1) + b2`` — the classic BP regressor
the paper cites [Wasserman 1988] — kept deliberately small because the
Levenberg-Marquardt trainer materialises the full ``(n_samples, n_params)``
Jacobian.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MLP"]


class MLP:
    """Scalar-output MLP with one tanh hidden layer.

    Parameters are stored as one flat vector (LM operates on it directly)::

        [W1 (h*d), b1 (h), w2 (h), b2 (1)]
    """

    def __init__(self, n_inputs: int, n_hidden: int = 20) -> None:
        if n_inputs < 1 or n_hidden < 1:
            raise ValueError(
                f"n_inputs and n_hidden must be >= 1, got {n_inputs}, {n_hidden}"
            )
        self.n_inputs = int(n_inputs)
        self.n_hidden = int(n_hidden)

    # -- parameter handling ----------------------------------------------------
    @property
    def n_params(self) -> int:
        """Total number of trainable parameters."""
        return self.n_hidden * self.n_inputs + self.n_hidden * 2 + 1

    def init_params(self, rng: np.random.Generator) -> np.ndarray:
        """Nguyen-Widrow-flavoured random initialisation."""
        scale = 0.7 * self.n_hidden ** (1.0 / self.n_inputs)
        w1 = rng.normal(0.0, 1.0, size=(self.n_hidden, self.n_inputs))
        norms = np.linalg.norm(w1, axis=1, keepdims=True)
        w1 = scale * w1 / np.maximum(norms, 1e-12)
        b1 = rng.uniform(-scale, scale, size=self.n_hidden)
        w2 = rng.normal(0.0, 0.5, size=self.n_hidden)
        b2 = np.zeros(1)
        return np.concatenate([w1.ravel(), b1, w2, b2])

    def unpack(self, params: np.ndarray):
        """Split the flat parameter vector into (W1, b1, w2, b2)."""
        h, d = self.n_hidden, self.n_inputs
        w1 = params[: h * d].reshape(h, d)
        b1 = params[h * d : h * d + h]
        w2 = params[h * d + h : h * d + 2 * h]
        b2 = params[-1]
        return w1, b1, w2, b2

    # -- forward / jacobian --------------------------------------------------------
    def forward(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Network output for inputs ``x`` of shape ``(n, d)``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        w1, b1, w2, b2 = self.unpack(params)
        hidden = np.tanh(x @ w1.T + b1)
        return hidden @ w2 + b2

    def jacobian(self, params: np.ndarray, x: np.ndarray) -> np.ndarray:
        """d(output)/d(params), shape ``(n, n_params)``.

        Derivatives (t = tanh activation, s = 1 - t^2)::

            dy/dW1[i,j] = w2[i] * s[i] * x[j]
            dy/db1[i]   = w2[i] * s[i]
            dy/dw2[i]   = t[i]
            dy/db2      = 1
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        n = x.shape[0]
        w1, b1, w2, _ = self.unpack(params)
        t = np.tanh(x @ w1.T + b1)           # (n, h)
        s = 1.0 - t**2                        # (n, h)
        ws = s * w2                           # (n, h)

        jac = np.empty((n, self.n_params))
        h, d = self.n_hidden, self.n_inputs
        # dW1: outer product per sample, laid out row-major (h, d).
        jac[:, : h * d] = (ws[:, :, None] * x[:, None, :]).reshape(n, h * d)
        jac[:, h * d : h * d + h] = ws
        jac[:, h * d + h : h * d + 2 * h] = t
        jac[:, -1] = 1.0
        return jac
