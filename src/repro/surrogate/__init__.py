"""Response-surface-based (RSB) yield modelling — the section-3.4 baseline.

The paper assesses RSB methods with a backward-propagation neural network
(20 hidden neurons) trained by Levenberg-Marquardt to map design vectors to
yield.  This package provides the same model family in pure NumPy:

* :class:`MLP` — one-hidden-layer tanh network with analytic Jacobians,
* :func:`train_levenberg_marquardt` — damped Gauss-Newton training,
* :class:`ResponseSurfaceYieldModel` — the user-facing regressor with input
  standardisation, multi-restart training and RMS-error evaluation.
"""

from repro.surrogate.mlp import MLP
from repro.surrogate.levenberg_marquardt import LMResult, train_levenberg_marquardt
from repro.surrogate.rsb import ResponseSurfaceYieldModel

__all__ = [
    "MLP",
    "train_levenberg_marquardt",
    "LMResult",
    "ResponseSurfaceYieldModel",
]
