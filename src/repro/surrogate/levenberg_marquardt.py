"""Levenberg-Marquardt training for small regression models.

The damped Gauss-Newton method MATLAB's ``trainlm`` uses — the paper trains
its 20-neuron BP network with it.  Full-batch, dense normal equations; fine
for the few hundred training points the RSB study produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.surrogate.mlp import MLP

__all__ = ["LMResult", "train_levenberg_marquardt"]


@dataclass
class LMResult:
    """Outcome of one LM training run."""

    params: np.ndarray
    mse: float
    iterations: int
    converged: bool


def train_levenberg_marquardt(
    model: MLP,
    x: np.ndarray,
    y: np.ndarray,
    params0: np.ndarray,
    max_iterations: int = 200,
    mu0: float = 1e-3,
    mu_increase: float = 10.0,
    mu_decrease: float = 0.1,
    mu_max: float = 1e10,
    tolerance: float = 1e-10,
) -> LMResult:
    """Minimise mean squared error of ``model`` on ``(x, y)``.

    Classic LM damping schedule: a step is accepted (and the damping ``mu``
    relaxed) only when it lowers the SSE; otherwise ``mu`` grows and the
    step is recomputed, interpolating between Gauss-Newton (small ``mu``)
    and gradient descent (large ``mu``).
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    if x.shape[0] != y.shape[0]:
        raise ValueError(f"x has {x.shape[0]} rows but y has {y.shape[0]}")

    params = np.array(params0, dtype=float)
    residual = model.forward(params, x) - y
    sse = float(residual @ residual)
    mu = mu0
    converged = False
    iteration = 0

    for iteration in range(1, max_iterations + 1):
        jac = model.jacobian(params, x)
        gradient = jac.T @ residual
        hessian = jac.T @ jac

        accepted = False
        while mu <= mu_max:
            try:
                step = np.linalg.solve(
                    hessian + mu * np.eye(model.n_params), -gradient
                )
            except np.linalg.LinAlgError:
                mu *= mu_increase
                continue
            trial = params + step
            trial_residual = model.forward(trial, x) - y
            trial_sse = float(trial_residual @ trial_residual)
            if trial_sse < sse:
                improvement = sse - trial_sse
                params, residual, sse = trial, trial_residual, trial_sse
                mu = max(mu * mu_decrease, 1e-12)
                accepted = True
                if improvement < tolerance * max(sse, 1.0):
                    converged = True
                break
            mu *= mu_increase
        if not accepted or converged:
            converged = converged or not accepted
            break

    return LMResult(
        params=params,
        mse=sse / max(len(y), 1),
        iterations=iteration,
        converged=converged,
    )
