"""The response-surface yield model of section 3.4.

Protocol (verbatim from the paper): "At every iteration, we use the data
from all previous iterations to train the NN and use this to predict the
yield values of the current iteration.  The error between the predicted
yield values and the real yield values obtained by MC simulations is then
calculated."  The paper finds the RMS error stays ~6.9 % even with 50
iterations of training data — the motivating negative result for RSB
methods in nanometre technologies.
"""

from __future__ import annotations

import numpy as np

from repro.rng import ensure_rng
from repro.surrogate.levenberg_marquardt import train_levenberg_marquardt
from repro.surrogate.mlp import MLP

__all__ = ["ResponseSurfaceYieldModel"]


class ResponseSurfaceYieldModel:
    """Design-vector -> yield regressor (BP network + LM training).

    Parameters
    ----------
    n_hidden:
        Hidden-layer width (paper: 20).
    n_restarts:
        Independent LM trainings; the best final MSE wins (LM is a local
        optimizer, restarts are the standard remedy).
    max_iterations:
        LM iteration cap per restart.
    """

    def __init__(
        self,
        n_hidden: int = 20,
        n_restarts: int = 3,
        max_iterations: int = 150,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        self.n_hidden = int(n_hidden)
        self.n_restarts = int(n_restarts)
        self.max_iterations = int(max_iterations)
        self.rng = ensure_rng(rng)
        self._model: MLP | None = None
        self._params: np.ndarray | None = None
        self._x_mean: np.ndarray | None = None
        self._x_std: np.ndarray | None = None

    # -- training ------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "ResponseSurfaceYieldModel":
        """Train on designs ``x`` (n, d) and their yields ``y`` (n,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] < 2:
            raise ValueError(f"need at least 2 training points, got {x.shape[0]}")

        self._x_mean = np.mean(x, axis=0)
        self._x_std = np.maximum(np.std(x, axis=0), 1e-12)
        xs = (x - self._x_mean) / self._x_std

        self._model = MLP(x.shape[1], self.n_hidden)
        best_params, best_mse = None, np.inf
        for _ in range(self.n_restarts):
            params0 = self._model.init_params(self.rng)
            result = train_levenberg_marquardt(
                self._model, xs, y, params0, max_iterations=self.max_iterations
            )
            if result.mse < best_mse:
                best_params, best_mse = result.params, result.mse
        self._params = best_params
        return self

    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._params is not None

    # -- prediction -----------------------------------------------------------
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted yields, clipped into [0, 1]."""
        if not self.fitted:
            raise RuntimeError("model is not fitted")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        xs = (x - self._x_mean) / self._x_std
        return np.clip(self._model.forward(self._params, xs), 0.0, 1.0)

    def rms_error(self, x: np.ndarray, y: np.ndarray) -> float:
        """RMS prediction error against reference yields ``y``."""
        y = np.asarray(y, dtype=float).ravel()
        predicted = self.predict(x)
        return float(np.sqrt(np.mean((predicted - y) ** 2)))
