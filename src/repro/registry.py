"""Named plugin registries.

The public API resolves methods, problems, samplers and yield estimators by
name through :class:`Registry` instances, so third-party scenarios plug in
without touching library code::

    from repro.api import register_problem

    @register_problem("my_amplifier")
    def make_my_amplifier_problem(**kwargs):
        ...

Error messages always list the currently registered names, so a typo tells
you what *is* available instead of just what is not.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

__all__ = ["Registry", "DuplicateNameError", "UnknownNameError"]

T = TypeVar("T")


class DuplicateNameError(ValueError):
    """A name was registered twice without ``overwrite=True``."""


class UnknownNameError(ValueError):
    """A lookup name is not registered; the message lists what is."""


class Registry(Generic[T]):
    """A case-insensitive name -> factory mapping with helpful errors.

    Parameters
    ----------
    kind:
        Human label for error messages ("method", "sampler", ...).
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, T] = {}

    # -- registration -------------------------------------------------------
    def register(
        self, name: str, obj: T | None = None, *, overwrite: bool = False
    ) -> T | Callable[[T], T]:
        """Register ``obj`` under ``name``; usable as a decorator.

        >>> registry = Registry("greeter")
        >>> @registry.register("hello")
        ... def hello():
        ...     return "hi"
        """
        key = self._normalize(name)
        if obj is None:

            def decorator(target: T) -> T:
                self.register(name, target, overwrite=overwrite)
                return target

            return decorator
        if key in self._entries and not overwrite:
            raise DuplicateNameError(
                f"{self.kind} {name!r} is already registered; pass "
                "overwrite=True to replace it"
            )
        self._entries[key] = obj
        return obj

    def unregister(self, name: str) -> None:
        """Remove a registration (raises if absent)."""
        self._entries.pop(self._require(name), None)

    # -- lookup -------------------------------------------------------------
    def get(self, name: str) -> T:
        """The object registered under ``name``."""
        return self._entries[self._require(name)]

    def create(self, name: str, *args, **kwargs):
        """Look up ``name`` and call it with the given arguments."""
        return self.get(name)(*args, **kwargs)

    def names(self) -> list[str]:
        """Sorted registered names."""
        return sorted(self._entries)

    # -- protocol niceties --------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return self._normalize(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, names={self.names()})"

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _normalize(name: str) -> str:
        return str(name).strip().lower()

    def _require(self, name: str) -> str:
        key = self._normalize(name)
        if key not in self._entries:
            known = ", ".join(self.names()) or "<none>"
            raise UnknownNameError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            )
        return key
