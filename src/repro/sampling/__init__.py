"""Monte-Carlo sampling strategies and the acceptance-sampling screener.

* :class:`PrimitiveMonteCarloSampler` (PMC) — plain independent draws.
* :class:`LatinHypercubeSampler` (LHS) — stratified per-dimension sampling,
  the paper's DOE replacement for PMC [Stein 1987].
* :class:`SobolSampler` — scrambled Sobol sequences (a second DOE option).
* :class:`LinearMarginScreener` — the acceptance-sampling (AS) component:
  classifies samples that are far from the acceptance-region border using a
  cheap self-calibrated linear model, so only border samples are simulated.
"""

from repro.sampling.base import Sampler
from repro.sampling.pmc import PrimitiveMonteCarloSampler
from repro.sampling.lhs import LatinHypercubeSampler
from repro.sampling.sobol import SobolSampler
from repro.sampling.acceptance import LinearMarginScreener, ScreenResult

__all__ = [
    "Sampler",
    "PrimitiveMonteCarloSampler",
    "LatinHypercubeSampler",
    "SobolSampler",
    "LinearMarginScreener",
    "ScreenResult",
    "make_sampler",
]


def make_sampler(kind: str, variation) -> Sampler:
    """Factory: ``"pmc"``, ``"lhs"`` or ``"sobol"``."""
    kind = kind.lower()
    if kind == "pmc":
        return PrimitiveMonteCarloSampler(variation)
    if kind == "lhs":
        return LatinHypercubeSampler(variation)
    if kind == "sobol":
        return SobolSampler(variation)
    raise ValueError(f"unknown sampler kind: {kind!r}")
