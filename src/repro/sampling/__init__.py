"""Monte-Carlo sampling strategies and the acceptance-sampling screener.

* :class:`PrimitiveMonteCarloSampler` (PMC) — plain independent draws.
* :class:`LatinHypercubeSampler` (LHS) — stratified per-dimension sampling,
  the paper's DOE replacement for PMC [Stein 1987].
* :class:`SobolSampler` — scrambled Sobol sequences (a second DOE option).
* :class:`LinearMarginScreener` — the acceptance-sampling (AS) component:
  classifies samples that are far from the acceptance-region border using a
  cheap self-calibrated linear model, so only border samples are simulated.

Samplers are resolved by name through the :data:`SAMPLERS` registry;
third-party strategies register themselves (see
:func:`repro.api.register_sampler`) and become available to
:class:`~repro.core.config.MOHECOConfig` and the CLI by name.
"""

from repro.registry import Registry
from repro.sampling.base import Sampler
from repro.sampling.pmc import PrimitiveMonteCarloSampler
from repro.sampling.lhs import LatinHypercubeSampler
from repro.sampling.sobol import SobolSampler
from repro.sampling.acceptance import LinearMarginScreener, ScreenResult

__all__ = [
    "Sampler",
    "PrimitiveMonteCarloSampler",
    "LatinHypercubeSampler",
    "SobolSampler",
    "LinearMarginScreener",
    "ScreenResult",
    "SAMPLERS",
    "make_sampler",
]

#: Name -> sampler class; ``make_sampler`` and the engine resolve through it.
SAMPLERS: Registry = Registry("sampler")
SAMPLERS.register("pmc", PrimitiveMonteCarloSampler)
SAMPLERS.register("lhs", LatinHypercubeSampler)
SAMPLERS.register("sobol", SobolSampler)


def make_sampler(kind: str, variation) -> Sampler:
    """Build the sampler registered under ``kind``.

    Unknown kinds raise a :class:`~repro.registry.UnknownNameError` listing
    the currently registered names.
    """
    return SAMPLERS.create(kind, variation)
