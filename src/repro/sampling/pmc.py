"""Primitive Monte-Carlo sampling."""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler

__all__ = ["PrimitiveMonteCarloSampler"]


class PrimitiveMonteCarloSampler(Sampler):
    """Independent draws straight from the marginal distributions.

    The baseline the paper calls PMC; every batch is iid, so estimates are
    unbiased with the standard 1/sqrt(n) error decay.
    """

    name = "pmc"

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n)
        return self.variation.sample(n, rng)
