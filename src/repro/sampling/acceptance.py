"""Acceptance sampling (AS): simulate only near the acceptance border.

The original AS technique [Elias 1994] avoids simulating Monte-Carlo samples
that are clearly inside or clearly outside the acceptance region, spending
simulations only near the border.  The paper keeps the idea but insists the
border itself is resolved by real MC simulations to protect accuracy; our
implementation follows that contract:

1. For each candidate design, the first ``min_train`` samples are always
   simulated; their spec *margins* train a ridge-regularised linear model
   margin_j ~ w_j . xi + b_j with per-spec residual standard deviations.
2. For subsequent samples the model predicts all margins.  A sample is
   classified without simulation only when the prediction is *certain*:
   every margin above ``+safety * sigma_resid`` (certain pass) or at least
   one margin below ``-safety * sigma_resid`` (certain fail).  Everything
   else — the border band — is simulated exactly.
3. Every simulated sample is fed back into the training set; the model is
   refit on a doubling schedule.

With the default ``safety = 3`` the per-sample misclassification probability
is Phi(-3) ~ 0.13 % per spec *under the linear-Gaussian assumption*, and in
practice lower because most screened samples sit far beyond the band.  The
screener reports how many simulations it avoided; the ledger records them as
``screened_out`` and they are never charged as simulations (matching how the
paper credits AS).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.specs import SpecSet

__all__ = ["LinearMarginScreener", "ScreenResult"]


@dataclass
class ScreenResult:
    """Outcome of screening one batch of samples.

    ``labels``: +1 certain pass, 0 certain fail, -1 must simulate.
    """

    labels: np.ndarray

    @property
    def simulate_mask(self) -> np.ndarray:
        """Boolean mask of samples that require full simulation."""
        return self.labels < 0

    @property
    def screened_pass(self) -> int:
        """Samples classified as pass without simulation."""
        return int(np.sum(self.labels == 1))

    @property
    def screened_fail(self) -> int:
        """Samples classified as fail without simulation."""
        return int(np.sum(self.labels == 0))

    @property
    def n_screened(self) -> int:
        """Total samples resolved without simulation."""
        return self.screened_pass + self.screened_fail


class LinearMarginScreener:
    """Self-calibrating acceptance-sampling screener for one candidate.

    Parameters
    ----------
    specs:
        The problem's spec set (margins are modelled in normalised units).
    safety:
        Certainty band half-width in residual standard deviations.
    min_train:
        Simulations accumulated before the model activates.
    ridge:
        Tikhonov regularisation weight (the process dimension usually
        exceeds the early training-set size).
    """

    def __init__(
        self,
        specs: SpecSet,
        safety: float = 3.0,
        min_train: int = 30,
        ridge: float = 1e-2,
    ) -> None:
        if safety <= 0:
            raise ValueError(f"safety must be positive, got {safety}")
        self.specs = specs
        self.safety = float(safety)
        self.min_train = int(min_train)
        self.ridge = float(ridge)
        self._x: list[np.ndarray] = []      # simulated process samples
        self._m: list[np.ndarray] = []      # their margin rows
        self._weights: np.ndarray | None = None   # (d+1, n_specs)
        self._resid_std: np.ndarray | None = None  # (n_specs,)
        self._trained_at = 0

    # -- training ------------------------------------------------------------
    @property
    def n_train(self) -> int:
        """Number of simulated samples available for training."""
        return len(self._x)

    def update(self, samples: np.ndarray, margins: np.ndarray) -> None:
        """Feed back simulated samples and their spec margins."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        margins = np.atleast_2d(np.asarray(margins, dtype=float))
        for row_x, row_m in zip(samples, margins):
            self._x.append(row_x)
            self._m.append(row_m)
        # Refit on a doubling schedule to amortise the lstsq cost.
        if self.n_train >= self.min_train and self.n_train >= 2 * max(
            self._trained_at, self.min_train // 2
        ):
            self._fit()

    def _fit(self) -> None:
        x = np.vstack(self._x)
        m = np.vstack(self._m)
        n, d = x.shape
        design = np.hstack([np.ones((n, 1)), x])
        # Ridge via augmented least squares: [A; sqrt(l) I] w = [m; 0].
        penalty = np.sqrt(self.ridge) * np.eye(d + 1)
        penalty[0, 0] = 0.0  # never penalise the intercept
        a_aug = np.vstack([design, penalty])
        b_aug = np.vstack([m, np.zeros((d + 1, m.shape[1]))])
        weights, *_ = np.linalg.lstsq(a_aug, b_aug, rcond=None)
        residuals = m - design @ weights
        # Unbiased-ish residual scale with a floor: a model that looks
        # perfect on a small training set must not screen aggressively.
        dof = max(n - 1, 1)
        resid_std = np.sqrt(np.sum(residuals**2, axis=0) / dof)
        floor = 0.05 * np.std(m, axis=0, ddof=1) + 1e-9
        self._weights = weights
        self._resid_std = np.maximum(resid_std, floor)
        self._trained_at = n

    # -- classification ----------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the model has enough data to screen."""
        return self._weights is not None

    def classify(self, samples: np.ndarray) -> ScreenResult:
        """Classify a batch; -1 entries must be simulated."""
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        n = samples.shape[0]
        labels = np.full(n, -1, dtype=int)
        if not self.active or n == 0:
            return ScreenResult(labels)

        design = np.hstack([np.ones((n, 1)), samples])
        predicted = design @ self._weights
        band = self.safety * self._resid_std
        certain_pass = np.all(predicted >= band, axis=1)
        certain_fail = np.any(predicted <= -band, axis=1)
        labels[certain_pass] = 1
        # A sample that is certain-fail on one spec is a fail regardless of
        # the others; resolve the (rare) overlap with certain_pass in favour
        # of simulation.
        overlap = certain_pass & certain_fail
        labels[certain_fail] = 0
        labels[overlap] = -1
        return ScreenResult(labels)
