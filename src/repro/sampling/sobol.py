"""Scrambled Sobol sampling.

A low-discrepancy alternative to LHS; not used by the paper's headline
experiments but provided for ablations (DESIGN.md lists a sampler ablation
bench) and available through :func:`repro.sampling.make_sampler`.
"""

from __future__ import annotations

import warnings

import numpy as np
from scipy.stats import qmc as _qmc

from repro.sampling.base import Sampler

__all__ = ["SobolSampler"]


class SobolSampler(Sampler):
    """Owen-scrambled Sobol points mapped through the marginal inverse CDFs.

    Each :meth:`draw` uses a freshly-scrambled sequence seeded from the
    caller's generator, so repeated batches are independent randomisations
    (randomised QMC keeps estimates unbiased).
    """

    name = "sobol"

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n)
        if n == 0:
            return np.empty((0, self.variation.dimension))
        seed = int(rng.integers(0, 2**31 - 1))
        engine = _qmc.Sobol(self.variation.dimension, scramble=True, seed=seed)
        with warnings.catch_warnings():
            # scipy warns when n is not a power of two; unbiasedness is
            # preserved by the scrambling, which is all we rely on.
            warnings.simplefilter("ignore", UserWarning)
            u = engine.random(n)
        # Guard the open interval for the inverse CDFs.
        u = np.clip(u, 1e-12, 1.0 - 1e-12)
        return self.variation.from_uniform(u)
