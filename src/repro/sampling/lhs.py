"""Latin hypercube sampling (LHS).

Stein (1987) showed LHS estimates have asymptotic variance no larger than
plain Monte Carlo and often much smaller — the paper adopts LHS as the DOE
technique replacing PMC in all compared methods.

Implementation: for each of the ``d`` dimensions independently, the ``n``
strata ``[(k + u_k)/n, k=0..n-1]`` are randomly permuted, giving exactly one
point per stratum per dimension; the uniform matrix is then pushed through
the marginal inverse CDFs of the variation model.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.base import Sampler

__all__ = ["LatinHypercubeSampler", "latin_hypercube_uniforms"]


def latin_hypercube_uniforms(
    n: int, d: int, rng: np.random.Generator
) -> np.ndarray:
    """Raw LHS uniforms on (0,1), shape ``(n, d)``."""
    if n == 0:
        return np.empty((0, d))
    u = (rng.uniform(size=(n, d)) + np.arange(n)[:, None]) / n
    for j in range(d):
        u[:, j] = u[rng.permutation(n), j]
    return u


class LatinHypercubeSampler(Sampler):
    """Per-batch Latin hypercube sampling over the process space."""

    name = "lhs"

    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self._check(n)
        u = latin_hypercube_uniforms(n, self.variation.dimension, rng)
        return self.variation.from_uniform(u)
