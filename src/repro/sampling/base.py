"""Sampler protocol."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.process.variation import ProcessVariationModel

__all__ = ["Sampler"]


class Sampler(ABC):
    """Draws process-sample matrices from a variation model.

    Incremental use: yield estimators call :meth:`draw` repeatedly with
    fresh batch sizes; implementations must return *independent* batches
    (for stratified families, stratification is per batch, which preserves
    unbiasedness and most of the variance reduction).
    """

    #: Short name used in experiment tables ("pmc", "lhs", "sobol").
    name: str = "base"

    def __init__(self, variation: ProcessVariationModel) -> None:
        self.variation = variation

    @abstractmethod
    def draw(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample matrix of shape ``(n, variation.dimension)``."""

    def _check(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"sample count must be non-negative, got {n}")
