"""Search engines.

* :mod:`repro.optim.constraints` — Deb's selection-based constraint
  handling (the paper's mechanism from [16], shown effective for analog
  sizing in [9]).
* :mod:`repro.optim.de` — differential evolution: mutation/crossover
  operators usable step-by-step (as MOHECO needs) plus a standalone
  optimizer loop for deterministic objectives.
* :mod:`repro.optim.nelder_mead` — bound-aware Nelder-Mead simplex search,
  MOHECO's local (exploitation) engine.
* :mod:`repro.optim.memetic` — the adaptive trigger that decides when the
  local search is worth its simulation cost.
"""

from repro.optim.constraints import FitnessView, deb_better
from repro.optim.de import DifferentialEvolution, DEResult
from repro.optim.nelder_mead import NelderMeadResult, nelder_mead_maximize
from repro.optim.memetic import MemeticTrigger

__all__ = [
    "FitnessView",
    "deb_better",
    "DifferentialEvolution",
    "DEResult",
    "nelder_mead_maximize",
    "NelderMeadResult",
    "MemeticTrigger",
]
