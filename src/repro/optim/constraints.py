"""Selection-based constraint handling (Deb 2000).

The paper handles circuit performance constraints with Deb's feasibility
rules rather than penalty functions:

1. a feasible solution beats any infeasible solution,
2. between two feasible solutions, the better objective (higher yield) wins,
3. between two infeasible solutions, the smaller constraint violation wins.

The rules need no penalty weights, which is why they compose well with DE
for analog sizing (paper reference [9]).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FitnessView", "deb_better"]


@dataclass(frozen=True)
class FitnessView:
    """The slice of a candidate that selection looks at.

    Attributes
    ----------
    feasible:
        Nominal-point feasibility (violation == 0).
    violation:
        Aggregate normalised constraint violation (0 when feasible).
    objective:
        The maximised objective — here, estimated yield.
    """

    feasible: bool
    violation: float
    objective: float


def deb_better(a: FitnessView, b: FitnessView, tolerance: float = 0.0) -> bool:
    """True when candidate ``a`` is strictly better than ``b``.

    ``tolerance`` guards objective comparisons against Monte-Carlo noise:
    ``a`` must beat ``b`` by more than ``tolerance`` to count as better
    (used by the improvement trackers, not by survival selection).
    """
    if a.feasible and not b.feasible:
        return True
    if not a.feasible and b.feasible:
        return False
    if a.feasible:  # both feasible -> higher objective wins
        return a.objective > b.objective + tolerance
    # both infeasible -> smaller violation wins
    return a.violation < b.violation
