"""Differential evolution (Price & Storn).

Two views are provided:

* **Stepwise operators** (:meth:`DifferentialEvolution.propose`) — MOHECO
  drives the generation loop itself because each trial's fitness is an
  expensive, budget-managed yield estimate.  The operators implement the
  paper's configuration: base-vector selection around the population best
  ("Select Base Vector" in Fig. 4), differential mutation, binomial
  crossover with CR = 0.8, F = 0.8.
* **A standalone loop** (:meth:`DifferentialEvolution.optimize`) for
  deterministic objectives — used by the PSWCD baseline's inner worst-case
  searches, nominal-sizing utilities and the test suite.

Bound handling: trial components outside the box are resampled by
midpoint-reflection toward the base vector (standard DE practice; keeps
diversity better than clipping).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuit.topologies.base import DesignSpace

__all__ = ["DifferentialEvolution", "DEResult"]


@dataclass
class DEResult:
    """Outcome of a standalone DE run."""

    x: np.ndarray
    objective: float
    generations: int
    evaluations: int


class DifferentialEvolution:
    """DE operators over a box design space.

    Parameters
    ----------
    space:
        Box bounds.
    f:
        Differential weight (paper: 0.8).
    cr:
        Crossover rate (paper: 0.8).
    variant:
        ``"best/1"`` (paper's base-vector choice) or ``"rand/1"``.
    """

    def __init__(
        self,
        space: DesignSpace,
        f: float = 0.8,
        cr: float = 0.8,
        variant: str = "best/1",
    ) -> None:
        if not 0.0 < f <= 2.0:
            raise ValueError(f"F must be in (0, 2], got {f}")
        if not 0.0 <= cr <= 1.0:
            raise ValueError(f"CR must be in [0, 1], got {cr}")
        if variant not in ("best/1", "rand/1"):
            raise ValueError(f"variant must be 'best/1' or 'rand/1', got {variant!r}")
        self.space = space
        self.f = float(f)
        self.cr = float(cr)
        self.variant = variant

    # -- population initialisation ------------------------------------------
    def init_population(self, pop_size: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random population, shape ``(pop_size, d)``."""
        if pop_size < 4:
            raise ValueError(f"DE needs a population of at least 4, got {pop_size}")
        return self.space.sample(pop_size, rng)

    # -- operators ---------------------------------------------------------------
    def mutate(
        self, population: np.ndarray, best_index: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Donor vectors for every population member."""
        population = np.asarray(population, dtype=float)
        n, d = population.shape
        donors = np.empty_like(population)
        for i in range(n):
            candidates = [j for j in range(n) if j != i]
            r1, r2, r3 = rng.choice(candidates, size=3, replace=False)
            if self.variant == "best/1":
                base = population[best_index]
            else:
                base = population[r3]
            donors[i] = base + self.f * (population[r1] - population[r2])
        return donors

    def crossover(
        self, population: np.ndarray, donors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Binomial crossover; at least one donor component always survives."""
        population = np.asarray(population, dtype=float)
        n, d = population.shape
        mask = rng.uniform(size=(n, d)) < self.cr
        forced = rng.integers(0, d, size=n)
        mask[np.arange(n), forced] = True
        return np.where(mask, donors, population)

    def repair(self, trials: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Reflect out-of-bounds components back inside the box."""
        lower, upper = self.space.lower, self.space.upper
        trials = np.asarray(trials, dtype=float).copy()
        below = trials < lower
        above = trials > upper
        # Midpoint reflection: x' = bound + u * (other_bound - bound) with a
        # shrinking uniform factor keeps points strictly inside.
        if np.any(below):
            u = rng.uniform(0.0, 1.0, size=trials.shape)
            trials = np.where(below, lower + 0.5 * u * (upper - lower) * 0.1, trials)
        if np.any(above):
            u = rng.uniform(0.0, 1.0, size=trials.shape)
            trials = np.where(above, upper - 0.5 * u * (upper - lower) * 0.1, trials)
        return trials

    def propose(
        self,
        population: np.ndarray,
        best_index: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One full mutation + crossover + repair step (MOHECO's step 2)."""
        donors = self.mutate(population, best_index, rng)
        trials = self.crossover(population, donors, rng)
        return self.repair(trials, rng)

    # -- standalone loop -------------------------------------------------------------
    def optimize(
        self,
        objective: Callable[[np.ndarray], float],
        pop_size: int = 30,
        max_generations: int = 100,
        rng: np.random.Generator | None = None,
        tolerance: float = 0.0,
        patience: int | None = None,
    ) -> DEResult:
        """Maximise a deterministic objective.

        ``patience`` (generations without improvement) enables early
        stopping; ``None`` runs all generations.
        """
        rng = rng or np.random.default_rng()
        population = self.init_population(pop_size, rng)
        fitness = np.array([objective(x) for x in population])
        evaluations = pop_size
        stall = 0
        generations = 0

        for generations in range(1, max_generations + 1):
            best_index = int(np.argmax(fitness))
            trials = self.propose(population, best_index, rng)
            improved_best = False
            for i, trial in enumerate(trials):
                value = objective(trial)
                evaluations += 1
                if value >= fitness[i]:
                    if value > fitness[best_index] + tolerance:
                        improved_best = True
                    population[i] = trial
                    fitness[i] = value
            stall = 0 if improved_best else stall + 1
            if patience is not None and stall >= patience:
                break

        best_index = int(np.argmax(fitness))
        return DEResult(
            x=population[best_index].copy(),
            objective=float(fitness[best_index]),
            generations=generations,
            evaluations=evaluations,
        )
