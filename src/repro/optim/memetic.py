"""Adaptive local-search trigger.

The paper's memetic rule: do *not* run NM on every candidate or every
generation — "we only trigger it when the yield value cannot be improved by
the DE operators for 5 iterations", and then only around the best member.
:class:`MemeticTrigger` tracks the stall counter with a noise tolerance.
"""

from __future__ import annotations

__all__ = ["MemeticTrigger"]


class MemeticTrigger:
    """Stall counter deciding when the NM local search should fire.

    Parameters
    ----------
    patience:
        Consecutive non-improving generations before triggering (paper: 5).
    tolerance:
        Minimum objective gain that counts as an improvement; guards
        against Monte-Carlo noise re-arming the counter spuriously.
    """

    def __init__(self, patience: int = 5, tolerance: float = 1e-9) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = int(patience)
        self.tolerance = float(tolerance)
        self._best: float | None = None
        self._stall = 0

    @property
    def stall(self) -> int:
        """Generations since the last improvement."""
        return self._stall

    def observe(self, best_objective: float) -> bool:
        """Record this generation's best objective; True = trigger LS now.

        The counter resets after a trigger, so repeated stalls re-trigger
        every ``patience`` generations (the paper's "search near the best
        member ... and then come back to DE").
        """
        if self._best is None or best_objective > self._best + self.tolerance:
            self._best = best_objective
            self._stall = 0
            return False
        self._stall += 1
        if self._stall >= self.patience:
            self._stall = 0
            return True
        return False

    def note_external_improvement(self, best_objective: float) -> None:
        """Inform the trigger that LS (not DE) raised the best objective."""
        if self._best is None or best_objective > self._best:
            self._best = best_objective
