"""Bound-aware Nelder-Mead simplex search (Lagarias et al. 1998).

MOHECO's local engine: gradient-free (yield estimates are noisy and
non-differentiable), cheap in bookkeeping, and effective for the local
refinement of a single good candidate.  Objective evaluations are expensive
(each costs ``n_max`` circuit simulations), so the implementation counts
evaluations and honours a hard cap.

Standard coefficients: reflection 1, expansion 2, contraction 0.5,
shrink 0.5.  Points are clipped into the design box before evaluation (the
simplex geometry is preserved by clipping only the evaluated copy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuit.topologies.base import DesignSpace

__all__ = ["nelder_mead_maximize", "NelderMeadResult"]


@dataclass
class NelderMeadResult:
    """Outcome of a simplex search."""

    x: np.ndarray
    objective: float
    iterations: int
    evaluations: int


def nelder_mead_maximize(
    objective: Callable[[np.ndarray], float],
    x0: np.ndarray,
    space: DesignSpace,
    max_iterations: int = 10,
    initial_step: float = 0.03,
    max_evaluations: int | None = None,
) -> NelderMeadResult:
    """Maximise ``objective`` starting from ``x0``.

    Parameters
    ----------
    objective:
        Function to maximise (MOHECO passes a stage-2 yield estimator).
    x0:
        Start point (the population best).
    space:
        Box bounds; evaluated points are clipped into the box.
    max_iterations:
        Simplex iterations (the paper notes NM "needs about 10 iterations
        for one candidate").
    initial_step:
        Initial simplex size as a fraction of each variable's range.
    max_evaluations:
        Optional hard cap on objective calls (budget guard).
    """
    x0 = space.clip(np.asarray(x0, dtype=float))
    d = space.dimension
    span = space.upper - space.lower
    cap = max_evaluations if max_evaluations is not None else (d + 1) * (max_iterations + 2)

    evaluations = 0

    def f(x: np.ndarray) -> float:
        nonlocal evaluations
        evaluations += 1
        return float(objective(space.clip(x)))

    # Initial simplex: x0 plus one step along each axis (sign chosen away
    # from the nearer bound so the simplex starts inside the box).
    simplex = [x0.copy()]
    for j in range(d):
        step = initial_step * span[j]
        direction = 1.0 if x0[j] + step <= space.upper[j] else -1.0
        vertex = x0.copy()
        vertex[j] += direction * step
        simplex.append(space.clip(vertex))
    simplex = np.array(simplex)
    values = np.array([f(v) for v in simplex])

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        if evaluations >= cap:
            break
        order = np.argsort(-values)  # descending: best first
        simplex, values = simplex[order], values[order]
        centroid = np.mean(simplex[:-1], axis=0)
        worst = simplex[-1]

        reflected = centroid + 1.0 * (centroid - worst)
        fr = f(reflected)
        if fr > values[0]:
            # Try to expand.
            expanded = centroid + 2.0 * (centroid - worst)
            fe = f(expanded) if evaluations < cap else -np.inf
            if fe > fr:
                simplex[-1], values[-1] = expanded, fe
            else:
                simplex[-1], values[-1] = reflected, fr
        elif fr > values[-2]:
            simplex[-1], values[-1] = reflected, fr
        else:
            # Contract (outside if the reflection helped a little).
            if fr > values[-1]:
                contracted = centroid + 0.5 * (reflected - centroid)
            else:
                contracted = centroid + 0.5 * (worst - centroid)
            fc = f(contracted) if evaluations < cap else -np.inf
            if fc > min(fr, values[-1]):
                simplex[-1], values[-1] = contracted, fc
            else:
                # Shrink toward the best vertex.
                for k in range(1, d + 1):
                    if evaluations >= cap:
                        break
                    simplex[k] = simplex[0] + 0.5 * (simplex[k] - simplex[0])
                    values[k] = f(simplex[k])

    best = int(np.argmax(values))
    return NelderMeadResult(
        x=space.clip(simplex[best]),
        objective=float(values[best]),
        iterations=iterations,
        evaluations=evaluations,
    )
