"""Population state: the individual record MOHECO evolves."""

from __future__ import annotations

import numpy as np

from repro.optim.constraints import FitnessView
from repro.yieldsim.estimator import CandidateYieldState, YieldEstimate

__all__ = ["Individual"]


class Individual:
    """One candidate design with its feasibility and yield bookkeeping.

    Attributes
    ----------
    x:
        Design vector.
    feasible:
        Nominal-point feasibility (the paper's step-3 gate).
    violation:
        Aggregate normalised constraint violation at the nominal point
        (0 when feasible).
    state:
        The candidate's incremental yield estimator; ``None`` for
        infeasible candidates (the paper assigns them yield 0 and never
        spends MC samples on them).
    stage:
        1 while estimated by OCBA, 2 once promoted to the full ``n_max``
        sample count.
    """

    def __init__(
        self,
        x: np.ndarray,
        feasible: bool,
        violation: float,
        state: CandidateYieldState | None = None,
    ) -> None:
        self.x = np.array(x, dtype=float)
        self.feasible = bool(feasible)
        self.violation = float(violation)
        self.state = state
        self.stage = 1

    # -- views -----------------------------------------------------------------
    @property
    def yield_value(self) -> float:
        """Estimated yield (0 for infeasible candidates)."""
        if not self.feasible or self.state is None:
            return 0.0
        return self.state.value

    @property
    def estimate(self) -> YieldEstimate:
        """Current estimate snapshot (n=0 for infeasible candidates)."""
        if self.state is None:
            return YieldEstimate(passes=0, n=0)
        return self.state.estimate

    @property
    def n_samples(self) -> int:
        """Samples incorporated in the candidate's estimate."""
        return 0 if self.state is None else self.state.n

    def fitness(self) -> FitnessView:
        """The slice selection looks at (Deb's rules)."""
        return FitnessView(
            feasible=self.feasible,
            violation=self.violation,
            objective=self.yield_value,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Individual(yield={self.yield_value:.4f}, n={self.n_samples}, "
            f"feasible={self.feasible}, violation={self.violation:.3g}, "
            f"stage={self.stage})"
        )
