"""The MOHECO algorithm (paper Fig. 4).

One engine implements the paper's method *and* its compared baselines via
config switches:

========================  ==========================================
paper method              config
========================  ==========================================
MOHECO                    ``MOHECOConfig.moheco(n_max=500)``
OO + AS + LHS             ``MOHECOConfig.oo_only(n_max=500)``
AS + LHS, N sims          ``MOHECOConfig.fixed_budget(n_fixed=N)``
========================  ==========================================

Flow per generation (paper steps 1-11):

1. select the current best candidate (Deb's rules),
2. DE mutation + crossover produce one trial per parent,
3. nominal feasibility check per trial (1 simulation),
4-7. feasible trials get yield estimates — OCBA-allocated in stage 1, the
     full ``n_max`` once promoted to stage 2 (estimated yield > 97 %);
     infeasible trials get yield 0 and their constraint violation,
8. one-to-one selection parent vs trial,
9-10. if the best yield has stalled for ``ls_patience`` generations, run a
      Nelder-Mead local search around the best member (stage-2 accuracy,
      every objective evaluation charged),
11. stop on 100 % reported yield or ``stop_patience`` stalled generations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.callbacks import Callback, CallbackList
from repro.core.config import MOHECOConfig
from repro.core.history import GenerationRecord, OptimizationHistory
from repro.core.state import Individual
from repro.engine import EvaluationCache, EvaluationEngine, make_cache, make_engine
from repro.ledger import SimulationLedger
from repro.ocba.sequential import OCBAReport, ocba_sequential
from repro.optim.constraints import deb_better
from repro.optim.de import DifferentialEvolution
from repro.optim.memetic import MemeticTrigger
from repro.optim.nelder_mead import nelder_mead_maximize
from repro.rng import ensure_rng, spawn
from repro.sampling import make_sampler
from repro.sampling.acceptance import LinearMarginScreener
from repro.yieldsim import make_estimator
from repro.yieldsim.estimator import YieldEstimate

__all__ = ["MOHECO", "MOHECOResult"]


@dataclass
class MOHECOResult:
    """Outcome of one optimization run."""

    best_x: np.ndarray
    best_yield: float
    best_estimate: YieldEstimate
    generations: int
    n_simulations: int
    reason: str
    history: OptimizationHistory
    ledger: SimulationLedger
    #: Wall-clock duration of the run (0 for results built by hand).
    elapsed_seconds: float = 0.0
    #: Warm-start cache statistics for *this run* (hit/miss counters as
    #: deltas, residency gauges absolute); ``None`` when no cache was
    #: attached.  Purely observational — under the default ledger-faithful
    #: accounting the rest of the result is bit-identical with or without
    #: a cache.
    cache_stats: dict | None = None
    #: The :class:`~repro.engine.auto.AutoEngine` commit record (measured
    #: per-row cost, crossover cost, chosen backend); ``None`` for runs on
    #: a hard-coded backend.  Observational, like ``cache_stats``.
    engine_decision: dict | None = None
    #: Per-generation ladder record of a multi-fidelity run
    #: (:mod:`repro.mf`): bracket index, rung fidelities/gains, fused
    #: estimates and promotion decisions; ``None`` for single-fidelity
    #: methods.  Unlike the observational fields above this is part of the
    #: result *identity* — ladder decisions must be bit-identical across
    #: execution backends, worker counts and cache states.
    fidelity_trace: list | None = None
    #: Per-generation screening record of a composed method
    #: (:mod:`repro.compose`): surrogate refits, per-trial scores and
    #: every prune/keep decision; ``None`` for methods without a screening
    #: stage.  Like ``fidelity_trace`` this is part of the result
    #: *identity*: prune decisions must be bit-identical across execution
    #: backends, worker counts and cache states.
    screen_trace: list | None = None

    @property
    def sims_per_second(self) -> float:
        """Charged-simulation throughput; what the BENCH files track."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.n_simulations / self.elapsed_seconds

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (history and ledger included)."""
        return {
            "best_x": np.asarray(self.best_x).tolist(),
            "best_yield": float(self.best_yield),
            "best_estimate": {
                "passes": int(self.best_estimate.passes),
                "n": int(self.best_estimate.n),
            },
            "generations": int(self.generations),
            "n_simulations": int(self.n_simulations),
            "reason": str(self.reason),
            "elapsed_seconds": float(self.elapsed_seconds),
            "cache_stats": self.cache_stats,
            "engine_decision": self.engine_decision,
            "fidelity_trace": self.fidelity_trace,
            "screen_trace": self.screen_trace,
            "history": self.history.to_dict(),
            "ledger": self.ledger.to_dict(),
        }

    def identity_dict(self) -> dict:
        """:meth:`to_dict` minus wall-clock and cache-observability fields.

        This is the run's *result identity*: what must be byte-equal across
        execution backends, worker counts, and cache states (warm vs cold).
        Timing, the per-run cache stats and the ledger's ``cached`` column
        legitimately differ — they describe how the result was produced,
        not what it is.
        """
        data = self.to_dict()
        data.pop("elapsed_seconds")
        data.pop("cache_stats")
        data.pop("engine_decision")
        data["ledger"] = dict(data["ledger"])
        data["ledger"].pop("cached", None)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MOHECOResult":
        """Inverse of :meth:`to_dict`."""
        estimate = data.get("best_estimate", {})
        return cls(
            best_x=np.asarray(data["best_x"], dtype=float),
            best_yield=float(data["best_yield"]),
            best_estimate=YieldEstimate(
                passes=int(estimate.get("passes", 0)), n=int(estimate.get("n", 0))
            ),
            generations=int(data["generations"]),
            n_simulations=int(data["n_simulations"]),
            reason=str(data["reason"]),
            history=OptimizationHistory.from_dict(data.get("history", {})),
            ledger=SimulationLedger.from_dict(data.get("ledger", {})),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            cache_stats=data.get("cache_stats"),
            engine_decision=data.get("engine_decision"),
            fidelity_trace=data.get("fidelity_trace"),
            screen_trace=data.get("screen_trace"),
        )


class MOHECO:
    """Memetic OO-based hybrid evolutionary constrained optimizer.

    Parameters
    ----------
    problem:
        The :class:`~repro.problems.base.YieldProblem` to solve.
    config:
        Algorithm configuration (paper defaults when omitted).
    ledger:
        Simulation ledger; a fresh one is created when omitted.
    rng:
        Random generator or seed.
    callbacks:
        Observers of the generation loop (a single
        :class:`~repro.core.callbacks.Callback` or a sequence).
    engine:
        Execution backend for the refinement rounds — an
        :class:`~repro.engine.base.EvaluationEngine` instance or a name in
        :data:`repro.engine.ENGINES` (``"legacy"``, ``"serial"``,
        ``"process"``).  Defaults to the fused
        :class:`~repro.engine.serial.SerialEngine`; every backend is
        seed-equivalent, so this is purely an execution choice.
    cache:
        Warm-start evaluation cache for the refinement rounds — an
        :class:`~repro.engine.cache.EvaluationCache` instance (typically
        shared across runs of the same problem; that is the point) or a
        name in :data:`repro.engine.CACHES` (``"lru"``, ``"null"``).
        ``None`` (the default) disables caching.  Under the default
        ledger-faithful accounting a cache never changes the seeded
        result or the simulation totals — only the wall-clock.
    """

    def __init__(
        self,
        problem,
        config: MOHECOConfig | None = None,
        ledger: SimulationLedger | None = None,
        rng: np.random.Generator | int | None = None,
        callbacks: Callback | list[Callback] | None = None,
        engine: EvaluationEngine | str | None = None,
        cache: EvaluationCache | str | None = None,
    ) -> None:
        self.problem = problem
        self.config = config or MOHECOConfig()
        self.ledger = ledger if ledger is not None else SimulationLedger()
        self.rng = ensure_rng(rng)
        self.callbacks = CallbackList(callbacks)
        self.engine = make_engine(engine)
        # Engines this constructor materialized (from None or a name) are
        # ours to close when a run finishes; caller-supplied instances keep
        # their worker pools alive for reuse.  Same ownership rule for the
        # cache: name-resolved caches are closed (spill flushed) after the
        # run, caller-supplied instances stay open for warm reuse.
        self._owns_engine = not isinstance(engine, EvaluationEngine)
        self.cache = make_cache(cache)
        self._owns_cache = self.cache is not None and not isinstance(
            cache, EvaluationCache
        )
        # Multi-fidelity subclasses (:mod:`repro.mf`) fill this with their
        # per-generation ladder record; it rides onto the result as
        # ``fidelity_trace``.  Composed subclasses (:mod:`repro.compose`)
        # do the same with their screening record via ``screen_trace``.
        self._fidelity_trace: list | None = None
        self._screen_trace: list | None = None
        self.sampler = make_sampler(self.config.sampler, problem.variation)
        self.de = DifferentialEvolution(
            problem.space,
            f=self.config.de_f,
            cr=self.config.de_cr,
            variant=self.config.de_variant,
        )

    # -- candidate construction ------------------------------------------------
    def _attach_state(
        self, x: np.ndarray, feasible: bool, violation: float, category: str
    ) -> Individual:
        """Build the individual, with a fresh yield state when feasible."""
        state = None
        if feasible:
            screener = None
            if self.config.use_acceptance_sampling:
                screener = LinearMarginScreener(
                    self.problem.specs,
                    safety=self.config.as_safety,
                    min_train=self.config.as_min_train,
                )
            state = make_estimator(
                self.config.estimator,
                self.problem,
                x,
                self.sampler,
                spawn(self.rng),
                self.ledger,
                category=category,
                screener=screener,
            )
        return Individual(x, feasible, violation, state)

    def _new_individual(self, x: np.ndarray, category: str = "stage1") -> Individual:
        """Feasibility-check ``x`` and attach a fresh yield state if feasible."""
        feasible, violation = self.problem.nominal_feasibility(x, self.ledger)
        return self._attach_state(x, feasible, float(violation), category)

    def _new_individuals(
        self, xs: np.ndarray, category: str = "stage1"
    ) -> list[Individual]:
        """Batched step-3 gate: one vectorized feasibility evaluation for the
        whole candidate matrix, then per-candidate state attachment (in
        order, so the RNG spawn sequence matches the scalar path).  Duck-typed
        problems without the batched protocol fall back to scalar checks."""
        feasibility_batch = getattr(self.problem, "nominal_feasibility_batch", None)
        if feasibility_batch is None:
            return [self._new_individual(x, category) for x in xs]
        feasible, violations = feasibility_batch(xs, self.ledger)
        return [
            self._attach_state(x, bool(ok), float(violation), category)
            for x, ok, violation in zip(xs, feasible, violations)
        ]

    # -- engine-driven refinement ---------------------------------------------
    def _refine_round(
        self, states: list, gains: list[int], category: str | None = None
    ) -> None:
        """Submit one fused refinement round to the execution engine."""
        self.engine.refine_round(self.problem, states, gains, category=category)

    def _promote(self, individual: Individual) -> None:
        """Move a candidate to stage 2: full n_max sample count."""
        self._promote_all([individual])

    def _promote_all(self, individuals: list[Individual]) -> None:
        """Promote a batch of candidates in one fused stage-2 round.

        All missing samples are refined together (one engine dispatch),
        then ``on_stage2_promotion`` fires once per candidate, in order —
        the fixed-budget baseline and OCBA promotions both funnel through
        here so callbacks see every promotion.
        """
        if not individuals:
            return
        states = [ind.state for ind in individuals]
        gains = [max(self.config.n_max - state.n, 0) for state in states]
        if any(gains):
            self._refine_round(states, gains, category="stage2")
        for ind in individuals:
            ind.stage = 2
            self.callbacks.on_stage2_promotion(self, ind)

    # -- population yield estimation (steps 4-7) ----------------------------------
    def _estimate_population(self, individuals: list[Individual]) -> OCBAReport:
        feasible = [ind for ind in individuals if ind.feasible]
        if not feasible:
            return OCBAReport(counts=np.zeros(0, dtype=int), estimates=np.zeros(0), rounds=0)

        if self.config.use_ocba:
            budget = self.config.sim_ave * len(feasible)
            report = ocba_sequential(
                [ind.state for ind in feasible],
                total_budget=budget,
                n0=self.config.n0,
                delta=self.config.delta,
                engine=self.engine,
            )
            self._promote_all(
                [
                    ind
                    for ind in feasible
                    if ind.state.value >= self.config.stage2_threshold
                ]
            )
            return report

        # Fixed-budget baseline: everyone gets n_max outright, as one fused
        # stage-2 round (and with promotion callbacks firing, same as the
        # OCBA path).
        self._promote_all(feasible)
        return OCBAReport(
            counts=np.array([ind.n_samples for ind in feasible], dtype=int),
            estimates=np.array([ind.yield_value for ind in feasible]),
            rounds=1,
        )

    # -- composable loop stages (overridden by :mod:`repro.compose`) -----------
    def _propose_trials(
        self, population: list[Individual], best_index: int
    ) -> np.ndarray:
        """Step 2: one trial vector per parent (DE operators by default)."""
        return self.de.propose(
            np.array([ind.x for ind in population]), best_index, self.rng
        )

    def _make_trials(self, trial_xs: np.ndarray) -> list[Individual]:
        """Step 3: turn trial vectors into individuals (feasibility-gated).

        Composed methods interpose their screening stage here — pruned
        trials never reach the feasibility check, so they charge zero
        simulations.
        """
        return self._new_individuals(trial_xs)

    def _select(
        self, population: list[Individual], trials: list[Individual]
    ) -> None:
        """Step 8: one-to-one selection, in place (trial wins ties)."""
        for i, trial in enumerate(trials):
            if not deb_better(population[i].fitness(), trial.fitness()):
                population[i] = trial

    # -- selection helpers ------------------------------------------------------------
    @staticmethod
    def _best_index(population: list[Individual]) -> int:
        best = 0
        for i in range(1, len(population)):
            if deb_better(population[i].fitness(), population[best].fitness()):
                best = i
        return best

    # -- local search (steps 9-10) -------------------------------------------------------
    def _local_search(self, incumbent: Individual) -> Individual | None:
        """NM around the best member; returns an improved individual or None."""
        evaluated: list[Individual] = []

        def objective(x: np.ndarray) -> float:
            individual = self._new_individual(x, category="local_search")
            if not individual.feasible:
                # Strictly below any feasible yield; graded by violation so
                # the simplex can climb back into the feasible region.
                return -1.0 - individual.violation
            missing = self.config.n_max - individual.state.n
            if missing > 0:
                self._refine_round([individual.state], [missing])
            individual.stage = 2
            evaluated.append(individual)
            return individual.yield_value

        nelder_mead_maximize(
            objective,
            incumbent.x,
            self.problem.space,
            max_iterations=self.config.ls_max_iterations,
            initial_step=self.config.ls_initial_step,
            max_evaluations=self.config.ls_max_evaluations,
        )
        if not evaluated:
            return None
        best = evaluated[0]
        for candidate in evaluated[1:]:
            if deb_better(candidate.fitness(), best.fitness()):
                best = candidate
        if deb_better(best.fitness(), incumbent.fitness()):
            return best
        return None

    # -- main loop -----------------------------------------------------------------------
    def run(self) -> MOHECOResult:
        """Execute the optimization and return the best design found."""
        # The run's cache rides on the engine for the duration: every
        # refinement round — OCBA, promotions, local search — consults it
        # without any signature changes down the call chain.  A cache the
        # caller attached to the engine directly is left alone.
        previous_cache = self.engine.cache
        if self.cache is not None:
            self.engine.cache = self.cache
        try:
            return self._run()
        finally:
            if self.cache is not None:
                self.engine.cache = previous_cache
            if self._owns_cache:
                self.cache.close()
            # Worker pools the constructor materialized must not outlive
            # the run (closing is idempotent, and pools re-create lazily,
            # so calling run() again still works).
            if self._owns_engine:
                self.engine.close()

    def _run(self) -> MOHECOResult:
        cfg = self.config
        started_at = time.perf_counter()
        # Stats are deltas against the attached cache's life so far: a
        # cache warmed by earlier runs reports only *this* run's traffic.
        cache = self.engine.cache
        cache_stats_before = cache.stats.to_dict() if cache is not None else None
        history = OptimizationHistory()
        trigger = MemeticTrigger(cfg.ls_patience, cfg.yield_tolerance)
        self.callbacks.on_run_start(self)

        xs = self.de.init_population(cfg.pop_size, self.rng)
        population = self._new_individuals(xs)
        report = self._estimate_population(population)
        self._record(history, 0, population, report, ls_fired=False, extra=[])
        stop_requested = self.callbacks.on_generation_end(self, history[-1])

        best_seen = -np.inf
        stall = 0
        reason = "callback_stop" if stop_requested else "max_generations"
        generation = 0
        ls_failed_at: np.ndarray | None = None
        ls_triggers = 0
        remaining = range(1, cfg.max_generations + 1) if not stop_requested else []

        for generation in remaining:
            # Steps 1-2: base-vector selection + trial proposal (DE
            # operators by default; composed methods may swap the proposer).
            best_index = self._best_index(population)
            trial_xs = self._propose_trials(population, best_index)

            # Steps 3-7: (optional screening +) feasibility gate + staged
            # yield estimation.
            trials = self._make_trials(trial_xs)
            report = self._estimate_population(trials)

            # Step 8: one-to-one selection (trial wins ties, standard DE).
            self._select(population, trials)

            # Steps 9-10: adaptive memetic local search.  A failed search
            # suppresses re-triggering until the incumbent changes: repeating
            # NM around the very same point would spend n_max-priced
            # simulations on a question that was already answered.
            ls_fired = False
            ls_evaluated: list[Individual] = []
            best_index = self._best_index(population)
            best = population[best_index]
            # Local tuning belongs to stage 2 (paper section 2.4): NM only
            # refines an incumbent that already estimates above the stage-2
            # threshold — polishing a mid-yield candidate at n_max accuracy
            # would waste the budget DE spends more efficiently.
            ls_eligible = (
                cfg.use_memetic
                and best.feasible
                and best.yield_value >= cfg.stage2_threshold
            )
            if ls_eligible and trigger.observe(best.yield_value):
                already_searched = ls_failed_at is not None and np.array_equal(
                    best.x, ls_failed_at
                )
                if not already_searched and ls_triggers < cfg.ls_max_triggers:
                    ls_fired = True
                    ls_triggers += 1
                    improved = self._local_search(best)
                    self.callbacks.on_local_search(self, generation, best, improved)
                    if improved is not None:
                        population[best_index] = improved
                        ls_evaluated.append(improved)
                        trigger.note_external_improvement(improved.yield_value)
                        ls_failed_at = None
                    else:
                        ls_failed_at = best.x.copy()

            self._record(history, generation, population, report, ls_fired, ls_evaluated,
                         trials=trials)
            if self.callbacks.on_generation_end(self, history[-1]):
                reason = "callback_stop"
                break

            # Step 11: stopping rules.
            best = population[self._best_index(population)]
            if best.feasible:
                estimate = best.estimate
                if (
                    best.stage == 2
                    and estimate.n >= cfg.n_max
                    and estimate.passes == estimate.n
                ):
                    reason = "yield_100"
                    break
            # Stall accounting: while the population is still infeasible,
            # falling violation counts as progress (the paper's "yield does
            # not increase" rule only makes sense once yield is non-zero).
            objective_now = best.yield_value if best.feasible else -best.violation
            patience = cfg.stop_patience if best.feasible else 3 * cfg.stop_patience
            if objective_now > best_seen + cfg.yield_tolerance:
                best_seen = objective_now
                stall = 0
            else:
                stall += 1
                if stall >= patience:
                    reason = "stalled"
                    break

        # Final answer always carries stage-2 accuracy.
        best = population[self._best_index(population)]
        if best.feasible and best.state is not None:
            self._promote(best)

        result = MOHECOResult(
            best_x=best.x.copy(),
            best_yield=best.yield_value,
            best_estimate=best.estimate,
            generations=generation,
            n_simulations=self.ledger.total,
            reason=reason,
            history=history,
            ledger=self.ledger,
            elapsed_seconds=time.perf_counter() - started_at,
            cache_stats=(
                cache.stats.delta(cache_stats_before) if cache is not None else None
            ),
            engine_decision=getattr(self.engine, "decision", None),
            fidelity_trace=self._fidelity_trace,
            screen_trace=self._screen_trace,
        )
        self.callbacks.on_stop(self, result)
        return result

    # -- bookkeeping ---------------------------------------------------------------------
    def _record(
        self,
        history: OptimizationHistory,
        generation: int,
        population: list[Individual],
        report: OCBAReport,
        ls_fired: bool,
        extra: list[Individual],
        trials: list[Individual] | None = None,
    ) -> None:
        best = population[self._best_index(population)]
        evaluated = [ind for ind in (trials if trials is not None else population)
                     if ind.feasible and ind.n_samples > 0]
        evaluated.extend(extra)
        if evaluated:
            evaluated_x = np.array([ind.x for ind in evaluated])
            evaluated_yield = np.array([ind.yield_value for ind in evaluated])
        else:
            evaluated_x = np.zeros((0, self.problem.design_dimension))
            evaluated_yield = np.zeros(0)
        history.append(
            GenerationRecord(
                generation=generation,
                best_yield=best.yield_value,
                best_violation=best.violation,
                feasible_count=sum(ind.feasible for ind in population),
                stage2_count=sum(ind.stage == 2 for ind in population),
                simulations_total=self.ledger.total,
                local_search_fired=ls_fired,
                ocba_counts=report.counts.copy(),
                ocba_estimates=report.estimates.copy(),
                evaluated_x=evaluated_x,
                evaluated_yield=evaluated_yield,
            )
        )
