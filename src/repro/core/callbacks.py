"""Observer protocol for the MOHECO generation loop.

Callbacks turn the engine from a black box into an observable process:
progress streaming, early stopping and checkpointing all hang off the same
four hooks, which fire at well-defined points of the paper's Fig.-4 flow:

* :meth:`Callback.on_run_start` — before generation 0 is evaluated.
* :meth:`Callback.on_generation_end` — after each generation's record is
  written (including generation 0); returning ``True`` requests an early
  stop, reported as ``reason="callback_stop"``.
* :meth:`Callback.on_stage2_promotion` — a candidate crossed the stage-2
  threshold and was refined to the full ``n_max`` sample count.
* :meth:`Callback.on_local_search` — a memetic Nelder-Mead trigger fired
  (``improved`` is ``None`` when the search found nothing better).
* :meth:`Callback.on_stop` — the run finished; receives the final result.

Sweep-level hooks (fired by :func:`repro.sweep.run_sweep`, one level above
the generation loop):

* :meth:`Callback.on_sweep_start` — the grid is expanded; receives the
  total run count and how many still need executing (fewer on resume).
* :meth:`Callback.on_sweep_run_progress` — one *generation* finished
  inside a (possibly remote) sweep run; the record arrives as a plain
  dict because it may have crossed a process-pool boundary.  Only fired
  when some registered callback actually overrides this hook (the
  executor skips the bridging machinery otherwise).
* :meth:`Callback.on_sweep_run_end` — one run completed and its record was
  persisted.
* :meth:`Callback.on_sweep_end` — the sweep aggregated its
  :class:`~repro.sweep.executor.SweepResult`.

One callback object can observe both levels; sweep executors only fire the
sweep hooks (per-run hooks would arrive out of order from a process pool).
"""

from __future__ import annotations

import json
import os
from typing import Iterable

__all__ = [
    "Callback",
    "CallbackList",
    "ProgressCallback",
    "SweepProgressCallback",
    "EarlyStopOnYield",
    "CheckpointCallback",
    "wants_run_progress",
]


class Callback:
    """Base observer; override any subset of the hooks."""

    def on_run_start(self, engine) -> None:
        """The run is about to evaluate its initial population."""

    def on_generation_end(self, engine, record) -> bool | None:
        """A :class:`~repro.core.history.GenerationRecord` was written.

        Return ``True`` to request an early stop after this generation.
        """

    def on_stage2_promotion(self, engine, individual) -> None:
        """``individual`` was promoted to stage-2 accuracy."""

    def on_local_search(self, engine, generation: int, incumbent, improved) -> None:
        """A local search fired around ``incumbent`` at ``generation``."""

    def on_stop(self, engine, result) -> None:
        """The run produced ``result`` (a :class:`MOHECOResult`)."""

    # -- sweep level -------------------------------------------------------
    def on_sweep_start(self, sweep, total: int, pending: int) -> None:
        """A sweep over ``sweep`` (a SweepSpec) is about to execute.

        ``total`` is the grid size; ``pending`` how many runs will actually
        execute (less than ``total`` when resuming a partial store).
        """

    def on_sweep_run_progress(self, sweep, run, record: dict) -> None:
        """A generation finished inside sweep run ``run`` (a SweepRun).

        ``record`` is the generation's
        :meth:`~repro.core.history.GenerationRecord.to_dict` payload —
        plain data, because sharded sweeps ship it from pool workers over
        a multiprocessing queue.  Interleaving across concurrently
        executing runs is arbitrary; within one run the generations
        arrive in order.
        """

    def on_sweep_run_end(self, sweep, run, record, done: int, total: int) -> None:
        """Run ``run`` (a SweepRun) completed with ``record`` (a RunRecord).

        ``done`` counts completed runs including resumed ones.  Sharded
        sweeps deliver completions in finish order, not grid order.
        """

    def on_sweep_end(self, sweep, result) -> None:
        """The sweep finished; ``result`` is the aggregated SweepResult."""


def wants_run_progress(callback: Callback) -> bool:
    """Whether ``callback`` actually listens to :meth:`on_sweep_run_progress`.

    The sweep executor only sets up the worker→parent bridging (a
    multiprocessing queue plus a drain thread) when someone listens; the
    base-class no-op does not count.  A :class:`CallbackList` listens when
    any member does.
    """
    if isinstance(callback, CallbackList):
        return any(wants_run_progress(member) for member in callback.callbacks)
    hook = callback.on_sweep_run_progress
    # Unwrap bound methods so both class overrides and instance-assigned
    # hooks (SweepProgressCallback's opt-in) are recognised.
    return getattr(hook, "__func__", hook) is not Callback.on_sweep_run_progress


class CallbackList(Callback):
    """Fans every hook out to a sequence of callbacks.

    ``on_generation_end`` requests a stop when *any* member does.
    """

    def __init__(self, callbacks: Iterable[Callback] | Callback | None = None) -> None:
        if callbacks is None:
            callbacks = []
        elif isinstance(callbacks, Callback):
            callbacks = [callbacks]
        self.callbacks: list[Callback] = list(callbacks)

    def __len__(self) -> int:
        return len(self.callbacks)

    def append(self, callback: Callback) -> None:
        """Add one more observer."""
        self.callbacks.append(callback)

    def on_run_start(self, engine) -> None:
        for callback in self.callbacks:
            callback.on_run_start(engine)

    def on_generation_end(self, engine, record) -> bool:
        stop = False
        for callback in self.callbacks:
            if callback.on_generation_end(engine, record):
                stop = True
        return stop

    def on_stage2_promotion(self, engine, individual) -> None:
        for callback in self.callbacks:
            callback.on_stage2_promotion(engine, individual)

    def on_local_search(self, engine, generation: int, incumbent, improved) -> None:
        for callback in self.callbacks:
            callback.on_local_search(engine, generation, incumbent, improved)

    def on_stop(self, engine, result) -> None:
        for callback in self.callbacks:
            callback.on_stop(engine, result)

    def on_sweep_start(self, sweep, total: int, pending: int) -> None:
        for callback in self.callbacks:
            callback.on_sweep_start(sweep, total, pending)

    def on_sweep_run_progress(self, sweep, run, record: dict) -> None:
        for callback in self.callbacks:
            callback.on_sweep_run_progress(sweep, run, record)

    def on_sweep_run_end(self, sweep, run, record, done: int, total: int) -> None:
        for callback in self.callbacks:
            callback.on_sweep_run_end(sweep, run, record, done, total)

    def on_sweep_end(self, sweep, result) -> None:
        for callback in self.callbacks:
            callback.on_sweep_end(sweep, result)


class ProgressCallback(Callback):
    """Streams a one-line summary per generation (the CLI's ``--progress``)."""

    def __init__(self, print_fn=print, every: int = 1) -> None:
        self.print_fn = print_fn
        self.every = max(1, int(every))

    def on_generation_end(self, engine, record) -> None:
        if record.generation % self.every:
            return
        self.print_fn(
            f"gen {record.generation:4d}  "
            f"best yield {record.best_yield:7.2%}  "
            f"violation {record.best_violation:.3g}  "
            f"feasible {record.feasible_count}  "
            f"stage2 {record.stage2_count}  "
            f"sims {record.simulations_total}"
            + ("  [LS]" if record.local_search_fired else "")
        )

    def on_stop(self, engine, result) -> None:
        self.print_fn(
            f"done: yield {result.best_yield:.2%} after {result.generations} "
            f"generations, {result.n_simulations} simulations ({result.reason})"
        )


class SweepProgressCallback(Callback):
    """Streams one line per completed sweep run (the CLI's ``--progress``).

    With ``generations=True`` (the CLI's ``--progress-generations``) it
    also prints one indented line per generation *inside* each run —
    including runs executing in sharded pool workers, whose records reach
    the parent over the executor's progress queue.
    """

    def __init__(self, print_fn=print, generations: bool = False) -> None:
        self.print_fn = print_fn
        if generations:
            # Bound only when asked for: the executor detects an overridden
            # on_sweep_run_progress hook to decide whether to pay for the
            # worker->parent bridge, and the base-class no-op must not count.
            self.on_sweep_run_progress = self._print_generation

    def on_sweep_start(self, sweep, total: int, pending: int) -> None:
        resumed = total - pending
        note = f" ({resumed} resumed from store)" if resumed else ""
        self.print_fn(
            f"sweep: {len(sweep.problems)} problem(s) x "
            f"{len(sweep.methods)} method(s) x {sweep.runs} run(s) = "
            f"{total} runs{note}"
        )

    def _print_generation(self, sweep, run, record: dict) -> None:
        self.print_fn(
            f"  [{run.key}] gen {record['generation']:3d}  "
            f"yield {record['best_yield']:7.2%}  "
            f"sims {record['simulations_total']}"
            + ("  [LS]" if record.get("local_search_fired") else "")
        )

    def on_sweep_run_end(self, sweep, run, record, done: int, total: int) -> None:
        self.print_fn(
            f"[{done}/{total}] {run.problem_label} / {run.method_label} "
            f"run {run.run_index}: yield {record.reported_yield:.2%} "
            f"(ref {record.reference_yield:.2%}, dev {record.deviation:.2%}) "
            f"in {record.n_simulations} sims, {record.wall_seconds:.2f}s"
        )

    def on_sweep_end(self, sweep, result) -> None:
        self.print_fn(
            f"sweep done: {result.executed} executed, {result.reused} resumed "
            f"in {result.elapsed_seconds:.2f}s with {result.workers} worker(s)"
        )


class EarlyStopOnYield(Callback):
    """Stops the run once the best estimated yield reaches ``target``."""

    def __init__(self, target: float) -> None:
        if not 0.0 < target <= 1.0:
            raise ValueError(f"target yield must be in (0, 1], got {target}")
        self.target = float(target)

    def on_generation_end(self, engine, record) -> bool:
        return record.best_yield >= self.target


class CheckpointCallback(Callback):
    """Writes the best-so-far state to a JSON file every ``every`` generations.

    Snapshots are written to a sibling temp file and atomically renamed onto
    ``path``, so a crash mid-write never destroys the previous checkpoint; a
    final snapshot is written on stop with the full result.
    """

    def __init__(self, path, every: int = 1) -> None:
        self.path = os.fspath(path)
        self.every = max(1, int(every))

    def _write(self, payload: dict) -> None:
        tmp_path = f"{self.path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        os.replace(tmp_path, self.path)

    def on_generation_end(self, engine, record) -> None:
        if record.generation % self.every:
            return
        self._write(
            {
                "status": "running",
                "generation": record.generation,
                "best_yield": record.best_yield,
                "best_violation": record.best_violation,
                "simulations_total": record.simulations_total,
            }
        )

    def on_stop(self, engine, result) -> None:
        self._write({"status": "finished", "result": result.to_dict()})
