"""MOHECO configuration.

Defaults follow the paper's experimental section: "The population size is
50, the crossover rate is 0.8 and the DE step size is 0.8. The optimization
stops when the reported yield reaches 100%, or when the yield does not
increase for 20 subsequent generations. Parameter n0 is set to 15 and
sim_ave is set to 35 in all the experiments."
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

__all__ = ["MOHECOConfig"]


@dataclass(frozen=True)
class MOHECOConfig:
    """All knobs of the MOHECO engine (and of its ablated baselines)."""

    # -- evolutionary engine ------------------------------------------------
    pop_size: int = 50
    de_f: float = 0.8
    de_cr: float = 0.8
    de_variant: str = "best/1"

    # -- two-stage yield estimation ----------------------------------------------
    #: Enable ordinal optimization in stage 1.  ``False`` reproduces the
    #: fixed-budget baselines: every feasible candidate receives ``n_max``.
    use_ocba: bool = True
    #: Initial samples per candidate in the OCBA loop (paper: 15).
    n0: int = 15
    #: Average per-candidate budget; stage-1 generation budget is
    #: ``sim_ave * N_feasible`` (paper: 35).
    sim_ave: int = 35
    #: OCBA budget increment per allocation round.
    delta: int = 50
    #: Stage-2 / final per-candidate sample count (paper's "appropriate"
    #: accuracy choice for both examples: 500).
    n_max: int = 500
    #: Estimated yield above which a candidate enters stage 2 (paper: 97 %).
    stage2_threshold: float = 0.97

    # -- sampling ------------------------------------------------------------------
    #: Sampler name resolved through :data:`repro.sampling.SAMPLERS`
    #: ("pmc", "lhs" or "sobol" ship built in; paper uses LHS everywhere).
    sampler: str = "lhs"
    #: Per-candidate yield estimator name resolved through
    #: :data:`repro.yieldsim.ESTIMATORS`.
    estimator: str = "incremental"
    #: Acceptance sampling on/off (paper uses AS everywhere).
    use_acceptance_sampling: bool = True
    as_safety: float = 3.0
    as_min_train: int = 30

    # -- memetic local search ----------------------------------------------------------
    use_memetic: bool = True
    #: Non-improving generations before NM triggers (paper: 5).
    ls_patience: int = 5
    #: NM iterations per trigger (paper: "about 10").
    ls_max_iterations: int = 10
    #: Hard cap on NM objective evaluations per trigger (each evaluation
    #: costs ``n_max`` simulations).  The default allows the initial simplex
    #: (d+1 points) plus roughly the paper's "about 10 iterations".
    ls_max_evaluations: int = 24
    #: Hard cap on local-search triggers per run (keeps the memetic cost
    #: bounded on problems whose best yield saturates below 100 %).
    ls_max_triggers: int = 2
    #: Initial simplex size as a fraction of each variable's range.
    ls_initial_step: float = 0.02

    # -- stopping ----------------------------------------------------------------------
    #: Non-improving generations before giving up (paper: 20).  While the
    #: population is still infeasible the engine waits three times longer:
    #: the paper's rule speaks about yield, which does not exist yet.
    stop_patience: int = 20
    max_generations: int = 200
    #: Objective gain that counts as an improvement.
    yield_tolerance: float = 1e-9

    def __post_init__(self) -> None:
        if self.pop_size < 4:
            raise ValueError(f"pop_size must be >= 4 for DE, got {self.pop_size}")
        if self.n0 < 1:
            raise ValueError(f"n0 must be >= 1, got {self.n0}")
        if self.sim_ave < self.n0:
            raise ValueError(
                f"sim_ave ({self.sim_ave}) must be >= n0 ({self.n0}); the "
                "stage-1 budget must at least cover the pilot samples"
            )
        if self.n_max < self.sim_ave:
            raise ValueError(
                f"n_max ({self.n_max}) must be >= sim_ave ({self.sim_ave})"
            )
        if not 0.0 < self.stage2_threshold <= 1.0:
            raise ValueError(
                f"stage2_threshold must be in (0, 1], got {self.stage2_threshold}"
            )

    # -- named variants (the paper's compared methods) --------------------------
    def with_overrides(self, **kwargs) -> "MOHECOConfig":
        """Copy with some fields replaced."""
        return replace(self, **kwargs)

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (all fields are scalars)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "MOHECOConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)

    @classmethod
    def moheco(cls, n_max: int = 500, **kwargs) -> "MOHECOConfig":
        """The full method (OO + memetic)."""
        return cls(use_ocba=True, use_memetic=True, n_max=n_max, **kwargs)

    @classmethod
    def oo_only(cls, n_max: int = 500, **kwargs) -> "MOHECOConfig":
        """OO + AS + LHS, no memetic operators."""
        return cls(use_ocba=True, use_memetic=False, n_max=n_max, **kwargs)

    @classmethod
    def fixed_budget(cls, n_fixed: int = 500, **kwargs) -> "MOHECOConfig":
        """AS + LHS with the same sample count for every feasible candidate."""
        return cls(use_ocba=False, use_memetic=False, n_max=n_fixed, **kwargs)
