"""Per-generation optimization history.

Feeds three consumers:

* the paper's Fig. 3 (an OCBA allocation snapshot of a typical population),
* the RSB study of section 3.4 (per-iteration (x, yield) training data for
  the neural-network response surface), and
* convergence diagnostics in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GenerationRecord", "OptimizationHistory"]


@dataclass
class GenerationRecord:
    """Snapshot of one generation."""

    generation: int
    best_yield: float
    best_violation: float
    feasible_count: int
    stage2_count: int
    simulations_total: int
    local_search_fired: bool = False
    #: Per-candidate OCBA sample counts of this generation's feasible
    #: trials (empty when OCBA is off or nothing was feasible).
    ocba_counts: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=int))
    #: Matching yield estimates.
    ocba_estimates: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Evaluated designs of this generation (trials + LS probes) and their
    #: estimated yields — the RSB study's training data.
    evaluated_x: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    evaluated_yield: np.ndarray = field(default_factory=lambda: np.zeros(0))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation (arrays become nested lists)."""
        return {
            "generation": int(self.generation),
            "best_yield": float(self.best_yield),
            "best_violation": float(self.best_violation),
            "feasible_count": int(self.feasible_count),
            "stage2_count": int(self.stage2_count),
            "simulations_total": int(self.simulations_total),
            "local_search_fired": bool(self.local_search_fired),
            "ocba_counts": np.asarray(self.ocba_counts).tolist(),
            "ocba_estimates": np.asarray(self.ocba_estimates).tolist(),
            "evaluated_x": np.asarray(self.evaluated_x).tolist(),
            "evaluated_yield": np.asarray(self.evaluated_yield).tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "GenerationRecord":
        """Inverse of :meth:`to_dict`."""
        evaluated_x = np.asarray(data.get("evaluated_x", []), dtype=float)
        if evaluated_x.size == 0:
            evaluated_x = evaluated_x.reshape((0, 0))
        return cls(
            generation=int(data["generation"]),
            best_yield=float(data["best_yield"]),
            best_violation=float(data["best_violation"]),
            feasible_count=int(data["feasible_count"]),
            stage2_count=int(data["stage2_count"]),
            simulations_total=int(data["simulations_total"]),
            local_search_fired=bool(data.get("local_search_fired", False)),
            ocba_counts=np.asarray(data.get("ocba_counts", []), dtype=int),
            ocba_estimates=np.asarray(data.get("ocba_estimates", []), dtype=float),
            evaluated_x=evaluated_x,
            evaluated_yield=np.asarray(data.get("evaluated_yield", []), dtype=float),
        )


class OptimizationHistory:
    """Ordered collection of generation records."""

    def __init__(self) -> None:
        self.records: list[GenerationRecord] = []

    def append(self, record: GenerationRecord) -> None:
        """Add one generation's record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index: int) -> GenerationRecord:
        return self.records[index]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible representation of all records."""
        return {"records": [record.to_dict() for record in self.records]}

    @classmethod
    def from_dict(cls, data: dict) -> "OptimizationHistory":
        """Inverse of :meth:`to_dict`."""
        history = cls()
        for record in data.get("records", []):
            history.append(GenerationRecord.from_dict(record))
        return history

    # -- series ------------------------------------------------------------
    def best_yield_series(self) -> np.ndarray:
        """Best estimated yield per generation."""
        return np.array([r.best_yield for r in self.records])

    def simulations_series(self) -> np.ndarray:
        """Cumulative charged simulations per generation."""
        return np.array([r.simulations_total for r in self.records])

    def training_data(self, upto_generation: int) -> tuple[np.ndarray, np.ndarray]:
        """All (design, yield) pairs evaluated up to a generation (inclusive).

        This is the RSB protocol: "we use the data from all previous
        iterations to train the NN and use this to predict the yield values
        of the current iteration".
        """
        xs, ys = [], []
        for record in self.records:
            if record.generation > upto_generation:
                break
            if record.evaluated_x.size:
                xs.append(record.evaluated_x)
                ys.append(record.evaluated_yield)
        if not xs:
            return np.zeros((0, 0)), np.zeros(0)
        return np.vstack(xs), np.concatenate(ys)

    def generation_data(self, generation: int) -> tuple[np.ndarray, np.ndarray]:
        """The (design, yield) pairs evaluated in one generation."""
        for record in self.records:
            if record.generation == generation:
                return record.evaluated_x, record.evaluated_yield
        return np.zeros((0, 0)), np.zeros(0)
