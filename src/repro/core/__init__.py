"""MOHECO: the paper's primary contribution.

* :class:`MOHECOConfig` — all algorithm knobs with the paper's defaults
  (population 50, F = CR = 0.8, n0 = 15, sim_ave = 35, stage-2 threshold
  97 %, local-search patience 5, stop patience 20).
* :class:`MOHECO` — the two-stage memetic OO-based hybrid evolutionary
  constrained optimizer (Fig. 4 of the paper).
* The same engine with ``use_ocba=False`` / ``use_memetic=False`` realises
  the paper's comparison methods (see :mod:`repro.baselines`).
"""

from repro.core.callbacks import (
    Callback,
    CallbackList,
    CheckpointCallback,
    EarlyStopOnYield,
    ProgressCallback,
)
from repro.core.config import MOHECOConfig
from repro.core.history import GenerationRecord, OptimizationHistory
from repro.core.moheco import MOHECO, MOHECOResult
from repro.core.state import Individual

__all__ = [
    "MOHECOConfig",
    "MOHECO",
    "MOHECOResult",
    "Individual",
    "GenerationRecord",
    "OptimizationHistory",
    "Callback",
    "CallbackList",
    "ProgressCallback",
    "EarlyStopOnYield",
    "CheckpointCallback",
]
