"""High-N reference yield estimation.

The paper scores every method against a 50 000-sample MC analysis at the
returned design point ("a very reliable approximation of the real yield
value": within 0.01 % of a 250 000-sample run).  These verification
simulations are charged to the ``reference`` ledger category, which
:attr:`~repro.ledger.SimulationLedger.total` excludes — the paper's tables
likewise exclude them.
"""

from __future__ import annotations

import numpy as np

from repro.ledger import REFERENCE_CATEGORY, SimulationLedger
from repro.yieldsim.estimator import YieldEstimate

__all__ = ["reference_yield"]


def reference_yield(
    problem,
    x: np.ndarray,
    n: int = 50_000,
    rng: np.random.Generator | None = None,
    ledger: SimulationLedger | None = None,
    batch_size: int = 5_000,
) -> YieldEstimate:
    """Plain-MC yield of design ``x`` with ``n`` samples, batched.

    Batching bounds peak memory (the 123-variable problem at 50 k samples
    would otherwise materialise hundreds of MB of device arrays at once).
    """
    if rng is None:
        rng = np.random.default_rng(2**32 - 1)
    passes = 0
    remaining = int(n)
    while remaining > 0:
        batch = min(batch_size, remaining)
        samples = problem.variation.sample(batch, rng)
        passed = problem.indicator(x, samples, ledger, category=REFERENCE_CATEGORY)
        passes += int(np.sum(passed))
        remaining -= batch
    return YieldEstimate(passes=passes, n=int(n))
