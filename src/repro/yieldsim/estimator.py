"""Incremental Monte-Carlo yield estimation for one candidate design.

:class:`CandidateYieldState` is the unit OCBA operates on: it owns the
candidate's private sample stream, its running pass count, and (optionally)
an acceptance-sampling screener.  ``refine(k)`` adds ``k`` more samples to
the estimate, charging only the simulations the screener could not avoid.

Screened samples count toward the *estimate* (they are classified
pass/fail) but not toward the *cost* — exactly how the paper credits AS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ledger import SimulationLedger
from repro.sampling.acceptance import LinearMarginScreener
from repro.sampling.base import Sampler

__all__ = ["YieldEstimate", "CandidateYieldState"]

#: Variance floor so OCBA ratios stay finite for 0 %/100 % estimates.
_VARIANCE_FLOOR = 1e-4


@dataclass(frozen=True)
class YieldEstimate:
    """A yield point estimate with its sampling-error description."""

    passes: int
    n: int

    @property
    def value(self) -> float:
        """The yield estimate (0 when no samples were taken)."""
        if self.n == 0:
            return 0.0
        return self.passes / self.n

    @property
    def variance(self) -> float:
        """Bernoulli variance p(1-p), floored away from zero."""
        p = self.value
        return max(p * (1.0 - p), _VARIANCE_FLOOR)

    @property
    def std(self) -> float:
        """Standard deviation of one sample (sqrt of variance)."""
        return float(np.sqrt(self.variance))

    @property
    def standard_error(self) -> float:
        """Standard error of the estimate itself."""
        if self.n == 0:
            return 1.0
        return self.std / np.sqrt(self.n)

    def wilson_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval — robust near 0 %/100 % yields."""
        if self.n == 0:
            return 0.0, 1.0
        n, p = self.n, self.value
        denom = 1.0 + z**2 / n
        centre = (p + z**2 / (2 * n)) / denom
        half = (z / denom) * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2))
        # Clamp against floating-point dust: mathematically the Wilson
        # interval always contains the point estimate.
        low = min(max(0.0, centre - half), p)
        high = max(min(1.0, centre + half), p)
        return low, high


class CandidateYieldState:
    """Incrementally-refined yield estimate of one design point.

    Parameters
    ----------
    problem:
        The :class:`~repro.problems.base.YieldProblem`.
    x:
        The design vector (copied).
    sampler:
        Sample stream (PMC / LHS / Sobol).
    rng:
        Private generator for this candidate's draws.
    ledger:
        Budget ledger; simulations are charged to ``category``.
    category:
        Ledger category ("stage1", "stage2", "local_search", ...).
    screener:
        Optional acceptance-sampling screener; ``None`` disables AS.
    """

    def __init__(
        self,
        problem,
        x: np.ndarray,
        sampler: Sampler,
        rng: np.random.Generator,
        ledger: SimulationLedger | None = None,
        category: str = "stage1",
        screener: LinearMarginScreener | None = None,
    ) -> None:
        self.problem = problem
        self.x = np.array(x, dtype=float)
        self.sampler = sampler
        self.rng = rng
        self.ledger = ledger
        self.category = category
        self.screener = screener
        self._passes = 0
        self._n = 0
        self._n_simulated = 0

    # -- state --------------------------------------------------------------
    @property
    def n(self) -> int:
        """Samples incorporated in the estimate (simulated + screened)."""
        return self._n

    @property
    def n_simulated(self) -> int:
        """Simulations actually charged for this candidate."""
        return self._n_simulated

    @property
    def estimate(self) -> YieldEstimate:
        """Current estimate snapshot."""
        return YieldEstimate(passes=self._passes, n=self._n)

    @property
    def value(self) -> float:
        """Current yield estimate."""
        return self.estimate.value

    @property
    def std(self) -> float:
        """Per-sample standard deviation (for OCBA)."""
        return self.estimate.std

    # -- refinement --------------------------------------------------------------
    def refine(self, n_additional: int, category: str | None = None) -> YieldEstimate:
        """Add ``n_additional`` samples to the estimate.

        Draws fresh samples, lets the screener resolve the certain ones, and
        simulates the border band; returns the updated estimate.
        """
        if n_additional < 0:
            raise ValueError(f"cannot refine by a negative count: {n_additional}")
        if n_additional == 0:
            return self.estimate

        samples = self.sampler.draw(n_additional, self.rng)

        if self.screener is not None and self.screener.active:
            screen = self.screener.classify(samples)
            self._passes += screen.screened_pass
            self._n += screen.n_screened
            if self.ledger is not None:
                self.ledger.record_screened(screen.n_screened)
            samples = samples[screen.simulate_mask]

        if samples.shape[0] > 0:
            # The MC hot path goes through the batched protocol: evaluators
            # with a vectorized ``evaluate_batch`` resolve the whole sample
            # block in one array op.  Duck-typed problems that predate the
            # protocol keep working through plain ``simulate``.
            evaluate_batch = getattr(self.problem, "evaluate_batch", None)
            if evaluate_batch is not None:
                performance = evaluate_batch(
                    self.x[None, :], samples, self.ledger, category or self.category
                )[0]
            else:
                performance = self.problem.simulate(
                    self.x, samples, self.ledger, category or self.category
                )
            margins = self.problem.specs.margins(performance)
            passed = np.all(margins >= 0.0, axis=1)
            self._passes += int(np.sum(passed))
            self._n += samples.shape[0]
            self._n_simulated += samples.shape[0]
            if self.screener is not None:
                self.screener.update(samples, margins)

        return self.estimate

    def refine_to(self, n_target: int, category: str | None = None) -> YieldEstimate:
        """Refine until the estimate incorporates at least ``n_target``."""
        missing = n_target - self._n
        if missing > 0:
            self.refine(missing, category)
        return self.estimate
