"""Incremental Monte-Carlo yield estimation for one candidate design.

:class:`CandidateYieldState` is the unit OCBA operates on: it owns the
candidate's private sample stream, its running pass count, and (optionally)
an acceptance-sampling screener.  ``refine(k)`` adds ``k`` more samples to
the estimate, charging only the simulations the screener could not avoid.

Screened samples count toward the *estimate* (they are classified
pass/fail) but not toward the *cost* — exactly how the paper credits AS.

Refinement is split into two halves so an
:class:`~repro.engine.base.EvaluationEngine` can fuse many candidates'
simulations into one dispatch:

* :meth:`CandidateYieldState.prepare` draws the sample block from the
  candidate's private RNG stream, lets the screener resolve the certain
  samples locally, and returns the border band as a
  :class:`PendingRefinement`;
* :meth:`CandidateYieldState.absorb` incorporates the simulated
  performance rows back into the running estimate.

``refine(k)`` composes the two with an immediate local evaluation, which
is exactly the legacy per-candidate path.  Because each candidate owns a
private generator, the draw streams are independent of how (or where) the
pending blocks are eventually simulated — the foundation of the
cross-backend reproducibility guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ledger import SimulationLedger
from repro.sampling.acceptance import LinearMarginScreener
from repro.sampling.base import Sampler

__all__ = ["YieldEstimate", "CandidateYieldState", "PendingRefinement"]

#: Variance floor so OCBA ratios stay finite for 0 %/100 % estimates.
_VARIANCE_FLOOR = 1e-4


@dataclass
class PendingRefinement:
    """A candidate's border-band samples awaiting simulation.

    Produced by :meth:`CandidateYieldState.prepare`; an evaluation engine
    simulates ``samples`` at ``state.x`` (charging ``category``) and feeds
    the performance rows back through :meth:`CandidateYieldState.absorb`.
    """

    state: "CandidateYieldState"
    samples: np.ndarray
    category: str

    @property
    def n_samples(self) -> int:
        """Rows awaiting simulation."""
        return int(self.samples.shape[0])


@dataclass(frozen=True)
class YieldEstimate:
    """A yield point estimate with its sampling-error description."""

    passes: int
    n: int

    @property
    def value(self) -> float:
        """The yield estimate (0 when no samples were taken)."""
        if self.n == 0:
            return 0.0
        return self.passes / self.n

    @property
    def variance(self) -> float:
        """Bernoulli variance p(1-p), floored away from zero."""
        p = self.value
        return max(p * (1.0 - p), _VARIANCE_FLOOR)

    @property
    def std(self) -> float:
        """Standard deviation of one sample (sqrt of variance)."""
        return float(np.sqrt(self.variance))

    @property
    def standard_error(self) -> float:
        """Standard error of the estimate itself."""
        if self.n == 0:
            return 1.0
        return self.std / np.sqrt(self.n)

    def wilson_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Wilson score interval — robust near 0 %/100 % yields."""
        if self.n == 0:
            return 0.0, 1.0
        n, p = self.n, self.value
        denom = 1.0 + z**2 / n
        centre = (p + z**2 / (2 * n)) / denom
        half = (z / denom) * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2))
        # Clamp against floating-point dust: mathematically the Wilson
        # interval always contains the point estimate.
        low = min(max(0.0, centre - half), p)
        high = max(min(1.0, centre + half), p)
        return low, high


class CandidateYieldState:
    """Incrementally-refined yield estimate of one design point.

    Parameters
    ----------
    problem:
        The :class:`~repro.problems.base.YieldProblem`.
    x:
        The design vector (copied).
    sampler:
        Sample stream (PMC / LHS / Sobol).
    rng:
        Private generator for this candidate's draws.
    ledger:
        Budget ledger; simulations are charged to ``category``.
    category:
        Ledger category ("stage1", "stage2", "local_search", ...).
    screener:
        Optional acceptance-sampling screener; ``None`` disables AS.
    """

    def __init__(
        self,
        problem,
        x: np.ndarray,
        sampler: Sampler,
        rng: np.random.Generator,
        ledger: SimulationLedger | None = None,
        category: str = "stage1",
        screener: LinearMarginScreener | None = None,
    ) -> None:
        self.problem = problem
        self.x = np.array(x, dtype=float)
        self.sampler = sampler
        self.rng = rng
        self.ledger = ledger
        self.category = category
        self.screener = screener
        self._passes = 0
        self._n = 0
        self._n_simulated = 0

    # -- state --------------------------------------------------------------
    @property
    def n(self) -> int:
        """Samples incorporated in the estimate (simulated + screened)."""
        return self._n

    @property
    def n_simulated(self) -> int:
        """Simulations actually charged for this candidate."""
        return self._n_simulated

    @property
    def estimate(self) -> YieldEstimate:
        """Current estimate snapshot."""
        return YieldEstimate(passes=self._passes, n=self._n)

    @property
    def value(self) -> float:
        """Current yield estimate.

        Computed inline (same arithmetic as :attr:`YieldEstimate.value`):
        the OCBA loop reads it for every candidate every round, so it must
        not pay a snapshot allocation.
        """
        if self._n == 0:
            return 0.0
        return self._passes / self._n

    @property
    def std(self) -> float:
        """Per-sample standard deviation (for OCBA); same fast path."""
        p = self.value
        return float(np.sqrt(max(p * (1.0 - p), _VARIANCE_FLOOR)))

    # -- refinement --------------------------------------------------------------
    def prepare(
        self, n_additional: int, category: str | None = None
    ) -> PendingRefinement | None:
        """Draw and screen ``n_additional`` samples; return the border band.

        The candidate's private RNG stream advances here, and the screener
        resolves (and immediately incorporates) the certain samples; only
        the samples that genuinely need simulation are returned.  ``None``
        means nothing is left to simulate.
        """
        if n_additional < 0:
            raise ValueError(f"cannot refine by a negative count: {n_additional}")
        if n_additional == 0:
            return None

        samples = self.sampler.draw(n_additional, self.rng)

        if self.screener is not None and self.screener.active:
            screen = self.screener.classify(samples)
            self._passes += screen.screened_pass
            self._n += screen.n_screened
            if self.ledger is not None:
                self.ledger.record_screened(screen.n_screened)
            samples = samples[screen.simulate_mask]

        if samples.shape[0] == 0:
            return None
        return PendingRefinement(self, samples, category or self.category)

    def absorb(
        self,
        samples: np.ndarray,
        performance: np.ndarray,
        margins: np.ndarray | None = None,
        n_passed: int | None = None,
    ) -> YieldEstimate:
        """Incorporate simulated ``performance`` rows for ``samples``.

        ``margins`` and ``n_passed`` may be supplied when the caller already
        computed them on a fused block (one vectorized op across all
        candidates of a round); otherwise they are derived here.
        """
        if margins is None:
            margins = self.problem.specs.margins(performance)
        if n_passed is None:
            n_passed = int(np.sum(np.all(margins >= 0.0, axis=1)))
        self._passes += n_passed
        self._n += samples.shape[0]
        self._n_simulated += samples.shape[0]
        if self.screener is not None:
            self.screener.update(samples, margins)
        return self.estimate

    def refine(self, n_additional: int, category: str | None = None) -> YieldEstimate:
        """Add ``n_additional`` samples to the estimate.

        Draws fresh samples, lets the screener resolve the certain ones, and
        simulates the border band locally; returns the updated estimate.
        Engines fuse the same two halves (:meth:`prepare` / :meth:`absorb`)
        across candidates instead.
        """
        pending = self.prepare(n_additional, category)
        if pending is None:
            return self.estimate

        # The MC hot path goes through the batched protocol: evaluators
        # with a vectorized ``evaluate_batch`` resolve the whole sample
        # block in one array op.  Duck-typed problems that predate the
        # protocol keep working through plain ``simulate``.
        evaluate_batch = getattr(self.problem, "evaluate_batch", None)
        if evaluate_batch is not None:
            performance = evaluate_batch(
                self.x[None, :], pending.samples, self.ledger, pending.category
            )[0]
        else:
            performance = self.problem.simulate(
                self.x, pending.samples, self.ledger, pending.category
            )
        return self.absorb(pending.samples, performance)

    def refine_to(self, n_target: int, category: str | None = None) -> YieldEstimate:
        """Refine until the estimate incorporates at least ``n_target``."""
        missing = n_target - self._n
        if missing > 0:
            self.refine(missing, category)
        return self.estimate
