"""Monte-Carlo yield estimation.

* :class:`YieldEstimate` — a point estimate with sampling-error measures.
* :class:`CandidateYieldState` — incremental per-candidate estimation: OCBA
  repeatedly refines candidates by small sample batches, optionally screened
  by acceptance sampling.
* :func:`reference_yield` — the high-N verification estimate the paper uses
  to score accuracy (50 000 samples; charged to the excluded ``reference``
  ledger category).

Per-candidate estimator implementations are resolved by name through the
:data:`ESTIMATORS` registry (``MOHECOConfig.estimator``); a replacement must
accept the :class:`CandidateYieldState` constructor signature and expose its
``refine``/``refine_to``/``value``/``std``/``estimate`` surface, plus the
``prepare``/``absorb`` halves the execution engines
(:mod:`repro.engine`) use to fuse refinement rounds across candidates.
"""

from repro.registry import Registry
from repro.yieldsim.estimator import (
    CandidateYieldState,
    PendingRefinement,
    YieldEstimate,
)
from repro.yieldsim.reference import reference_yield

__all__ = [
    "YieldEstimate",
    "CandidateYieldState",
    "PendingRefinement",
    "ESTIMATORS",
    "make_estimator",
    "reference_yield",
]

#: Name -> per-candidate yield estimator class.
ESTIMATORS: Registry = Registry("yield estimator")
ESTIMATORS.register("incremental", CandidateYieldState)
ESTIMATORS.register("mc", CandidateYieldState)


def make_estimator(kind: str, *args, **kwargs) -> CandidateYieldState:
    """Build the per-candidate yield estimator registered under ``kind``."""
    return ESTIMATORS.create(kind, *args, **kwargs)
