"""Monte-Carlo yield estimation.

* :class:`YieldEstimate` — a point estimate with sampling-error measures.
* :class:`CandidateYieldState` — incremental per-candidate estimation: OCBA
  repeatedly refines candidates by small sample batches, optionally screened
  by acceptance sampling.
* :func:`reference_yield` — the high-N verification estimate the paper uses
  to score accuracy (50 000 samples; charged to the excluded ``reference``
  ledger category).
"""

from repro.yieldsim.estimator import CandidateYieldState, YieldEstimate
from repro.yieldsim.reference import reference_yield

__all__ = ["YieldEstimate", "CandidateYieldState", "reference_yield"]
