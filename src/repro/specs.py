"""Performance specifications and pass/fail semantics.

A specification is a one-sided bound on a named performance metric, e.g.
``A0 >= 70 dB`` or ``power <= 1.07 mW``.  A :class:`SpecSet` groups the
specifications of one sizing problem and provides vectorised pass/fail and
constraint-violation evaluation over performance matrices.

Conventions
-----------
* Performance matrices have shape ``(n_samples, n_metrics)`` with columns in
  the order of ``SpecSet.metric_names``.
* ``margin`` is signed slack: positive means the spec is met, negative means
  violated.  Margins are normalised by a per-spec scale so that violations of
  different metrics (dB vs mW) are comparable when aggregated — this feeds
  Deb's constraint-violation selection rule.
* The yield indicator of the paper, J(x, xi) in {0, 1}, is
  ``SpecSet.passes`` applied to one sample's performance row.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Spec", "SpecSet"]

_VALID_KINDS = (">=", "<=")


@dataclass(frozen=True)
class Spec:
    """One one-sided performance specification.

    Parameters
    ----------
    name:
        Metric name; must match a column produced by the circuit evaluator.
    kind:
        ``">="`` for lower bounds (gain, swing) or ``"<="`` for upper bounds
        (power, area, offset).
    bound:
        The bound, in the same unit the evaluator reports the metric in.
    unit:
        Human-readable unit for table rendering only.
    scale:
        Normalisation used for constraint violations.  Defaults to
        ``|bound|`` (or 1 for zero bounds), which keeps violations
        dimensionless and O(1) regardless of the metric's physical unit.
    """

    name: str
    kind: str
    bound: float
    unit: str = ""
    scale: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise ValueError(f"spec kind must be one of {_VALID_KINDS}, got {self.kind!r}")
        if self.scale is not None and self.scale <= 0:
            raise ValueError(f"spec scale must be positive, got {self.scale}")

    @property
    def effective_scale(self) -> float:
        """Scale used to normalise margins; never zero."""
        if self.scale is not None:
            return self.scale
        if self.bound != 0.0:
            return abs(self.bound)
        return 1.0

    def margin(self, value):
        """Signed normalised slack of ``value`` against this spec.

        Positive = pass.  Works on scalars and arrays.
        """
        value = np.asarray(value, dtype=float)
        if self.kind == ">=":
            raw = value - self.bound
        else:
            raw = self.bound - value
        out = raw / self.effective_scale
        if out.ndim == 0:
            return float(out)
        return out

    def passes(self, value):
        """Boolean pass/fail of ``value`` against this spec."""
        value = np.asarray(value, dtype=float)
        if self.kind == ">=":
            out = value >= self.bound
        else:
            out = value <= self.bound
        if out.ndim == 0:
            return bool(out)
        return out

    def __str__(self) -> str:
        unit = f" {self.unit}" if self.unit else ""
        return f"{self.name} {self.kind} {self.bound:g}{unit}"


@dataclass
class SpecSet:
    """An ordered collection of :class:`Spec` objects.

    The ordering defines the column layout of performance matrices.
    """

    specs: list[Spec] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate spec names: {names}")

    # -- introspection ----------------------------------------------------
    @property
    def metric_names(self) -> list[str]:
        """Column order for performance matrices."""
        return [spec.name for spec in self.specs]

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __getitem__(self, name: str) -> Spec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def index_of(self, name: str) -> int:
        """Column index of metric ``name``."""
        for i, spec in enumerate(self.specs):
            if spec.name == name:
                return i
        raise KeyError(name)

    # -- vectorised evaluation --------------------------------------------
    def _as_matrix(self, performance) -> np.ndarray:
        matrix = np.asarray(performance, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix[None, :]
        if matrix.shape[1] != len(self.specs):
            raise ValueError(
                f"performance matrix has {matrix.shape[1]} columns, "
                f"spec set has {len(self.specs)} specs"
            )
        return matrix

    def margins(self, performance) -> np.ndarray:
        """Normalised signed margins, shape ``(n_samples, n_specs)``.

        NaN performance values (numerically invalid designs) map to a large
        negative margin so they always fail and carry a large violation.
        """
        matrix = self._as_matrix(performance)
        margins = np.empty_like(matrix)
        for j, spec in enumerate(self.specs):
            margins[:, j] = spec.margin(matrix[:, j])
        margins = np.where(np.isnan(margins), -1e6, margins)
        return margins

    def passes(self, performance) -> np.ndarray:
        """Per-sample pass indicator J(x, xi), shape ``(n_samples,)``."""
        return np.all(self.margins(performance) >= 0.0, axis=1)

    def violation(self, performance) -> np.ndarray:
        """Aggregate constraint violation per sample (0 = feasible).

        The sum of negative normalised margins, as used by selection-based
        constraint handling (Deb 2000): feasible points have violation 0,
        infeasible points compare by total violation.
        """
        margins = self.margins(performance)
        return np.sum(np.where(margins < 0.0, -margins, 0.0), axis=1)

    def worst_margin(self, performance) -> np.ndarray:
        """The most critical (smallest) normalised margin per sample."""
        return np.min(self.margins(performance), axis=1)

    def describe(self) -> str:
        """Multi-line human-readable listing of the specifications."""
        return "\n".join(str(spec) for spec in self.specs)
