"""Precision-weighted fusion of per-rung yield history.

A candidate climbing the ladder accumulates pass/total *segments*, one
per rung it survived.  All segments estimate the same Bernoulli yield
(same design, same MC distribution), but at very different sample counts
— a 500-sample final rung says far more than a 19-sample opening rung.
Fusing them with inverse-variance (precision) weights::

    w_j = n_j / max(p_j * (1 - p_j), floor)
    fused = sum_j w_j * p_j / sum_j w_j

down-weights noisy low-fidelity history the way the MFES-style surrogate
fusion weights low-fidelity models, while staying a pure closed form —
deterministic, engine-invariant, and cheap enough to run per rung.

The fused value drives *ranking* (who gets promoted up the ladder); the
candidate's cumulative estimate (``CandidateYieldState.value``, the plain
pooled ratio) remains the selection fitness and the reported yield, so
paper-facing numbers never depend on the fusion rule.
"""

from __future__ import annotations

__all__ = ["RungSegment", "fuse_segments"]

from dataclasses import dataclass

#: Same variance floor the yield estimator uses for 0 %/100 % estimates.
_VARIANCE_FLOOR = 1e-4


@dataclass(frozen=True)
class RungSegment:
    """One rung's contribution to a candidate's yield history."""

    #: Samples incorporated during the rung (simulated + screened).
    n: int
    #: How many of them passed every spec.
    passes: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"segment needs n >= 1, got {self.n}")
        if not 0 <= self.passes <= self.n:
            raise ValueError(
                f"passes must be in [0, {self.n}], got {self.passes}"
            )

    @property
    def value(self) -> float:
        """The segment's own yield estimate."""
        return self.passes / self.n

    @property
    def precision(self) -> float:
        """Inverse variance of the segment estimate: n / (p(1-p) floored)."""
        p = self.value
        return self.n / max(p * (1.0 - p), _VARIANCE_FLOOR)

    def to_dict(self) -> dict:
        """JSON-compatible form (recorded on the fidelity trace)."""
        return {"n": self.n, "passes": self.passes}


def fuse_segments(segments: list[RungSegment]) -> float:
    """Precision-weighted yield estimate across a candidate's rungs.

    Returns ``0.0`` for an empty history (matching the estimator's
    convention for unsampled candidates).  With a single segment the
    fused value equals the segment's own estimate; weights are computed
    with floored variances so degenerate 0 %/100 % segments stay finite.
    """
    if not segments:
        return 0.0
    total_weight = 0.0
    weighted = 0.0
    for segment in segments:
        weight = segment.precision
        total_weight += weight
        weighted += weight * segment.value
    return weighted / total_weight
