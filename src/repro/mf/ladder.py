"""Hyperband-style fidelity ladders over the Monte-Carlo sample count.

The paper treats the stage-2 sample count ``n_max`` as the single
evaluation fidelity: every surviving candidate pays full-price
Monte-Carlo from its first pilot.  A :class:`FidelityLadder` turns that
one fidelity into a geometric rung schedule ``r, r*eta, ..., R`` with the
standard successive-halving bracket arithmetic (MBHB/Hyperband)::

    s_max = floor(log_eta(R / r_min))
    bracket s has rungs k = 0..s with fidelity r_{s,k} = ceil(R * eta^(k-s))
    rung k evaluates m_k members; rung k+1 keeps max(1, floor(m_k / eta))

Bracket ``s_max`` is the most aggressive (widest, cheapest first rung);
bracket ``0`` is the degenerate single-rung ladder that evaluates
everyone at ``R`` outright.  With ``brackets > 1`` the driver cycles
through the ``brackets`` most aggressive brackets generation by
generation — Hyperband's hedge against a cheap fidelity that ranks
candidates badly.

The schedule is pure arithmetic over ``(R, r_min, eta, brackets)``: no
RNG, no measurement, no engine state.  Every ladder decision is therefore
bit-identical across execution backends, worker counts and cache states —
the property ``MOHECOResult.fidelity_trace`` asserts in CI.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["FidelityLadder", "MF_PARAM_KEYS"]

#: Keys understood inside ``mf_params`` (RunSpec overrides / CLI --set).
MF_PARAM_KEYS = ("eta", "r_min", "brackets")


def _coerce_positive_int(name: str, value, minimum: int) -> int:
    # bool is an int subclass; `"eta": true` is a mistake, not eta 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


@dataclass(frozen=True)
class FidelityLadder:
    """The rung schedule of one multi-fidelity run.

    Parameters
    ----------
    R:
        Full fidelity — the stage-2 sample count the final rung reaches
        (``MOHECOConfig.n_max``; the paper's ``reference_n`` role).
    r_min:
        Cheapest fidelity the most aggressive bracket may start at
        (default: the OCBA pilot ``n0``).  The actual first rung is
        ``ceil(R * eta^-s_max) >= r_min``.
    eta:
        Geometric spacing and promotion rate: each rung multiplies the
        fidelity by ``eta`` and keeps ``1/eta`` of its members.
    brackets:
        How many of the most aggressive brackets the driver cycles
        through (clamped to the ``s_max + 1`` brackets that exist).
    """

    R: int
    r_min: int
    eta: int = 3
    brackets: int = 1
    #: Deepest bracket index: floor(log_eta(R / r_min)).
    s_max: int = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "R", _coerce_positive_int("R", self.R, 1))
        object.__setattr__(
            self, "r_min", _coerce_positive_int("r_min", self.r_min, 1)
        )
        object.__setattr__(self, "eta", _coerce_positive_int("eta", self.eta, 2))
        object.__setattr__(
            self, "brackets", _coerce_positive_int("brackets", self.brackets, 1)
        )
        if self.r_min > self.R:
            raise ValueError(
                f"r_min ({self.r_min}) must be <= the full fidelity R "
                f"({self.R}); the cheapest rung must at least cover the "
                "pilot samples"
            )
        # floor(log_eta(R/r_min)) without float-log edge cases: largest s
        # with r_min * eta^s <= R.
        s, reach = 0, self.r_min * self.eta
        while reach <= self.R:
            s += 1
            reach *= self.eta
        object.__setattr__(self, "s_max", s)
        object.__setattr__(self, "brackets", min(self.brackets, s + 1))

    @classmethod
    def from_params(
        cls, R: int, r_min_default: int, mf_params: dict | None
    ) -> "FidelityLadder":
        """Build a ladder from an ``mf_params`` override dict.

        ``R`` is the config's ``n_max`` (never overridable here — the
        fidelity ceiling *is* the stage-2 accuracy), ``r_min`` defaults to
        the OCBA pilot ``n0``.  Unknown keys raise ``ValueError`` listing
        the valid ones, same contract as config-field overrides.
        """
        params = dict(mf_params or {})
        unknown = set(params) - set(MF_PARAM_KEYS)
        if unknown:
            raise ValueError(
                f"unknown mf_params key(s) {sorted(unknown)}; valid keys: "
                f"{', '.join(MF_PARAM_KEYS)}"
            )
        return cls(
            R=R,
            r_min=params.get("r_min", r_min_default),
            eta=params.get("eta", 3),
            brackets=params.get("brackets", 1),
        )

    # -- bracket arithmetic ------------------------------------------------
    def bracket_for(self, generation: int) -> int:
        """Bracket index used at ``generation`` (cycles the most
        aggressive ``brackets`` brackets: s_max, s_max-1, ...)."""
        if generation < 0:
            raise ValueError(f"generation must be >= 0, got {generation}")
        return self.s_max - (generation % self.brackets)

    def rung_fidelities(self, s: int) -> list[int]:
        """Per-rung sample counts of bracket ``s``: ``ceil(R * eta^(k-s))``
        for ``k = 0..s``, ending exactly at ``R``."""
        if not 0 <= s <= self.s_max:
            raise ValueError(f"bracket must be in [0, {self.s_max}], got {s}")
        return [math.ceil(self.R * self.eta ** (k - s)) for k in range(s + 1)]

    def survivors(self, members: int) -> int:
        """Members promoted past a rung: ``max(1, floor(members / eta))``."""
        if members < 1:
            raise ValueError(f"members must be >= 1, got {members}")
        return max(1, members // self.eta)

    def member_schedule(self, members: int, s: int) -> list[int]:
        """Member counts at each rung of bracket ``s``, starting wide."""
        schedule = [members]
        for _ in range(s):
            schedule.append(self.survivors(schedule[-1]))
        return schedule

    def to_dict(self) -> dict:
        """JSON-compatible description (recorded on the fidelity trace)."""
        return {
            "R": self.R,
            "r_min": self.r_min,
            "eta": self.eta,
            "brackets": self.brackets,
            "s_max": self.s_max,
        }
