"""Multi-fidelity successive-halving over the Monte-Carlo sample count.

The subsystem behind the ``moheco_mf`` method: Hyperband-style bracket
arithmetic (:class:`~repro.mf.ladder.FidelityLadder`), precision-weighted
cross-rung yield fusion (:func:`~repro.mf.fusion.fuse_segments`), and the
ladder-driven optimizer (:class:`~repro.mf.driver.MultiFidelityMOHECO` /
:func:`~repro.mf.driver.run_multi_fidelity`).
"""

from repro.mf.driver import MultiFidelityMOHECO, run_multi_fidelity
from repro.mf.fusion import RungSegment, fuse_segments
from repro.mf.ladder import MF_PARAM_KEYS, FidelityLadder

__all__ = [
    "FidelityLadder",
    "MF_PARAM_KEYS",
    "RungSegment",
    "fuse_segments",
    "MultiFidelityMOHECO",
    "run_multi_fidelity",
]
