"""Multi-fidelity MOHECO: successive-halving ladders inside the DE loop.

:class:`MultiFidelityMOHECO` replaces the flat stage-1 OCBA pass with a
:class:`~repro.mf.ladder.FidelityLadder` per generation: every feasible
trial enters the bracket's cheap wide rung, each rung dispatches as
**one fused refinement round** through the ordinary engine layer (serial,
process, remote — all unchanged), OCBA allocates *within* a rung
(:func:`~repro.ocba.allocation.rung_allocation`), and the top ``1/eta``
by the precision-weighted cross-rung fusion
(:func:`~repro.mf.fusion.fuse_segments`) climb to the next fidelity.
Survivors of the final rung sit at full stage-2 fidelity (``n_max``), so
the surrounding loop — stage-2 promotion, memetic local search, stopping
rules — runs exactly as in the paper's method.

Every ladder decision (bracket, rung fidelities, gains, fused ranking,
promotions) is recorded on ``MOHECOResult.fidelity_trace``, which is part
of the result *identity*: it must be bit-identical across execution
backends, worker counts and cache states.  That holds by construction —
the schedule is arithmetic over candidate estimates, and estimates are
already engine-invariant (sample generation stays in-parent, per
candidate, on private RNG streams).
"""

from __future__ import annotations

import numpy as np

from repro.core.moheco import MOHECO, MOHECOResult
from repro.core.state import Individual
from repro.mf.fusion import RungSegment, fuse_segments
from repro.mf.ladder import FidelityLadder
from repro.ocba.allocation import rung_allocation
from repro.ocba.sequential import OCBAReport

__all__ = ["MultiFidelityMOHECO", "run_multi_fidelity"]


class MultiFidelityMOHECO(MOHECO):
    """MOHECO with ladder-scheduled stage-1 yield estimation.

    Accepts everything :class:`~repro.core.moheco.MOHECO` accepts, plus
    ``mf_params`` — the ladder knobs ``{"eta", "r_min", "brackets"}``
    (see :meth:`FidelityLadder.from_params`; ``R`` is pinned to the
    config's ``n_max``).
    """

    def __init__(self, problem, config=None, *, mf_params=None, **kwargs) -> None:
        super().__init__(problem, config, **kwargs)
        self.ladder = FidelityLadder.from_params(
            self.config.n_max, self.config.n0, mf_params
        )
        self._fidelity_trace = []
        self._mf_generation = 0

    # -- the ladder replaces the flat OCBA pass (steps 4-7) ------------------
    def _estimate_population(self, individuals: list[Individual]) -> OCBAReport:
        generation = self._mf_generation
        self._mf_generation += 1
        feasible = [ind for ind in individuals if ind.feasible]
        if not feasible:
            self._fidelity_trace.append(
                {
                    "generation": int(generation),
                    "bracket": int(self.ladder.bracket_for(generation)),
                    "rungs": [],
                    "fused": [],
                    "ranking": [],
                }
            )
            return OCBAReport(
                counts=np.zeros(0, dtype=int), estimates=np.zeros(0), rounds=0
            )

        entry, rounds = self._run_ladder(feasible, generation)
        self._fidelity_trace.append(entry)
        self._promote_all(
            [
                ind
                for ind in feasible
                if ind.state.value >= self.config.stage2_threshold
            ]
        )
        return OCBAReport(
            counts=np.array([ind.n_samples for ind in feasible], dtype=int),
            estimates=np.array([ind.yield_value for ind in feasible]),
            rounds=rounds,
        )

    def _run_ladder(
        self, feasible: list[Individual], generation: int
    ) -> tuple[dict, int]:
        """Climb one bracket; returns (trace entry, rung count).

        ``members`` holds indices into ``feasible`` — stable identifiers
        for the trace.  Rung 0 is the flat pilot (everyone raised to the
        opening fidelity); later rungs spend ``m_k * r_k - already_spent``
        OCBA-weighted.  Each rung is exactly one fused engine round.
        """
        ladder = self.ladder
        s = ladder.bracket_for(generation)
        fidelities = ladder.rung_fidelities(s)
        members = list(range(len(feasible)))
        segments: list[list[RungSegment]] = [[] for _ in feasible]
        rung_trace = []

        for k, fidelity in enumerate(fidelities):
            states = [feasible[i].state for i in members]
            before = [state.estimate for state in states]
            counts = np.array([state.n for state in states], dtype=int)
            if k == 0:
                gains = np.maximum(fidelity - counts, 0)
            else:
                # The rung budget raises the *average* member to the rung
                # fidelity; OCBA decides who gets how much of the delta.
                gains = rung_allocation(
                    np.array([state.value for state in states]),
                    np.array([state.std for state in states]),
                    counts,
                    fidelity * len(members),
                )
            if np.any(gains):
                self._refine_round(
                    states, [int(g) for g in gains], category="stage1"
                )
            for index, state, prior in zip(members, states, before):
                now = state.estimate
                if now.n > prior.n:
                    segments[index].append(
                        RungSegment(
                            n=now.n - prior.n, passes=now.passes - prior.passes
                        )
                    )

            fused = {index: fuse_segments(segments[index]) for index in members}
            if k < len(fidelities) - 1:
                keep = ladder.survivors(len(members))
                ranked = sorted(members, key=lambda i: (-fused[i], i))
                promoted = sorted(ranked[:keep])
            else:
                promoted = list(members)
            rung_trace.append(
                {
                    "fidelity": int(fidelity),
                    "members": [int(i) for i in members],
                    "gains": [int(g) for g in gains],
                    "counts": [int(state.n) for state in states],
                    "fused": [float(fused[i]) for i in members],
                    "promoted": [int(i) for i in promoted],
                }
            )
            members = promoted

        final_fused = [fuse_segments(history) for history in segments]
        ranking = sorted(
            range(len(feasible)), key=lambda i: (-final_fused[i], i)
        )
        entry = {
            "generation": int(generation),
            "bracket": int(s),
            "rungs": rung_trace,
            "fused": [float(value) for value in final_fused],
            "ranking": [int(i) for i in ranking],
        }
        return entry, len(fidelities)


def run_multi_fidelity(
    problem,
    config=None,
    *,
    mf_params: dict | None = None,
    ledger=None,
    rng=None,
    callbacks=None,
    engine=None,
    cache=None,
) -> MOHECOResult:
    """Run one multi-fidelity optimization; the ``moheco_mf`` entry point.

    A thin constructor-plus-``run()`` over :class:`MultiFidelityMOHECO`,
    mirroring how the registered methods drive :class:`MOHECO`.  The
    returned result carries the full ladder record on
    ``MOHECOResult.fidelity_trace``.
    """
    optimizer = MultiFidelityMOHECO(
        problem,
        config,
        mf_params=mf_params,
        ledger=ledger,
        rng=rng,
        callbacks=callbacks,
        engine=engine,
        cache=cache,
    )
    return optimizer.run()
