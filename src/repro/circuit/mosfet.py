"""MOSFET device model.

Two views of the same device are provided:

* :class:`MosfetModelCard` — nominal technology parameters of one device
  polarity (the equivalent of a SPICE ``.model`` card).  Includes a full
  large-signal I-V evaluation (cutoff / triode / saturation with
  channel-length modulation and mobility degradation) used by the generic
  MNA DC Newton solver.
* :class:`DeviceArrays` — *effective* per-sample device parameters after
  process variations have been applied by a technology.  All entries are
  NumPy arrays over the Monte-Carlo sample axis, and the bias-point helper
  methods (``vov_for_current``, ``gm``, ``gds`` …) are fully vectorised.
  This is what the fast analytic topology evaluators consume.

Sign conventions: p-channel devices are evaluated with source-referenced
*magnitudes* (``vgs``, ``vds`` >= 0 meaning |VGS|, |VDS|); polarity handling
happens at the netlist/stamping layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["MosfetModelCard", "DeviceArrays", "EPS_OX"]

#: Permittivity of SiO2 [F/m].
EPS_OX = 3.45e-11

#: Smoothing width for the cutoff transition [V]; keeps Newton iterations
#: differentiable through the subthreshold corner.
_VOV_SMOOTH = 5e-3


@dataclass(frozen=True)
class MosfetModelCard:
    """Nominal model parameters for one device polarity.

    Units are SI throughout.

    Parameters
    ----------
    polarity:
        ``"n"`` or ``"p"``.
    vth0:
        Zero-bias threshold-voltage magnitude [V].
    u0:
        Low-field mobility [m^2/(V s)].
    tox:
        Gate-oxide thickness [m].
    ld, wd:
        Lateral diffusion / width reduction per side [m]; effective geometry
        is ``Leff = L - 2*ld``, ``Weff = W - 2*wd``.
    theta:
        Mobility-degradation coefficient [1/V]; ID saturates as
        ``0.5 k vov^2 / (1 + theta vov)``.
    clm:
        Channel-length-modulation length coefficient [m/V];
        ``lambda = clm / Leff``.
    gamma:
        Body-effect coefficient [sqrt(V)].
    phi:
        Surface potential 2*phi_F [V].
    cj, cjsw:
        Junction area [F/m^2] and sidewall [F/m] capacitance densities.
    cgdo, cgso:
        Gate-drain / gate-source overlap capacitance per width [F/m].
    ldiff:
        Source/drain diffusion length [m] used for junction areas.
    nfactor:
        Subthreshold slope factor n (EKV interpolation in DeviceArrays).
    """

    polarity: str
    vth0: float
    u0: float
    tox: float
    ld: float = 0.0
    wd: float = 0.0
    theta: float = 0.0
    clm: float = 0.05e-6
    gamma: float = 0.5
    phi: float = 0.8
    cj: float = 9e-4
    cjsw: float = 2.8e-10
    cgdo: float = 3e-10
    cgso: float = 3e-10
    ldiff: float = 0.5e-6
    nfactor: float = 1.4

    def __post_init__(self) -> None:
        if self.polarity not in ("n", "p"):
            raise ValueError(f"polarity must be 'n' or 'p', got {self.polarity!r}")
        if self.tox <= 0:
            raise ValueError(f"tox must be positive, got {self.tox}")
        if self.u0 <= 0:
            raise ValueError(f"u0 must be positive, got {self.u0}")

    # -- derived ------------------------------------------------------------
    @property
    def cox(self) -> float:
        """Oxide capacitance per area [F/m^2]."""
        return EPS_OX / self.tox

    @property
    def kp(self) -> float:
        """Transconductance parameter u0 * cox [A/V^2]."""
        return self.u0 * self.cox

    def with_overrides(self, **kwargs) -> "MosfetModelCard":
        """Return a copy with some parameters replaced (corner cards)."""
        return replace(self, **kwargs)

    # -- large-signal model (used by the MNA DC solver) ----------------------
    def ids(self, w: float, l: float, vgs, vds, vbs=0.0) -> np.ndarray:
        """Drain current [A] (source-referenced magnitudes for PMOS).

        Vectorised over any broadcastable combination of bias arrays.
        """
        ids, _, _, _ = self.ids_and_derivatives(w, l, vgs, vds, vbs)
        return ids

    def ids_and_derivatives(self, w: float, l: float, vgs, vds, vbs=0.0):
        """Drain current and its partial derivatives w.r.t. (vgs, vds, vbs).

        Returns ``(ids, gm, gds, gmbs)``; all broadcast over the inputs.
        The model is a smoothed Level-1: the effective overdrive is passed
        through a softplus so the current and derivatives stay continuous at
        the cutoff boundary (a requirement for Newton convergence), and
        triode/saturation are blended at ``vds = vov``.

        Negative ``vds`` engages reverse conduction (drain and source swap
        roles, as in SPICE); the returned derivatives remain the partials
        with respect to the *original* source-referenced voltages, so MNA
        stamps need no mode awareness.
        """
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vbs = np.asarray(vbs, dtype=float)

        reverse = vds < 0.0
        if np.any(reverse):
            # Forward part evaluated with clamped vds >= 0.
            f_ids, f_gm, f_gds, f_gmbs = self._forward_ids(
                w, l, np.maximum(vds, 0.0) * 0.0 + vgs, np.maximum(vds, 0.0), vbs
            )
            # Reverse part: swap terminals.  u = vgs - vds (gate to the new
            # source), d = -vds, b = vbs - vds; i_d = -f(u, d, b).
            r_ids, r_gm, r_gds, r_gmbs = self._forward_ids(
                w, l, vgs - vds, -vds, np.minimum(vbs - vds, self.phi - 1e-3)
            )
            ids = np.where(reverse, -r_ids, f_ids)
            gm = np.where(reverse, -r_gm, f_gm)
            gds = np.where(reverse, r_gm + r_gds + r_gmbs, f_gds)
            gmbs = np.where(reverse, -r_gmbs, f_gmbs)
            return ids, gm, gds, gmbs
        return self._forward_ids(w, l, vgs, vds, vbs)

    def _forward_ids(self, w: float, l: float, vgs, vds, vbs):
        """Forward-mode (vds >= 0) current and derivatives."""
        vgs = np.asarray(vgs, dtype=float)
        vds = np.asarray(vds, dtype=float)
        vbs = np.asarray(vbs, dtype=float)

        leff = max(l - 2.0 * self.ld, 1e-9)
        weff = max(w - 2.0 * self.wd, 1e-9)
        beta = self.kp * weff / leff
        lam = self.clm / leff

        # Body effect (vbs is the source-referenced body voltage magnitude;
        # reverse bias increases the threshold).
        sqrt_term = np.sqrt(np.maximum(self.phi - vbs, 1e-6))
        vth = self.vth0 + self.gamma * (sqrt_term - np.sqrt(self.phi))
        dvth_dvbs = 0.5 * self.gamma / sqrt_term

        # Smoothed overdrive: softplus keeps d(ids)/d(vgs) finite in cutoff.
        raw = vgs - vth
        vov = _VOV_SMOOTH * np.logaddexp(0.0, raw / _VOV_SMOOTH)
        dvov_draw = _sigmoid(raw / _VOV_SMOOTH)

        denom = 1.0 + self.theta * vov
        vds_pos = np.maximum(vds, 0.0)

        sat = vds_pos >= vov
        # Saturation: ids = 0.5 beta vov^2 / (1 + theta vov) * (1 + lam vds)
        ids_sat = 0.5 * beta * vov**2 / denom * (1.0 + lam * vds_pos)
        dids_dvov_sat = (
            0.5 * beta * vov * (2.0 + self.theta * vov) / denom**2 * (1.0 + lam * vds_pos)
        )
        gds_sat = 0.5 * beta * vov**2 / denom * lam

        # Triode: ids = beta (vov - vds/2) vds / (1 + theta vov) * (1 + lam vds)
        ids_tri = beta * (vov - 0.5 * vds_pos) * vds_pos / denom * (1.0 + lam * vds_pos)
        dids_dvov_tri = (
            beta * vds_pos / denom * (1.0 + lam * vds_pos)
            - self.theta * ids_tri / denom
        )
        gds_tri = (
            beta * (vov - vds_pos) / denom * (1.0 + lam * vds_pos)
            + beta * (vov - 0.5 * vds_pos) * vds_pos / denom * lam
        )

        ids = np.where(sat, ids_sat, ids_tri)
        dids_dvov = np.where(sat, dids_dvov_sat, dids_dvov_tri)
        gds = np.where(sat, gds_sat, gds_tri)

        gm = dids_dvov * dvov_draw
        # vth depends on vbs: d ids / d vbs = -dids/dvov * dvth/dvbs ... with
        # the same smoothing chain rule.
        gmbs = dids_dvov * dvov_draw * dvth_dvbs

        return ids, gm, gds, gmbs


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


#: Thermal voltage kT/q at 300 K [V].
THERMAL_VOLTAGE = 0.02585


class DeviceArrays:
    """Effective device parameters over a Monte-Carlo sample axis.

    Produced by a technology's ``realize`` method; consumed by the analytic
    topology evaluators.  Every attribute is an array of shape
    ``(n_samples,)`` (scalars broadcast fine too).

    The bias-point helpers use an EKV-style all-region interpolation::

        u   = vov / (2 n Vt)
        h   = softplus(u) = ln(1 + exp(u))
        Id  = 2 n beta Vt^2 h^2 / (1 + theta * max(vov, 0))
        gm  = 2 beta Vt h sigmoid(u) / (1 + theta * max(vov, 0))

    which recovers the square law (with mobility degradation) in strong
    inversion and the exponential subthreshold law — hence the physical
    weak-inversion transconductance ceiling ``gm <= Id / (n Vt)`` — in weak
    inversion.  Without that ceiling a sizing optimizer can buy unlimited
    gm at negligible current by inflating W, which removes the power
    tension the paper's example 1 is built around.

    Attributes
    ----------
    vth:
        Effective threshold magnitude [V].
    kp:
        Effective ``u0*cox`` [A/V^2].
    beta:
        ``kp * weff / leff`` [A/V^2].
    lam:
        Channel-length modulation [1/V].
    theta:
        Mobility degradation [1/V].
    weff, leff:
        Effective geometry [m].
    cox:
        Effective oxide capacitance density [F/m^2].
    cj_scale, cg_scale:
        Multiplicative variation factors on junction / overlap capacitances.
    nfactor:
        Subthreshold slope factor n.
    """

    def __init__(
        self,
        card: MosfetModelCard,
        w: float,
        l: float,
        vth: np.ndarray,
        kp: np.ndarray,
        lam: np.ndarray,
        theta: np.ndarray,
        weff: np.ndarray,
        leff: np.ndarray,
        cox: np.ndarray,
        cj_scale: np.ndarray | float = 1.0,
        cg_scale: np.ndarray | float = 1.0,
        gamma: np.ndarray | float | None = None,
        phi: np.ndarray | float | None = None,
    ) -> None:
        self.card = card
        self.w = float(w)
        self.l = float(l)
        self.vth = np.asarray(vth, dtype=float)
        self.kp = np.asarray(kp, dtype=float)
        self.lam = np.asarray(lam, dtype=float)
        self.theta = np.asarray(theta, dtype=float)
        self.weff = np.asarray(weff, dtype=float)
        self.leff = np.asarray(leff, dtype=float)
        self.cox = np.asarray(cox, dtype=float)
        self.cj_scale = np.asarray(cj_scale, dtype=float)
        self.cg_scale = np.asarray(cg_scale, dtype=float)
        self.gamma = np.asarray(card.gamma if gamma is None else gamma, dtype=float)
        self.phi = np.asarray(card.phi if phi is None else phi, dtype=float)
        self.nfactor = float(getattr(card, "nfactor", 1.4))

    # -- derived ------------------------------------------------------------
    @property
    def beta(self) -> np.ndarray:
        """Transconductance factor kp * Weff / Leff [A/V^2]."""
        return self.kp * self.weff / self.leff

    # -- bias-point quantities (current-driven, EKV all-region) ----------------
    def _nvt(self) -> float:
        """2 n Vt, the EKV interpolation scale [V]."""
        return 2.0 * self.nfactor * THERMAL_VOLTAGE

    def current_for_vov(self, vov) -> np.ndarray:
        """Drain current at overdrive ``vov = vgs - vth`` (any region) [A]."""
        vov = np.asarray(vov, dtype=float)
        scale = self._nvt()
        h = np.logaddexp(0.0, vov / scale)  # softplus
        denom = 1.0 + self.theta * np.maximum(vov, 0.0)
        return 0.5 * self.beta * scale**2 * h**2 / denom

    def vov_for_current(self, ids) -> np.ndarray:
        """Overdrive ``vgs - vth`` that carries ``ids`` in saturation [V].

        Inverts the EKV interpolation (negative values = weak inversion).
        The mobility-degradation factor is handled by a short fixed-point
        iteration (it converges fast because theta*vov << 1 + theta*vov).
        """
        ids = np.maximum(np.asarray(ids, dtype=float), 1e-15)
        scale = self._nvt()
        vov = np.zeros_like(ids + self.beta)  # broadcast shape
        for _ in range(8):
            q = np.sqrt(ids * (1.0 + self.theta * np.maximum(vov, 0.0))
                        / (0.5 * self.beta * scale**2))
            # invert softplus: u = ln(exp(q) - 1), guarded for large q
            vov = scale * np.where(q > 30.0, q, np.log(np.expm1(np.minimum(q, 30.0))))
        return vov

    def gm(self, ids) -> np.ndarray:
        """Transconductance at drain current ``ids`` (saturation) [S].

        Exact derivative of :meth:`current_for_vov` at the operating
        overdrive, including the mobility-degradation term.  Strong
        inversion: ~ beta*vov/n degraded by theta; weak inversion:
        Id/(n*Vt) — the physical ceiling.
        """
        ids = np.asarray(ids, dtype=float)
        vov = self.vov_for_current(ids)
        scale = self._nvt()
        u = vov / scale
        h = np.logaddexp(0.0, u)
        sig = _sigmoid(np.asarray(u, dtype=float))
        denom = 1.0 + self.theta * np.maximum(vov, 0.0)
        base = self.beta * scale * h * sig / denom
        # d/dvov of the 1/(1+theta*vov) factor (active above threshold).
        correction = np.where(
            vov > 0.0,
            0.5 * self.beta * scale**2 * h**2 * self.theta / denom**2,
            0.0,
        )
        return base - correction

    def gds(self, ids) -> np.ndarray:
        """Output conductance lambda * ids [S]."""
        return self.lam * np.asarray(ids, dtype=float)

    def ro(self, ids) -> np.ndarray:
        """Output resistance 1/gds [ohm]."""
        return 1.0 / np.maximum(self.gds(ids), 1e-15)

    def vdsat(self, ids) -> np.ndarray:
        """Saturation voltage at current ``ids`` [V].

        Approaches the overdrive in strong inversion and floors near
        ~3.5 Vt in weak inversion (EKV-style blend).
        """
        vov = self.vov_for_current(ids)
        floor = 3.5 * THERMAL_VOLTAGE
        return np.sqrt(np.maximum(vov, 0.0) ** 2 + floor**2)

    def vgs_for_current(self, ids) -> np.ndarray:
        """Gate-source magnitude needed to carry ``ids`` [V]."""
        return self.vth + self.vov_for_current(ids)

    def vth_at(self, vsb) -> np.ndarray:
        """Threshold with body effect at source-bulk reverse bias ``vsb`` [V].

        ``vth_at(0)`` equals :attr:`vth`; cascode devices whose sources sit
        above the bulk rail see the increase.
        """
        vsb = np.maximum(np.asarray(vsb, dtype=float), 0.0)
        return self.vth + self.gamma * (
            np.sqrt(self.phi + vsb) - np.sqrt(self.phi)
        )

    def gmbs(self, ids, vsb=0.0) -> np.ndarray:
        """Bulk transconductance at current ``ids`` and bias ``vsb`` [S]."""
        vsb = np.maximum(np.asarray(vsb, dtype=float), 0.0)
        chi = self.gamma / (2.0 * np.sqrt(self.phi + vsb))
        return chi * self.gm(ids)

    # -- capacitances ---------------------------------------------------------
    def cgs(self) -> np.ndarray:
        """Gate-source capacitance (channel 2/3 CoxWL + overlap) [F]."""
        channel = (2.0 / 3.0) * self.weff * self.leff * self.cox
        overlap = self.card.cgso * self.weff * self.cg_scale
        return channel + overlap

    def cgd(self) -> np.ndarray:
        """Gate-drain overlap capacitance [F]."""
        return self.card.cgdo * self.weff * self.cg_scale

    def cdb(self) -> np.ndarray:
        """Drain-bulk junction capacitance [F] (zero-bias, conservative)."""
        area = self.weff * self.card.ldiff
        perimeter = 2.0 * (self.weff + self.card.ldiff)
        return (self.card.cj * area + self.card.cjsw * perimeter) * self.cj_scale

    def csb(self) -> np.ndarray:
        """Source-bulk junction capacitance [F]."""
        return self.cdb()

    def area(self) -> float:
        """Drawn gate area W*L [m^2] (for the area spec)."""
        return self.w * self.l
