"""Modified nodal analysis: assembly and DC Newton solution.

The assembler walks a :class:`~repro.circuit.netlist.Circuit`, assigns node
and branch indices, and builds dense matrices (analog blocks are small, so
dense LU via LAPACK is both simpler and faster than sparse here).

DC solution uses damped Newton iteration on the companion-model linearised
system, with a gmin-stepping fallback for stubborn bias points — the same
strategy SPICE uses, scaled down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.elements import NodeMap, VoltageSource
from repro.circuit.netlist import Circuit

__all__ = ["MNAAssembler", "DCSolution", "solve_dc", "ConvergenceError"]


class ConvergenceError(RuntimeError):
    """Raised when the DC Newton iteration fails to converge."""


@dataclass
class DCSolution:
    """Result of a DC operating-point solve.

    Attributes
    ----------
    x:
        Solution vector (node voltages then source branch currents).
    nodemap:
        Index mapping used to interpret ``x``.
    op:
        Per-MOSFET operating-point records (name -> record).
    iterations:
        Newton iterations used.
    """

    x: np.ndarray
    nodemap: NodeMap
    op: dict[str, object]
    iterations: int

    def voltage(self, node: str) -> float:
        """Voltage of ``node`` [V]."""
        return self.nodemap.voltage(self.x, node)

    def branch_current(self, source: VoltageSource) -> float:
        """Current through a voltage source [A] (positive into the + node)."""
        if source.branch_index is None:
            raise ValueError(f"source {source.name} has no branch index")
        return float(self.x[self.nodemap.n_nodes + source.branch_index])

    def saturation_report(self) -> dict[str, bool]:
        """Per-MOSFET saturation flags (vds >= vdsat)."""
        return {name: record.saturated for name, record in self.op.items()}


class MNAAssembler:
    """Builds MNA systems for one circuit."""

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        branch = 0
        for element in circuit.elements:
            if element.n_branches:
                element.branch_index = branch
                branch += element.n_branches
        self.nodemap = NodeMap(circuit.node_names(), branch)

    # -- DC ---------------------------------------------------------------
    def dc_system(self, x: np.ndarray, gmin: float) -> tuple[np.ndarray, np.ndarray]:
        """Linearised DC system ``A x_new = b`` around estimate ``x``."""
        n = self.nodemap.size
        a = np.zeros((n, n))
        b = np.zeros(n)
        for element in self.circuit.elements:
            element.stamp_dc(a, b, x, self.nodemap)
        # gmin to ground on every node keeps the matrix non-singular when a
        # node would otherwise float (e.g. between two capacitors).
        for i in range(self.nodemap.n_nodes):
            a[i, i] += gmin
        return a, b

    # -- AC ----------------------------------------------------------------
    def ac_system(
        self, op: dict[str, object]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Small-signal matrices (G, C) and AC excitation vector.

        ``op`` holds the MOSFET operating points from a DC solve.
        """
        n = self.nodemap.size
        g = np.zeros((n, n))
        c = np.zeros((n, n))
        b_ac = np.zeros(n)
        for element in self.circuit.elements:
            element.stamp_ac(g, c, b_ac, op, self.nodemap)
        for i in range(self.nodemap.n_nodes):
            g[i, i] += 1e-12
        return g, c, b_ac

    def ac_system_batch(
        self, ops
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stacked small-signal systems for many operating points.

        ``ops`` is a sequence of per-element operating-point mappings (one
        per Monte-Carlo sample).  Returns ``(G, C, b_ac)`` with ``G`` and
        ``C`` stacked as ``(len(ops), dim, dim)`` tensors sharing one
        excitation vector — the shape :class:`~repro.circuit.ac.BatchACAnalysis`
        solves in a single batched dispatch.  The AC excitation must not
        depend on the operating point (it never does: sources stamp fixed
        ``ac`` values), which is asserted here.
        """
        ops = list(ops)
        if not ops:
            raise ValueError("ac_system_batch needs at least one operating point")
        n = self.nodemap.size
        g = np.zeros((len(ops), n, n))
        c = np.zeros((len(ops), n, n))
        b_ac = np.zeros(n)
        for s, op in enumerate(ops):
            b_s = b_ac if s == 0 else np.zeros(n)
            for element in self.circuit.elements:
                element.stamp_ac(g[s], c[s], b_s, op, self.nodemap)
            if s > 0 and not np.array_equal(b_s, b_ac):
                raise ValueError(
                    "AC excitation differs between operating points; stacked "
                    "systems must share one RHS"
                )
        g[:, : self.nodemap.n_nodes, : self.nodemap.n_nodes] += (
            1e-12 * np.eye(self.nodemap.n_nodes)
        )
        return g, c, b_ac


def solve_dc(
    circuit: Circuit,
    x0: np.ndarray | None = None,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
    damping: float = 1.0,
) -> DCSolution:
    """Solve the DC operating point of ``circuit``.

    Damped Newton iteration; if plain Newton fails, retries with gmin
    stepping (start with a large conductance to ground everywhere, then relax
    it decade by decade, warm-starting each stage).

    Raises
    ------
    ConvergenceError
        If no stage converges.
    """
    assembler = MNAAssembler(circuit)

    x = _newton(assembler, x0, max_iterations, tolerance, damping, gmin=1e-12)
    if x is None:
        x = _gmin_stepping(assembler, x0, max_iterations, tolerance, damping)
    if x is None:
        raise ConvergenceError(
            f"DC operating point of {circuit.name!r} did not converge"
        )

    op = {
        m.name: m.operating_point(x, assembler.nodemap) for m in circuit.mosfets()
    }
    return DCSolution(x=x, nodemap=assembler.nodemap, op=op, iterations=max_iterations)


def _newton(
    assembler: MNAAssembler,
    x0: np.ndarray | None,
    max_iterations: int,
    tolerance: float,
    damping: float,
    gmin: float,
) -> np.ndarray | None:
    """Voltage-limited Newton loop; returns the solution or None on failure.

    ``damping`` scales the step once the iteration is inside the voltage
    limit; 1.0 is plain Newton, smaller values trade speed for robustness.
    """
    x = np.zeros(assembler.nodemap.size) if x0 is None else np.array(x0, dtype=float)
    max_step = 0.5  # volts per iteration, SPICE-style voltage limiting

    for _ in range(max_iterations):
        a, b = assembler.dc_system(x, gmin)
        try:
            x_new = np.linalg.solve(a, b)
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(x_new)):
            return None
        step = x_new - x
        nv = assembler.nodemap.n_nodes
        norm = np.max(np.abs(step[:nv])) if nv else 0.0
        if norm > max_step:
            # Scale the whole step so voltages move at most ``max_step``.
            x = x + step * (max_step / norm)
        else:
            x = x + damping * step
            if damping * norm < tolerance:
                return x
    return None


def _gmin_stepping(
    assembler: MNAAssembler,
    x0: np.ndarray | None,
    max_iterations: int,
    tolerance: float,
    damping: float,
) -> np.ndarray | None:
    """Classic gmin continuation: solve easy (leaky) problems first."""
    x = np.zeros(assembler.nodemap.size) if x0 is None else np.array(x0, dtype=float)
    for exponent in range(3, 13):
        gmin = 10.0 ** (-exponent)
        x_next = _newton(assembler, x, max_iterations, tolerance, damping, gmin)
        if x_next is None:
            return None
        x = x_next
    return x
