"""Circuit elements and their MNA stamps.

Every element knows how to stamp itself into

* the **DC Newton** system (``stamp_dc``): a linearised companion model
  around the present solution estimate, and
* the **AC small-signal** system (``stamp_ac``): conductance matrix ``G``,
  capacitance matrix ``C`` and the AC excitation vector, evaluated at a
  previously-solved operating point.

Matrix layout: node voltages first (ground eliminated), then one branch
current per voltage source.  ``NodeMap`` resolves names to indices; ground
maps to ``None`` and its stamps are dropped.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.circuit.mosfet import MosfetModelCard

__all__ = [
    "Element",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "VCCS",
    "Mosfet",
    "NodeMap",
]

GROUND_NAMES = ("0", "gnd", "GND", "vss!")


class NodeMap:
    """Maps node names to matrix indices; ground nodes map to ``None``."""

    def __init__(self, nodes: list[str], n_branches: int) -> None:
        self._index: dict[str, int | None] = {}
        i = 0
        for node in nodes:
            if node in GROUND_NAMES:
                self._index[node] = None
            else:
                self._index[node] = i
                i += 1
        self.n_nodes = i
        self.n_branches = n_branches
        self.size = self.n_nodes + n_branches

    def __getitem__(self, node: str) -> int | None:
        return self._index[node]

    def names(self) -> list[str]:
        """Non-ground node names ordered by index."""
        ordered = [None] * self.n_nodes
        for name, idx in self._index.items():
            if idx is not None:
                ordered[idx] = name
        return ordered

    # -- stamp helpers ------------------------------------------------------
    def add(self, matrix: np.ndarray, row: int | None, col: int | None, value) -> None:
        """Add ``value`` at (row, col), dropping ground entries."""
        if row is None or col is None:
            return
        matrix[row, col] += value

    def add_rhs(self, rhs: np.ndarray, row: int | None, value) -> None:
        """Add ``value`` to the RHS at ``row``, dropping ground."""
        if row is None:
            return
        rhs[row] += value

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Node voltage from a solution vector (ground = 0)."""
        idx = self._index[node]
        if idx is None:
            return 0.0
        return float(x[idx])


class Element(ABC):
    """Base class for all circuit elements."""

    #: Number of extra branch-current unknowns this element introduces.
    n_branches = 0

    def __init__(self, name: str, nodes: tuple[str, ...]) -> None:
        self.name = name
        self.nodes = nodes
        #: Assigned by the assembler: index of the first branch unknown.
        self.branch_index: int | None = None

    @abstractmethod
    def stamp_dc(
        self, a: np.ndarray, b: np.ndarray, x: np.ndarray, nodemap: NodeMap
    ) -> None:
        """Stamp the linearised DC companion model around solution ``x``."""

    def stamp_ac(
        self,
        g: np.ndarray,
        c: np.ndarray,
        b_ac: np.ndarray,
        op: "dict[str, dict]",
        nodemap: NodeMap,
    ) -> None:
        """Stamp small-signal conductance/capacitance at operating point.

        Default: linear elements reuse their DC stamp with sources zeroed;
        concrete classes override where that is wrong.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}, nodes={self.nodes})"


class Resistor(Element):
    """Linear resistor between two nodes."""

    def __init__(self, name: str, n1: str, n2: str, resistance: float) -> None:
        if resistance <= 0:
            raise ValueError(f"resistance must be positive, got {resistance}")
        super().__init__(name, (n1, n2))
        self.resistance = float(resistance)

    def _stamp_conductance(self, matrix: np.ndarray, nodemap: NodeMap) -> None:
        g = 1.0 / self.resistance
        i, j = nodemap[self.nodes[0]], nodemap[self.nodes[1]]
        nodemap.add(matrix, i, i, g)
        nodemap.add(matrix, j, j, g)
        nodemap.add(matrix, i, j, -g)
        nodemap.add(matrix, j, i, -g)

    def stamp_dc(self, a, b, x, nodemap) -> None:
        self._stamp_conductance(a, nodemap)

    def stamp_ac(self, g, c, b_ac, op, nodemap) -> None:
        self._stamp_conductance(g, nodemap)


class Capacitor(Element):
    """Linear capacitor: open at DC, stamps C in AC analysis."""

    def __init__(self, name: str, n1: str, n2: str, capacitance: float) -> None:
        if capacitance < 0:
            raise ValueError(f"capacitance must be non-negative, got {capacitance}")
        super().__init__(name, (n1, n2))
        self.capacitance = float(capacitance)

    def stamp_dc(self, a, b, x, nodemap) -> None:
        pass  # open circuit at DC

    def stamp_ac(self, g, c, b_ac, op, nodemap) -> None:
        i, j = nodemap[self.nodes[0]], nodemap[self.nodes[1]]
        nodemap.add(c, i, i, self.capacitance)
        nodemap.add(c, j, j, self.capacitance)
        nodemap.add(c, i, j, -self.capacitance)
        nodemap.add(c, j, i, -self.capacitance)


class CurrentSource(Element):
    """Independent current source; current flows from ``n_from`` to ``n_to``
    through the source (i.e. it injects current into ``n_to``)."""

    def __init__(
        self, name: str, n_from: str, n_to: str, dc: float, ac: float = 0.0
    ) -> None:
        super().__init__(name, (n_from, n_to))
        self.dc = float(dc)
        self.ac = float(ac)

    def stamp_dc(self, a, b, x, nodemap) -> None:
        i, j = nodemap[self.nodes[0]], nodemap[self.nodes[1]]
        nodemap.add_rhs(b, i, -self.dc)
        nodemap.add_rhs(b, j, self.dc)

    def stamp_ac(self, g, c, b_ac, op, nodemap) -> None:
        i, j = nodemap[self.nodes[0]], nodemap[self.nodes[1]]
        nodemap.add_rhs(b_ac, i, -self.ac)
        nodemap.add_rhs(b_ac, j, self.ac)


class VoltageSource(Element):
    """Independent voltage source with a branch-current unknown."""

    n_branches = 1

    def __init__(
        self, name: str, n_plus: str, n_minus: str, dc: float, ac: float = 0.0
    ) -> None:
        super().__init__(name, (n_plus, n_minus))
        self.dc = float(dc)
        self.ac = float(ac)

    def _stamp_branch(self, matrix: np.ndarray, nodemap: NodeMap) -> int:
        k = nodemap.n_nodes + self.branch_index
        p, m = nodemap[self.nodes[0]], nodemap[self.nodes[1]]
        nodemap.add(matrix, p, k, 1.0)
        nodemap.add(matrix, m, k, -1.0)
        nodemap.add(matrix, k, p, 1.0)
        nodemap.add(matrix, k, m, -1.0)
        return k

    def stamp_dc(self, a, b, x, nodemap) -> None:
        k = self._stamp_branch(a, nodemap)
        b[k] += self.dc

    def stamp_ac(self, g, c, b_ac, op, nodemap) -> None:
        k = self._stamp_branch(g, nodemap)
        b_ac[k] += self.ac


class VCCS(Element):
    """Voltage-controlled current source: i(out_p->out_n) = gm * v(in_p,in_n).

    The current is injected into ``out_p`` and drawn from ``out_n`` when the
    controlling voltage is positive, following the SPICE ``G`` element
    convention (current flows out_p -> out_n inside the source).
    """

    def __init__(
        self, name: str, out_p: str, out_n: str, in_p: str, in_n: str, gm: float
    ) -> None:
        super().__init__(name, (out_p, out_n, in_p, in_n))
        self.gm = float(gm)

    def _stamp(self, matrix: np.ndarray, nodemap: NodeMap) -> None:
        op_, on, ip, in_ = (nodemap[n] for n in self.nodes)
        nodemap.add(matrix, op_, ip, self.gm)
        nodemap.add(matrix, op_, in_, -self.gm)
        nodemap.add(matrix, on, ip, -self.gm)
        nodemap.add(matrix, on, in_, self.gm)

    def stamp_dc(self, a, b, x, nodemap) -> None:
        self._stamp(a, nodemap)

    def stamp_ac(self, g, c, b_ac, op, nodemap) -> None:
        self._stamp(g, nodemap)


@dataclass
class _MosOperatingPoint:
    """Bias-dependent small-signal data of one MOSFET."""

    ids: float
    gm: float
    gds: float
    gmbs: float
    vgs: float
    vds: float
    vbs: float
    vdsat: float

    @property
    def saturated(self) -> bool:
        """True when the device operates in saturation (vds >= vdsat)."""
        return self.vds >= self.vdsat - 1e-9


class Mosfet(Element):
    """A MOSFET instance: (drain, gate, source, bulk) + model card + W/L.

    PMOS devices are evaluated with source-referenced magnitudes; the sign
    factor cancels in the conductance stamps, so NMOS and PMOS stamp
    identically apart from the sign of the companion current.
    """

    def __init__(
        self,
        name: str,
        d: str,
        g: str,
        s: str,
        b: str,
        card: MosfetModelCard,
        w: float,
        l: float,
    ) -> None:
        if w <= 0 or l <= 0:
            raise ValueError(f"W and L must be positive, got W={w}, L={l}")
        super().__init__(name, (d, g, s, b))
        self.card = card
        self.w = float(w)
        self.l = float(l)

    # -- bias evaluation -----------------------------------------------------
    def operating_point(self, x: np.ndarray, nodemap: NodeMap) -> _MosOperatingPoint:
        """Evaluate the device at the node voltages in ``x``."""
        vd = nodemap.voltage(x, self.nodes[0])
        vg = nodemap.voltage(x, self.nodes[1])
        vs = nodemap.voltage(x, self.nodes[2])
        vb = nodemap.voltage(x, self.nodes[3])
        sgn = 1.0 if self.card.polarity == "n" else -1.0
        vgs = sgn * (vg - vs)
        vds = sgn * (vd - vs)
        # Source-referenced bulk voltage; clamp forward bias for the sqrt.
        vbs = min(sgn * (vb - vs), self.card.phi - 1e-3)
        ids, gm, gds, gmbs = self.card.ids_and_derivatives(
            self.w, self.l, vgs, vds, vbs
        )
        vov = self.card.vth0  # placeholder, refined below
        # vdsat = overdrive at this bias (smoothed like the model).
        sqrt_term = np.sqrt(max(self.card.phi - vbs, 1e-6))
        vth = self.card.vth0 + self.card.gamma * (sqrt_term - np.sqrt(self.card.phi))
        vov = max(vgs - vth, 0.0)
        return _MosOperatingPoint(
            ids=float(ids),
            gm=float(gm),
            gds=float(gds),
            gmbs=float(gmbs),
            vgs=float(vgs),
            vds=float(vds),
            vbs=float(vbs),
            vdsat=float(vov),
        )

    # -- stamps ---------------------------------------------------------------
    def stamp_dc(self, a, b, x, nodemap) -> None:
        op = self.operating_point(x, nodemap)
        sgn = 1.0 if self.card.polarity == "n" else -1.0
        d, g, s, bk = (nodemap[n] for n in self.nodes)

        # Conductance stamps (sign factors cancel: d(i_d)/dVg = gm, etc.).
        for row, sign_row in ((d, 1.0), (s, -1.0)):
            nodemap.add(a, row, g, sign_row * op.gm)
            nodemap.add(a, row, d, sign_row * op.gds)
            nodemap.add(a, row, bk, sign_row * op.gmbs)
            nodemap.add(a, row, s, -sign_row * (op.gm + op.gds + op.gmbs))

        # Companion current: the part of i_d not explained by the linear term.
        vd = nodemap.voltage(x, self.nodes[0])
        vg = nodemap.voltage(x, self.nodes[1])
        vs = nodemap.voltage(x, self.nodes[2])
        vb = nodemap.voltage(x, self.nodes[3])
        i_d = sgn * op.ids
        linear = (
            op.gm * vg
            + op.gds * vd
            + op.gmbs * vb
            - (op.gm + op.gds + op.gmbs) * vs
        )
        ieq = i_d - linear
        nodemap.add_rhs(b, d, -ieq)
        nodemap.add_rhs(b, s, ieq)

    def stamp_ac(self, g, c, b_ac, op, nodemap) -> None:
        """Small-signal stamp using the stored operating point ``op``.

        ``op`` maps element names to their operating-point records (built by
        the assembler after the DC solve).
        """
        record: _MosOperatingPoint = op[self.name]
        d, gt, s, bk = (nodemap[n] for n in self.nodes)

        for row, sign_row in ((d, 1.0), (s, -1.0)):
            nodemap.add(g, row, gt, sign_row * record.gm)
            nodemap.add(g, row, d, sign_row * record.gds)
            nodemap.add(g, row, bk, sign_row * record.gmbs)
            nodemap.add(g, row, s, -sign_row * (record.gm + record.gds + record.gmbs))

        # Capacitances from geometry (nominal card values).
        leff = max(self.l - 2.0 * self.card.ld, 1e-9)
        weff = max(self.w - 2.0 * self.card.wd, 1e-9)
        cgs = (2.0 / 3.0) * weff * leff * self.card.cox + self.card.cgso * weff
        cgd = self.card.cgdo * weff
        area = weff * self.card.ldiff
        perimeter = 2.0 * (weff + self.card.ldiff)
        cj = self.card.cj * area + self.card.cjsw * perimeter

        for n1, n2, cap in (
            (gt, s, cgs),
            (gt, d, cgd),
            (d, bk, cj),
            (s, bk, cj),
        ):
            nodemap.add(c, n1, n1, cap)
            nodemap.add(c, n2, n2, cap)
            nodemap.add(c, n1, n2, -cap)
            nodemap.add(c, n2, n1, -cap)
