"""Synthetic 0.35 um CMOS technology ("C035").

Used by the paper's example 1 (fully differential folded-cascode amplifier,
3.3 V supply).  The 20 inter-die statistical variables carry the exact names
the paper lists in section 3.2:

    TOXRn, VTH0Rn, DELUON, DELL, DELW, DELRDIFFN, VTH0Rp, DELUOP,
    DELRDIFFP, CJSWRn, CJSWRp, CJRn, CJRp, NPEAKn, NPEAKp, TOXRp,
    LDn, WDn, LDp, WDp

Physical effect of each variable (applied in :meth:`C035Technology.realize`):

=============  ==================================================================
variable       effect
=============  ==================================================================
TOXR{n,p}      multiplies oxide thickness (hence divides Cox and overlap caps)
VTH0R{n,p}     multiplies the zero-bias threshold magnitude
DELUO{N,P}     relative shift of low-field mobility
DELL, DELW     additive global drawn-geometry offsets [m]
DELRDIFF{N,P}  relative shift of S/D diffusion resistance, lumped into the
               mobility-degradation coefficient theta (series-R gm loss)
CJR / CJSWR    multiply junction area / sidewall capacitance densities
NPEAK{n,p}     normalised channel-doping delta: raises VTH, lowers mobility,
               strengthens the body effect
LD{n,p}        additive inter-die lateral-diffusion delta [m]
WD{n,p}        additive inter-die width-reduction delta [m]
=============  ==================================================================

Intra-die mismatch: per-device (dTOX, dVTH0, dLD, dWD) standard-normal
scores, scaled by Pelgrom coefficients sigma = A / sqrt(W*L).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mosfet import EPS_OX, DeviceArrays, MosfetModelCard
from repro.process.distributions import NormalDistribution
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.technology import PelgromCoefficients, Technology

__all__ = ["C035Technology"]

#: Threshold shift per unit of normalised doping delta [V].
_VTH_PER_NPEAK = 0.008
#: Relative mobility loss per unit of normalised doping delta.
_U0_PER_NPEAK = 0.015
#: Relative body-effect increase per unit of normalised doping delta.
_GAMMA_PER_NPEAK = 0.03
#: Fraction of diffusion-resistance variation entering theta.
_THETA_PER_RDIFF = 0.5


class C035Technology(Technology):
    """0.35 um CMOS, 3.3 V, 20 named inter-die statistical variables."""

    name = "C035"
    vdd = 3.3
    lmin = 0.35e-6
    wmin = 0.8e-6

    # -- nominal cards ------------------------------------------------------
    def build_nmos(self) -> MosfetModelCard:
        return MosfetModelCard(
            polarity="n",
            vth0=0.50,
            u0=0.0475,
            tox=7.6e-9,
            ld=30e-9,
            wd=20e-9,
            theta=0.25,
            clm=25e-9,
            gamma=0.58,
            phi=0.84,
            cj=9.3e-4,
            cjsw=2.8e-10,
            cgdo=2.1e-10,
            cgso=2.1e-10,
            ldiff=0.85e-6,
        )

    def build_pmos(self) -> MosfetModelCard:
        return MosfetModelCard(
            polarity="p",
            vth0=0.65,
            u0=0.0148,
            tox=7.6e-9,
            ld=25e-9,
            wd=25e-9,
            theta=0.20,
            clm=35e-9,
            gamma=0.40,
            phi=0.80,
            cj=1.15e-3,
            cjsw=3.2e-10,
            cgdo=2.3e-10,
            cgso=2.3e-10,
            ldiff=0.85e-6,
        )

    # -- statistics ---------------------------------------------------------
    def build_inter_group(self) -> ParameterGroup:
        def normal(name: str, mu: float, sigma: float, doc: str) -> StatisticalParameter:
            return StatisticalParameter(name, NormalDistribution(mu, sigma), doc)

        return ParameterGroup(
            [
                normal("TOXRn", 1.0, 0.015, "NMOS oxide-thickness ratio"),
                normal("VTH0Rn", 1.0, 0.025, "NMOS threshold ratio"),
                normal("DELUON", 0.0, 0.030, "NMOS relative mobility delta"),
                normal("DELL", 0.0, 8e-9, "global drawn-length offset [m]"),
                normal("DELW", 0.0, 12e-9, "global drawn-width offset [m]"),
                normal("DELRDIFFN", 0.0, 0.06, "NMOS diffusion-resistance delta"),
                normal("VTH0Rp", 1.0, 0.025, "PMOS threshold ratio"),
                normal("DELUOP", 0.0, 0.030, "PMOS relative mobility delta"),
                normal("DELRDIFFP", 0.0, 0.06, "PMOS diffusion-resistance delta"),
                normal("CJSWRn", 1.0, 0.04, "NMOS sidewall junction-cap ratio"),
                normal("CJSWRp", 1.0, 0.04, "PMOS sidewall junction-cap ratio"),
                normal("CJRn", 1.0, 0.04, "NMOS area junction-cap ratio"),
                normal("CJRp", 1.0, 0.04, "PMOS area junction-cap ratio"),
                normal("NPEAKn", 0.0, 1.0, "NMOS normalised doping delta"),
                normal("NPEAKp", 0.0, 1.0, "PMOS normalised doping delta"),
                normal("TOXRp", 1.0, 0.015, "PMOS oxide-thickness ratio"),
                normal("LDn", 0.0, 4e-9, "NMOS inter-die lateral-diffusion delta [m]"),
                normal("WDn", 0.0, 6e-9, "NMOS inter-die width-reduction delta [m]"),
                normal("LDp", 0.0, 4e-9, "PMOS inter-die lateral-diffusion delta [m]"),
                normal("WDp", 0.0, 6e-9, "PMOS inter-die width-reduction delta [m]"),
            ]
        )

    def build_pelgrom(self, polarity: str) -> PelgromCoefficients:
        if polarity == "n":
            return PelgromCoefficients(avt=9e-9, atox=4e-9, ald=2e-15, awd=4e-15)
        return PelgromCoefficients(avt=11e-9, atox=4e-9, ald=2e-15, awd=4e-15)

    # -- variation application -------------------------------------------------
    def realize(
        self,
        polarity: str,
        w: float,
        l: float,
        inter: dict[str, np.ndarray],
        scores: np.ndarray,
    ) -> DeviceArrays:
        card = self.card(polarity)
        pel = self.pelgrom[polarity]
        scores = np.atleast_2d(np.asarray(scores, dtype=float))
        z_tox, z_vth, z_ld, z_wd = (scores[:, i] for i in range(4))

        if polarity == "n":
            toxr = inter["TOXRn"]
            vthr = inter["VTH0Rn"]
            deluo = inter["DELUON"]
            delrdiff = inter["DELRDIFFN"]
            cjr, cjswr = inter["CJRn"], inter["CJSWRn"]
            npeak = inter["NPEAKn"]
            ld_delta, wd_delta = inter["LDn"], inter["WDn"]
        else:
            toxr = inter["TOXRp"]
            vthr = inter["VTH0Rp"]
            deluo = inter["DELUOP"]
            delrdiff = inter["DELRDIFFP"]
            cjr, cjswr = inter["CJRp"], inter["CJSWRp"]
            npeak = inter["NPEAKp"]
            ld_delta, wd_delta = inter["LDp"], inter["WDp"]

        tox = card.tox * toxr * (1.0 + pel.sigma_tox_rel(w, l) * z_tox)
        cox = EPS_OX / np.maximum(tox, 1e-10)
        u0 = card.u0 * (1.0 + deluo) * (1.0 - _U0_PER_NPEAK * npeak)
        kp = np.maximum(u0, 1e-4) * cox

        vth = (
            card.vth0 * vthr
            + _VTH_PER_NPEAK * npeak
            + pel.sigma_vth(w, l) * z_vth
        )

        ld_eff = card.ld + ld_delta + pel.sigma_ld(w, l) * z_ld
        wd_eff = card.wd + wd_delta + pel.sigma_wd(w, l) * z_wd
        leff = np.maximum(l + inter["DELL"] - 2.0 * ld_eff, 0.2 * l)
        weff = np.maximum(w + inter["DELW"] - 2.0 * wd_eff, 0.2 * w)

        lam = card.clm / leff
        theta = card.theta * (1.0 + _THETA_PER_RDIFF * delrdiff)
        gamma = card.gamma * (1.0 + _GAMMA_PER_NPEAK * npeak)

        # Blend the area/sidewall cap ratios into one junction-cap scale.
        area = weff * card.ldiff
        perimeter = 2.0 * (weff + card.ldiff)
        nominal_cj = card.cj * area + card.cjsw * perimeter
        varied_cj = card.cj * area * cjr + card.cjsw * perimeter * cjswr
        cj_scale = varied_cj / np.maximum(nominal_cj, 1e-30)

        return DeviceArrays(
            card=card,
            w=w,
            l=l,
            vth=vth,
            kp=kp,
            lam=lam,
            theta=theta,
            weff=weff,
            leff=leff,
            cox=cox,
            cj_scale=cj_scale,
            cg_scale=1.0 / toxr,
            gamma=gamma,
            phi=card.phi,
        )
