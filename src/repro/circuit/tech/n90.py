"""Synthetic 90 nm CMOS technology ("N90").

Used by the paper's example 2 (two-stage telescopic-cascode amplifier,
1.2 V supply).  The paper states the statistical model has **47 inter-die
variables** but does not name them; we define a documented 47-variable set:

* 5 global variables::

      DELL, DELW     global drawn-geometry offsets [m]
      XL, XW         mask-level geometry offsets [m]
      RSHPOLY        poly sheet-resistance ratio (used by the compensation
                     nulling resistor of the two-stage amplifier)

* 21 variables per polarity (suffix ``n`` / ``p``), 42 total::

      TOXR    oxide-thickness ratio
      VTH0R   threshold-voltage ratio
      DELUO   relative mobility delta
      THETAR  mobility-degradation ratio
      CLMR    channel-length-modulation ratio
      NPEAK   normalised channel-doping delta (VTH up, mobility down,
              body effect up)
      K1R     body-effect ratio
      LD, WD  inter-die lateral diffusion / width reduction deltas [m]
      CJR, CJSWR        junction capacitance ratios (area / sidewall)
      CGDOR, CGSOR      overlap capacitance ratios
      DELRDIFF          diffusion-resistance delta (lumped into theta)
      VOFF    additive threshold offset [V]
      NFACTOR subthreshold-slope delta (small additive VTH effect)
      ETA0    DIBL delta: increases channel-length modulation at short L
      LVTH    short-channel VTH roll-off delta (scaled by lmin/Leff)
      WVTH    narrow-width VTH delta (scaled by wmin/Weff)
      RDSWR   S/D series-resistance ratio (lumped into theta)
      VSATR   velocity-saturation ratio (lumped into theta)

Compared with C035 the relative sigmas are larger (nanometre technologies
show more variability — the motivation of the paper), mismatch is better per
unit area (thinner oxide) but devices are smaller, and short-channel terms
(ETA0, LVTH, WVTH) appear.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.mosfet import EPS_OX, DeviceArrays, MosfetModelCard
from repro.process.distributions import NormalDistribution
from repro.process.parameters import ParameterGroup, StatisticalParameter
from repro.process.technology import PelgromCoefficients, Technology

__all__ = ["N90Technology"]

_VTH_PER_NPEAK = 0.010
_U0_PER_NPEAK = 0.010
_GAMMA_PER_NPEAK = 0.03
_THETA_PER_RDIFF = 0.4
_LAM_PER_ETA0 = 0.05


class N90Technology(Technology):
    """90 nm CMOS, 1.2 V, 47 inter-die statistical variables."""

    name = "N90"
    vdd = 1.2
    lmin = 0.10e-6
    wmin = 0.15e-6

    # -- nominal cards ------------------------------------------------------
    def build_nmos(self) -> MosfetModelCard:
        return MosfetModelCard(
            polarity="n",
            vth0=0.32,
            u0=0.028,
            tox=2.3e-9,
            ld=12e-9,
            wd=8e-9,
            theta=1.1,
            clm=11e-9,
            gamma=0.35,
            phi=0.85,
            cj=1.1e-3,
            cjsw=1.1e-10,
            cgdo=2.7e-10,
            cgso=2.7e-10,
            ldiff=0.24e-6,
        )

    def build_pmos(self) -> MosfetModelCard:
        return MosfetModelCard(
            polarity="p",
            vth0=0.33,
            u0=0.0095,
            tox=2.3e-9,
            ld=10e-9,
            wd=10e-9,
            theta=0.9,
            clm=15e-9,
            gamma=0.32,
            phi=0.82,
            cj=1.25e-3,
            cjsw=1.2e-10,
            cgdo=2.8e-10,
            cgso=2.8e-10,
            ldiff=0.24e-6,
        )

    # -- statistics ---------------------------------------------------------
    def build_inter_group(self) -> ParameterGroup:
        def normal(name: str, mu: float, sigma: float, doc: str = "") -> StatisticalParameter:
            return StatisticalParameter(name, NormalDistribution(mu, sigma), doc)

        parameters = [
            normal("DELL", 0.0, 3e-9, "global drawn-length offset [m]"),
            normal("DELW", 0.0, 4e-9, "global drawn-width offset [m]"),
            normal("XL", 0.0, 2e-9, "mask-level length offset [m]"),
            normal("XW", 0.0, 3e-9, "mask-level width offset [m]"),
            normal("RSHPOLY", 1.0, 0.08, "poly sheet-resistance ratio"),
        ]
        for t in ("n", "p"):
            parameters.extend(
                [
                    normal(f"TOXR{t}", 1.0, 0.020),
                    normal(f"VTH0R{t}", 1.0, 0.035),
                    normal(f"DELUO{t}", 0.0, 0.040),
                    normal(f"THETAR{t}", 1.0, 0.050),
                    normal(f"CLMR{t}", 1.0, 0.080),
                    normal(f"NPEAK{t}", 0.0, 1.0),
                    normal(f"K1R{t}", 1.0, 0.040),
                    normal(f"LD{t}", 0.0, 2e-9),
                    normal(f"WD{t}", 0.0, 3e-9),
                    normal(f"CJR{t}", 1.0, 0.050),
                    normal(f"CJSWR{t}", 1.0, 0.050),
                    normal(f"CGDOR{t}", 1.0, 0.040),
                    normal(f"CGSOR{t}", 1.0, 0.040),
                    normal(f"DELRDIFF{t}", 0.0, 0.080),
                    normal(f"VOFF{t}", 0.0, 0.004, "additive VTH offset [V]"),
                    normal(f"NFACTOR{t}", 0.0, 1.0),
                    normal(f"ETA0{t}", 0.0, 1.0),
                    normal(f"LVTH{t}", 0.0, 0.006, "short-channel VTH delta [V]"),
                    normal(f"WVTH{t}", 0.0, 0.004, "narrow-width VTH delta [V]"),
                    normal(f"RDSWR{t}", 1.0, 0.050),
                    normal(f"VSATR{t}", 1.0, 0.040),
                ]
            )
        group = ParameterGroup(parameters)
        if len(group) != 47:
            raise AssertionError(f"N90 must define 47 inter-die variables, got {len(group)}")
        return group

    def build_pelgrom(self, polarity: str) -> PelgromCoefficients:
        if polarity == "n":
            return PelgromCoefficients(avt=3.5e-9, atox=8e-9, ald=1.2e-15, awd=2e-15)
        return PelgromCoefficients(avt=4.0e-9, atox=8e-9, ald=1.2e-15, awd=2e-15)

    # -- variation application -------------------------------------------------
    def realize(
        self,
        polarity: str,
        w: float,
        l: float,
        inter: dict[str, np.ndarray],
        scores: np.ndarray,
    ) -> DeviceArrays:
        card = self.card(polarity)
        pel = self.pelgrom[polarity]
        scores = np.atleast_2d(np.asarray(scores, dtype=float))
        z_tox, z_vth, z_ld, z_wd = (scores[:, i] for i in range(4))
        t = polarity

        tox = card.tox * inter[f"TOXR{t}"] * (1.0 + pel.sigma_tox_rel(w, l) * z_tox)
        cox = EPS_OX / np.maximum(tox, 3e-10)
        u0 = card.u0 * (1.0 + inter[f"DELUO{t}"]) * (1.0 - _U0_PER_NPEAK * inter[f"NPEAK{t}"])
        kp = np.maximum(u0, 5e-4) * cox

        ld_eff = card.ld + inter[f"LD{t}"] + pel.sigma_ld(w, l) * z_ld
        wd_eff = card.wd + inter[f"WD{t}"] + pel.sigma_wd(w, l) * z_wd
        leff = np.maximum(l + inter["DELL"] + inter["XL"] - 2.0 * ld_eff, 0.2 * l)
        weff = np.maximum(w + inter["DELW"] + inter["XW"] - 2.0 * wd_eff, 0.2 * w)

        vth = (
            card.vth0 * inter[f"VTH0R{t}"]
            + _VTH_PER_NPEAK * inter[f"NPEAK{t}"]
            + inter[f"VOFF{t}"]
            + 0.002 * inter[f"NFACTOR{t}"]
            + inter[f"LVTH{t}"] * (self.lmin / leff)
            + inter[f"WVTH{t}"] * (self.wmin / weff)
            + pel.sigma_vth(w, l) * z_vth
        )

        lam = (
            card.clm
            * inter[f"CLMR{t}"]
            / leff
            * (1.0 + _LAM_PER_ETA0 * inter[f"ETA0{t}"] * (self.lmin / leff))
        )
        theta = (
            card.theta
            * inter[f"THETAR{t}"]
            * (1.0 + _THETA_PER_RDIFF * inter[f"DELRDIFF{t}"])
            * inter[f"RDSWR{t}"]
            * (2.0 - inter[f"VSATR{t}"])
        )
        gamma = card.gamma * inter[f"K1R{t}"] * (1.0 + _GAMMA_PER_NPEAK * inter[f"NPEAK{t}"])

        area = weff * card.ldiff
        perimeter = 2.0 * (weff + card.ldiff)
        nominal_cj = card.cj * area + card.cjsw * perimeter
        varied_cj = card.cj * area * inter[f"CJR{t}"] + card.cjsw * perimeter * inter[f"CJSWR{t}"]
        cj_scale = varied_cj / np.maximum(nominal_cj, 1e-30)
        cg_scale = 0.5 * (inter[f"CGDOR{t}"] + inter[f"CGSOR{t}"]) / inter[f"TOXR{t}"]

        return DeviceArrays(
            card=card,
            w=w,
            l=l,
            vth=vth,
            kp=kp,
            lam=np.maximum(lam, 1e-3),
            theta=np.maximum(theta, 0.0),
            weff=weff,
            leff=leff,
            cox=cox,
            cj_scale=cj_scale,
            cg_scale=cg_scale,
            gamma=gamma,
            phi=card.phi,
        )

    # -- extras ---------------------------------------------------------------
    def poly_sheet_scale(self, inter: dict[str, np.ndarray]) -> np.ndarray:
        """Poly sheet-resistance ratio (for poly resistors like Rz)."""
        return np.asarray(inter["RSHPOLY"], dtype=float)
