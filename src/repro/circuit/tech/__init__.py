"""Synthetic CMOS technologies.

Two technologies mirror the paper's experimental setup:

* :class:`C035Technology` — 0.35 um, 3.3 V supply; 20 inter-die statistical
  variables with the exact names listed in the paper (section 3.2).
* :class:`N90Technology` — 90 nm, 1.2 V supply; 47 inter-die variables
  (the paper gives the count but not the names; ours are documented in the
  module).

Both use Pelgrom area-law intra-die mismatch on (TOX, VTH0, LD, WD) per
device, matching the paper's "transistors x 4" accounting.
"""

from repro.circuit.tech.c035 import C035Technology
from repro.circuit.tech.n90 import N90Technology

__all__ = ["C035Technology", "N90Technology"]
