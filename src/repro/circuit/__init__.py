"""Self-contained analog circuit evaluation substrate.

This package replaces the HSPICE + foundry-PDK stack the paper used (see
DESIGN.md, substitutions table).  It provides:

* :mod:`repro.circuit.mosfet` — a Level-1-style MOSFET model with
  channel-length modulation and mobility degradation, plus vectorised
  "effective parameter" evaluation under process variations.
* :mod:`repro.circuit.elements` / :mod:`repro.circuit.netlist` — circuit
  elements and netlist container.
* :mod:`repro.circuit.mna` — modified nodal analysis: DC Newton solve and
  complex AC solve.
* :mod:`repro.circuit.ac` — transfer functions, Bode data, pole extraction.
* :mod:`repro.circuit.measures` — gain/GBW/phase-margin measurement helpers.
* :mod:`repro.circuit.topologies` — the paper's two amplifiers as parametric
  generators with fast vectorised performance models.
* :mod:`repro.circuit.tech` — the two synthetic technologies (C035, N90).
"""

from repro.circuit.mosfet import DeviceArrays, MosfetModelCard
from repro.circuit.netlist import Circuit
from repro.circuit.mna import DCSolution, MNAAssembler, solve_dc
from repro.circuit.ac import (
    ACAnalysis,
    BatchACAnalysis,
    TransferFunction,
    default_frequency_grid,
)

__all__ = [
    "MosfetModelCard",
    "DeviceArrays",
    "Circuit",
    "MNAAssembler",
    "DCSolution",
    "solve_dc",
    "ACAnalysis",
    "BatchACAnalysis",
    "TransferFunction",
    "default_frequency_grid",
]
