"""Analytic measurement helpers for amplifier performance.

The fast topology evaluators compute gain/pole/zero descriptions per
Monte-Carlo sample; this module turns those into the designer metrics the
specifications are written against (GBW, phase margin), fully vectorised.

These are the standard first-order relations:

* unity-gain frequency of a dominant-pole amplifier: ``f_u = A0 * f_p1``
  (valid for A0 >> 1, which every spec here guarantees),
* phase margin: ``PM = 90 - sum(atan(f_u / p_i)) - sum(atan(f_u / z_rhp))
  + sum(atan(f_u / z_lhp))`` degrees, with the dominant pole contributing the
  fixed 90 degrees.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "unity_gain_frequency",
    "phase_margin_deg",
    "pole_from_rc",
]


def unity_gain_frequency(a0, dominant_pole_hz):
    """Gain-bandwidth product of a dominant-pole amplifier [Hz].

    ``f_u = A0 * f_p1``; inputs broadcast.  Non-positive gains yield 0.
    """
    a0 = np.asarray(a0, dtype=float)
    p1 = np.asarray(dominant_pole_hz, dtype=float)
    return np.where(a0 > 0.0, a0 * p1, 0.0)


def phase_margin_deg(f_u, nondominant_poles_hz=(), rhp_zeros_hz=(), lhp_zeros_hz=()):
    """Phase margin [deg] of a dominant-pole amplifier.

    Parameters
    ----------
    f_u:
        Unity-gain frequency [Hz]; scalar or array over samples.
    nondominant_poles_hz:
        Iterable of pole frequencies (each scalar or sample array).  Poles
        must be positive; non-positive entries contribute a full 90 degrees
        of phase loss (the sample is treated as unstable-ish and will fail
        the PM spec, rather than raising).
    rhp_zeros_hz:
        Right-half-plane zeros: add phase lag like poles.
    lhp_zeros_hz:
        Left-half-plane zeros: give phase lead.
    """
    f_u = np.asarray(f_u, dtype=float)
    pm = np.full(np.broadcast(f_u).shape, 90.0, dtype=float)

    def lag(freqs):
        freqs = np.asarray(freqs, dtype=float)
        ratio = np.where(freqs > 0.0, f_u / np.maximum(freqs, 1e-300), np.inf)
        return np.degrees(np.arctan(ratio))

    for pole in nondominant_poles_hz:
        pm = pm - lag(pole)
    for zero in rhp_zeros_hz:
        pm = pm - lag(zero)
    for zero in lhp_zeros_hz:
        pm = pm + lag(zero)

    if pm.ndim == 0:
        return float(pm)
    return pm


def pole_from_rc(resistance, capacitance):
    """Pole frequency 1 / (2 pi R C) [Hz]; inputs broadcast.

    Non-positive R or C give ``inf`` (no pole), which drops out of phase
    margin sums naturally.
    """
    r = np.asarray(resistance, dtype=float)
    c = np.asarray(capacitance, dtype=float)
    rc = r * c
    with np.errstate(divide="ignore"):
        out = np.where(rc > 0.0, 1.0 / (2.0 * np.pi * np.maximum(rc, 1e-300)), np.inf)
    if out.ndim == 0:
        return float(out)
    return out
