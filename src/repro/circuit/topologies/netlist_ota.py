"""Netlist-backed two-stage Miller OTA (circuit-priced MNA/AC workload).

Unlike the paper's two amplifiers — whose performance models are closed-form
vectorised expressions — this topology evaluates through the **netlist
path**: it builds a small-signal macro netlist (transconductor + output
resistance per stage, Miller compensation, load), stamps it once per design
with :class:`~repro.circuit.mna.MNAAssembler`, applies per-sample process
deltas to the varying element stamps, and solves every sample's AC system
in one stacked :class:`~repro.circuit.ac.BatchACAnalysis` dispatch.  Each
Monte-Carlo sample therefore costs a genuine multi-frequency linear solve
(hundreds of microseconds), which is the regime where the process-pool
execution engine pays off — the role HSPICE plays in the paper.

Topology (single-ended small-signal equivalent)::

    in ──Vin(ac=1)                      x1 ───CC─── out
    G1: gm1·v(in)  -> x1    (inverting first stage)
    R1 = ro1, C1            x1 to ground
    G2: gm2·v(x1)  -> out   (inverting second stage)
    R2 = ro2, CL            out to ground

Two inverting stages give a non-inverting H(f): phase starts at 0 and the
classic pole-splitting/RHP-zero trade-off of the Miller OTA emerges from
the netlist itself (CC stamps the feedforward path), not from formulas.

Design variables (sizing flavour)::

    i1      first-stage branch current [A]       gm1 = 2 i1 / vov1
    i2      second-stage branch current [A]      gm2 = 2 i2 / vov2
    vov1    input-pair overdrive [V]             ro1 = VA1 / i1
    vov2    output-device overdrive [V]          ro2 = VA2 / i2
    cc      Miller compensation capacitor [F]

Process variation: the four mismatch-carrying "devices" are the stage
transconductors and output resistances (GM1, GM2, RO1, RO2).  Their
``dVTH0`` scores perturb gm via the Pelgrom area law (device area scales
with branch current), inter-die mobility/oxide variables shift both
stages' gm together, and output resistances carry a lumped relative
spread.  Power additionally wobbles with the oxide ratio (bias currents
mirror through it).

Metrics (column order of :meth:`metric_names`)::

    a0_db     low-frequency gain
    gbw_hz    unity-gain frequency from the solved |H(f)|
    pm_deg    phase margin from the solved phase at f_u
    power_w   VDD * (2 i1 + i2 + fixed bias overhead)
"""

from __future__ import annotations

import numpy as np

from repro.circuit.ac import BatchACAnalysis
from repro.circuit.elements import VCCS, Resistor
from repro.circuit.mna import MNAAssembler
from repro.circuit.netlist import Circuit
from repro.circuit.topologies.base import AmplifierTopology, DesignSpace
from repro.units import ratio_to_db

__all__ = ["NetlistTwoStageOTA"]

#: Load capacitance [F].
LOAD_CAP = 3.0e-12
#: First-stage node parasitic capacitance [F].
STAGE1_CAP = 0.15e-12
#: Early voltages of the two stages [V] (set ro = VA / I).
EARLY_V1 = 18.0
EARLY_V2 = 12.0
#: Fixed bias overhead current [A].
BIAS_FIXED = 40e-6
#: Device gate area per ampere of branch current [m^2/A]; feeds the
#: Pelgrom area law (larger currents need wider devices).
AREA_PER_AMP = 2.0e-7
#: Lumped relative sigma of each stage's output resistance.
RO_REL_SIGMA = 0.06

_DESIGN_NAMES = ["i1", "i2", "vov1", "vov2", "cc"]
_LOWER = np.array([20e-6, 50e-6, 0.08, 0.10, 0.5e-12])
_UPPER = np.array([500e-6, 1500e-6, 0.40, 0.50, 8.0e-12])

_DEVICES = ["GM1", "GM2", "RO1", "RO2"]
_METRICS = ["a0_db", "gbw_hz", "pm_deg", "power_w"]

#: Analysis grid: 1 Hz .. 10 GHz, 30 points/decade.  Coarser than the
#: default Bode grid — metric extraction interpolates — and shared across
#: every evaluation (module-level, read-only).
_GRID = np.logspace(0, 10, 301)
_GRID.setflags(write=False)


class NetlistTwoStageOTA(AmplifierTopology):
    """Two-stage Miller OTA evaluated through the stacked MNA/AC path."""

    def device_names(self) -> list[str]:
        return list(_DEVICES)

    def design_space(self) -> DesignSpace:
        return DesignSpace(list(_DESIGN_NAMES), _LOWER, _UPPER)

    def metric_names(self) -> list[str]:
        return list(_METRICS)

    #: Frequency grid used by :meth:`evaluate` (exposed for tests).
    frequency_grid = _GRID

    def __init__(self, tech) -> None:
        super().__init__(tech)
        # One-design memo of the assembled nominal system + unit stamps:
        # OCBA refines the same candidate in many small rounds, and the
        # stamps only depend on the design vector.
        self._assembled: tuple[bytes, tuple] | None = None

    # -- netlist ---------------------------------------------------------------
    @staticmethod
    def nominal_values(x: np.ndarray) -> dict[str, float]:
        """Element values implied by a design vector (nominal process)."""
        d = dict(zip(_DESIGN_NAMES, np.asarray(x, dtype=float).tolist()))
        return {
            "gm1": 2.0 * d["i1"] / d["vov1"],
            "gm2": 2.0 * d["i2"] / d["vov2"],
            "ro1": EARLY_V1 / d["i1"],
            "ro2": EARLY_V2 / d["i2"],
            "cc": d["cc"],
        }

    @classmethod
    def build_circuit(cls, x: np.ndarray) -> Circuit:
        """The macro netlist at nominal element values."""
        v = cls.nominal_values(x)
        c = Circuit("netlist_ota")
        c.add_voltage_source("Vin", "in", "0", 0.0, ac=1.0)
        c.add_vccs("G1", "x1", "0", "in", "0", v["gm1"])
        c.add_resistor("R1", "x1", "0", v["ro1"])
        c.add_capacitor("C1", "x1", "0", STAGE1_CAP)
        c.add_capacitor("CC", "x1", "out", v["cc"])
        c.add_vccs("G2", "out", "0", "x1", "0", v["gm2"])
        c.add_resistor("R2", "out", "0", v["ro2"])
        c.add_capacitor("CL", "out", "0", LOAD_CAP)
        return c

    def _assemble(self, x: np.ndarray):
        """Nominal (G, C, b), node map and unit stamps of the varying elements.

        Memoized on the design-vector bytes: samples that share a topology
        (every sample of one candidate) reuse the assembled stamps, so the
        per-sample work is one tensor update plus the stacked solve.
        """
        key = np.asarray(x, dtype=float).tobytes()
        if self._assembled is not None and self._assembled[0] == key:
            return self._assembled[1]
        circuit = self.build_circuit(x)
        assembler = MNAAssembler(circuit)
        g0, c0, b0 = assembler.ac_system({})
        nodemap = assembler.nodemap
        n = nodemap.size
        # Unit stamps of the per-sample-varying elements, in the order of
        # the delta columns built by `small_signal_values`: gm1, gm2 stamp
        # as unit-transconductance VCCS patterns, the output resistances as
        # unit-*conductance* resistor patterns.
        basis = np.zeros((4, n, n))
        scratch_c, scratch_b = np.zeros((n, n)), np.zeros(n)
        VCCS("G1u", "x1", "0", "in", "0", 1.0).stamp_ac(
            basis[0], scratch_c, scratch_b, {}, nodemap
        )
        VCCS("G2u", "out", "0", "x1", "0", 1.0).stamp_ac(
            basis[1], scratch_c, scratch_b, {}, nodemap
        )
        Resistor("R1u", "x1", "0", 1.0).stamp_ac(
            basis[2], scratch_c, scratch_b, {}, nodemap
        )
        Resistor("R2u", "out", "0", 1.0).stamp_ac(
            basis[3], scratch_c, scratch_b, {}, nodemap
        )
        assembled = (g0, c0, b0, nodemap, basis)
        self._assembled = (key, assembled)
        return assembled

    # -- per-sample element values ------------------------------------------------
    def small_signal_values(
        self, x: np.ndarray, samples: np.ndarray
    ) -> dict[str, np.ndarray]:
        """Per-sample element values (gm1, gm2, go1, go2, power) [arrays].

        This is the process model: inter-die mobility/oxide variables move
        both stages together, per-device ``dVTH0`` mismatch scores perturb
        each element individually (Pelgrom area law for the
        transconductors), and power follows the oxide ratio.
        """
        x = np.asarray(x, dtype=float)
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        d = dict(zip(_DESIGN_NAMES, x.tolist()))
        v = self.nominal_values(x)
        variation = self.variation
        inter = variation.inter_values(samples)

        pel_n = self.tech.pelgrom["n"]
        pel_p = self.tech.pelgrom["p"]

        def gm_factor(branch_current, vov, pelgrom, z_vth):
            # delta(gm)/gm ~ -2 dVth/vov for a square-law device; the
            # mismatch sigma follows the area law with area ~ current.
            area = AREA_PER_AMP * branch_current
            sigma_vth = pelgrom.avt / np.sqrt(area)
            return 1.0 - 2.0 * (sigma_vth / vov) * z_vth

        z_gm1 = variation.mismatch_column(samples, "GM1", "dVTH0")
        z_gm2 = variation.mismatch_column(samples, "GM2", "dVTH0")
        z_ro1 = variation.mismatch_column(samples, "RO1", "dVTH0")
        z_ro2 = variation.mismatch_column(samples, "RO2", "dVTH0")
        z_pow = variation.mismatch_column(samples, "GM1", "dTOX")

        mobility_n = (1.0 + inter["DELUON"]) / inter["TOXRn"]
        mobility_p = (1.0 + inter["DELUOP"]) / inter["TOXRp"]

        gm1 = v["gm1"] * mobility_n * gm_factor(d["i1"], d["vov1"], pel_n, z_gm1)
        gm2 = v["gm2"] * mobility_p * gm_factor(d["i2"], d["vov2"], pel_p, z_gm2)
        # Output conductances: lumped relative spread, plus channel-length
        # modulation tracking the mobility shift.
        go1 = (1.0 / v["ro1"]) * (1.0 + RO_REL_SIGMA * z_ro1) * inter["TOXRn"]
        go2 = (1.0 / v["ro2"]) * (1.0 + RO_REL_SIGMA * z_ro2) * inter["TOXRp"]

        i_total = 2.0 * d["i1"] + d["i2"] + BIAS_FIXED
        power = self.tech.vdd * i_total * inter["TOXRn"] * (1.0 + 0.02 * z_pow)
        return {"gm1": gm1, "gm2": gm2, "go1": go1, "go2": go2, "power": power}

    # -- evaluation -------------------------------------------------------------
    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        g0, c0, b0, nodemap, basis = self._assemble(x)
        v = self.nominal_values(x)
        values = self.small_signal_values(x, samples)

        # Per-sample deltas against the nominally-stamped system, one
        # column per basis stamp (gm1, gm2, go1, go2).
        deltas = np.stack(
            [
                values["gm1"] - v["gm1"],
                values["gm2"] - v["gm2"],
                values["go1"] - 1.0 / v["ro1"],
                values["go2"] - 1.0 / v["ro2"],
            ],
            axis=1,
        )
        g_batch = g0[None, :, :] + np.einsum("se,eij->sij", deltas, basis)

        analysis = BatchACAnalysis(g_batch, c0, b0, nodemap)
        tf = analysis.transfer_batch("out", frequencies=_GRID)
        a0_db = ratio_to_db(np.maximum(tf.dc_gain(), 1e-12))
        gbw = np.nan_to_num(tf.unity_gain_frequency(), nan=0.0)
        pm = np.nan_to_num(tf.phase_margin(), nan=0.0)
        return np.column_stack([a0_db, gbw, pm, values["power"]])
