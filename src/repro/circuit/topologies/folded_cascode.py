"""Fully differential folded-cascode amplifier (paper example 1).

Topology (NMOS input, folded into a PMOS cascode, 15 transistors — matching
the paper's "15 transistors x 4" mismatch accounting)::

    M0          NMOS tail current source (I_tail)
    M1,  M2     NMOS input pair (I_tail/2 each)
    M3,  M4     PMOS folding current sources (I_cas + I_tail/2), CMFB-driven
    M5,  M6     PMOS cascodes (I_cas)
    M7,  M8     NMOS cascodes (I_cas)
    M9,  M10    NMOS bottom current sinks (I_cas), mirrored from MB4
    MB1         NMOS diode, tail-mirror reference (geometry of M0)
    MB2         PMOS replica generating the folding-node bias (geometry of M3)
    MB3         NMOS replica generating the N-cascode bias (geometry of M9)
    MB4         NMOS diode, bottom-mirror reference (geometry of M9)

Biasing model
-------------
Currents are set by mirrors and the (ideal) common-mode feedback:
``I5 = I9`` and ``I3 = I9 + I_tail/2`` per side.  Mirror errors follow from
the exact device equations: the mirror output device sees the reference
diode's gate voltage, so its current error is driven by the VTH/geometry
mismatch between the two devices.

Cascode bias voltages come from replica generators: the folding node is
biased at ``VDD - (vdsat(M3 replica) + vmargin_p)`` and the N-cascode source
node at ``vdsat(M9 replica) + vmargin_n``; the margins are design variables.
The per-side node voltages additionally shift with the cascode devices' own
VGS mismatch relative to a mismatch-averaged replica (large bias devices).

Performance metrics (column order of :meth:`metric_names`)::

    a0_db       low-frequency differential gain
    gbw_hz      unity-gain bandwidth  gm1 / (2 pi C_out)
    pm_deg      phase margin with folding-node and cascode-node poles
    os_v        differential peak-to-peak output swing
    power_w     VDD * (I_tail + 2 I3 + bias overhead)
    satmargin_v minimum saturation margin over all core devices

The paper's specs for this circuit: A0 >= 70 dB, GBW >= 40 MHz, PM >= 60 deg,
OS >= 4.6 V, power <= 1.07 mW, plus all transistors saturated.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.measures import phase_margin_deg
from repro.circuit.topologies.base import AmplifierTopology, DesignSpace
from repro.units import ratio_to_db

__all__ = ["FoldedCascodeAmplifier"]

#: Single-ended load capacitance [F].
LOAD_CAP = 6.0e-12
#: Fixed bias-generator overhead current [A] plus fraction of branch currents.
BIAS_FIXED = 10e-6
BIAS_FRACTION = 0.08

_DESIGN_NAMES = [
    "w1", "l1",          # input pair
    "w0", "l0",          # tail source
    "w3", "l3",          # PMOS folding sources
    "w5", "l5",          # PMOS cascodes
    "w7", "l7",          # NMOS cascodes
    "w9", "l9",          # NMOS bottom sinks
    "itail", "icas",     # branch currents
    "vmargin_p", "vmargin_n",  # cascode bias margins
]

_LOWER = np.array([
    2e-6, 0.35e-6,
    2e-6, 0.50e-6,
    2e-6, 0.50e-6,
    2e-6, 0.35e-6,
    2e-6, 0.35e-6,
    2e-6, 0.50e-6,
    20e-6, 10e-6,
    0.02, 0.02,
])

_UPPER = np.array([
    400e-6, 2.0e-6,
    400e-6, 4.0e-6,
    400e-6, 4.0e-6,
    400e-6, 2.0e-6,
    400e-6, 2.0e-6,
    400e-6, 4.0e-6,
    300e-6, 200e-6,
    0.35, 0.35,
])

_DEVICES = [
    "M0", "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M9", "M10",
    "MB1", "MB2", "MB3", "MB4",
]

_METRICS = ["a0_db", "gbw_hz", "pm_deg", "os_v", "power_w", "satmargin_v"]


class FoldedCascodeAmplifier(AmplifierTopology):
    """Vectorised performance model of the folded-cascode amplifier."""

    def device_names(self) -> list[str]:
        return list(_DEVICES)

    def design_space(self) -> DesignSpace:
        return DesignSpace(list(_DESIGN_NAMES), _LOWER, _UPPER)

    def metric_names(self) -> list[str]:
        return list(_METRICS)

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        d = dict(zip(_DESIGN_NAMES, x.tolist()))
        vdd = self.tech.vdd
        vcm_in = 0.5 * vdd
        vout_cm = 0.5 * vdd

        inter = self.variation.inter_values(samples)
        realize = self._realized

        # Core devices (left/right instances carry their own mismatch).
        m0 = realize("M0", "n", d["w0"], d["l0"], inter, samples)
        m1 = realize("M1", "n", d["w1"], d["l1"], inter, samples)
        m2 = realize("M2", "n", d["w1"], d["l1"], inter, samples)
        m3 = realize("M3", "p", d["w3"], d["l3"], inter, samples)
        m4 = realize("M4", "p", d["w3"], d["l3"], inter, samples)
        m5 = realize("M5", "p", d["w5"], d["l5"], inter, samples)
        m6 = realize("M6", "p", d["w5"], d["l5"], inter, samples)
        m7 = realize("M7", "n", d["w7"], d["l7"], inter, samples)
        m8 = realize("M8", "n", d["w7"], d["l7"], inter, samples)
        m9 = realize("M9", "n", d["w9"], d["l9"], inter, samples)
        m10 = realize("M10", "n", d["w9"], d["l9"], inter, samples)
        mb1 = realize("MB1", "n", d["w0"], d["l0"], inter, samples)
        mb2 = realize("MB2", "p", d["w3"], d["l3"], inter, samples)
        mb3 = realize("MB3", "n", d["w9"], d["l9"], inter, samples)
        mb4 = realize("MB4", "n", d["w9"], d["l9"], inter, samples)

        # Mismatch-averaged replicas used by the cascode bias generators.
        zeros = np.zeros((samples.shape[0], 4))
        m5_avg = self.tech.realize("p", d["w5"], d["l5"], inter, zeros)
        m7_avg = self.tech.realize("n", d["w7"], d["l7"], inter, zeros)

        itail, icas = d["itail"], d["icas"]
        i3_design = icas + 0.5 * itail

        # -- current mirrors (exact device equations) ----------------------
        i0 = _mirror_current(mb1, m0, itail)
        i1 = 0.5 * i0  # balanced split of the tail current
        i9_l = _mirror_current(mb4, m9, icas)
        i9_r = _mirror_current(mb4, m10, icas)
        i5_l, i5_r = i9_l, i9_r            # series cascode branch
        i3_l, i3_r = i9_l + i1, i9_r + i1  # CMFB closes KCL at the fold node

        # -- bias voltages --------------------------------------------------
        # Folding-node target from the PMOS replica MB2 + margin.
        va_target = vdd - (mb2.vdsat(i3_design) + d["vmargin_p"])
        # Per-side fold node shifts with the cascode's VGS mismatch.
        va_l = va_target + (m5.vgs_for_current(i5_l) - m5_avg.vgs_for_current(icas))
        va_r = va_target + (m6.vgs_for_current(i5_r) - m5_avg.vgs_for_current(icas))

        # N-cascode source node from the NMOS replica MB3 + margin.
        vb_target = mb3.vdsat(icas) + d["vmargin_n"]
        vb_l = vb_target - (m7.vgs_for_current(i5_l) - m7_avg.vgs_for_current(icas))
        vb_r = vb_target - (m8.vgs_for_current(i5_r) - m7_avg.vgs_for_current(icas))

        # Input-pair source node (body effect solved by fixed-point iteration).
        vs1 = vcm_in - (m1.vth + m1.vov_for_current(i1))
        for _ in range(3):
            vs1 = vcm_in - (m1.vth_at(np.maximum(vs1, 0.0)) + m1.vov_for_current(i1))

        # -- saturation margins ----------------------------------------------
        margins = [
            vs1 - m0.vdsat(i0),                       # tail
            (va_l - vs1) - m1.vdsat(i1),              # input left
            (va_r - vs1) - m2.vdsat(i1),              # input right
            (vdd - va_l) - m3.vdsat(i3_l),            # fold source L
            (vdd - va_r) - m4.vdsat(i3_r),            # fold source R
            (va_l - vout_cm) - m5.vdsat(i5_l),        # p-cascode L
            (va_r - vout_cm) - m6.vdsat(i5_r),        # p-cascode R
            (vout_cm - vb_l) - m7.vdsat(i5_l),        # n-cascode L
            (vout_cm - vb_r) - m8.vdsat(i5_r),        # n-cascode R
            vb_l - m9.vdsat(i9_l),                    # sink L
            vb_r - m10.vdsat(i9_r),                   # sink R
        ]
        satmargin = np.min(np.vstack(margins), axis=0)

        # -- small-signal quantities per side ---------------------------------
        gm1 = m1.gm(i1)
        gm2 = m2.gm(i1)

        def side_rout(m_in, m_src, m_pc, m_nc, m_snk, va, vb, i5, i3, i9):
            gm_pc = m_pc.gm(i5) + m_pc.gmbs(i5, np.maximum(vdd - va, 0.0))
            gm_nc = m_nc.gm(i5) + m_nc.gmbs(i5, np.maximum(vb, 0.0))
            ro_up = m_pc.ro(i5) * gm_pc * _parallel(m_src.ro(i3), m_in.ro(i1))
            ro_dn = m_nc.ro(i5) * gm_nc * m_snk.ro(i9)
            return _parallel(ro_up, ro_dn), gm_pc, gm_nc

        rout_l, gm5_eff, gm7_eff = side_rout(m1, m3, m5, m7, m9, va_l, vb_l, i5_l, i3_l, i9_l)
        rout_r, gm6_eff, gm8_eff = side_rout(m2, m4, m6, m8, m10, va_r, vb_r, i5_r, i3_r, i9_r)

        a0 = 0.5 * (gm1 * rout_l + gm2 * rout_r)
        a0_db = ratio_to_db(np.maximum(a0, 1e-12))

        # -- poles ---------------------------------------------------------------
        c_out_l = LOAD_CAP + m5.cdb() + m5.cgd() + m7.cdb() + m7.cgd()
        c_out_r = LOAD_CAP + m6.cdb() + m6.cgd() + m8.cdb() + m8.cgd()
        gbw = 0.5 * (gm1 + gm2) / (2.0 * np.pi * 0.5 * (c_out_l + c_out_r))

        c_a_l = m1.cdb() + m1.cgd() + m3.cdb() + m3.cgd() + m5.cgs() + m5.csb()
        c_a_r = m2.cdb() + m2.cgd() + m4.cdb() + m4.cgd() + m6.cgs() + m6.csb()
        c_b_l = m9.cdb() + m9.cgd() + m7.cgs() + m7.csb()
        c_b_r = m10.cdb() + m10.cgd() + m8.cgs() + m8.csb()

        p_fold = np.minimum(
            gm5_eff / (2.0 * np.pi * np.maximum(c_a_l, 1e-18)),
            gm6_eff / (2.0 * np.pi * np.maximum(c_a_r, 1e-18)),
        )
        p_casc = np.minimum(
            gm7_eff / (2.0 * np.pi * np.maximum(c_b_l, 1e-18)),
            gm8_eff / (2.0 * np.pi * np.maximum(c_b_r, 1e-18)),
        )
        pm = phase_margin_deg(gbw, nondominant_poles_hz=(p_fold, p_casc))

        # -- swing ------------------------------------------------------------------
        vout_max = np.minimum(va_l - m5.vdsat(i5_l),
                              va_r - m6.vdsat(i5_r))
        vout_min = np.maximum(vb_l + m7.vdsat(i5_l),
                              vb_r + m8.vdsat(i5_r))
        os = 2.0 * (vout_max - vout_min)

        # -- power ---------------------------------------------------------------------
        ibias = BIAS_FIXED + BIAS_FRACTION * (itail + 2.0 * icas)
        power = vdd * (i0 + i3_l + i3_r + ibias)

        out = np.column_stack([a0_db, gbw, pm, os, power, satmargin])
        return out


def _mirror_current(reference, output, i_ref):
    """Current of a mirror output device given the reference diode current.

    The reference device is diode-connected at ``i_ref``; the output device
    sees the same gate voltage, so VTH/beta mismatch between the two maps
    into an output-current error via the exact square-law-with-theta model.
    """
    vgs_ref = reference.vgs_for_current(i_ref)
    return output.current_for_vov(vgs_ref - output.vth)


def _parallel(r1, r2):
    """Parallel resistance, safe for zeros."""
    return r1 * r2 / np.maximum(r1 + r2, 1e-30)
