"""Common interface of parametric amplifier topologies."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.process.technology import Technology
from repro.process.variation import ProcessVariationModel

__all__ = ["AmplifierTopology", "DesignSpace"]


class DesignSpace:
    """A named, box-bounded design-variable space."""

    def __init__(self, names: list[str], lower, upper) -> None:
        self.names = list(names)
        self.lower = np.asarray(lower, dtype=float)
        self.upper = np.asarray(upper, dtype=float)
        if not (len(self.names) == len(self.lower) == len(self.upper)):
            raise ValueError("names, lower and upper must have equal length")
        if np.any(self.upper <= self.lower):
            bad = [self.names[i] for i in np.where(self.upper <= self.lower)[0]]
            raise ValueError(f"upper must exceed lower for all variables; bad: {bad}")

    @property
    def dimension(self) -> int:
        """Number of design variables."""
        return len(self.names)

    def clip(self, x: np.ndarray) -> np.ndarray:
        """Project a vector (or matrix of row vectors) into the box."""
        return np.clip(np.asarray(x, dtype=float), self.lower, self.upper)

    def contains(self, x: np.ndarray):
        """Whether ``x`` lies inside the box (inclusive).

        Accepts a single vector (returns a plain ``bool``) or a matrix of
        row vectors like :meth:`clip` does (returns a boolean array, one
        entry per row).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim > 2 or x.shape[-1] != self.dimension:
            raise ValueError(
                f"expected shape ({self.dimension},) or (m, {self.dimension}), "
                f"got {x.shape}"
            )
        inside = np.all((x >= self.lower) & (x <= self.upper), axis=-1)
        if x.ndim == 1:
            return bool(inside)
        return inside

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform random designs, shape ``(n, dimension)``."""
        u = rng.uniform(0.0, 1.0, size=(n, self.dimension))
        return self.lower + u * (self.upper - self.lower)

    def as_dict(self, x: np.ndarray) -> dict[str, float]:
        """Map a design vector onto variable names."""
        x = np.asarray(x, dtype=float)
        if x.shape != (self.dimension,):
            raise ValueError(f"expected shape ({self.dimension},), got {x.shape}")
        return dict(zip(self.names, x.tolist()))


class AmplifierTopology(ABC):
    """A parametric amplifier performance model in one technology.

    Subclasses define the design space, the mismatch-carrying device list
    and the vectorised performance evaluation.
    """

    def __init__(self, tech: Technology) -> None:
        self.tech = tech
        self._variation = tech.variation_model(self.device_names())

    # -- static structure ----------------------------------------------------
    @abstractmethod
    def device_names(self) -> list[str]:
        """Names of the mismatch-carrying transistors (paper's counting)."""

    @abstractmethod
    def design_space(self) -> DesignSpace:
        """Box bounds of the design variables."""

    @abstractmethod
    def metric_names(self) -> list[str]:
        """Column order of the performance matrix."""

    # -- evaluation -------------------------------------------------------------
    @abstractmethod
    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        """Performance of design ``x`` at each process sample.

        Parameters
        ----------
        x:
            Design vector, shape ``(design_space().dimension,)``.
        samples:
            Process sample matrix, shape ``(n, variation.dimension)``.

        Returns
        -------
        numpy.ndarray
            Performance matrix, shape ``(n, len(metric_names()))``.
        """

    # -- shared helpers ------------------------------------------------------------
    @property
    def variation(self) -> ProcessVariationModel:
        """The process-variation model of this circuit."""
        return self._variation

    def evaluate_nominal(self, x: np.ndarray) -> np.ndarray:
        """Performance at the nominal process point, shape ``(n_metrics,)``."""
        nominal = self._variation.nominal()[None, :]
        return self.evaluate(x, nominal)[0]

    def _realized(self, device: str, polarity: str, w: float, l: float,
                  inter: dict[str, np.ndarray], samples: np.ndarray):
        """Realize one device's effective parameters over all samples."""
        scores = self._variation.mismatch_scores(samples, device)
        return self.tech.realize(polarity, w, l, inter, scores)
