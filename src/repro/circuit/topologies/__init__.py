"""Parametric amplifier topologies.

Each topology implements the paper's corresponding benchmark circuit as a
*vectorised performance model*: given one design vector and a matrix of
process samples it returns the performance metrics for every sample in one
NumPy pass.  The small-signal netlist builders allow cross-checking the
analytic models against the MNA engine (see tests/test_crosscheck_mna.py).
"""

from repro.circuit.topologies.base import AmplifierTopology
from repro.circuit.topologies.folded_cascode import FoldedCascodeAmplifier
from repro.circuit.topologies.netlist_ota import NetlistTwoStageOTA
from repro.circuit.topologies.two_stage_telescopic import TwoStageTelescopicAmplifier

__all__ = [
    "AmplifierTopology",
    "FoldedCascodeAmplifier",
    "NetlistTwoStageOTA",
    "TwoStageTelescopicAmplifier",
]
