"""Fully differential two-stage telescopic-cascode amplifier (example 2).

Stage 1 is an NMOS-input telescopic cascode, stage 2 a PMOS common-source
stage with Miller compensation (series nulling resistor Rz implemented in
poly, so it tracks the ``RSHPOLY`` inter-die variable).  19 transistors,
matching the paper's "19 transistors x 4" mismatch accounting::

    M0          NMOS tail current source
    M1,  M2     NMOS input pair
    M3,  M4     NMOS cascodes
    M5,  M6     PMOS cascodes
    M7,  M8     PMOS current sources (CMFB-driven)
    M9,  M10    stage-2 PMOS common-source devices
    M11, M12    stage-2 NMOS current sinks (mirrored from MB4)
    MB1         tail-mirror reference diode (geometry of M0)
    MB2         N-cascode bias replica (geometry of M3)
    MB3         P-cascode bias replica (geometry of M5)
    MB4         stage-2 sink mirror reference (geometry of M11)
    MB5, MB6    master bias mirrors (N / P diodes distributing the reference)

Stack per side (stage 1): gnd - M0 - vs1 - M1 - X - M3 - Y(out1) - M5 - Z -
M7 - vdd.  Stage-1 output common mode is set by a replica-based CMFB to
``VDD - VGS(M9 replica)`` so the second stage is biased at its design
current; the per-side stage-2 current error then follows from M9/M10
threshold mismatch, and the imbalance between M9's current and the mirrored
M11 sink current contributes systematic offset.

Offset model: the paper's 0.05 mV specification implies an offset-reduced
architecture; we model the reported offset as the raw input-referred
mismatch offset divided by a fixed trim ratio (``OFFSET_TRIM_RATIO``),
documented in DESIGN.md.  The raw offset combines input-pair VTH mismatch,
load (M7/M8) VTH mismatch scaled by gm7/gm1, input-pair beta mismatch, and
the stage-2 current-imbalance term referred through the stage-1 gain.

Metrics (column order)::

    a0_db, gbw_hz, pm_deg, os_v, power_w, area_m2, offset_v, satmargin_v

Paper specs: A0 >= 60 dB, GBW >= 300 MHz, PM >= 60 deg, OS >= 1.8 V,
power <= 10 mW, area <= 180 um^2, offset <= 0.05 mV, all devices saturated.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.measures import phase_margin_deg
from repro.circuit.topologies.base import AmplifierTopology, DesignSpace
from repro.units import ratio_to_db

__all__ = ["TwoStageTelescopicAmplifier"]

#: Single-ended load capacitance [F].
LOAD_CAP = 1.0e-12
#: Input common-mode voltage [V].
VCM_IN = 0.60
#: MIM capacitor density [F/m^2] (7 fF/um^2) for the area of Cc.
CAP_DENSITY = 7e-3
#: Layout overhead multiplier on active area.
LAYOUT_OVERHEAD = 1.25
#: Offset-trim residue ratio (see module docstring).
OFFSET_TRIM_RATIO = 100.0
#: Bias-generator overhead.
BIAS_FIXED = 20e-6
BIAS_FRACTION = 0.05

_DESIGN_NAMES = [
    "w1", "l1",    # input pair
    "w3", "l3",    # n-cascodes
    "w5", "l5",    # p-cascodes
    "w7", "l7",    # p-sources
    "w0", "l0",    # tail
    "w9", "l9",    # stage-2 PMOS CS
    "w11", "l11",  # stage-2 sinks
    "itail", "i2",  # currents
    "cc", "rz",     # compensation
    "vmargin_n", "vmargin_p",
]

_LOWER = np.array([
    1e-6, 0.10e-6,
    1e-6, 0.10e-6,
    1e-6, 0.10e-6,
    1e-6, 0.10e-6,
    1e-6, 0.15e-6,
    1e-6, 0.10e-6,
    1e-6, 0.10e-6,
    30e-6, 100e-6,
    0.10e-12, 50.0,
    0.02, 0.02,
])

_UPPER = np.array([
    120e-6, 1.0e-6,
    120e-6, 1.0e-6,
    120e-6, 1.0e-6,
    120e-6, 1.0e-6,
    120e-6, 2.0e-6,
    200e-6, 1.0e-6,
    200e-6, 1.0e-6,
    800e-6, 3000e-6,
    1.2e-12, 3000.0,
    0.30, 0.30,
])

_DEVICES = [
    "M0", "M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8",
    "M9", "M10", "M11", "M12",
    "MB1", "MB2", "MB3", "MB4", "MB5", "MB6",
]

_METRICS = [
    "a0_db", "gbw_hz", "pm_deg", "os_v", "power_w", "area_m2",
    "offset_v", "satmargin_v",
]


class TwoStageTelescopicAmplifier(AmplifierTopology):
    """Vectorised performance model of the two-stage telescopic amplifier."""

    def device_names(self) -> list[str]:
        return list(_DEVICES)

    def design_space(self) -> DesignSpace:
        return DesignSpace(list(_DESIGN_NAMES), _LOWER, _UPPER)

    def metric_names(self) -> list[str]:
        return list(_METRICS)

    # ------------------------------------------------------------------
    def evaluate(self, x: np.ndarray, samples: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        samples = np.atleast_2d(np.asarray(samples, dtype=float))
        d = dict(zip(_DESIGN_NAMES, x.tolist()))
        vdd = self.tech.vdd
        vout_cm = 0.5 * vdd

        inter = self.variation.inter_values(samples)
        realize = self._realized

        m0 = realize("M0", "n", d["w0"], d["l0"], inter, samples)
        m1 = realize("M1", "n", d["w1"], d["l1"], inter, samples)
        m2 = realize("M2", "n", d["w1"], d["l1"], inter, samples)
        m3 = realize("M3", "n", d["w3"], d["l3"], inter, samples)
        m4 = realize("M4", "n", d["w3"], d["l3"], inter, samples)
        m5 = realize("M5", "p", d["w5"], d["l5"], inter, samples)
        m6 = realize("M6", "p", d["w5"], d["l5"], inter, samples)
        m7 = realize("M7", "p", d["w7"], d["l7"], inter, samples)
        m8 = realize("M8", "p", d["w7"], d["l7"], inter, samples)
        m9 = realize("M9", "p", d["w9"], d["l9"], inter, samples)
        m10 = realize("M10", "p", d["w9"], d["l9"], inter, samples)
        m11 = realize("M11", "n", d["w11"], d["l11"], inter, samples)
        m12 = realize("M12", "n", d["w11"], d["l11"], inter, samples)
        mb1 = realize("MB1", "n", d["w0"], d["l0"], inter, samples)
        mb2 = realize("MB2", "n", d["w3"], d["l3"], inter, samples)
        mb3 = realize("MB3", "p", d["w5"], d["l5"], inter, samples)
        mb4 = realize("MB4", "n", d["w11"], d["l11"], inter, samples)
        # Master bias mirrors: their mismatch perturbs the reference currents
        # fed to the tail and stage-2 mirrors.
        mb5 = realize("MB5", "n", d["w0"], d["l0"], inter, samples)
        mb6 = realize("MB6", "p", d["w5"], d["l5"], inter, samples)

        zeros = np.zeros((samples.shape[0], 4))
        m9_avg = self.tech.realize("p", d["w9"], d["l9"], inter, zeros)
        m1_avg = self.tech.realize("n", d["w1"], d["l1"], inter, zeros)
        m7_avg = self.tech.realize("p", d["w7"], d["l7"], inter, zeros)

        itail, i2 = d["itail"], d["i2"]
        cc, rz_design = d["cc"], d["rz"]
        rz = rz_design * self.tech.poly_sheet_scale(inter) if hasattr(
            self.tech, "poly_sheet_scale") else rz_design * np.ones(samples.shape[0])

        # -- reference distribution and mirrors ------------------------------
        # The master bias chain (MB5/MB6) perturbs the reference currents.
        iref_tail = _mirror_current(mb5, mb1, itail)
        i0 = _mirror_current(mb1, m0, iref_tail)
        i1 = 0.5 * i0

        # Stage-1 output common mode from the replica CMFB: biased so that
        # the stage-2 device M9 nominally carries i2.
        vgs9_applied = m9_avg.vgs_for_current(i2)
        vo1_cm = vdd - vgs9_applied
        # Per-side stage-2 currents from M9/M10 threshold/beta mismatch.
        i9_l = m9.current_for_vov(vgs9_applied - m9.vth)
        i9_r = m10.current_for_vov(vgs9_applied - m10.vth)
        # Stage-2 sinks mirrored from MB4 (reference scaled through MB6).
        iref2 = _mirror_current(mb6, mb4, i2)
        i11_l = _mirror_current(mb4, m11, iref2)
        i11_r = _mirror_current(mb4, m12, iref2)

        # -- stage-1 node voltages --------------------------------------------
        vs1 = VCM_IN - (m1.vth + m1.vov_for_current(i1))
        for _ in range(3):
            vs1 = VCM_IN - (m1.vth_at(np.maximum(vs1, 0.0)) + m1.vov_for_current(i1))

        # Node X (input drain / n-cascode source) target + per-side shifts.
        vx_target = m1_avg.vdsat(i1) + np.maximum(vs1, 0.0) + d["vmargin_n"]
        vg3 = vx_target + mb2.vgs_for_current(0.5 * itail)
        vx_l = vg3 - m3.vgs_for_current(i1)
        vx_r = vg3 - m4.vgs_for_current(i1)

        # Node Z (p-cascode source / p-source drain) target + shifts.
        vz_target = vdd - (m7_avg.vdsat(i1) + d["vmargin_p"])
        vg5 = vz_target - mb3.vgs_for_current(0.5 * itail)
        vz_l = vg5 + m5.vgs_for_current(i1)
        vz_r = vg5 + m6.vgs_for_current(i1)

        # -- saturation margins -------------------------------------------------
        margins = [
            vs1 - m0.vdsat(i0),
            (vx_l - vs1) - m1.vdsat(i1),
            (vx_r - vs1) - m2.vdsat(i1),
            (vo1_cm - vx_l) - m3.vdsat(i1),
            (vo1_cm - vx_r) - m4.vdsat(i1),
            (vz_l - vo1_cm) - m5.vdsat(i1),
            (vz_r - vo1_cm) - m6.vdsat(i1),
            (vdd - vz_l) - m7.vdsat(i1),
            (vdd - vz_r) - m8.vdsat(i1),
            (vdd - vout_cm) - m9.vdsat(i9_l),
            (vdd - vout_cm) - m10.vdsat(i9_r),
            vout_cm - m11.vdsat(i11_l),
            vout_cm - m12.vdsat(i11_r),
        ]
        satmargin = np.min(np.vstack(margins), axis=0)

        # -- stage gains ------------------------------------------------------------
        gm1 = m1.gm(i1)
        gm2 = m2.gm(i1)
        gm3_eff = m3.gm(i1) + m3.gmbs(i1, np.maximum(vx_l, 0.0))
        gm4_eff = m4.gm(i1) + m4.gmbs(i1, np.maximum(vx_r, 0.0))
        gm5_eff = m5.gm(i1) + m5.gmbs(i1, np.maximum(vdd - vz_l, 0.0))
        gm6_eff = m6.gm(i1) + m6.gmbs(i1, np.maximum(vdd - vz_r, 0.0))

        r1_l = _parallel(gm3_eff * m3.ro(i1) * m1.ro(i1),
                         gm5_eff * m5.ro(i1) * m7.ro(i1))
        r1_r = _parallel(gm4_eff * m4.ro(i1) * m2.ro(i1),
                         gm6_eff * m6.ro(i1) * m8.ro(i1))

        gm9 = m9.gm(i9_l)
        gm10 = m10.gm(i9_r)
        r2_l = _parallel(m9.ro(i9_l), m11.ro(i11_l))
        r2_r = _parallel(m10.ro(i9_r), m12.ro(i11_r))

        a1_l, a1_r = gm1 * r1_l, gm2 * r1_r
        a2_l, a2_r = gm9 * r2_l, gm10 * r2_r
        a0 = 0.5 * (a1_l * a2_l + a1_r * a2_r)
        a0_db = ratio_to_db(np.maximum(a0, 1e-12))

        # -- frequency response -------------------------------------------------------
        cc_eff = cc + 0.5 * (m9.cgd() + m10.cgd())
        gbw = 0.5 * (gm1 + gm2) / (2.0 * np.pi * cc_eff)

        # Output pole: gm9 / C_L(eff) with Miller-split approximation.
        c_out_l = LOAD_CAP + m9.cdb() + m11.cdb() + m11.cgd()
        c_out_r = LOAD_CAP + m10.cdb() + m12.cdb() + m12.cgd()
        p2 = np.minimum(gm9 / (2.0 * np.pi * np.maximum(c_out_l, 1e-18)),
                        gm10 / (2.0 * np.pi * np.maximum(c_out_r, 1e-18)))

        # Cascode-node pole in stage 1 (node X).
        c_x_l = m1.cdb() + m1.cgd() + m3.cgs() + m3.csb()
        c_x_r = m2.cdb() + m2.cgd() + m4.cgs() + m4.csb()
        p3 = np.minimum(gm3_eff / (2.0 * np.pi * np.maximum(c_x_l, 1e-18)),
                        gm4_eff / (2.0 * np.pi * np.maximum(c_x_r, 1e-18)))

        # Miller zero with nulling resistor: s_z = 1 / (Cc (1/gm9 - Rz)).
        gm9_avg = 0.5 * (gm9 + gm10)
        zdenom = cc_eff * (1.0 / np.maximum(gm9_avg, 1e-12) - rz)
        fz = 1.0 / (2.0 * np.pi * np.maximum(np.abs(zdenom), 1e-30))
        rhp = zdenom > 0.0
        fz_rhp = np.where(rhp, fz, np.inf)
        fz_lhp = np.where(rhp, np.inf, fz)

        pm = phase_margin_deg(
            gbw,
            nondominant_poles_hz=(p2, p3),
            rhp_zeros_hz=(fz_rhp,),
            lhp_zeros_hz=(fz_lhp,),
        )

        # -- swing (stage-2 output, differential peak-to-peak) ------------------------
        vout_max = vdd - np.maximum(m9.vdsat(i9_l), m10.vdsat(i9_r))
        vout_min = np.maximum(m11.vdsat(i11_l), m12.vdsat(i11_r))
        os = 2.0 * (vout_max - vout_min)

        # -- power ------------------------------------------------------------------------
        ibias = BIAS_FIXED + BIAS_FRACTION * (itail + 2.0 * i2)
        power = vdd * (i0 + i9_l + i9_r + ibias)

        # -- area ---------------------------------------------------------------------------
        gate_area = sum(
            dev.area() for dev in (m0, m1, m2, m3, m4, m5, m6, m7, m8,
                                   m9, m10, m11, m12, mb1, mb2, mb3, mb4, mb5, mb6)
        )
        cap_area = 2.0 * cc / CAP_DENSITY
        area = LAYOUT_OVERHEAD * (gate_area + cap_area)
        area = area * np.ones(samples.shape[0])

        # -- offset -----------------------------------------------------------------------
        dvth_in = m1.vth - m2.vth
        dvth_load = m7.vth - m8.vth
        vov1 = m1.vov_for_current(i1)
        dbeta_in = (m1.beta - m2.beta) / np.maximum(0.5 * (m1.beta + m2.beta), 1e-12)
        stage2_imbalance = ((i9_l - i11_l) - (i9_r - i11_r)) / np.maximum(gm9_avg, 1e-12)
        vos_raw = (
            dvth_in
            + (0.5 * (m7.gm(i1) + m8.gm(i1)) / np.maximum(0.5 * (gm1 + gm2), 1e-12))
            * dvth_load
            + 0.5 * vov1 * dbeta_in
            + stage2_imbalance / np.maximum(0.5 * (a1_l + a1_r), 1.0)
        )
        offset = np.abs(vos_raw) / OFFSET_TRIM_RATIO

        return np.column_stack(
            [a0_db, gbw, pm, os, power, area, offset, satmargin]
        )


def _mirror_current(reference, output, i_ref):
    """Mirror output current given the reference diode current (exact model)."""
    vgs_ref = reference.vgs_for_current(i_ref)
    return output.current_for_vov(vgs_ref - output.vth)


def _parallel(r1, r2):
    """Parallel resistance, safe for zeros."""
    return r1 * r2 / np.maximum(r1 + r2, 1e-30)
