"""AC small-signal analysis: transfer functions, Bode data, poles.

Given a circuit and a DC operating point, the small-signal system is
``(G + j*omega*C) x = b_ac``.  :class:`ACAnalysis` solves it over a frequency
grid and extracts the quantities analog designers measure: low-frequency
gain, unity-gain frequency (GBW), phase margin, pole locations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg as _scipy_linalg

from repro.circuit.mna import DCSolution, MNAAssembler
from repro.circuit.netlist import Circuit

__all__ = ["ACAnalysis", "TransferFunction"]


@dataclass
class TransferFunction:
    """Sampled complex transfer function H(f) on a frequency grid."""

    frequencies: np.ndarray
    response: np.ndarray

    @property
    def magnitude(self) -> np.ndarray:
        """|H(f)|."""
        return np.abs(self.response)

    @property
    def magnitude_db(self) -> np.ndarray:
        """20*log10 |H(f)|."""
        with np.errstate(divide="ignore"):
            return 20.0 * np.log10(np.maximum(self.magnitude, 1e-300))

    @property
    def phase_deg(self) -> np.ndarray:
        """Unwrapped phase in degrees."""
        return np.degrees(np.unwrap(np.angle(self.response)))

    def dc_gain(self) -> float:
        """Gain magnitude at the lowest analysed frequency."""
        return float(self.magnitude[0])

    def unity_gain_frequency(self) -> float:
        """Frequency where |H| crosses 1, by log-log interpolation [Hz].

        Returns ``nan`` if the magnitude never crosses unity inside the grid.
        """
        mag = self.magnitude
        above = mag >= 1.0
        if not above[0] or above[-1]:
            return float("nan")
        k = int(np.argmax(~above))  # first index below unity
        f1, f2 = self.frequencies[k - 1], self.frequencies[k]
        m1, m2 = mag[k - 1], mag[k]
        # log-linear interpolation of log|H| vs log f
        t = np.log(m1) / (np.log(m1) - np.log(m2))
        return float(np.exp(np.log(f1) + t * (np.log(f2) - np.log(f1))))

    def phase_at(self, frequency: float) -> float:
        """Phase [deg] at ``frequency`` by log-frequency interpolation."""
        return float(
            np.interp(
                np.log(frequency), np.log(self.frequencies), self.phase_deg
            )
        )

    def phase_margin(self) -> float:
        """Phase margin [deg] = 180 + phase at the unity-gain frequency.

        ``nan`` when no unity-gain crossing exists in the analysed band.
        """
        fu = self.unity_gain_frequency()
        if not np.isfinite(fu):
            return float("nan")
        return 180.0 + self.phase_at(fu)


class ACAnalysis:
    """Small-signal analysis of a circuit at a DC operating point."""

    def __init__(self, circuit: Circuit, dc: DCSolution) -> None:
        self.circuit = circuit
        self.dc = dc
        assembler = MNAAssembler(circuit)
        self._g, self._c, self._b = assembler.ac_system(dc.op)
        self._nodemap = assembler.nodemap

    # -- frequency response ---------------------------------------------------
    def solve_at(self, frequency: float) -> np.ndarray:
        """Complex solution vector at one frequency [Hz]."""
        omega = 2.0 * np.pi * frequency
        matrix = self._g + 1j * omega * self._c
        return np.linalg.solve(matrix, self._b.astype(complex))

    def transfer(
        self,
        output: str,
        output_neg: str | None = None,
        frequencies: np.ndarray | None = None,
    ) -> TransferFunction:
        """Transfer function from the AC excitation to a node (or node pair).

        Parameters
        ----------
        output:
            Output node name (positive terminal).
        output_neg:
            Optional negative terminal for differential outputs.
        frequencies:
            Frequency grid [Hz]; defaults to 1 Hz .. 100 GHz, 60 pts/decade.
        """
        if frequencies is None:
            frequencies = np.logspace(0, 11, 661)
        response = np.empty(len(frequencies), dtype=complex)
        out_idx = self._nodemap[output]
        neg_idx = self._nodemap[output_neg] if output_neg is not None else None
        for i, frequency in enumerate(frequencies):
            x = self.solve_at(frequency)
            v = x[out_idx] if out_idx is not None else 0.0
            if neg_idx is not None:
                v = v - x[neg_idx]
            response[i] = v
        return TransferFunction(np.asarray(frequencies, dtype=float), response)

    # -- poles -------------------------------------------------------------------
    def poles(self, max_hz: float = 1e14, min_hz: float = 1e-3) -> np.ndarray:
        """Natural frequencies of the network [Hz], sorted by magnitude.

        Solves the generalized eigenproblem ``(G + s C) x = 0`` on the full
        MNA system (including source branch rows, whose zero capacitance
        rows yield infinite eigenvalues that are discarded).  Numerically
        huge eigenvalues beyond ``max_hz`` and gmin-artifact eigenvalues
        below ``min_hz`` are filtered out.
        """
        eigenvalues = _scipy_linalg.eigvals(-self._g, self._c)
        s = eigenvalues[np.isfinite(eigenvalues)]
        f = s / (2.0 * np.pi)
        f = f[(np.abs(f) < max_hz) & (np.abs(f) > min_hz)]
        return f[np.argsort(np.abs(f))]
